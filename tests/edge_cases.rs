//! Failure-injection and corner-case integration tests: degenerate hidden
//! graphs, extreme crawl sizes, and adversarial structures the paper's
//! algorithms must survive.

use social_graph_restoration::core::{restore, RestoreConfig};
use social_graph_restoration::gen::classic::{barbell, complete, cycle, lollipop, path, star};
use social_graph_restoration::graph::Graph;
use social_graph_restoration::sample::{random_walk, AccessModel, Crawl};
use social_graph_restoration::util::Xoshiro256pp;

fn cfg() -> RestoreConfig {
    RestoreConfig {
        rewiring_coefficient: 3.0,
        rewire: true,
        ..RestoreConfig::default()
    }
}

fn crawl_fraction(g: &Graph, frac: f64, seed: u64) -> Crawl {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut am = AccessModel::new(g);
    let start = am.random_seed(&mut rng);
    let target = ((g.num_nodes() as f64 * frac) as usize).max(1);
    random_walk(&mut am, start, target, &mut rng)
}

#[test]
fn restore_from_three_step_walk() {
    // The estimator minimum: r = 3 (clustering needs it). A tiny crawl on
    // a clique must still restore *something* valid.
    let g = complete(12);
    let mut crawl = Crawl::default();
    for x in [0u32, 1, 2] {
        crawl.seq.push(x);
        crawl.neighbors.insert(x, g.neighbors(x).to_vec());
    }
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let r = restore(&crawl, &cfg(), &mut rng).expect("minimal crawl restores");
    r.graph.validate().unwrap();
    assert!(r.graph.num_nodes() >= 12, "all visible nodes must survive");
}

#[test]
fn restore_on_classic_families() {
    // Structures with extreme degree profiles: star (hub + leaves),
    // cycle (regular), path (two endpoints), lollipop (clique + tail),
    // barbell (two cliques + bridge).
    let graphs: Vec<(&str, Graph)> = vec![
        ("star", star(60)),
        ("cycle", cycle(80)),
        ("path", path(80)),
        ("lollipop", lollipop(12, 20)),
        ("barbell", barbell(12)),
    ];
    for (name, g) in graphs {
        let crawl = crawl_fraction(&g, 0.3, 7);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let r = restore(&crawl, &cfg(), &mut rng)
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        r.graph.validate().unwrap();
        // Queried nodes keep exact degrees even on adversarial shapes.
        for u in r.subgraph.queried_nodes() {
            assert_eq!(
                r.graph.degree(u),
                r.subgraph.graph.degree(u),
                "{name}: queried degree broken"
            );
        }
    }
}

#[test]
fn restore_when_everything_is_queried() {
    // 100% crawl: the subgraph IS the graph; restoration must keep it
    // intact and add little.
    let g = cycle(40);
    let crawl = crawl_fraction(&g, 1.0, 3);
    assert_eq!(crawl.num_queried(), 40);
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let r = restore(&crawl, &cfg(), &mut rng).unwrap();
    // All 40 original edges are present.
    assert!(r.graph.num_edges() >= 40);
    for (u, v) in r.subgraph.graph.edges() {
        assert!(r.graph.has_edge(u, v));
    }
}

#[test]
fn walk_stuck_on_one_edge() {
    // Hidden graph = single edge. A 2-step crawl is below the clustering
    // estimator's r >= 3 requirement and must surface the documented
    // error (not panic); a 3-step bounce restores fine.
    let g = Graph::from_edges(2, &[(0, 1)]);
    let short = crawl_fraction(&g, 1.0, 5);
    assert_eq!(short.len(), 2);
    let mut rng = Xoshiro256pp::seed_from_u64(6);
    assert!(matches!(
        restore(&short, &cfg(), &mut rng),
        Err(social_graph_restoration::core::RestoreError::Estimate(_))
    ));

    let mut bounce = Crawl::default();
    for &x in &[0u32, 1, 0] {
        bounce.seq.push(x);
        bounce
            .neighbors
            .entry(x)
            .or_insert_with(|| g.neighbors(x).to_vec());
    }
    let r = restore(&bounce, &cfg(), &mut rng).unwrap();
    r.graph.validate().unwrap();
    assert!(r.graph.has_edge(0, 1));
}

#[test]
fn heavy_multigraph_inputs_to_properties() {
    // Property computation must tolerate loops and multi-edges (they
    // arise in generated graphs).
    use social_graph_restoration::props::{PropsConfig, StructuralProperties};
    let mut g = complete(6);
    g.add_edge(0, 0);
    g.add_edge(1, 2);
    g.add_edge(1, 2);
    let p = StructuralProperties::compute(&g, &PropsConfig::default());
    assert!(p.lambda1 > 5.0);
    assert!(p.avg_path_length >= 1.0);
    assert!(p.mean_clustering > 0.0);
}

#[test]
fn zero_clustering_target_is_fine() {
    // Bipartite-ish hidden graph: the clustering estimate is all zeros,
    // so the rewiring phase has a degenerate target. Must not panic or
    // divide by zero.
    let g = social_graph_restoration::gen::classic::complete_bipartite(20, 20);
    let crawl = crawl_fraction(&g, 0.3, 8);
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let r = restore(&crawl, &cfg(), &mut rng).unwrap();
    r.graph.validate().unwrap();
    assert!(r.stats.rewire_stats.final_distance.is_finite());
}

#[test]
fn disconnected_hidden_graph_restores_the_walked_component() {
    // The walk can only see its own component; restoration targets what
    // the estimators saw. (The paper assumes connected graphs; we degrade
    // gracefully instead of failing.)
    let mut g = complete(10);
    for _ in 0..5 {
        g.add_node(); // isolated island the walk never reaches
    }
    let mut rng = Xoshiro256pp::seed_from_u64(10);
    let mut am = AccessModel::new(&g);
    let crawl = random_walk(&mut am, 0, 5, &mut rng);
    let r = restore(&crawl, &cfg(), &mut rng).unwrap();
    r.graph.validate().unwrap();
    // The estimate reflects the walked clique (n ≈ 10), not the islands.
    assert!(r.graph.num_nodes() <= 14);
}

#[test]
fn gjoka_handles_degenerate_walks_too() {
    let g = star(30);
    let crawl = crawl_fraction(&g, 0.5, 12);
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let out = social_graph_restoration::core::gjoka::generate(
        &crawl,
        &RestoreConfig {
            rewiring_coefficient: 2.0,
            ..RestoreConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    out.graph.validate().unwrap();
}

#[test]
fn cli_style_roundtrip_through_edge_list_files() {
    // The downstream workflow: write hidden graph, read back, crawl,
    // restore, write, read back — no information loss along the way.
    use social_graph_restoration::graph::io::{read_edge_list_file, write_edge_list_file};
    let dir = std::env::temp_dir().join("sgr_edge_cases");
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(14);
    let g = social_graph_restoration::gen::holme_kim(300, 3, 0.5, &mut rng).unwrap();
    let p1 = dir.join("hidden.edges");
    write_edge_list_file(&g, &p1).unwrap();
    let (g2, _) = read_edge_list_file(&p1).unwrap();
    assert_eq!(g2.num_edges(), g.num_edges());
    let crawl = crawl_fraction(&g2, 0.1, 15);
    let r = restore(&crawl, &cfg(), &mut rng).unwrap();
    let p2 = dir.join("restored.edges");
    write_edge_list_file(&r.graph, &p2).unwrap();
    let (g3, _) = read_edge_list_file(&p2).unwrap();
    assert_eq!(g3.num_edges(), r.graph.num_edges());
    std::fs::remove_dir_all(&dir).ok();
}
