//! End-to-end integration tests: crawl → estimate → restore on every
//! dataset analogue, checking the paper's structural invariants.

use social_graph_restoration::core::{restore, RestoreConfig};
use social_graph_restoration::dk::extract::{jdm_matches_degree_vector, joint_degree_matrix};
use social_graph_restoration::gen::Dataset;
use social_graph_restoration::graph::index::MultiplicityIndex;
use social_graph_restoration::sample::random_walk_until_fraction;
use social_graph_restoration::util::Xoshiro256pp;

fn cfg(rc: f64) -> RestoreConfig {
    RestoreConfig {
        rewiring_coefficient: rc,
        rewire: true,
        ..RestoreConfig::default()
    }
}

#[test]
fn every_analogue_restores_with_invariants() {
    for ds in Dataset::ALL {
        let mut rng = Xoshiro256pp::seed_from_u64(ds as u64 + 1);
        // Small scale: this test checks invariants, not accuracy.
        let g = ds.spec().scaled(0.08).generate(&mut rng);
        let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);
        let r = restore(&crawl, &cfg(3.0), &mut rng)
            .unwrap_or_else(|e| panic!("{} restore failed: {e}", ds.name()));
        r.graph.validate().unwrap();

        // The frozen snapshot restore() hands out mirrors the graph.
        assert_eq!(r.snapshot.num_nodes(), r.graph.num_nodes());
        assert_eq!(r.snapshot.num_edges(), r.graph.num_edges());
        assert_eq!(r.snapshot.degree_vector(), r.graph.degree_vector());

        // Invariant 1: G' ⊆ G̃ edge-for-edge, degree-for-degree
        // (read through the snapshot — the read side of the split).
        let idx = MultiplicityIndex::build(&r.snapshot);
        for (u, v) in r.subgraph.graph.edges() {
            assert!(idx.get(u, v) >= 1, "{}: lost subgraph edge", ds.name());
        }
        for u in r.subgraph.queried_nodes() {
            assert_eq!(
                r.graph.degree(u),
                r.subgraph.graph.degree(u),
                "{}: queried degree changed",
                ds.name()
            );
        }

        // Invariant 2: the realized degree vector and JDM satisfy the
        // marginal identity (JDM-3 realized).
        let jdm = joint_degree_matrix(&r.graph);
        assert!(
            jdm_matches_degree_vector(&jdm, &r.graph.degree_vector()),
            "{}: JDM/DV marginal identity broken",
            ds.name()
        );
    }
}

#[test]
fn restoration_works_at_one_percent() {
    // The YouTube experiment queries only 1% of nodes — the pipeline must
    // hold up under that much sparsity.
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let g = Dataset::YouTube.spec().scaled(0.25).generate(&mut rng);
    let crawl = random_walk_until_fraction(&g, 0.01, &mut rng);
    let r = restore(&crawl, &cfg(2.0), &mut rng).expect("1% restore");
    assert!(r.graph.num_nodes() > crawl.num_queried());
    assert!(r.graph.num_edges() > r.subgraph.num_edges());
}

#[test]
fn rewiring_never_breaks_dv_or_jdm() {
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let g = Dataset::Anybeat.spec().scaled(0.1).generate(&mut rng);
    let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);

    // Restore twice from the same crawl with and without rewiring: the
    // degree vector and JDM must be identical (rewiring preserves both).
    let mut rng_a = Xoshiro256pp::seed_from_u64(900);
    let with = restore(&crawl, &cfg(10.0), &mut rng_a).unwrap();
    let mut rng_b = Xoshiro256pp::seed_from_u64(900);
    let without = restore(
        &crawl,
        &RestoreConfig {
            rewiring_coefficient: 0.0,
            rewire: false,
            ..RestoreConfig::default()
        },
        &mut rng_b,
    )
    .unwrap();
    assert_eq!(with.graph.degree_vector(), without.graph.degree_vector());
    assert_eq!(
        joint_degree_matrix(&with.graph),
        joint_degree_matrix(&without.graph)
    );
}

#[test]
fn gjoka_baseline_runs_on_analogues() {
    for ds in [Dataset::Anybeat, Dataset::Slashdot] {
        let mut rng = Xoshiro256pp::seed_from_u64(ds as u64 + 40);
        let g = ds.spec().scaled(0.08).generate(&mut rng);
        let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);
        let out = social_graph_restoration::core::gjoka::generate(
            &crawl,
            &RestoreConfig {
                rewiring_coefficient: 3.0,
                ..RestoreConfig::default()
            },
            &mut rng,
        )
        .unwrap_or_else(|e| panic!("{}: gjoka failed: {e}", ds.name()));
        out.graph.validate().unwrap();
        let jdm = joint_degree_matrix(&out.graph);
        assert!(jdm_matches_degree_vector(&jdm, &out.graph.degree_vector()));
    }
}

#[test]
fn restoration_from_other_walks_is_possible() {
    // Extension: the pipeline also accepts non-backtracking walks (the
    // estimators are formally derived for the simple walk; the plumbing
    // must still hold together).
    use social_graph_restoration::sample::{non_backtracking_walk, AccessModel};
    let mut rng = Xoshiro256pp::seed_from_u64(8);
    let g = Dataset::Brightkite.spec().scaled(0.06).generate(&mut rng);
    let mut am = AccessModel::new(&g);
    let crawl = non_backtracking_walk(&mut am, 0, g.num_nodes() / 10, &mut rng);
    let r = restore(&crawl, &cfg(2.0), &mut rng).expect("nbt-walk restore");
    r.graph.validate().unwrap();
}
