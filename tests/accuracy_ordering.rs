//! The paper's headline qualitative result, as an integration test: on a
//! clustered, heavy-tailed social graph crawled at 10%, the proposed
//! method's average L1 distance over the 12 properties beats raw
//! random-walk subgraph sampling — and the proposed rewiring phase is
//! cheaper than Gjoka et al.'s for the same coefficient.

use social_graph_restoration::core::{gjoka, restore, RestoreConfig};
use social_graph_restoration::gen::Dataset;
use social_graph_restoration::props::{PropsConfig, StructuralProperties};
use social_graph_restoration::sample::{random_walk, AccessModel};
use social_graph_restoration::util::stats::mean;
use social_graph_restoration::util::Xoshiro256pp;

#[test]
fn proposed_beats_rw_subgraph_sampling_on_average() {
    let mut rng = Xoshiro256pp::seed_from_u64(20221);
    let g = Dataset::Anybeat.spec().scaled(0.35).generate(&mut rng);
    let props_cfg = PropsConfig::default();
    let truth = StructuralProperties::compute(&g, &props_cfg);

    // Average over a few crawls to damp run-to-run noise.
    let runs = 3;
    let mut rw_avg = 0.0;
    let mut proposed_avg = 0.0;
    for run in 0..runs {
        let mut rng = Xoshiro256pp::seed_from_u64(1000 + run);
        let mut am = AccessModel::new(&g);
        let seed = am.random_seed(&mut rng);
        let target = g.num_nodes() / 10;
        let crawl = random_walk(&mut am, seed, target, &mut rng);

        let sg = crawl.subgraph();
        let sg_props = StructuralProperties::compute(&sg.graph, &props_cfg);
        rw_avg += mean(&truth.l1_distances(&sg_props)) / runs as f64;

        let r = restore(
            &crawl,
            &RestoreConfig {
                rewiring_coefficient: 30.0,
                rewire: true,
                ..RestoreConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let r_props = StructuralProperties::compute(&r.graph, &props_cfg);
        proposed_avg += mean(&truth.l1_distances(&r_props)) / runs as f64;
    }
    assert!(
        proposed_avg < rw_avg,
        "proposed avg L1 {proposed_avg:.3} not below RW subgraph sampling {rw_avg:.3}"
    );
}

#[test]
fn proposed_rewires_fewer_candidates_than_gjoka() {
    // The mechanism behind the paper's Table IV speedup: |Ẽ \ E'| < |Ẽ|.
    let mut rng = Xoshiro256pp::seed_from_u64(31);
    let g = Dataset::Anybeat.spec().scaled(0.3).generate(&mut rng);
    let mut am = AccessModel::new(&g);
    let seed = am.random_seed(&mut rng);
    let crawl = random_walk(&mut am, seed, g.num_nodes() / 10, &mut rng);

    let r = restore(
        &crawl,
        &RestoreConfig {
            rewiring_coefficient: 1.0,
            rewire: true,
            ..RestoreConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let gj = gjoka::generate(
        &crawl,
        &RestoreConfig {
            rewiring_coefficient: 1.0,
            ..RestoreConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    assert!(
        r.stats.candidate_edges < gj.stats.candidate_edges,
        "proposed candidates {} not below Gjoka's {}",
        r.stats.candidate_edges,
        gj.stats.candidate_edges
    );
    // With comparable edge totals, fewer candidates ⇒ fewer attempts.
    assert!(r.stats.rewire_stats.attempts < gj.stats.rewire_stats.attempts);
}

#[test]
fn proposed_beats_gjoka_on_degree_dependent_clustering() {
    // Table II's most consistent per-property win: c̄(k). Protecting the
    // sampled subgraph's real triangles gives the proposed method a head
    // start that rewiring alone does not recover for Gjoka.
    let mut rng = Xoshiro256pp::seed_from_u64(55);
    let g = Dataset::Brightkite.spec().scaled(0.25).generate(&mut rng);
    let props_cfg = PropsConfig::default();
    let truth = StructuralProperties::compute(&g, &props_cfg);

    let runs = 3;
    let mut gjoka_ck = 0.0;
    let mut proposed_ck = 0.0;
    for run in 0..runs {
        let mut rng = Xoshiro256pp::seed_from_u64(2000 + run);
        let mut am = AccessModel::new(&g);
        let seed = am.random_seed(&mut rng);
        let crawl = random_walk(&mut am, seed, g.num_nodes() / 10, &mut rng);

        let gj = gjoka::generate(
            &crawl,
            &RestoreConfig {
                rewiring_coefficient: 20.0,
                ..RestoreConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let gj_props = StructuralProperties::compute(&gj.graph, &props_cfg);
        gjoka_ck += truth.l1_distances(&gj_props)[5] / runs as f64;

        let r = restore(
            &crawl,
            &RestoreConfig {
                rewiring_coefficient: 20.0,
                rewire: true,
                ..RestoreConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        let r_props = StructuralProperties::compute(&r.graph, &props_cfg);
        proposed_ck += truth.l1_distances(&r_props)[5] / runs as f64;
    }
    assert!(
        proposed_ck < gjoka_ck,
        "proposed c̄(k) L1 {proposed_ck:.3} not below Gjoka's {gjoka_ck:.3}"
    );
}
