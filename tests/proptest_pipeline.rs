//! Property-based tests of the restoration pipeline: for arbitrary
//! social-ish hidden graphs, crawl fractions, and seeds, the paper's
//! structural postconditions must hold.

use proptest::prelude::*;
use social_graph_restoration::core::{restore, RestoreConfig};
use social_graph_restoration::dk::extract::{jdm_matches_degree_vector, joint_degree_matrix};
use social_graph_restoration::graph::index::MultiplicityIndex;
use social_graph_restoration::sample::random_walk_until_fraction;
use social_graph_restoration::util::Xoshiro256pp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn restore_postconditions(
        n in 120usize..400,
        m_attach in 2usize..5,
        p_t in 0.0f64..0.8,
        frac in 0.05f64..0.25,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = social_graph_restoration::gen::holme_kim(n, m_attach, p_t, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, frac, &mut rng);
        let cfg = RestoreConfig { rewiring_coefficient: 2.0, rewire: true, ..RestoreConfig::default() };
        let r = restore(&crawl, &cfg, &mut rng).unwrap();

        // The generated multigraph is internally consistent.
        prop_assert!(r.graph.validate().is_ok());

        // G' ⊆ G̃ as a sub-multigraph.
        let idx = MultiplicityIndex::build(&r.graph);
        for (u, v) in r.subgraph.graph.edges() {
            prop_assert!(idx.get(u, v) >= 1);
        }

        // Queried nodes keep their true degree; visible nodes never
        // shrink (Lemma 1 carried through all four phases).
        for u in r.subgraph.queried_nodes() {
            prop_assert_eq!(r.graph.degree(u), r.subgraph.graph.degree(u));
        }
        for u in r.subgraph.visible_nodes() {
            prop_assert!(r.graph.degree(u) >= r.subgraph.graph.degree(u));
        }

        // The realized DV/JDM marginal identity (the realizability
        // conditions were genuinely met, not just targeted).
        let jdm = joint_degree_matrix(&r.graph);
        prop_assert!(jdm_matches_degree_vector(&jdm, &r.graph.degree_vector()));

        // Every positive degree estimate is realized by at least one node.
        let dv = r.graph.degree_vector();
        for k in 1..r.estimates.degree_dist.len() {
            if r.estimates.degree_prob(k) > 0.0 {
                prop_assert!(
                    dv.get(k).copied().unwrap_or(0) >= 1,
                    "P̂({}) > 0 but no node of that degree", k
                );
            }
        }
    }

    #[test]
    fn gjoka_postconditions(
        n in 120usize..350,
        frac in 0.05f64..0.2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = social_graph_restoration::gen::holme_kim(n, 3, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, frac, &mut rng);
        let out = social_graph_restoration::core::gjoka::generate(&crawl, &RestoreConfig { rewiring_coefficient: 2.0, ..RestoreConfig::default() }, &mut rng).unwrap();
        prop_assert!(out.graph.validate().is_ok());
        let jdm = joint_degree_matrix(&out.graph);
        prop_assert!(jdm_matches_degree_vector(&jdm, &out.graph.degree_vector()));
        // Everything is rewirable in the baseline.
        prop_assert_eq!(out.stats.candidate_edges, out.stats.edges);
    }
}
