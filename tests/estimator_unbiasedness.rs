//! Monte-Carlo verification of the estimators' (asymptotic) unbiasedness —
//! the empirical counterpart of the paper's Appendix A, which proves that
//! the hybrid joint-degree-distribution estimator is asymptotically
//! unbiased, plus the published results for `n̂`, `k̄̂`, and `P̂(k)`.
//!
//! Strategy: fix one hidden graph; run many independent long walks; the
//! *mean* of each estimator across walks must approach the true value far
//! more tightly than any single walk does.

use social_graph_restoration::estimate::{
    estimate_average_degree, estimate_degree_distribution, estimate_jdd, estimate_num_nodes,
};
use social_graph_restoration::graph::Graph;
use social_graph_restoration::props::local::LocalProperties;
use social_graph_restoration::sample::{random_walk, AccessModel, Crawl};
use social_graph_restoration::util::{FxHashMap, Xoshiro256pp};

/// A long walk: keeps walking past the query target so the chain mixes
/// (estimator quality depends on r, the sequence length).
fn long_walk(g: &Graph, steps: usize, rng: &mut Xoshiro256pp) -> Crawl {
    let mut am = AccessModel::new(g);
    let start = am.random_seed(rng);
    let mut crawl = random_walk(&mut am, start, g.num_nodes(), rng);
    let mut current = *crawl.seq.last().unwrap();
    while crawl.seq.len() < steps {
        let nbrs = crawl.neighbors_of(current);
        let next = nbrs[rng.gen_range(nbrs.len())];
        crawl.neighbors.entry(next).or_insert_with(|| {
            let fetched = am.query(next).to_vec();
            fetched
        });
        crawl.seq.push(next);
        current = next;
    }
    crawl
}

fn hidden() -> Graph {
    sgr_test_graph()
}

fn sgr_test_graph() -> Graph {
    social_graph_restoration::gen::holme_kim(
        400,
        3,
        0.5,
        &mut Xoshiro256pp::seed_from_u64(20220101),
    )
    .unwrap()
}

#[test]
fn average_degree_estimator_is_unbiased() {
    let g = hidden();
    let truth = g.average_degree();
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let walks = 40;
    let mean: f64 = (0..walks)
        .map(|_| {
            let crawl = long_walk(&g, 2_000, &mut rng);
            estimate_average_degree(&crawl).unwrap()
        })
        .sum::<f64>()
        / walks as f64;
    assert!(
        (mean - truth).abs() / truth < 0.03,
        "mean k̄̂ = {mean:.3} vs truth {truth:.3}"
    );
}

#[test]
fn size_estimator_is_unbiased() {
    let g = hidden();
    let truth = g.num_nodes() as f64;
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let walks = 40;
    let mean: f64 = (0..walks)
        .map(|_| {
            let crawl = long_walk(&g, 3_000, &mut rng);
            estimate_num_nodes(&crawl).unwrap()
        })
        .sum::<f64>()
        / walks as f64;
    assert!(
        (mean - truth).abs() / truth < 0.08,
        "mean n̂ = {mean:.1} vs truth {truth}"
    );
}

#[test]
fn degree_distribution_estimator_is_unbiased() {
    let g = hidden();
    let truth = LocalProperties::compute(&g).degree_dist;
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let walks = 40;
    let mut mean = vec![0.0f64; truth.len()];
    for _ in 0..walks {
        let crawl = long_walk(&g, 2_000, &mut rng);
        let est = estimate_degree_distribution(&crawl).unwrap();
        for (m, &e) in mean.iter_mut().zip(est.iter()) {
            *m += e / walks as f64;
        }
    }
    let l1: f64 = truth
        .iter()
        .zip(mean.iter())
        .map(|(&t, &m)| (t - m).abs())
        .sum();
    assert!(l1 < 0.06, "mean-P̂(k) L1 error = {l1:.4}");
}

#[test]
fn jdd_estimator_is_asymptotically_unbiased() {
    // Appendix A's claim, checked empirically: E[P̂(k,k')] → P(k,k').
    let g = hidden();
    // Ground-truth JDD over *ordered* degree pairs: P(k,k') with
    // µ(k,k) = 2 (Eq. 3), so Σ over ordered pairs = 1.
    let mut truth: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let m = g.num_edges() as f64;
    for (u, v) in g.edges() {
        let k = g.degree(u) as u32;
        let k2 = g.degree(v) as u32;
        if k == k2 {
            *truth.entry((k, k)).or_insert(0.0) += 2.0 / (2.0 * m);
        } else {
            *truth.entry((k, k2)).or_insert(0.0) += 1.0 / (2.0 * m);
            *truth.entry((k2, k)).or_insert(0.0) += 1.0 / (2.0 * m);
        }
    }
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let walks = 30;
    let mut mean: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    for _ in 0..walks {
        let crawl = long_walk(&g, 3_000, &mut rng);
        let est = estimate_jdd(&crawl).unwrap();
        for (&(k, k2), &p) in est.iter() {
            *mean.entry((k, k2)).or_insert(0.0) += p / walks as f64;
        }
    }
    // Compare total variation over the union of supports. The hybrid
    // estimator is asymptotically unbiased; at r = 3000 on n = 400 we
    // allow a 20% L1 budget (single walks are far worse).
    let keys: std::collections::BTreeSet<(u32, u32)> =
        truth.keys().chain(mean.keys()).copied().collect();
    let mut l1 = 0.0;
    let mut mass = 0.0;
    for &k in &keys {
        let t = truth.get(&k).copied().unwrap_or(0.0);
        let e = mean.get(&k).copied().unwrap_or(0.0);
        l1 += (t - e).abs();
        mass += t;
    }
    assert!((mass - 1.0).abs() < 1e-9, "truth JDD must sum to 1");
    assert!(l1 < 0.20, "mean-P̂(k,k') L1 error = {l1:.4}");
}

#[test]
fn clustering_estimator_tracks_truth() {
    let g = hidden();
    let truth = LocalProperties::compute(&g).clustering_by_degree;
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let walks = 30;
    let mut mean = vec![0.0f64; truth.len()];
    for _ in 0..walks {
        let crawl = long_walk(&g, 3_000, &mut rng);
        let est = social_graph_restoration::estimate::estimate_clustering(&crawl).unwrap();
        for (m, &e) in mean.iter_mut().zip(est.iter()) {
            *m += e / walks as f64;
        }
    }
    let l1 = social_graph_restoration::props::distance::normalized_l1(&truth, &mean);
    assert!(l1 < 0.25, "mean-ĉ̄(k) normalized L1 = {l1:.4}");
}
