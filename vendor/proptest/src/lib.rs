//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container has no network route to crates.io, so the workspace
//! vendors the small slice of proptest's surface its test suites actually
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`Just`], [`collection::vec`], the [`proptest!`] test
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream are deliberate and contained:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; inputs are small by construction in this workspace, so
//!   minimization matters little.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name, so failures reproduce exactly across runs and
//!   machines (upstream uses an OS seed by default).
//! * `prop_assert*` panic immediately instead of returning `Err`.

pub mod test_runner {
    /// Deterministic generator backing every strategy draw (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), typically the test's
        /// fully-qualified name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound > 0`.
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            // Multiply-shift; bias is negligible for test-input ranges.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases (upstream constructor name).
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps offline CI fast while
            // still exercising the strategies broadly.
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generation strategy: something that can produce a `Value` from the
/// deterministic test RNG. (Upstream separates `Strategy` and `ValueTree`
/// for shrinking; without shrinking one trait suffices.)
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy it induces.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut test_runner::TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + rng.below(span.saturating_add(1).max(1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{test_runner::TestRng, Strategy};

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Upstream-compatible constructor.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables, unused_mut)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Panicking stand-in for upstream's `Err`-returning `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Panicking stand-in for `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Panicking stand-in for `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("t");
        for _ in 0..1000 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name() {
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(x in 1usize..50, (a, b) in (0u32..10, 0u32..10)) {
            prop_assert!((1..50).contains(&x));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn flat_map_and_vec(list in (1usize..8).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..100, 0..20))
        })) {
            let (n, v) = list;
            prop_assert!((1..8).contains(&n));
            prop_assert!(v.len() < 20);
        }
    }
}
