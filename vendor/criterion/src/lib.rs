//! Offline, API-compatible subset of the `criterion` benchmark crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of criterion's interface its benches use: [`Criterion`] with
//! `bench_function` / `sample_size`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: per benchmark it runs a short
//! warm-up, then `sample_size` timed samples (each auto-scaled to a minimum
//! wall time), and prints min / median / mean / max nanoseconds per
//! iteration. That is enough to compare two implementations in the same
//! process run, which is all this workspace's throughput gates need.

use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls. Only used to pick
/// the per-sample batch size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Nanoseconds per iteration measured by the routine that ran.
    samples: Vec<f64>,
    sample_size: usize,
    min_sample_time: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            min_sample_time: Duration::from_millis(10),
        }
    }

    /// Times `routine` repeatedly; the routine's return value is passed
    /// through [`std::hint::black_box`] so it is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let mut iters_per_sample = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= self.min_sample_time || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample = (iters_per_sample * 2).max(1);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(ns);
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            let ns = t.elapsed().as_nanos() as f64;
            std::hint::black_box(out);
            self.samples.push(ns);
        }
    }
}

/// Benchmark driver; a stand-in for criterion's struct of the same name.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mut s = b.samples;
        if s.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let min = s[0];
        let max = s[s.len() - 1];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{name:<40} min {} · median {} · mean {} · max {}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(max)
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions; both upstream forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 64]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 4);
    }

    criterion_group!(smoke, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles() {
        smoke();
    }
}
