//! # social-graph-restoration
//!
//! Facade crate for the full Rust reproduction of
//! *"Social Graph Restoration via Random Walk Sampling"*
//! (Kazuki Nakajima and Kazuyuki Shudo, ICDE 2022).
//!
//! Given query access to a hidden social graph, the pipeline is:
//!
//! 1. crawl a small fraction of nodes with a simple random walk
//!    ([`sample`]),
//! 2. build the induced subgraph `G'` and re-weighted estimates of five
//!    local properties ([`sample`], [`estimate`]),
//! 3. generate a graph that contains `G'` and preserves the estimates
//!    ([`core`]), and
//! 4. evaluate it against the original with the paper's 12 structural
//!    properties ([`props`]).
//!
//! ```
//! use social_graph_restoration as sgr;
//! use sgr::gen::holme_kim;
//! use sgr::sample::random_walk_until_fraction;
//! use sgr::core::{restore, RestoreConfig};
//! use sgr::util::Xoshiro256pp;
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(7);
//! // A hidden "social graph" (power-law + clustering).
//! let g = holme_kim(500, 4, 0.5, &mut rng).unwrap();
//! // Crawl 10% of its nodes with a simple random walk.
//! let walk = random_walk_until_fraction(&g, 0.10, &mut rng);
//! // Restore (small rewiring budget to keep the doc test fast; the
//! // paper's default is `RestoreConfig::default()` with R_C = 500).
//! let cfg = RestoreConfig { rewiring_coefficient: 5.0, ..RestoreConfig::default() };
//! let restored = restore(&walk, &cfg, &mut rng).unwrap();
//! assert!(restored.graph.num_nodes() > 0);
//! ```

pub use sgr_core as core;
pub use sgr_dk as dk;
pub use sgr_estimate as estimate;
pub use sgr_gen as gen;
pub use sgr_graph as graph;
pub use sgr_props as props;
pub use sgr_sample as sample;
pub use sgr_util as util;
pub use sgr_viz as viz;
