//! # sgr-dk
//!
//! The dK-series substrate (§III-C of the paper; Mahadevan et al. 2006,
//! Gjoka et al. 2013, Orsini et al. 2015).
//!
//! The dK-series is the family of random graphs preserving the joint
//! degree structure of subgraphs of size ≤ d:
//!
//! * **0K** — node count and average degree;
//! * **1K** — plus the degree distribution (degree vector `{n(k)}`);
//! * **2K** — plus the joint degree distribution (joint degree matrix
//!   `{m(k,k')}`);
//! * **2.5K** — plus the degree-dependent clustering `{c̄(k)}`, targeted
//!   by rewiring.
//!
//! This crate provides the machinery the restoration method (and its
//! Gjoka-et-al. baseline) are built from:
//!
//! * [`extract`] — measuring `{n(k)}` / `{m(k,k')}` of a graph and the
//!   realizability conditions (DV-1/2, JDM-1/2/3 of §IV);
//! * [`construct`] — stub-matching construction: attach free half-edges
//!   ("stubs") to nodes and wire them class-by-class, starting from an
//!   empty graph *or extending an existing subgraph* (the generalization
//!   Algorithm 5 of the paper needs);
//! * [`rewire`] — the 2.5K rewiring engine with incremental per-node
//!   triangle maintenance (O(k̄²) per attempt, §IV-E), supporting a
//!   protected-edge set so the proposed method can exclude `E'`;
//! * [`series`] — standalone 0K/1K/2K/2.5K generators built from the
//!   above (extension features; also the reference implementations the
//!   property tests check against).

pub mod construct;
pub mod extract;
pub mod rewire;
pub mod series;

pub use construct::{wire_stubs, wire_stubs_with, ConstructScratch, DkError, MatchStats};
pub use extract::{joint_degree_matrix, JointDegreeMatrix};
pub use rewire::{RewireEngine, RewireStats};
