//! The 2.5K rewiring engine (§IV-E / Algorithm 6).
//!
//! Given a graph whose degree vector and joint degree matrix are already
//! correct, repeatedly pick two candidate edges `(v_i, v_j)` and
//! `(v_{i'}, v_{j'})` whose first endpoints have **equal degree**, and
//! swap them to `(v_i, v_{j'})`, `(v_{i'}, v_j)` iff the normalized L1
//! distance `D` between the current degree-dependent clustering `{c̄(k)}`
//! and the target `{ĉ̄(k)}` decreases. Equal-degree swaps preserve both
//! the degree vector and the JDM exactly.
//!
//! The distinguishing feature of the proposed method is the **candidate
//! set**: only edges *added* during construction are rewirable
//! (`Ẽ_rew = Ẽ \ E'`), so the sampled subgraph survives rewiring
//! unchanged and the attempt budget `R = R_C · |Ẽ_rew|` shrinks. Gjoka et
//! al.'s variant passes every edge as a candidate.
//!
//! Per-attempt cost is O(k̄²) on average: the swap's effect on every
//! node's triangle count `t_i` is computed incrementally from common
//! neighborhoods (never a global recount), and `D` is updated only at the
//! affected degrees.

use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{Graph, NodeId};
use sgr_props::triangles::triangle_counts_with_index;
use sgr_util::{FxHashMap, Xoshiro256pp};

/// Statistics from a rewiring run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RewireStats {
    /// Total swap attempts.
    pub attempts: u64,
    /// Accepted swaps (those that lowered `D`).
    pub accepted: u64,
    /// Attempts skipped because a swap would have created a self-loop or
    /// no valid partner edge existed.
    pub skipped: u64,
    /// `D` before the run.
    pub initial_distance: f64,
    /// `D` after the run.
    pub final_distance: f64,
}

/// The rewiring engine. Owns the graph while rewiring;
/// [`into_graph`](RewireEngine::into_graph) releases it.
pub struct RewireEngine {
    graph: Graph,
    idx: MultiplicityIndex,
    /// Per-node triangle counts `t_i` (signed for incremental updates).
    t: Vec<i64>,
    /// Node degrees (invariant under rewiring).
    deg: Vec<u32>,
    /// `n(k)` — number of nodes of each degree.
    nk: Vec<u64>,
    /// `S(k) = Σ_{deg i = k} 2 t_i / (k (k-1))`, so `c̄(k) = S(k)/n(k)`.
    s: Vec<f64>,
    /// Target `ĉ̄(k)`, zero-padded to the degree range.
    target: Vec<f64>,
    /// `Σ_k ĉ̄(k)` — the normalization of `D`.
    norm: f64,
    /// Current **unnormalized** distance `Σ_k |c̄(k) - ĉ̄(k)|`.
    dist_raw: f64,
    /// Candidate edge slots (the rewirable multiset `Ẽ_rew`).
    slots: Vec<(NodeId, NodeId)>,
    /// `buckets[k]` — (slot, side) pairs whose endpoint has degree `k`.
    buckets: Vec<Vec<(u32, u8)>>,
    /// `pos[slot][side]` — index of that (slot, side) in its bucket.
    pos: Vec<[u32; 2]>,
}

impl RewireEngine {
    /// Creates an engine over `graph` with rewirable edge multiset
    /// `candidates` (each entry one edge instance present in the graph)
    /// and target clustering `target_c` (indexed by degree).
    ///
    /// For the proposed method, `candidates` is the set of edges *added*
    /// by the construction phase; for Gjoka et al.'s method it is every
    /// edge of the graph.
    pub fn new(graph: Graph, candidates: Vec<(NodeId, NodeId)>, target_c: &[f64]) -> Self {
        let idx = MultiplicityIndex::build(&graph);
        let t: Vec<i64> = triangle_counts_with_index(&graph, &idx)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let deg: Vec<u32> = graph.nodes().map(|u| graph.degree(u) as u32).collect();
        let k_max = deg.iter().copied().max().unwrap_or(0) as usize;
        let k_cap = k_max.max(target_c.len().saturating_sub(1));
        let mut nk = vec![0u64; k_cap + 1];
        for &d in &deg {
            nk[d as usize] += 1;
        }
        let mut s = vec![0.0f64; k_cap + 1];
        for (u, &d) in deg.iter().enumerate() {
            if d >= 2 {
                s[d as usize] += 2.0 * t[u] as f64 / (d as f64 * (d as f64 - 1.0));
            }
        }
        let mut target = vec![0.0f64; k_cap + 1];
        for (k, &c) in target_c.iter().enumerate() {
            if k <= k_cap {
                target[k] = c;
            }
        }
        let norm: f64 = target.iter().sum();
        let dist_raw: f64 = (0..=k_cap)
            .map(|k| {
                let cur = if nk[k] > 0 { s[k] / nk[k] as f64 } else { 0.0 };
                (cur - target[k]).abs()
            })
            .sum();
        // Buckets over candidate endpoints.
        let mut buckets: Vec<Vec<(u32, u8)>> = vec![Vec::new(); k_cap + 1];
        let mut pos = vec![[0u32; 2]; candidates.len()];
        for (slot, &(a, b)) in candidates.iter().enumerate() {
            for (side, node) in [(0u8, a), (1u8, b)] {
                let k = deg[node as usize] as usize;
                pos[slot][side as usize] = buckets[k].len() as u32;
                buckets[k].push((slot as u32, side));
            }
        }
        Self {
            graph,
            idx,
            t,
            deg,
            nk,
            s,
            target,
            norm,
            dist_raw,
            slots: candidates,
            buckets,
            pos,
        }
    }

    /// Current normalized distance `D` (unnormalized L1 if the target has
    /// zero mass).
    pub fn distance(&self) -> f64 {
        if self.norm > 0.0 {
            self.dist_raw / self.norm
        } else {
            self.dist_raw
        }
    }

    /// Number of rewirable edge slots `|Ẽ_rew|`.
    pub fn num_candidates(&self) -> usize {
        self.slots.len()
    }

    /// Current `c̄(k)` of the evolving graph.
    pub fn current_clustering(&self) -> Vec<f64> {
        self.s
            .iter()
            .zip(self.nk.iter())
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Runs `R = ceil(rc · |Ẽ_rew|)` attempts (§IV-E; the paper uses
    /// `R_C = 500`).
    pub fn run(&mut self, rc: f64, rng: &mut Xoshiro256pp) -> RewireStats {
        let attempts = (rc * self.slots.len() as f64).ceil() as u64;
        self.run_attempts(attempts, rng)
    }

    /// Runs exactly `attempts` swap attempts.
    pub fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        let mut stats = RewireStats {
            attempts,
            initial_distance: self.distance(),
            ..Default::default()
        };
        if self.slots.len() < 2 {
            stats.skipped = attempts;
            stats.final_distance = self.distance();
            return stats;
        }
        for _ in 0..attempts {
            if self.attempt(rng) {
                stats.accepted += 1;
            } else {
                stats.skipped += 1; // rejected or structurally skipped
            }
        }
        stats.final_distance = self.distance();
        stats
    }

    /// One swap attempt; returns whether it was accepted.
    pub fn attempt(&mut self, rng: &mut Xoshiro256pp) -> bool {
        // Pick edge 1 and an orientation: (v_i, v_j).
        let e1 = rng.gen_range(self.slots.len()) as u32;
        let side1 = rng.gen_range(2) as u8;
        let (a1, b1) = self.slots[e1 as usize];
        let (vi, vj) = if side1 == 0 { (a1, b1) } else { (b1, a1) };
        // Pick edge 2 with an endpoint of equal degree.
        let k = self.deg[vi as usize] as usize;
        let bucket = &self.buckets[k];
        if bucket.len() < 2 {
            return false;
        }
        let (e2, side2) = bucket[rng.gen_range(bucket.len())];
        if e2 == e1 {
            return false;
        }
        let (a2, b2) = self.slots[e2 as usize];
        let (vi2, vj2) = if side2 == 0 { (a2, b2) } else { (b2, a2) };
        debug_assert_eq!(self.deg[vi as usize], self.deg[vi2 as usize]);
        // Proposed swap: (vi, vj), (vi2, vj2) -> (vi, vj2), (vi2, vj).
        // Reject self-loops (they would change degrees) and no-ops.
        if vi == vj2 || vi2 == vj {
            return false;
        }
        if vj == vj2 {
            return false; // swap is a no-op
        }

        // Apply the four edge toggles incrementally, tracking Δt and the
        // affected degree classes; roll back if D does not improve.
        let mut touched: FxHashMap<NodeId, i64> = FxHashMap::default();
        self.toggle_edge(vi, vj, -1, &mut touched);
        self.toggle_edge(vi2, vj2, -1, &mut touched);
        self.toggle_edge(vi, vj2, 1, &mut touched);
        self.toggle_edge(vi2, vj, 1, &mut touched);

        // Fold the triangle deltas into t and S(k).
        for (&node, &dt) in touched.iter() {
            if dt == 0 {
                continue;
            }
            let d = self.deg[node as usize] as usize;
            if d < 2 {
                continue; // degree-<2 nodes always have dt == 0 anyway
            }
            self.s[d] += 2.0 * dt as f64 / (d as f64 * (d as f64 - 1.0));
            self.t[node as usize] += dt;
        }
        // Recompute the distance terms of the affected degrees exactly
        // (several touched nodes may share a degree).
        let mut affected: Vec<usize> = touched
            .iter()
            .filter(|&(_, &dt)| dt != 0)
            .map(|(&node, _)| self.deg[node as usize] as usize)
            .filter(|&d| d >= 2)
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let mut new_raw = self.dist_raw;
        for &d in &affected {
            // Old term: recompute from S(k) *before* this attempt by
            // undoing the node deltas of this degree.
            let mut old_s = self.s[d];
            for (&node, &dt) in touched.iter() {
                if self.deg[node as usize] as usize == d && dt != 0 {
                    old_s -= 2.0 * dt as f64 / (d as f64 * (d as f64 - 1.0));
                }
            }
            let nk = self.nk[d] as f64;
            new_raw -= (old_s / nk - self.target[d]).abs();
            new_raw += (self.s[d] / nk - self.target[d]).abs();
        }

        if new_raw < self.dist_raw {
            // Accept: commit slot endpoints and bucket bookkeeping.
            self.dist_raw = new_raw;
            self.commit_swap(e1, side1, e2, side2);
            true
        } else {
            // Reject: roll back triangle counts, S(k), and the graph.
            for (&node, &dt) in touched.iter() {
                if dt == 0 {
                    continue;
                }
                let d = self.deg[node as usize] as usize;
                self.t[node as usize] -= dt;
                if d >= 2 {
                    self.s[d] -= 2.0 * dt as f64 / (d as f64 * (d as f64 - 1.0));
                }
            }
            let mut untouched: FxHashMap<NodeId, i64> = FxHashMap::default();
            self.toggle_edge(vi, vj2, -1, &mut untouched);
            self.toggle_edge(vi2, vj, -1, &mut untouched);
            self.toggle_edge(vi, vj, 1, &mut untouched);
            self.toggle_edge(vi2, vj2, 1, &mut untouched);
            false
        }
    }

    /// Adds (`sign = +1`) or removes (`-1`) one copy of edge `{u, v}`
    /// (`u ≠ v`), updating graph + index and accumulating triangle deltas
    /// into `touched`. Δt is evaluated on the *pre-toggle* adjacency for
    /// removals and post-toggle for additions, which a uniform rule
    /// captures: count common neighbors excluding the edge copy being
    /// toggled — i.e. compute on the state *without* that copy.
    fn toggle_edge(&mut self, u: NodeId, v: NodeId, sign: i64, touched: &mut FxHashMap<NodeId, i64>) {
        if u == v {
            // A self-loop slot being dissolved (or, never in practice,
            // created): loops take part in no triangle, so only the graph
            // and index change.
            if sign < 0 {
                self.graph.remove_edge(u, u);
                self.idx.remove_edge(u, u);
            } else {
                self.graph.add_edge(u, u);
                self.idx.add_edge(u, u);
            }
            return;
        }
        if sign < 0 {
            self.graph.remove_edge(u, v);
            self.idx.remove_edge(u, v);
        }
        // Common-neighbor scan on the state without the toggled copy.
        // Iterate the endpoint with fewer distinct neighbors.
        let (x, y) = {
            let du = self.idx.entries(u).count();
            let dv = self.idx.entries(v).count();
            if du <= dv {
                (u, v)
            } else {
                (v, u)
            }
        };
        let mut common = 0i64;
        // Collect to avoid holding a borrow of idx while mutating touched.
        let entries: Vec<(NodeId, u32)> = self
            .idx
            .entries(x)
            .filter(|&(w, _)| w != u && w != v)
            .collect();
        for (w, a_xw) in entries {
            let a_yw = self.idx.get(y, w);
            if a_yw > 0 {
                let prod = a_xw as i64 * a_yw as i64;
                common += prod;
                *touched.entry(w).or_insert(0) += sign * prod;
            }
        }
        *touched.entry(u).or_insert(0) += sign * common;
        *touched.entry(v).or_insert(0) += sign * common;
        if sign > 0 {
            self.graph.add_edge(u, v);
            self.idx.add_edge(u, v);
        }
    }

    /// Updates slots and degree buckets after an accepted swap: slot `e1`
    /// becomes `(v_i, v_{j'})`, slot `e2` becomes `(v_{i'}, v_j)` — i.e.
    /// the two *second* endpoints exchange slots.
    fn commit_swap(&mut self, e1: u32, side1: u8, e2: u32, side2: u8) {
        let o1 = 1 - side1; // side of vj in e1
        let o2 = 1 - side2; // side of vj' in e2
        let vj = endpoint(self.slots[e1 as usize], o1);
        let vj2 = endpoint(self.slots[e2 as usize], o2);
        set_endpoint(&mut self.slots[e1 as usize], o1, vj2);
        set_endpoint(&mut self.slots[e2 as usize], o2, vj);
        // Bucket bookkeeping: the entries (e1, o1) and (e2, o2) now refer
        // to nodes of possibly different degrees; swap their bucket
        // residency if the degrees differ.
        let k_j = self.deg[vj as usize] as usize;
        let k_j2 = self.deg[vj2 as usize] as usize;
        if k_j != k_j2 {
            let p1 = self.pos[e1 as usize][o1 as usize]; // in buckets[k_j]
            let p2 = self.pos[e2 as usize][o2 as usize]; // in buckets[k_j2]
            // (e1, o1) moves to bucket[k_j2]; (e2, o2) moves to bucket[k_j].
            self.buckets[k_j][p1 as usize] = (e2, o2);
            self.buckets[k_j2][p2 as usize] = (e1, o1);
            self.pos[e2 as usize][o2 as usize] = p1;
            self.pos[e1 as usize][o1 as usize] = p2;
        }
    }

    /// Releases the rewired graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Consistency check used by tests: recomputes every maintained
    /// quantity from scratch and compares.
    pub fn validate(&self) -> Result<(), String> {
        self.idx
            .validate_against(&self.graph)
            .map_err(|e| format!("index: {e}"))?;
        let t_fresh = triangle_counts_with_index(&self.graph, &self.idx);
        for (u, (&have, &want)) in self.t.iter().zip(t_fresh.iter()).enumerate() {
            if have != want as i64 {
                return Err(format!("t[{u}] = {have}, recount = {want}"));
            }
        }
        for (u, &d) in self.deg.iter().enumerate() {
            if self.graph.degree(u as NodeId) != d as usize {
                return Err(format!("degree of {u} changed"));
            }
        }
        // Slots must all exist in the graph.
        let mut counts: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
        for &(a, b) in &self.slots {
            let key = if a <= b { (a, b) } else { (b, a) };
            *counts.entry(key).or_insert(0) += 1;
        }
        for (&(a, b), &c) in counts.iter() {
            if self.idx.get(a, b) < c {
                return Err(format!("slot edge ({a},{b}) ×{c} missing from graph"));
            }
        }
        // Bucket positions are mutually consistent.
        for (slot, sides) in self.pos.iter().enumerate() {
            for (side, &p) in sides.iter().enumerate() {
                let node = endpoint(self.slots[slot], side as u8);
                let k = self.deg[node as usize] as usize;
                if self.buckets[k].get(p as usize) != Some(&(slot as u32, side as u8)) {
                    return Err(format!("bucket pos broken for slot {slot} side {side}"));
                }
            }
        }
        // Distance matches a fresh computation.
        let mut raw = 0.0f64;
        for k in 0..self.s.len() {
            let cur = if self.nk[k] > 0 {
                self.s[k] / self.nk[k] as f64
            } else {
                0.0
            };
            raw += (cur - self.target[k]).abs();
        }
        if (raw - self.dist_raw).abs() > 1e-6 * raw.abs().max(1.0) {
            return Err(format!("distance drift: cached {} vs fresh {raw}", self.dist_raw));
        }
        Ok(())
    }
}

#[inline]
fn endpoint(e: (NodeId, NodeId), side: u8) -> NodeId {
    if side == 0 {
        e.0
    } else {
        e.1
    }
}

#[inline]
fn set_endpoint(e: &mut (NodeId, NodeId), side: u8, node: NodeId) {
    if side == 0 {
        e.0 = node;
    } else {
        e.1 = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::joint_degree_matrix;
    use sgr_props::local::LocalProperties;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(300, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn rewiring_preserves_dv_and_jdm() {
        let g = social(1);
        let dv_before = g.degree_vector();
        let jdm_before = joint_degree_matrix(&g);
        let edges: Vec<_> = g.edges().collect();
        // Target: zero clustering everywhere (forces lots of accepted
        // swaps that destroy triangles).
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let stats = eng.run_attempts(5_000, &mut rng);
        assert!(stats.accepted > 0, "no swap accepted");
        assert!(stats.final_distance < stats.initial_distance);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        assert_eq!(g2.degree_vector(), dv_before);
        assert_eq!(joint_degree_matrix(&g2), jdm_before);
        g2.validate().unwrap();
    }

    #[test]
    fn rewiring_toward_own_clustering_is_a_fixed_point_distance_zero() {
        let g = social(3);
        let props = LocalProperties::compute(&g);
        let edges: Vec<_> = g.edges().collect();
        let eng = RewireEngine::new(g, edges, &props.clustering_by_degree);
        assert!(eng.distance() < 1e-9, "D = {}", eng.distance());
    }

    #[test]
    fn rewiring_improves_toward_foreign_target() {
        // Start from a low-clustering graph, target the clustering of a
        // high-clustering one with identical degree structure? Instead:
        // target 50% of own clustering — achievable by destroying
        // triangles.
        let g = social(4);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * 0.5)
            .collect();
        let edges: Vec<_> = g.edges().collect();
        let mut eng = RewireEngine::new(g, edges, &target);
        let d0 = eng.distance();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        eng.run_attempts(20_000, &mut rng);
        let d1 = eng.distance();
        assert!(d1 < 0.5 * d0, "D went from {d0} to {d1}");
        eng.validate().unwrap();
    }

    #[test]
    fn protected_edges_survive() {
        let g = social(6);
        // Protect the first half of the edges; only the rest rewirable.
        let all: Vec<_> = g.edges().collect();
        let (protected, candidates) = all.split_at(all.len() / 2);
        let protected: Vec<_> = protected.to_vec();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, candidates.to_vec(), &target);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        eng.run_attempts(10_000, &mut rng);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        // Every protected edge still present (as a multiset lower bound).
        let mut need: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
        for &(a, b) in &protected {
            *need.entry((a, b)).or_insert(0) += 1;
        }
        let idx = MultiplicityIndex::build(&g2);
        for (&(a, b), &c) in need.iter() {
            assert!(
                idx.get(a, b) >= c,
                "protected edge ({a},{b}) ×{c} lost (have {})",
                idx.get(a, b)
            );
        }
    }

    #[test]
    fn engine_state_stays_consistent_across_many_attempts() {
        let g = social(8);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props.clustering_by_degree.iter().map(|&c| c * 0.7).collect();
        let edges: Vec<_> = g.edges().collect();
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for round in 0..10 {
            eng.run_attempts(500, &mut rng);
            eng.validate().unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn no_candidates_is_a_noop() {
        let g = social(10);
        let before: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, Vec::new(), &target);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let stats = eng.run(500.0, &mut rng);
        assert_eq!(stats.accepted, 0);
        let g2 = eng.into_graph();
        assert_eq!(g2.edges().collect::<Vec<_>>(), before);
    }

    #[test]
    fn run_scales_attempts_by_rc() {
        let g = social(12);
        let m = g.num_edges() as u64;
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let stats = eng.run(2.0, &mut rng);
        assert_eq!(stats.attempts, 2 * m);
    }
}
