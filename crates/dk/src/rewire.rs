//! The 2.5K rewiring engine (§IV-E / Algorithm 6), built around
//! **evaluate-then-commit** swap attempts.
//!
//! Given a graph whose degree vector and joint degree matrix are already
//! correct, repeatedly pick two candidate edges `(v_i, v_j)` and
//! `(v_{i'}, v_{j'})` whose first endpoints have **equal degree**, and
//! swap them to `(v_i, v_{j'})`, `(v_{i'}, v_j)` iff the normalized L1
//! distance `D` between the current degree-dependent clustering `{c̄(k)}`
//! and the target `{ĉ̄(k)}` decreases. Equal-degree swaps preserve both
//! the degree vector and the JDM exactly.
//!
//! The distinguishing feature of the proposed method is the **candidate
//! set**: only edges *added* during construction are rewirable
//! (`Ẽ_rew = Ẽ \ E'`), so the sampled subgraph survives rewiring
//! unchanged and the attempt budget `R = R_C · |Ẽ_rew|` shrinks. Gjoka et
//! al.'s variant passes every edge as a candidate.
//!
//! # Evaluate-then-commit
//!
//! Rewiring dominates generation time (the paper's Table IV), and late in
//! a run almost every attempt is **rejected** — the distance is near its
//! floor and few swaps still improve it. An apply-rollback engine (kept in
//! [`mod@reference`] as the correctness baseline) makes every one of those
//! rejected attempts pay worst-case cost: four edge toggles applied to the
//! graph *and* the multiplicity index, two hash-map allocations, then a
//! second round of four toggles to roll everything back.
//!
//! [`RewireEngine`] instead *predicts* the swap's effect without touching
//! shared state:
//!
//! 1. **Read-only evaluation.** The four toggles (remove `(v_i, v_j)`,
//!    remove `(v_{i'}, v_{j'})`, add `(v_i, v_{j'})`, add `(v_{i'}, v_j)`)
//!    are emulated in sequence against an *effective adjacency*: `A_uv`
//!    reads combine the untouched [`MultiplicityIndex`] with a fixed-size
//!    array of at most four pending pair deltas. The interaction terms
//!    between toggles (e.g. the `A_{v_j v_{j'}}` and `A_{v_i v_{i'}}`
//!    corrections) therefore fall out arithmetically — each scan sees
//!    exactly the intermediate state the sequential reference sees, so the
//!    per-node triangle deltas `Δt_i` match the reference integer for
//!    integer.
//! 2. **Decision.** `Δt` is folded into per-degree candidate sums `S'(k)`
//!    and a predicted distance `D'` (`EngineCore::fold_decide`, shared
//!    verbatim with the reference so accept/reject decisions and the final
//!    distance are bitwise identical).
//! 3. **Commit.** Only when `D' < D` are the graph, the index, `t`,
//!    `S(k)`, and the candidate-slot bookkeeping mutated — four structural
//!    toggles with **no** common-neighbor scans, since the deltas are
//!    already known. Rejected attempts touch no shared state at all, which
//!    a debug-build mutation counter on the index asserts.
//!
//! All per-attempt working memory lives in epoch-stamped scratch arenas
//! ([`sgr_util::scratch::ScratchAccum`]) sized once at engine
//! construction, so rejected attempts perform **zero heap allocations**
//! (accepted swaps may rarely trigger an amortized index-vec growth when
//! they introduce a new distinct neighbor; everything else is in-place).
//!
//! # Per-attempt complexity
//!
//! A rejected attempt costs exactly one evaluation: four common-neighbor
//! scans, each a branchless merge-intersection over the two endpoints'
//! sorted neighbor slices
//! ([`sgr_graph::index::MultiplicityIndex::for_each_common`]) — O(d̃_u +
//! d̃_v) with no hashing or binary search in the typical
//! both-under-threshold case, falling back to O(1) hash probes against
//! hub nodes — plus an O(τ log τ) fold over the τ ≤ O(k̄) touched nodes.
//! An accepted attempt adds four scan-free structural toggles and O(1)
//! slot/bucket bookkeeping. The apply-rollback reference pays an
//! iterate-and-probe evaluation *plus* eight mutating toggles (four of
//! them pure waste on rejection) and two hash maps' worth of allocation
//! per attempt.
//!
//! # Determinism model
//!
//! Three engines produce **bitwise-identical** results for the same seed:
//! the apply-rollback reference, the sequential [`RewireEngine`], and the
//! sharded [`parallel::ParallelRewireEngine`] at every thread count.
//! The contract rests on three pillars:
//!
//! 1. **One RNG stream, drawn in attempt order.** Every candidate pick
//!    flows through `EngineCore::pick_swap` against the current
//!    committed state; no engine consumes draws any other engine would
//!    not.
//! 2. **Integer evaluation.** A swap's effect is a set of per-node
//!    triangle deltas `Δt_i` — exact `i64`s, so the *order* in which a
//!    scan discovers common neighbors is irrelevant. Engines are free to
//!    iterate, merge-intersect, or farm scans out to worker threads; the
//!    node-sorted `(node, Δt)` list that feeds the decision is identical.
//! 3. **One float fold.** Only `EngineCore::fold_decide` touches floating
//!    point, always executed on the coordinating thread with node-sorted
//!    input, so accept/reject decisions — and therefore the distance
//!    trajectory — are bit-for-bit reproducible.
//!
//! The parallel engine adds **draw-order commit with conflict replay** on
//! top: a coordinator pre-draws a block of picks, workers evaluate them
//! read-only against the block-start snapshot, and commits happen
//! strictly in draw order. The first in-block commit invalidates the
//! speculative RNG tail, so the coordinator re-draws subsequent picks
//! from a per-pick checkpoint; a speculative evaluation is reused only
//! when the replayed pick is identical *and* none of its four endpoints
//! is in the stamped dirty-node set of already-committed swaps.
//!
//! **Why ownership sharding preserves the stream.** The sharded engine
//! routes each pick to the one worker owning its degree class
//! ([`shard::ShardPartitioner`]), so sharding decides only *which thread
//! computes* a pick's integer `Δt` list — never which picks exist, in
//! what order they are decided, or what they evaluate to. The picks
//! themselves come from the single sequential RNG stream drawn by the
//! coordinator (pillar 1); the owned evaluation is the same exact
//! integer computation regardless of worker (pillar 2); and the commit
//! scan walks the block strictly in draw order on the coordinator,
//! fetching each pick's result from its owner's buffer and running the
//! one float fold there (pillar 3). The ownership map is itself a pure
//! function of the degree-bucket lengths — invariant under commits — so
//! it cannot drift mid-run and introduce routing-dependent behavior.
//! Cross-shard conflicts (a commit dirtying endpoints another shard's
//! pick reads) are detected exactly as before and repaired by inline
//! re-evaluation, which is equality with re-execution, not an
//! approximation (see [`mod@parallel`] for the full argument).

use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{Graph, NodeId};
use sgr_props::triangles::triangle_counts_with_index;
use sgr_util::scratch::ScratchAccum;
use sgr_util::{FxHashMap, Xoshiro256pp};

pub mod parallel;
pub mod reference;
pub mod shard;

/// Statistics from a rewiring run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RewireStats {
    /// Total swap attempts.
    pub attempts: u64,
    /// Accepted swaps (those that lowered `D`).
    pub accepted: u64,
    /// Attempts skipped because a swap would have created a self-loop or
    /// no valid partner edge existed.
    pub skipped: u64,
    /// `D` before the run.
    pub initial_distance: f64,
    /// `D` after the run.
    pub final_distance: f64,
}

/// One picked (and structurally valid) swap: slots `e1`/`e2` with the
/// chosen orientations, and the four endpoint nodes.
///
/// `PartialEq` is how the parallel engine validates a speculative pick
/// after an in-block commit: the pick is re-drawn from its RNG checkpoint
/// against the updated state and compared field-for-field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SwapPick {
    e1: u32,
    side1: u8,
    e2: u32,
    side2: u8,
    vi: NodeId,
    vj: NodeId,
    vi2: NodeId,
    vj2: NodeId,
}

/// State shared by the evaluate-then-commit engine and the apply-rollback
/// reference: the evolving graph, its multiplicity index, cached triangle
/// counts and clustering sums, and the candidate-slot bookkeeping.
///
/// Every routine that influences an accept/reject decision lives here and
/// is executed by both engines with identical RNG-draw order and float
/// operation order, which is what makes the two bitwise-equivalent.
pub(crate) struct EngineCore {
    pub(crate) graph: Graph,
    pub(crate) idx: MultiplicityIndex,
    /// Per-node triangle counts `t_i` (signed for incremental updates).
    pub(crate) t: Vec<i64>,
    /// Node degrees (invariant under rewiring).
    pub(crate) deg: Vec<u32>,
    /// `n(k)` — number of nodes of each degree.
    pub(crate) nk: Vec<u64>,
    /// `S(k) = Σ_{deg i = k} 2 t_i / (k (k-1))`, so `c̄(k) = S(k)/n(k)`.
    pub(crate) s: Vec<f64>,
    /// Target `ĉ̄(k)`, zero-padded to the degree range.
    pub(crate) target: Vec<f64>,
    /// `Σ_k ĉ̄(k)` — the normalization of `D`.
    pub(crate) norm: f64,
    /// Current **unnormalized** distance `Σ_k |c̄(k) - ĉ̄(k)|`.
    pub(crate) dist_raw: f64,
    /// Candidate edge slots (the rewirable multiset `Ẽ_rew`).
    pub(crate) slots: Vec<(NodeId, NodeId)>,
    /// `buckets[k]` — (slot, side) pairs whose endpoint has degree `k`.
    pub(crate) buckets: Vec<Vec<(u32, u8)>>,
    /// `pos[slot][side]` — index of that (slot, side) in its bucket.
    pub(crate) pos: Vec<[u32; 2]>,
}

impl EngineCore {
    pub(crate) fn new(graph: Graph, candidates: Vec<(NodeId, NodeId)>, target_c: &[f64]) -> Self {
        let idx = MultiplicityIndex::build(&graph);
        let t: Vec<i64> = triangle_counts_with_index(&graph, &idx)
            .into_iter()
            .map(|x| x as i64)
            .collect();
        let deg: Vec<u32> = graph.nodes().map(|u| graph.degree(u) as u32).collect();
        let k_max = deg.iter().copied().max().unwrap_or(0) as usize;
        let k_cap = k_max.max(target_c.len().saturating_sub(1));
        let mut nk = vec![0u64; k_cap + 1];
        for &d in &deg {
            nk[d as usize] += 1;
        }
        let mut s = vec![0.0f64; k_cap + 1];
        for (u, &d) in deg.iter().enumerate() {
            if d >= 2 {
                s[d as usize] += 2.0 * t[u] as f64 / (d as f64 * (d as f64 - 1.0));
            }
        }
        let mut target = vec![0.0f64; k_cap + 1];
        for (k, &c) in target_c.iter().enumerate() {
            if k <= k_cap {
                target[k] = c;
            }
        }
        let norm: f64 = target.iter().sum();
        let dist_raw: f64 = (0..=k_cap)
            .map(|k| {
                let cur = if nk[k] > 0 { s[k] / nk[k] as f64 } else { 0.0 };
                (cur - target[k]).abs()
            })
            .sum();
        // Buckets over candidate endpoints.
        let mut buckets: Vec<Vec<(u32, u8)>> = vec![Vec::new(); k_cap + 1];
        let mut pos = vec![[0u32; 2]; candidates.len()];
        for (slot, &(a, b)) in candidates.iter().enumerate() {
            for (side, node) in [(0u8, a), (1u8, b)] {
                let k = deg[node as usize] as usize;
                pos[slot][side as usize] = buckets[k].len() as u32;
                buckets[k].push((slot as u32, side));
            }
        }
        Self {
            graph,
            idx,
            t,
            deg,
            nk,
            s,
            target,
            norm,
            dist_raw,
            slots: candidates,
            buckets,
            pos,
        }
    }

    pub(crate) fn distance(&self) -> f64 {
        if self.norm > 0.0 {
            self.dist_raw / self.norm
        } else {
            self.dist_raw
        }
    }

    pub(crate) fn current_clustering(&self) -> Vec<f64> {
        self.s
            .iter()
            .zip(self.nk.iter())
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Draws a candidate swap. `None` means the attempt is structurally
    /// skipped (no equal-degree partner, identical slot, would create a
    /// self-loop, or is a no-op). The RNG-draw order here defines the
    /// shared random stream of both engine implementations.
    pub(crate) fn pick_swap(&self, rng: &mut Xoshiro256pp) -> Option<SwapPick> {
        // Pick edge 1 and an orientation: (v_i, v_j).
        let e1 = rng.gen_range(self.slots.len()) as u32;
        let side1 = rng.gen_range(2) as u8;
        let (a1, b1) = self.slots[e1 as usize];
        let (vi, vj) = if side1 == 0 { (a1, b1) } else { (b1, a1) };
        // Pick edge 2 with an endpoint of equal degree.
        let k = self.deg[vi as usize] as usize;
        let bucket = &self.buckets[k];
        if bucket.len() < 2 {
            return None;
        }
        let (e2, side2) = bucket[rng.gen_range(bucket.len())];
        if e2 == e1 {
            return None;
        }
        let (a2, b2) = self.slots[e2 as usize];
        let (vi2, vj2) = if side2 == 0 { (a2, b2) } else { (b2, a2) };
        debug_assert_eq!(self.deg[vi as usize], self.deg[vi2 as usize]);
        // Proposed swap: (vi, vj), (vi2, vj2) -> (vi, vj2), (vi2, vj).
        // Reject self-loops (they would change degrees) and no-ops.
        if vi == vj2 || vi2 == vj {
            return None;
        }
        if vj == vj2 {
            return None; // swap is a no-op
        }
        Some(SwapPick {
            e1,
            side1,
            e2,
            side2,
            vi,
            vj,
            vi2,
            vj2,
        })
    }

    /// Folds sorted per-node triangle deltas into predicted per-degree
    /// sums `S'(k)` (written into `new_s`) and returns the predicted
    /// unnormalized distance `D'`.
    ///
    /// Both engine implementations route their decision through this one
    /// function with node-sorted input, so the floating-point operation
    /// order — and therefore every accept/reject decision and the final
    /// distance — is identical between them.
    pub(crate) fn fold_decide(
        &self,
        touched: &[(NodeId, i64)],
        new_s: &mut ScratchAccum<f64>,
    ) -> f64 {
        new_s.begin();
        for &(node, dt) in touched {
            if dt == 0 {
                continue;
            }
            let d = self.deg[node as usize] as usize;
            if d < 2 {
                continue; // degree-<2 nodes always have dt == 0 anyway
            }
            *new_s.entry_or(d as u32, self.s[d]) += 2.0 * dt as f64 / (d as f64 * (d as f64 - 1.0));
        }
        // Recompute the distance terms of the affected degrees exactly
        // (several touched nodes may share a degree).
        new_s.sort_touched();
        let mut new_raw = self.dist_raw;
        for i in 0..new_s.touched().len() {
            let d = new_s.touched()[i] as usize;
            let nk = self.nk[d] as f64;
            new_raw -= (self.s[d] / nk - self.target[d]).abs();
            new_raw += (new_s.get(d as u32) / nk - self.target[d]).abs();
        }
        new_raw
    }

    /// Commits an accepted decision's cached quantities: per-node triangle
    /// counts from `touched`, per-degree sums from `new_s`, and the new
    /// distance.
    pub(crate) fn commit_decision(
        &mut self,
        touched: &[(NodeId, i64)],
        new_s: &ScratchAccum<f64>,
        new_raw: f64,
    ) {
        for &(node, dt) in touched {
            if dt != 0 {
                self.t[node as usize] += dt;
            }
        }
        for &d in new_s.touched() {
            self.s[d as usize] = new_s.get(d);
        }
        self.dist_raw = new_raw;
    }

    /// Updates slots and degree buckets after an accepted swap: slot `e1`
    /// becomes `(v_i, v_{j'})`, slot `e2` becomes `(v_{i'}, v_j)` — i.e.
    /// the two *second* endpoints exchange slots.
    pub(crate) fn commit_slot_swap(&mut self, p: &SwapPick) {
        let o1 = 1 - p.side1; // side of vj in e1
        let o2 = 1 - p.side2; // side of vj' in e2
        let vj = endpoint(self.slots[p.e1 as usize], o1);
        let vj2 = endpoint(self.slots[p.e2 as usize], o2);
        set_endpoint(&mut self.slots[p.e1 as usize], o1, vj2);
        set_endpoint(&mut self.slots[p.e2 as usize], o2, vj);
        // Bucket bookkeeping: the entries (e1, o1) and (e2, o2) now refer
        // to nodes of possibly different degrees; swap their bucket
        // residency if the degrees differ.
        let k_j = self.deg[vj as usize] as usize;
        let k_j2 = self.deg[vj2 as usize] as usize;
        if k_j != k_j2 {
            let p1 = self.pos[p.e1 as usize][o1 as usize]; // in buckets[k_j]
            let p2 = self.pos[p.e2 as usize][o2 as usize]; // in buckets[k_j2]
                                                           // (e1, o1) moves to bucket[k_j2]; (e2, o2) moves to bucket[k_j].
            self.buckets[k_j][p1 as usize] = (p.e2, o2);
            self.buckets[k_j2][p2 as usize] = (p.e1, o1);
            self.pos[p.e2 as usize][o2 as usize] = p1;
            self.pos[p.e1 as usize][o1 as usize] = p2;
        }
    }

    /// Overwrites the incrementally-maintained float state with exact bit
    /// patterns captured from a running engine.
    ///
    /// `EngineCore::new` recomputes `S(k)` and the unnormalized distance
    /// *fresh* from integer triangle counts; a live engine maintains them
    /// *incrementally*, so after many accepted swaps the two can differ in
    /// final ULPs. A resumed engine must continue with the incrementally-
    /// maintained values or its accept/reject trajectory could diverge
    /// from the uninterrupted run — checkpoints therefore serialize the
    /// raw `f64` bit patterns and inject them here after reconstruction.
    pub(crate) fn restore_float_state(&mut self, s: &[f64], dist_raw: f64) -> Result<(), String> {
        if s.len() != self.s.len() {
            return Err(format!(
                "clustering-sum length mismatch: checkpoint has {}, engine expects {}",
                s.len(),
                self.s.len()
            ));
        }
        self.s.copy_from_slice(s);
        self.dist_raw = dist_raw;
        Ok(())
    }

    /// Clones the degree-bucket arrays for checkpointing.
    ///
    /// Bucket *membership* is recomputable from (slots, degrees), but the
    /// order of entries within a bucket is not: `commit_slot_swap` moves
    /// entries between buckets in place, and `pick_swap`'s partner draw
    /// indexes into a bucket — so the within-bucket order is part of the
    /// resume-fidelity state.
    pub(crate) fn bucket_state(&self) -> Vec<Vec<(u32, u8)>> {
        self.buckets.clone()
    }

    /// Replaces the freshly constructed degree buckets with a checkpointed
    /// ordering, validating consistency with the current slots/degrees and
    /// rebuilding the position index.
    pub(crate) fn restore_bucket_state(
        &mut self,
        buckets: Vec<Vec<(u32, u8)>>,
    ) -> Result<(), String> {
        if buckets.len() != self.buckets.len() {
            return Err(format!(
                "bucket count mismatch: checkpoint has {}, engine expects {}",
                buckets.len(),
                self.buckets.len()
            ));
        }
        let mut seen = vec![[false; 2]; self.slots.len()];
        let mut total = 0usize;
        for (k, bucket) in buckets.iter().enumerate() {
            for &(slot, side) in bucket {
                let (slot_us, side_us) = (slot as usize, side as usize);
                if slot_us >= self.slots.len() || side_us >= 2 {
                    return Err(format!("bucket entry ({slot}, {side}) out of range"));
                }
                if std::mem::replace(&mut seen[slot_us][side_us], true) {
                    return Err(format!("duplicate bucket entry ({slot}, {side})"));
                }
                let node = endpoint(self.slots[slot_us], side);
                if self.deg[node as usize] as usize != k {
                    return Err(format!(
                        "bucket entry ({slot}, {side}) has degree {} but sits in bucket {k}",
                        self.deg[node as usize]
                    ));
                }
                total += 1;
            }
        }
        if total != 2 * self.slots.len() {
            return Err(format!(
                "bucket entry count {total} != {}",
                2 * self.slots.len()
            ));
        }
        for bucket in &buckets {
            for (i, &(slot, side)) in bucket.iter().enumerate() {
                self.pos[slot as usize][side as usize] = i as u32;
            }
        }
        self.buckets = buckets;
        Ok(())
    }

    /// Consistency check used by tests: recomputes every maintained
    /// quantity from scratch and compares.
    pub(crate) fn validate(&self) -> Result<(), String> {
        self.idx
            .validate_against(&self.graph)
            .map_err(|e| format!("index: {e}"))?;
        let t_fresh = triangle_counts_with_index(&self.graph, &self.idx);
        for (u, (&have, &want)) in self.t.iter().zip(t_fresh.iter()).enumerate() {
            if have != want as i64 {
                return Err(format!("t[{u}] = {have}, recount = {want}"));
            }
        }
        for (u, &d) in self.deg.iter().enumerate() {
            if self.graph.degree(u as NodeId) != d as usize {
                return Err(format!("degree of {u} changed"));
            }
        }
        // Slots must all exist in the graph.
        let mut counts: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
        for &(a, b) in &self.slots {
            let key = if a <= b { (a, b) } else { (b, a) };
            *counts.entry(key).or_insert(0) += 1;
        }
        for (&(a, b), &c) in counts.iter() {
            if self.idx.get(a, b) < c {
                return Err(format!("slot edge ({a},{b}) ×{c} missing from graph"));
            }
        }
        // Bucket positions are mutually consistent.
        for (slot, sides) in self.pos.iter().enumerate() {
            for (side, &p) in sides.iter().enumerate() {
                let node = endpoint(self.slots[slot], side as u8);
                let k = self.deg[node as usize] as usize;
                if self.buckets[k].get(p as usize) != Some(&(slot as u32, side as u8)) {
                    return Err(format!("bucket pos broken for slot {slot} side {side}"));
                }
            }
        }
        // Distance matches a fresh computation.
        let mut raw = 0.0f64;
        for k in 0..self.s.len() {
            let cur = if self.nk[k] > 0 {
                self.s[k] / self.nk[k] as f64
            } else {
                0.0
            };
            raw += (cur - self.target[k]).abs();
        }
        if (raw - self.dist_raw).abs() > 1e-6 * raw.abs().max(1.0) {
            return Err(format!(
                "distance drift: cached {} vs fresh {raw}",
                self.dist_raw
            ));
        }
        Ok(())
    }
}

/// Fixed-capacity record of the evaluation's pending edge-multiplicity
/// changes: at most the four unordered pairs a swap can touch. Reads cost
/// a ≤4-element linear probe; no heap.
#[derive(Clone, Copy, Debug, Default)]
struct PendingDeltas {
    pairs: [((NodeId, NodeId), i32); 4],
    len: usize,
}

impl PendingDeltas {
    #[inline]
    fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    #[inline]
    fn add(&mut self, u: NodeId, v: NodeId, delta: i32) {
        let k = Self::key(u, v);
        for i in 0..self.len {
            if self.pairs[i].0 == k {
                self.pairs[i].1 += delta;
                return;
            }
        }
        debug_assert!(self.len < 4, "a swap touches at most four pairs");
        self.pairs[self.len] = (k, delta);
        self.len += 1;
    }

    #[inline]
    fn delta(&self, u: NodeId, v: NodeId) -> i32 {
        let k = Self::key(u, v);
        for i in 0..self.len {
            if self.pairs[i].0 == k {
                return self.pairs[i].1;
            }
        }
        0
    }
}

/// The evaluate-then-commit rewiring engine. Owns the graph while
/// rewiring; [`into_graph`](RewireEngine::into_graph) releases it.
///
/// See the module docs for the design; the apply-rollback baseline lives
/// in [`reference::ApplyRollbackEngine`] and is bitwise-equivalent in
/// decisions, final edge multiset, and final distance.
pub struct RewireEngine {
    core: EngineCore,
    /// Per-node triangle deltas of the attempt under evaluation.
    scratch_t: ScratchAccum<i64>,
    /// Predicted per-degree sums `S'(k)` of the attempt under evaluation.
    scratch_s: ScratchAccum<f64>,
    /// Node-sorted `(node, Δt)` pairs (reused across attempts).
    pairs: Vec<(NodeId, i64)>,
}

impl RewireEngine {
    /// Creates an engine over `graph` with rewirable edge multiset
    /// `candidates` (each entry one edge instance present in the graph)
    /// and target clustering `target_c` (indexed by degree).
    ///
    /// For the proposed method, `candidates` is the set of edges *added*
    /// by the construction phase; for Gjoka et al.'s method it is every
    /// edge of the graph.
    pub fn new(graph: Graph, candidates: Vec<(NodeId, NodeId)>, target_c: &[f64]) -> Self {
        let core = EngineCore::new(graph, candidates, target_c);
        let n = core.graph.num_nodes();
        let degrees = core.s.len();
        Self {
            core,
            scratch_t: ScratchAccum::with_keys(n),
            scratch_s: ScratchAccum::with_keys(degrees),
            pairs: Vec::with_capacity(n),
        }
    }

    /// Current normalized distance `D` (unnormalized L1 if the target has
    /// zero mass).
    pub fn distance(&self) -> f64 {
        self.core.distance()
    }

    /// Number of rewirable edge slots `|Ẽ_rew|`.
    pub fn num_candidates(&self) -> usize {
        self.core.slots.len()
    }

    /// Current `c̄(k)` of the evolving graph.
    pub fn current_clustering(&self) -> Vec<f64> {
        self.core.current_clustering()
    }

    /// Runs `R = ceil(rc · |Ẽ_rew|)` attempts (§IV-E; the paper uses
    /// `R_C = 500`).
    pub fn run(&mut self, rc: f64, rng: &mut Xoshiro256pp) -> RewireStats {
        let attempts = (rc * self.core.slots.len() as f64).ceil() as u64;
        self.run_attempts(attempts, rng)
    }

    /// Runs exactly `attempts` swap attempts.
    pub fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        let mut stats = RewireStats {
            attempts,
            initial_distance: self.distance(),
            ..Default::default()
        };
        if self.core.slots.len() < 2 {
            stats.skipped = attempts;
            stats.final_distance = self.distance();
            return stats;
        }
        for _ in 0..attempts {
            if self.attempt(rng) {
                stats.accepted += 1;
            } else {
                stats.skipped += 1; // rejected or structurally skipped
            }
        }
        stats.final_distance = self.distance();
        stats
    }

    /// One swap attempt; returns whether it was accepted. Rejected
    /// attempts perform no graph/index/cache mutations and no heap
    /// allocations.
    pub fn attempt(&mut self, rng: &mut Xoshiro256pp) -> bool {
        let mutations_before = self.core.idx.mutation_count();
        let Some(pick) = self.core.pick_swap(rng) else {
            return false;
        };

        // --- Evaluate: predict every Δt_i by read-only scans.
        evaluate_swap(&self.core, &pick, &mut self.scratch_t, &mut self.pairs);

        // --- Decide: fold node-sorted deltas into a predicted distance.
        let new_raw = self.core.fold_decide(&self.pairs, &mut self.scratch_s);

        if new_raw < self.core.dist_raw {
            // --- Commit: structural toggles (scan-free) + cached state.
            self.core
                .commit_decision(&self.pairs, &self.scratch_s, new_raw);
            apply_structural(&mut self.core, pick.vi, pick.vj, -1);
            apply_structural(&mut self.core, pick.vi2, pick.vj2, -1);
            apply_structural(&mut self.core, pick.vi, pick.vj2, 1);
            apply_structural(&mut self.core, pick.vi2, pick.vj, 1);
            self.core.commit_slot_swap(&pick);
            true
        } else {
            // Rejected: nothing was mutated — assert it.
            debug_assert_eq!(self.core.idx.mutation_count(), mutations_before);
            false
        }
    }

    /// Releases the rewired graph.
    pub fn into_graph(self) -> Graph {
        self.core.graph
    }

    /// The evolving graph (checkpoint serialization reads the adjacency
    /// lists in place).
    pub fn graph(&self) -> &Graph {
        &self.core.graph
    }

    /// The candidate slots `Ẽ_rew` in their current (mutated-by-swaps)
    /// state; together with the graph and target this is the engine's
    /// complete integer state.
    pub fn slots(&self) -> &[(NodeId, NodeId)] {
        &self.core.slots
    }

    /// The incrementally-maintained per-degree clustering sums `S(k)`;
    /// checkpoints store their exact bit patterns (see
    /// [`restore_float_state`](Self::restore_float_state)).
    pub fn clustering_sums(&self) -> &[f64] {
        &self.core.s
    }

    /// The incrementally-maintained unnormalized distance.
    pub fn dist_raw(&self) -> f64 {
        self.core.dist_raw
    }

    /// Injects checkpointed float state into a freshly reconstructed
    /// engine so resumed runs continue bitwise-identically; errors on a
    /// length mismatch (wrong graph/target for this checkpoint).
    pub fn restore_float_state(&mut self, s: &[f64], dist_raw: f64) -> Result<(), String> {
        self.core.restore_float_state(s, dist_raw)
    }

    /// The degree-bucket arrays (`buckets[k]` lists the candidate
    /// (slot, side) pairs whose endpoint has degree `k`). Within-bucket
    /// *order* is mutated by accepted swaps and consumed by the partner
    /// draw, so it is part of the resume-fidelity state.
    pub fn bucket_state(&self) -> Vec<Vec<(u32, u8)>> {
        self.core.bucket_state()
    }

    /// Injects a checkpointed bucket ordering into a freshly
    /// reconstructed engine; errors if it is inconsistent with the
    /// current slots and degrees.
    pub fn restore_bucket_state(&mut self, buckets: Vec<Vec<(u32, u8)>>) -> Result<(), String> {
        self.core.restore_bucket_state(buckets)
    }

    /// Consistency check used by tests: recomputes every maintained
    /// quantity from scratch and compares.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()
    }
}

/// Evaluates `pick` **read-only** against `core`: emulates the four edge
/// toggles, accumulating per-node triangle deltas into `scratch_t`, and
/// leaves the node-sorted `(node, Δt)` list in `pairs`, ready for
/// `EngineCore::fold_decide`.
///
/// Shared verbatim by the sequential engine and the parallel engine's
/// workers — evaluation touches no engine state beyond the two scratch
/// buffers, so any thread holding `&EngineCore` can run it.
pub(crate) fn evaluate_swap(
    core: &EngineCore,
    pick: &SwapPick,
    scratch_t: &mut ScratchAccum<i64>,
    pairs: &mut Vec<(NodeId, i64)>,
) {
    scratch_t.begin();
    let mut pending = PendingDeltas::default();
    let specials = [pick.vi, pick.vj, pick.vi2, pick.vj2];
    eval_toggle(
        core,
        scratch_t,
        pick.vi,
        pick.vj,
        -1,
        &mut pending,
        &specials,
    );
    eval_toggle(
        core,
        scratch_t,
        pick.vi2,
        pick.vj2,
        -1,
        &mut pending,
        &specials,
    );
    eval_toggle(
        core,
        scratch_t,
        pick.vi,
        pick.vj2,
        1,
        &mut pending,
        &specials,
    );
    eval_toggle(
        core,
        scratch_t,
        pick.vi2,
        pick.vj,
        1,
        &mut pending,
        &specials,
    );
    scratch_t.sort_touched();
    pairs.clear();
    for i in 0..scratch_t.touched().len() {
        let node = scratch_t.touched()[i];
        pairs.push((node, scratch_t.get(node)));
    }
}

/// Emulates one edge toggle (`sign = ±1` copy of `{u, v}`) against the
/// effective adjacency (index ⊕ pending deltas), accumulating triangle
/// deltas into `scratch_t`. Mirrors the reference's mutating
/// `toggle_edge` exactly: removals are scanned on the state *without*
/// the removed copy, additions likewise.
///
/// Pending deltas only ever involve the swap's four endpoints, so the
/// scan splits into a **fast path** — the branchless merge-intersection
/// of the two raw neighbor slices
/// ([`MultiplicityIndex::for_each_common`]), which needs no pending
/// probes at all — and a ≤2-node **special path** for the endpoints not
/// on this edge, probed under the effective adjacency on both sides
/// (covering neighbors that exist only as pending additions). Every
/// contribution is an exact integer, so the split changes nothing about
/// the resulting deltas.
fn eval_toggle(
    core: &EngineCore,
    scratch_t: &mut ScratchAccum<i64>,
    u: NodeId,
    v: NodeId,
    sign: i64,
    pending: &mut PendingDeltas,
    specials: &[NodeId; 4],
) {
    if u == v {
        // A self-loop slot being dissolved (or, never in practice,
        // created): loops take part in no triangle.
        pending.add(u, u, if sign < 0 { -2 } else { 2 });
        return;
    }
    if sign < 0 {
        pending.add(u, v, -1);
    }
    // The swap's endpoints not on this edge — the only nodes whose
    // adjacency to u/v can be shifted by pending deltas.
    let mut o = [u; 2];
    let mut no = 0usize;
    for &s in specials {
        if s != u && s != v && !o[..no].contains(&s) {
            o[no] = s;
            no += 1;
        }
    }
    let (o0, o1) = (o[0], o[no.min(1)]);
    let mut common = 0i64;
    // Fast path: raw common neighbors of u and v, excluding the toggled
    // pair itself and the special nodes (handled below).
    core.idx.for_each_common(u, v, |w, a_uw, a_vw| {
        if w == u || w == v || w == o0 || w == o1 {
            return;
        }
        let prod = a_uw as i64 * a_vw as i64;
        common += prod;
        scratch_t.add(w, sign * prod);
    });
    // Special path: effective adjacency (raw ⊕ pending) on both sides.
    for &w in &o[..no] {
        let a_uw = core.idx.get(u, w) as i64 + pending.delta(u, w) as i64;
        if a_uw <= 0 {
            continue;
        }
        let a_vw = core.idx.get(v, w) as i64 + pending.delta(v, w) as i64;
        if a_vw <= 0 {
            continue;
        }
        let prod = a_uw * a_vw;
        common += prod;
        scratch_t.add(w, sign * prod);
    }
    scratch_t.add(u, sign * common);
    scratch_t.add(v, sign * common);
    if sign > 0 {
        pending.add(u, v, 1);
    }
}

/// Applies one structural edge toggle to graph + index, with no triangle
/// bookkeeping (the deltas were already evaluated).
fn apply_structural(core: &mut EngineCore, u: NodeId, v: NodeId, sign: i64) {
    if sign < 0 {
        core.graph.remove_edge(u, v);
        core.idx.remove_edge(u, v);
    } else {
        core.graph.add_edge(u, v);
        core.idx.add_edge(u, v);
    }
}

#[inline]
fn endpoint(e: (NodeId, NodeId), side: u8) -> NodeId {
    if side == 0 {
        e.0
    } else {
        e.1
    }
}

#[inline]
fn set_endpoint(e: &mut (NodeId, NodeId), side: u8, node: NodeId) {
    if side == 0 {
        e.0 = node;
    } else {
        e.1 = node;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::joint_degree_matrix;
    use sgr_props::local::LocalProperties;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(300, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn rewiring_preserves_dv_and_jdm() {
        let g = social(1);
        let dv_before = g.degree_vector();
        let jdm_before = joint_degree_matrix(&g);
        let edges: Vec<_> = g.edges().collect();
        // Target: zero clustering everywhere (forces lots of accepted
        // swaps that destroy triangles).
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let stats = eng.run_attempts(5_000, &mut rng);
        assert!(stats.accepted > 0, "no swap accepted");
        assert!(stats.final_distance < stats.initial_distance);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        assert_eq!(g2.degree_vector(), dv_before);
        assert_eq!(joint_degree_matrix(&g2), jdm_before);
        g2.validate().unwrap();
    }

    #[test]
    fn rewiring_toward_own_clustering_is_a_fixed_point_distance_zero() {
        let g = social(3);
        let props = LocalProperties::compute(&g);
        let edges: Vec<_> = g.edges().collect();
        let eng = RewireEngine::new(g, edges, &props.clustering_by_degree);
        assert!(eng.distance() < 1e-9, "D = {}", eng.distance());
    }

    #[test]
    fn rewiring_improves_toward_foreign_target() {
        // Target 50% of own clustering — achievable by destroying
        // triangles.
        let g = social(4);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * 0.5)
            .collect();
        let edges: Vec<_> = g.edges().collect();
        let mut eng = RewireEngine::new(g, edges, &target);
        let d0 = eng.distance();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        eng.run_attempts(20_000, &mut rng);
        let d1 = eng.distance();
        assert!(d1 < 0.5 * d0, "D went from {d0} to {d1}");
        eng.validate().unwrap();
    }

    #[test]
    fn protected_edges_survive() {
        let g = social(6);
        // Protect the first half of the edges; only the rest rewirable.
        let all: Vec<_> = g.edges().collect();
        let (protected, candidates) = all.split_at(all.len() / 2);
        let protected: Vec<_> = protected.to_vec();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, candidates.to_vec(), &target);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        eng.run_attempts(10_000, &mut rng);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        // Every protected edge still present (as a multiset lower bound).
        let mut need: FxHashMap<(NodeId, NodeId), u32> = FxHashMap::default();
        for &(a, b) in &protected {
            *need.entry((a, b)).or_insert(0) += 1;
        }
        let idx = MultiplicityIndex::build(&g2);
        for (&(a, b), &c) in need.iter() {
            assert!(
                idx.get(a, b) >= c,
                "protected edge ({a},{b}) ×{c} lost (have {})",
                idx.get(a, b)
            );
        }
    }

    #[test]
    fn engine_state_stays_consistent_across_many_attempts() {
        let g = social(8);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * 0.7)
            .collect();
        let edges: Vec<_> = g.edges().collect();
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for round in 0..10 {
            eng.run_attempts(500, &mut rng);
            eng.validate()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn no_candidates_is_a_noop() {
        let g = social(10);
        let before: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, Vec::new(), &target);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let stats = eng.run(500.0, &mut rng);
        assert_eq!(stats.accepted, 0);
        let g2 = eng.into_graph();
        assert_eq!(g2.edges().collect::<Vec<_>>(), before);
    }

    #[test]
    fn run_scales_attempts_by_rc() {
        let g = social(12);
        let m = g.num_edges() as u64;
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let stats = eng.run(2.0, &mut rng);
        assert_eq!(stats.attempts, 2 * m);
    }

    /// Reconstructing an engine from its serializable state mid-run —
    /// graph adjacency (order-preserving), slots, and the float state's
    /// exact bit patterns — continues the run bitwise-identically. This is
    /// the fidelity contract the crash-safe checkpoints in `sgr-core`
    /// build on.
    #[test]
    fn snapshot_and_resume_is_bitwise_identical() {
        let g = social(16);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * 0.4)
            .collect();
        let edges: Vec<_> = g.edges().collect();

        // Uninterrupted run.
        let mut full = RewireEngine::new(g.clone(), edges.clone(), &target);
        let mut rng_full = Xoshiro256pp::seed_from_u64(17);
        let full_stats = full.run_attempts(6_000, &mut rng_full);
        assert!(full_stats.accepted > 0);

        // Interrupted run: stop after 2_500 attempts, capture state…
        let mut first = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        first.run_attempts(2_500, &mut rng);
        let adj: Vec<Vec<NodeId>> = first
            .graph()
            .nodes()
            .map(|u| first.graph().neighbors(u).to_vec())
            .collect();
        let slots = first.slots().to_vec();
        let s = first.clustering_sums().to_vec();
        let dist_raw = first.dist_raw();
        let buckets = first.bucket_state();
        let rng_state = rng.state();
        drop(first); // …the "crash"

        // …and resume from the captured state only.
        let graph = Graph::from_adjacency(adj).unwrap();
        let mut resumed = RewireEngine::new(graph, slots, &target);
        resumed.restore_float_state(&s, dist_raw).unwrap();
        resumed.restore_bucket_state(buckets).unwrap();
        let mut rng = Xoshiro256pp::from_state(rng_state);
        resumed.run_attempts(3_500, &mut rng);
        resumed.validate().unwrap();

        assert_eq!(full.distance().to_bits(), resumed.distance().to_bits());
        let mut a: Vec<_> = full.into_graph().edges().collect();
        let mut b: Vec<_> = resumed.into_graph().edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "edge multisets diverged after resume");
    }

    #[test]
    fn restore_float_state_rejects_length_mismatch() {
        let g = social(18);
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let wrong = vec![0.0; eng.clustering_sums().len() + 1];
        assert!(eng.restore_float_state(&wrong, 0.0).is_err());
    }

    #[test]
    fn loop_dissolving_swaps_stay_consistent() {
        // Build a graph with self-loops among the candidates: loops and
        // multi-edges arise from stub matching in the real pipeline.
        let mut g = social(14);
        let a = 0 as NodeId;
        g.add_edge(a, a);
        g.add_edge(a, a);
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(15);
        eng.run_attempts(20_000, &mut rng);
        eng.validate().unwrap();
    }
}
