//! Extraction of dK statistics from a graph, and the realizability
//! conditions of §IV.

use sgr_graph::{DegreeVector, Graph};
use sgr_util::FxHashMap;

/// Sparse joint degree matrix `{m(k,k')}`: `m(k,k')` is the number of
/// edges between nodes of degree `k` and nodes of degree `k'`. Stored
/// symmetrically (both key orders present, equal values); `m(k,k)` counts
/// each edge (and each self-loop) once.
pub type JointDegreeMatrix = FxHashMap<(u32, u32), u64>;

/// Measures `{m(k,k')}` of a graph. Satisfies the marginal identity
/// `Σ_{k'} µ(k,k') m(k,k') = k · n(k)` with `µ(k,k) = 2`, `µ = 1`
/// otherwise (the paper's Eq. 3 convention; self-loops fall into
/// `m(k,k)`).
pub fn joint_degree_matrix(g: &Graph) -> JointDegreeMatrix {
    let mut m: JointDegreeMatrix = FxHashMap::default();
    for (u, v) in g.edges() {
        let k = g.degree(u) as u32;
        let k2 = g.degree(v) as u32;
        let (a, b) = if k <= k2 { (k, k2) } else { (k2, k) };
        *m.entry((a, b)).or_insert(0) += 1;
        if a != b {
            *m.entry((b, a)).or_insert(0) += 1;
        }
    }
    m
}

/// `µ(k, k')` — 2 on the diagonal, 1 off it (Eq. 3).
#[inline]
pub fn mu(k: u32, k2: u32) -> u64 {
    if k == k2 {
        2
    } else {
        1
    }
}

/// Checks condition (DV-1): every entry nonnegative — trivially true for
/// unsigned storage — and (DV-2): `Σ_k k · n(k)` even. Returns the degree
/// sum.
pub fn degree_vector_sum(dv: &DegreeVector) -> u64 {
    dv.iter()
        .enumerate()
        .map(|(k, &c)| k as u64 * c as u64)
        .sum()
}

/// Condition (DV-2): the degree sum is even (the handshake lemma's
/// requirement for realizability).
pub fn dv_sum_is_even(dv: &DegreeVector) -> bool {
    degree_vector_sum(dv).is_multiple_of(2)
}

/// The per-degree marginal `s(k) = Σ_{k'} µ(k,k') m(k,k')` of a JDM.
pub fn jdm_marginal(m: &JointDegreeMatrix, k: u32, k_max: u32) -> u64 {
    (1..=k_max)
        .map(|k2| mu(k, k2) * m.get(&(k, k2)).copied().unwrap_or(0))
        .sum()
}

/// Checks condition (JDM-2): symmetry.
pub fn jdm_is_symmetric(m: &JointDegreeMatrix) -> bool {
    m.iter()
        .all(|(&(k, k2), &v)| m.get(&(k2, k)).copied().unwrap_or(0) == v)
}

/// Checks condition (JDM-3) against a degree vector:
/// `Σ_{k'} µ(k,k') m(k,k') = k n(k)` for every degree `k`.
pub fn jdm_matches_degree_vector(m: &JointDegreeMatrix, dv: &DegreeVector) -> bool {
    let k_max = dv.len().saturating_sub(1) as u32;
    // Also ensure no JDM entry refers to a degree outside the vector.
    if m.keys()
        .any(|&(k, k2)| k > k_max || k2 > k_max || k == 0 || k2 == 0)
    {
        return false;
    }
    (1..=k_max).all(|k| {
        let target = k as u64 * dv.get(k as usize).copied().unwrap_or(0) as u64;
        jdm_marginal(m, k, k_max) == target
    })
}

/// Total number of edges implied by a JDM: `Σ_{k ≤ k'} m(k,k')`.
pub fn jdm_num_edges(m: &JointDegreeMatrix) -> u64 {
    m.iter()
        .filter(|(&(k, k2), _)| k <= k2)
        .map(|(_, &v)| v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, star};

    #[test]
    fn star_jdm() {
        let g = star(4); // hub degree 4, leaves degree 1
        let m = joint_degree_matrix(&g);
        assert_eq!(m.get(&(1, 4)).copied(), Some(4));
        assert_eq!(m.get(&(4, 1)).copied(), Some(4));
        assert_eq!(m.get(&(1, 1)), None);
        assert!(jdm_is_symmetric(&m));
        assert!(jdm_matches_degree_vector(&m, &g.degree_vector()));
        assert_eq!(jdm_num_edges(&m), 4);
    }

    #[test]
    fn complete_graph_jdm() {
        let g = complete(5);
        let m = joint_degree_matrix(&g);
        assert_eq!(m.get(&(4, 4)).copied(), Some(10));
        assert!(jdm_matches_degree_vector(&m, &g.degree_vector()));
        // Marginal: µ(4,4)·10 = 20 = 4·n(4) = 4·5.
        assert_eq!(jdm_marginal(&m, 4, 4), 20);
    }

    #[test]
    fn self_loop_and_multi_edge_accounting() {
        // Node 0 with a loop and a double edge to node 1.
        let mut g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        g.add_edge(0, 0);
        // deg(0) = 4, deg(1) = 2.
        let m = joint_degree_matrix(&g);
        assert_eq!(m.get(&(2, 4)).copied(), Some(2));
        assert_eq!(m.get(&(4, 4)).copied(), Some(1)); // the loop
        assert!(jdm_matches_degree_vector(&m, &g.degree_vector()));
    }

    use sgr_graph::Graph;

    #[test]
    fn dv_conditions() {
        let g = star(3);
        let dv = g.degree_vector();
        assert_eq!(degree_vector_sum(&dv), 6);
        assert!(dv_sum_is_even(&dv));
        let odd = vec![0, 1, 1]; // one deg-1 node, one deg-2 node: sum 3
        assert!(!dv_sum_is_even(&odd));
    }

    #[test]
    fn jdm_mismatch_detection() {
        let g = star(3);
        let mut m = joint_degree_matrix(&g);
        m.insert((1, 3), 5); // break the marginal
        assert!(!jdm_matches_degree_vector(&m, &g.degree_vector()));
        let mut asym = JointDegreeMatrix::default();
        asym.insert((1, 2), 3);
        assert!(!jdm_is_symmetric(&asym));
    }

    #[test]
    fn random_graph_marginals_hold() {
        let g =
            sgr_gen::holme_kim(500, 3, 0.5, &mut sgr_util::Xoshiro256pp::seed_from_u64(7)).unwrap();
        let m = joint_degree_matrix(&g);
        assert!(jdm_is_symmetric(&m));
        assert!(jdm_matches_degree_vector(&m, &g.degree_vector()));
        assert_eq!(jdm_num_edges(&m), g.num_edges() as u64);
    }
}
