//! Sharded parallel rewiring: a persistent worker pool, ownership
//! partitioning of the evaluation space, draw-order commit with conflict
//! replay, and adaptive speculation blocks.
//!
//! `BENCH_rewire.json` shows the production regime of §IV-E rewiring:
//! fewer than 1% of swap attempts are accepted, and PR 1 made every
//! rejected attempt a pure **read-only** evaluation. Read-only work
//! scales across threads; the rare accepts are what must stay sequential
//! to preserve the engine contract. [`ParallelRewireEngine`] exploits
//! exactly that split while remaining **bitwise-identical** to the
//! sequential [`RewireEngine`](crate::rewire::RewireEngine) — same final
//! graph, same accepted count, same distance trajectory — for the same
//! seed at every thread count.
//!
//! # Persistent worker pool
//!
//! Workers are spawned **once per [`run_attempts`] call** inside a single
//! `std::thread::scope` that wraps the whole block loop; its predecessor
//! spawned and joined a fresh scope per 1024-pick block, and those
//! per-block spawn/join costs were what kept parallel throughput *below*
//! sequential. Each worker sits in a blocking `recv` on its own mpsc job
//! channel; the coordinator feeds one `Job` per worker per block and
//! collects one `Ack` per worker on a shared completion channel. Job
//! and ack carry the worker's result buffers and scratch arena by move,
//! so per-block coordination is two channel messages per worker and no
//! other allocation or synchronization.
//!
//! The shared engine state (`EngineState`: the core, the speculative
//! picks, and the shard map) is handed to workers as a raw pointer
//! (`StatePtr`). Safety rests on strict temporal alternation, enforced
//! by the channel protocol: a worker dereferences the pointer (shared,
//! read-only) only between receiving a job and sending its ack, and the
//! coordinator dereferences it (mutably, for draws and commits) only
//! while every worker is blocked between ack and next job. The mpsc
//! send/recv pairs provide the happens-before edges, and inside the
//! scope the coordinator reaches the shared state *only* through the
//! same pointer, so no reference ever aliases a concurrent access.
//!
//! A single-worker engine (`threads <= 1`) skips the pool *and* the
//! speculation machinery entirely and steps sequentially on the calling
//! thread: with no evaluation to overlap, per-pick RNG checkpoints and
//! post-commit tail replay would be pure overhead, so `threads = 1`
//! matches the sequential engine's cost as well as its results.
//!
//! # Ownership sharding
//!
//! Every pick is owned by exactly one worker, decided by the degree
//! class of its first endpoint through the engine's
//! [`ShardPartitioner`]: workers scan the whole block but evaluate only
//! their owned picks, writing into disjoint entries of their own result
//! buffers. Routing is a pure function of the pick and a class → shard
//! map frozen at construction (bucket lengths are invariant under
//! commits, so the map's weights stay exact), which gives the commit
//! scan a trivial lookup for where a pick's speculative result lives —
//! and keeps workers from ever contending on a result slot.
//!
//! # Block pipeline
//!
//! Each block of `b` attempts runs three phases:
//!
//! 1. **Speculative draw (coordinator).** `b` candidate picks are drawn
//!    from the *sequential* RNG stream against the current committed
//!    state, saving a pre-draw RNG checkpoint per pick.
//! 2. **Evaluation (workers).** Each worker runs the engines' shared
//!    read-only `evaluate_swap` over its owned picks against the
//!    block-start snapshot, accumulating triangle deltas in its own
//!    epoch-stamped [`ScratchAccum`] arena and leaving the node-sorted
//!    `(node, Δt)` list in its per-pick result buffer. Workers never
//!    touch shared state, and steady-state evaluation performs no heap
//!    allocation.
//! 3. **Commit scan (coordinator).** Picks are decided **in draw order**
//!    through the same `EngineCore::fold_decide` float fold the
//!    sequential engine uses, and accepted swaps are committed
//!    immediately.
//!
//! # Conflict replay
//!
//! A commit invalidates two kinds of speculation behind it:
//!
//! * **The RNG tail.** `pick_swap`'s draw *count* and bucket bounds
//!   depend on slot contents (bucket lengths are invariant — commits
//!   swap entries between buckets in place — but an affected slot can
//!   change which bucket the third draw reads). After the first in-block
//!   commit the coordinator therefore re-draws every subsequent pick
//!   from its checkpoint (`replay`), which by construction consumes the
//!   exact draws the sequential engine would; the block ends with the
//!   caller's RNG in the sequential stream position.
//! * **Evaluations near the swap.** A committed swap changes adjacency
//!   only among its four endpoints, and an evaluation reads only the
//!   adjacency rows of *its* four endpoints. Commits mark their
//!   endpoints in a stamped dirty-node set ([`DirtyStampSet`]); a
//!   speculative result is reused iff the replayed pick is identical to
//!   the speculative one **and** none of its endpoints is dirty.
//!   Otherwise the coordinator discards it and re-evaluates inline
//!   against the current state.
//!
//! # Adaptive blocks
//!
//! Accepts are rare overall but front-loaded: the first stretch of a run
//! commits often (forcing serial replay of evaluated tails), the long
//! tail almost never. Block size is therefore adapted between blocks —
//! commit-free blocks double it (up to a cap) so the reject-heavy tail
//! amortizes coordination over thousands of picks, while accept-heavy
//! blocks halve it so replay stays cheap. Results are **identical at
//! every block size** (the equivalence tests pin sizes from 1 to 4096),
//! so the adaptation affects wall time only — mid-rewire checkpoints
//! need not record it, and [`with_block_size`] still pins a fixed size
//! for tests and benchmarks.
//!
//! Together with the module-level determinism model (integer Δt, one
//! float fold on one thread, one RNG stream) this yields a simple
//! induction: before every attempt `i`, the (RNG state, engine state)
//! pair equals the sequential engine's, and speculative shortcuts are
//! taken only when provably equal to re-execution.
//!
//! [`run_attempts`]: ParallelRewireEngine::run_attempts
//! [`with_block_size`]: ParallelRewireEngine::with_block_size

use super::shard::ShardPartitioner;
use super::{apply_structural, evaluate_swap, EngineCore, RewireStats, SwapPick};
use sgr_graph::{Graph, NodeId};
use sgr_util::scratch::{DirtyStampSet, ScratchAccum};
use sgr_util::Xoshiro256pp;
use std::sync::mpsc::{Receiver, Sender};

/// Smallest adaptive block: accept-heavy phases shrink to this.
pub const ADAPTIVE_MIN_BLOCK: usize = 64;

/// Starting adaptive block size.
pub const ADAPTIVE_START_BLOCK: usize = 256;

/// Largest adaptive block: commit-free stretches grow to this, which is
/// also the allocated per-block capacity of an adaptive engine.
pub const ADAPTIVE_MAX_BLOCK: usize = 8192;

/// Initial per-pick result-buffer capacity; buffers grow amortized on
/// the rare evaluation that touches more nodes.
const RESULT_CAP: usize = 64;

/// Everything the evaluation workers read: the committed engine core,
/// the current block's speculative picks, and the ownership map. Shared
/// with workers through [`StatePtr`] under the temporal-alternation
/// protocol described in the module docs.
struct EngineState {
    core: EngineCore,
    /// Speculative picks of the current block, in draw order.
    picks: Vec<Option<SwapPick>>,
    /// Degree-class → worker ownership map, frozen at construction.
    shard: ShardPartitioner,
}

/// Coordinator-only working state, disjoint from [`EngineState`] so the
/// commit scan can hold `&mut` to both halves at once.
struct CoordState {
    /// RNG state snapshot taken immediately before each pick's draws.
    rng_before: Vec<Xoshiro256pp>,
    /// Coordinator-side arena for inline re-evaluations after conflicts.
    repair_t: ScratchAccum<i64>,
    repair_pairs: Vec<(NodeId, i64)>,
    /// Per-degree predicted sums for the shared decision fold.
    scratch_s: ScratchAccum<f64>,
    /// Endpoints of swaps committed in the current block.
    dirty: DirtyStampSet,
}

/// One worker's owned buffers: its triangle-delta arena and its per-pick
/// result slots. Travels worker ⇄ coordinator by move inside [`Job`] /
/// [`Ack`] messages, so no shared mutable access is ever needed for
/// results.
#[derive(Default)]
struct WorkerBuf {
    /// Node-sorted `(node, Δt)` evaluation result per owned pick.
    results: Vec<Vec<(NodeId, i64)>>,
    arena: ScratchAccum<i64>,
}

/// "Evaluate your owned picks among the first `b`."
struct Job {
    b: usize,
    buf: WorkerBuf,
}

/// "Done; here are worker `w`'s buffers back."
struct Ack {
    w: usize,
    buf: WorkerBuf,
}

/// Raw pointer to the shared [`EngineState`], copied into every worker.
///
/// Sendable because the channel protocol serializes all access (see the
/// module docs): workers dereference it shared-only between job receipt
/// and ack, the coordinator dereferences it mutably only while all
/// workers are idle, and mpsc send/recv provide the happens-before
/// ordering between those windows.
#[derive(Clone, Copy)]
struct StatePtr(*mut EngineState);

// SAFETY: see StatePtr's docs — access is serialized by the job/ack
// channel protocol, and the pointee outlives the thread scope because it
// lives in the engine while `run_attempts` (which owns the scope) holds
// `&mut self`.
unsafe impl Send for StatePtr {}

/// The sharded parallel rewiring engine; see the module docs.
///
/// Drop-in equivalent of [`RewireEngine`](crate::rewire::RewireEngine):
/// same constructor shape plus a thread count, bitwise-identical
/// results.
pub struct ParallelRewireEngine {
    st: EngineState,
    coord: CoordState,
    /// One buffer set per worker, held here between runs and lent to the
    /// workers by move while a block is in flight.
    bufs: Vec<WorkerBuf>,
    threads: usize,
    /// Allocated per-block capacity; the live block size never exceeds it.
    cap: usize,
    /// Current block size (picks drawn per round).
    block: usize,
    /// Whether the block size adapts to the observed accept rate.
    adaptive: bool,
}

impl ParallelRewireEngine {
    /// Creates an engine over `graph` with rewirable edge multiset
    /// `candidates` and target clustering `target_c`, evaluating with
    /// `threads` workers (`0` = all available cores).
    ///
    /// Argument semantics match
    /// [`RewireEngine::new`](crate::rewire::RewireEngine::new).
    pub fn new(
        graph: Graph,
        candidates: Vec<(NodeId, NodeId)>,
        target_c: &[f64],
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let core = EngineCore::new(graph, candidates, target_c);
        // Pick probability of degree class k is proportional to bucket
        // k's length, which commits never change — the weights are exact
        // for the whole run.
        let weights: Vec<u64> = core.buckets.iter().map(|b| b.len() as u64).collect();
        let shard = ShardPartitioner::new(&weights, threads);
        let n = core.graph.num_nodes();
        let degrees = core.s.len();
        let mut engine = Self {
            st: EngineState {
                core,
                picks: Vec::new(),
                shard,
            },
            coord: CoordState {
                rng_before: Vec::new(),
                repair_t: ScratchAccum::with_keys(n),
                repair_pairs: Vec::with_capacity(n),
                scratch_s: ScratchAccum::with_keys(degrees),
                dirty: DirtyStampSet::with_keys(n),
            },
            bufs: (0..threads)
                .map(|_| WorkerBuf {
                    results: Vec::new(),
                    arena: ScratchAccum::with_keys(n),
                })
                .collect(),
            threads,
            cap: 0,
            block: 0,
            adaptive: true,
        };
        engine.set_capacity(ADAPTIVE_MAX_BLOCK);
        engine.block = ADAPTIVE_START_BLOCK;
        engine
    }

    /// Pins a fixed speculation block size (picks drawn per round),
    /// disabling the adaptive sizing; builder form. Exposed for tests
    /// (tiny blocks force the replay machinery) and benchmarks (a fixed
    /// size keeps runs comparable); results are identical at any value
    /// ≥ 1 — and identical to the adaptive default. A single-worker
    /// engine steps sequentially and never consults the block size.
    pub fn with_block_size(mut self, block: usize) -> Self {
        let block = block.max(1);
        self.adaptive = false;
        self.set_capacity(block);
        self.block = block;
        self
    }

    /// (Re)allocates the per-block buffers to hold `cap` picks.
    fn set_capacity(&mut self, cap: usize) {
        let cap = cap.max(1);
        self.cap = cap;
        self.st.picks.resize(cap, None);
        self.coord
            .rng_before
            .resize(cap, Xoshiro256pp::seed_from_u64(0));
        for buf in &mut self.bufs {
            buf.results
                .resize_with(cap, || Vec::with_capacity(RESULT_CAP));
        }
    }

    /// Worker-thread count in use.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Current speculation block size: the pinned size after
    /// [`with_block_size`](Self::with_block_size), otherwise the
    /// adaptive size as of the last block.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// The degree-class ownership map routing evaluations to workers.
    pub fn shard_partitioner(&self) -> &ShardPartitioner {
        &self.st.shard
    }

    /// Current normalized distance `D`.
    pub fn distance(&self) -> f64 {
        self.st.core.distance()
    }

    /// Number of rewirable edge slots `|Ẽ_rew|`.
    pub fn num_candidates(&self) -> usize {
        self.st.core.slots.len()
    }

    /// Current `c̄(k)` of the evolving graph.
    pub fn current_clustering(&self) -> Vec<f64> {
        self.st.core.current_clustering()
    }

    /// Runs `R = ceil(rc · |Ẽ_rew|)` attempts (§IV-E).
    pub fn run(&mut self, rc: f64, rng: &mut Xoshiro256pp) -> RewireStats {
        let attempts = (rc * self.st.core.slots.len() as f64).ceil() as u64;
        self.run_attempts(attempts, rng)
    }

    /// Runs exactly `attempts` swap attempts: in speculation blocks
    /// across the worker pool, or — with a single worker — by plain
    /// sequential stepping (same results, none of the overhead).
    pub fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        let mut stats = RewireStats {
            attempts,
            initial_distance: self.distance(),
            ..Default::default()
        };
        if self.st.core.slots.len() < 2 {
            stats.skipped = attempts;
            stats.final_distance = self.distance();
            return stats;
        }
        if self.threads <= 1 {
            self.run_attempts_inline(attempts, rng, &mut stats);
        } else {
            self.run_attempts_pooled(attempts, rng, &mut stats);
        }
        stats.final_distance = self.distance();
        stats
    }

    /// Single-worker path: plain sequential stepping on the coordinator
    /// thread — draw, evaluate, decide, one attempt at a time. With one
    /// worker there is no evaluation to overlap, so the speculation
    /// machinery (per-pick RNG checkpoints, result buffers, tail replay
    /// after each commit) would be pure overhead; this loop is the very
    /// sequential execution the block pipeline's induction is anchored
    /// to, so it is bitwise-identical by construction and `threads = 1`
    /// costs the sequential engine plus only the dispatch. It runs the
    /// same `evaluate_swap` kernel the scoped workers run, into the
    /// coordinator's reused repair buffers, which is what lets the
    /// counting-allocator tests observe the evaluation path
    /// thread-locally.
    fn run_attempts_inline(
        &mut self,
        attempts: u64,
        rng: &mut Xoshiro256pp,
        stats: &mut RewireStats,
    ) {
        let Self { st, coord, .. } = self;
        let core = &mut st.core;
        for _ in 0..attempts {
            let Some(p) = core.pick_swap(rng) else {
                stats.skipped += 1;
                continue;
            };
            evaluate_swap(core, &p, &mut coord.repair_t, &mut coord.repair_pairs);
            let new_raw = core.fold_decide(&coord.repair_pairs, &mut coord.scratch_s);
            if new_raw < core.dist_raw {
                core.commit_decision(&coord.repair_pairs, &coord.scratch_s, new_raw);
                apply_structural(core, p.vi, p.vj, -1);
                apply_structural(core, p.vi2, p.vj2, -1);
                apply_structural(core, p.vi, p.vj2, 1);
                apply_structural(core, p.vi2, p.vj, 1);
                core.commit_slot_swap(&p);
                stats.accepted += 1;
            } else {
                stats.skipped += 1;
            }
        }
    }

    /// Multi-worker path: one `std::thread::scope` wraps the whole block
    /// loop, so workers persist across blocks and per-block coordination
    /// is one job and one ack message per worker.
    fn run_attempts_pooled(
        &mut self,
        attempts: u64,
        rng: &mut Xoshiro256pp,
        stats: &mut RewireStats,
    ) {
        let Self {
            st,
            coord,
            bufs,
            block,
            adaptive,
            cap,
            threads,
            ..
        } = self;
        let threads = *threads;
        let ptr = StatePtr(std::ptr::from_mut::<EngineState>(st));
        std::thread::scope(|scope| {
            let (ack_tx, ack_rx) = std::sync::mpsc::channel::<Ack>();
            let mut job_txs = Vec::with_capacity(threads);
            for w in 0..threads {
                let (tx, rx) = std::sync::mpsc::channel::<Job>();
                job_txs.push(tx);
                let ack = ack_tx.clone();
                scope.spawn(move || worker_loop(ptr, w, rx, ack));
            }
            drop(ack_tx);
            // NOTE: from here to the end of the scope, the shared state
            // is reached only through `ptr` — never through `st` — so the
            // workers' pointer copies stay valid.
            let mut done = 0u64;
            while done < attempts {
                let b = (attempts - done).min(*block as u64) as usize;
                {
                    // SAFETY: every worker is idle (blocked in `recv`
                    // with no job in flight), so this is the only live
                    // access to the engine state.
                    let st = unsafe { &mut *ptr.0 };
                    draw_block(st, coord, b, rng);
                }
                for (w, tx) in job_txs.iter().enumerate() {
                    let buf = std::mem::take(&mut bufs[w]);
                    tx.send(Job { b, buf }).expect("rewire worker hung up");
                }
                for _ in 0..threads {
                    let Ack { w, buf } = ack_rx.recv().expect("rewire worker died");
                    bufs[w] = buf;
                }
                let accepted = {
                    // SAFETY: all acks are in — every worker is idle
                    // again, so the coordinator holds the only access.
                    let st = unsafe { &mut *ptr.0 };
                    commit_scan(st, coord, bufs, b, rng, stats)
                };
                done += b as u64;
                if *adaptive {
                    *block = next_block_size(*block, accepted, b, *cap);
                }
            }
            drop(job_txs); // workers' `recv` errors out; the scope joins them
        });
    }

    /// Releases the rewired graph.
    pub fn into_graph(self) -> Graph {
        self.st.core.graph
    }

    /// The evolving graph (checkpoint serialization reads the adjacency
    /// lists in place).
    pub fn graph(&self) -> &Graph {
        &self.st.core.graph
    }

    /// The candidate slots `Ẽ_rew` in their current (mutated-by-swaps)
    /// state.
    pub fn slots(&self) -> &[(NodeId, NodeId)] {
        &self.st.core.slots
    }

    /// The incrementally-maintained per-degree clustering sums `S(k)`.
    pub fn clustering_sums(&self) -> &[f64] {
        &self.st.core.s
    }

    /// The incrementally-maintained unnormalized distance.
    pub fn dist_raw(&self) -> f64 {
        self.st.core.dist_raw
    }

    /// Injects checkpointed float state into a freshly reconstructed
    /// engine (see
    /// [`RewireEngine::restore_float_state`](crate::rewire::RewireEngine::restore_float_state)).
    pub fn restore_float_state(&mut self, s: &[f64], dist_raw: f64) -> Result<(), String> {
        self.st.core.restore_float_state(s, dist_raw)
    }

    /// The degree-bucket arrays (see
    /// [`RewireEngine::bucket_state`](crate::rewire::RewireEngine::bucket_state)).
    pub fn bucket_state(&self) -> Vec<Vec<(u32, u8)>> {
        self.st.core.bucket_state()
    }

    /// Injects a checkpointed bucket ordering into a freshly
    /// reconstructed engine.
    pub fn restore_bucket_state(&mut self, buckets: Vec<Vec<(u32, u8)>>) -> Result<(), String> {
        self.st.core.restore_bucket_state(buckets)
    }

    /// Consistency check used by tests: recomputes every maintained
    /// quantity from scratch and compares.
    pub fn validate(&self) -> Result<(), String> {
        self.st.core.validate()
    }
}

/// One worker's life: evaluate owned picks per job, ack, repeat until
/// the coordinator drops the job channel.
fn worker_loop(ptr: StatePtr, w: usize, rx: Receiver<Job>, ack: Sender<Ack>) {
    while let Ok(Job { b, mut buf }) = rx.recv() {
        {
            // SAFETY: the coordinator never touches the engine state
            // while a job is unacked, and never sends a job while it
            // holds a reference — see StatePtr. This shared borrow ends
            // before the ack below hands control back.
            let st = unsafe { &*ptr.0 };
            evaluate_owned(st, &mut buf, b, w as u32);
        }
        if ack.send(Ack { w, buf }).is_err() {
            return;
        }
    }
}

/// Phase 1: draws `b` speculative picks from the sequential RNG stream,
/// checkpointing the RNG before each pick for conflict replay.
fn draw_block(st: &mut EngineState, coord: &mut CoordState, b: usize, rng: &mut Xoshiro256pp) {
    let EngineState { core, picks, .. } = st;
    for (pick, ckpt) in picks[..b].iter_mut().zip(coord.rng_before[..b].iter_mut()) {
        *ckpt = rng.clone();
        *pick = core.pick_swap(rng);
    }
}

/// Phase 2 (per worker): evaluates the block's picks owned by `worker`
/// read-only into its result slots. Unowned slots keep stale data, which
/// the commit scan never reads: ownership is a pure function of the
/// pick, so the result it fetches was always written this block.
fn evaluate_owned(st: &EngineState, buf: &mut WorkerBuf, b: usize, worker: u32) {
    let WorkerBuf { results, arena } = buf;
    for (pick, out) in st.picks[..b].iter().zip(results[..b].iter_mut()) {
        if let Some(p) = pick {
            if st.shard.shard_of(st.core.deg[p.vi as usize] as usize) == worker {
                evaluate_swap(&st.core, p, arena, out);
            }
        }
    }
}

/// Phase 3: decides the block's picks strictly in draw order, committing
/// accepted swaps and replaying the speculative tail after the first
/// commit (see the module docs). Returns the number of accepts in this
/// block (the adaptive-sizing signal). `cursor` is `None` while the
/// block is commit-free (speculation exact); after the first commit it
/// carries the authoritative sequential RNG stream.
fn commit_scan(
    st: &mut EngineState,
    coord: &mut CoordState,
    bufs: &[WorkerBuf],
    b: usize,
    rng: &mut Xoshiro256pp,
    stats: &mut RewireStats,
) -> u64 {
    let EngineState { core, picks, shard } = st;
    coord.dirty.clear();
    let mut accepted = 0u64;
    let mut cursor: Option<Xoshiro256pp> = None;
    for (i, &spec_pick) in picks[..b].iter().enumerate() {
        let (pick, spec_ok) = match cursor.as_mut() {
            None => (spec_pick, true),
            Some(cur) => {
                let p = core.pick_swap(cur);
                (p, p == spec_pick)
            }
        };
        let Some(p) = pick else {
            stats.skipped += 1;
            continue;
        };
        let endpoints = [p.vi, p.vj, p.vi2, p.vj2];
        let clean = !coord.dirty.contains_any(&endpoints);
        let pairs: &[(NodeId, i64)] = if spec_ok && clean {
            let owner = shard.shard_of(core.deg[p.vi as usize] as usize) as usize;
            &bufs[owner].results[i]
        } else {
            // Conflict (or replayed pick diverged): discard the
            // speculative result and re-evaluate inline against the
            // current committed state.
            evaluate_swap(core, &p, &mut coord.repair_t, &mut coord.repair_pairs);
            &coord.repair_pairs
        };
        let new_raw = core.fold_decide(pairs, &mut coord.scratch_s);
        if new_raw < core.dist_raw {
            core.commit_decision(pairs, &coord.scratch_s, new_raw);
            apply_structural(core, p.vi, p.vj, -1);
            apply_structural(core, p.vi2, p.vj2, -1);
            apply_structural(core, p.vi, p.vj2, 1);
            apply_structural(core, p.vi2, p.vj, 1);
            core.commit_slot_swap(&p);
            for &x in &endpoints {
                coord.dirty.mark(x);
            }
            if cursor.is_none() {
                // The sequential stream position after this pick's
                // draws: the next pick's checkpoint, or — for the
                // block's last pick — the phase-1 end state.
                cursor = Some(if i + 1 < b {
                    coord.rng_before[i + 1].clone()
                } else {
                    rng.clone()
                });
            }
            accepted += 1;
            stats.accepted += 1;
        } else {
            stats.skipped += 1;
        }
    }
    if let Some(cur) = cursor {
        *rng = cur;
    }
    accepted
}

/// Adaptive block-size policy: double after a commit-free block (cheap
/// coordination for the reject-heavy tail), halve when accepts exceeded
/// ~3% of the block (cheap replay for the accept-heavy front), clamped
/// to `[ADAPTIVE_MIN_BLOCK, cap]`. Block size never changes results —
/// only how much speculation a commit invalidates.
fn next_block_size(block: usize, accepted: u64, b: usize, cap: usize) -> usize {
    if accepted == 0 {
        (block * 2).min(cap)
    } else if accepted as usize * 32 >= b {
        (block / 2).max(ADAPTIVE_MIN_BLOCK).min(cap)
    } else {
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewire::RewireEngine;
    use sgr_props::local::LocalProperties;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(250, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    fn sorted_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        e
    }

    /// Sequential and parallel engines, same seed: distances compared
    /// bitwise after every chunk, final edge multisets exactly.
    /// `block = None` leaves the engine in its default adaptive mode.
    fn assert_matches_sequential(
        g: Graph,
        target: &[f64],
        seed: u64,
        threads: usize,
        block: Option<usize>,
        chunks: &[u64],
    ) {
        let edges: Vec<_> = g.edges().collect();
        let mut seq = RewireEngine::new(g.clone(), edges.clone(), target);
        let mut par = ParallelRewireEngine::new(g, edges, target, threads);
        if let Some(b) = block {
            par = par.with_block_size(b);
        }
        let mut rng_s = Xoshiro256pp::seed_from_u64(seed);
        let mut rng_p = Xoshiro256pp::seed_from_u64(seed);
        for (c, &n) in chunks.iter().enumerate() {
            let ss = seq.run_attempts(n, &mut rng_s);
            let sp = par.run_attempts(n, &mut rng_p);
            assert_eq!(ss.accepted, sp.accepted, "accepted diverged at chunk {c}");
            assert_eq!(ss.skipped, sp.skipped, "skipped diverged at chunk {c}");
            assert_eq!(
                seq.distance().to_bits(),
                par.distance().to_bits(),
                "distance diverged at chunk {c}: {} vs {}",
                seq.distance(),
                par.distance()
            );
        }
        par.validate().unwrap();
        assert_eq!(
            sorted_edges(&seq.into_graph()),
            sorted_edges(&par.into_graph()),
            "edge multisets diverged"
        );
    }

    #[test]
    fn matches_sequential_across_thread_counts() {
        for threads in [1, 2, 4] {
            let g = social(1);
            let props = LocalProperties::compute(&g);
            let target: Vec<f64> = props
                .clustering_by_degree
                .iter()
                .map(|&c| c * 0.5)
                .collect();
            assert_matches_sequential(g, &target, 42, threads, Some(1024), &[1500, 700, 801]);
        }
    }

    #[test]
    fn adaptive_blocks_match_sequential() {
        // Default (adaptive) mode: the block size moves with the accept
        // rate mid-run, and the results must not.
        for threads in [1, 2, 4] {
            let g = social(1);
            let target = vec![0.0; g.max_degree() + 1];
            assert_matches_sequential(g, &target, 45, threads, None, &[2500, 900]);
        }
    }

    #[test]
    fn adaptive_block_size_actually_moves() {
        // Reject-only workload (own clustering is already the target):
        // every block is commit-free, so the block must grow to the cap.
        let g = social(9);
        let props = LocalProperties::compute(&g);
        let edges: Vec<_> = g.edges().collect();
        let mut eng = ParallelRewireEngine::new(g, edges, &props.clustering_by_degree, 2);
        assert_eq!(eng.block_size(), ADAPTIVE_START_BLOCK);
        let mut rng = Xoshiro256pp::seed_from_u64(51);
        eng.run_attempts(60_000, &mut rng);
        assert_eq!(eng.block_size(), ADAPTIVE_MAX_BLOCK);
    }

    #[test]
    fn tiny_blocks_force_replay_and_still_match() {
        // Zero-clustering target accepts aggressively early on, so with
        // block sizes this small nearly every block replays its tail.
        let g = social(2);
        let target = vec![0.0; g.max_degree() + 1];
        for block in [1, 2, 3, 7] {
            assert_matches_sequential(g.clone(), &target, 7, 2, Some(block), &[900, 350]);
        }
    }

    #[test]
    fn attempts_not_divisible_by_block() {
        let g = social(3);
        let target = vec![0.0; g.max_degree() + 1];
        assert_matches_sequential(g, &target, 9, 2, Some(64), &[1, 63, 64, 129, 500]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let g = social(4);
        let target = vec![0.0; g.max_degree() + 1];
        let edges: Vec<_> = g.edges().collect();
        let eng = ParallelRewireEngine::new(g, edges, &target, 0);
        assert!(eng.num_threads() >= 1);
        assert_eq!(eng.block_size(), ADAPTIVE_START_BLOCK);
        assert_eq!(eng.shard_partitioner().num_shards(), eng.num_threads());
    }

    #[test]
    fn no_candidates_is_a_noop() {
        let g = social(5);
        let before = sorted_edges(&g);
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = ParallelRewireEngine::new(g, Vec::new(), &target, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let stats = eng.run(500.0, &mut rng);
        assert_eq!(stats.accepted, 0);
        assert_eq!(sorted_edges(&eng.into_graph()), before);
    }

    #[test]
    fn run_scales_attempts_by_rc() {
        let g = social(6);
        let m = g.num_edges() as u64;
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = ParallelRewireEngine::new(g, edges, &target, 2);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let stats = eng.run(2.0, &mut rng);
        assert_eq!(stats.attempts, 2 * m);
        assert_eq!(stats.accepted + stats.skipped, 2 * m);
    }

    #[test]
    fn shard_routing_covers_every_pick() {
        // Every drawable degree class must be owned by a real shard.
        let g = social(7);
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let eng = ParallelRewireEngine::new(g, edges, &target, 4);
        let p = eng.shard_partitioner();
        assert_eq!(p.num_shards(), 4);
        for k in 0..p.num_classes() {
            assert!(p.shard_of(k) < 4);
        }
    }
}
