//! Speculative-parallel rewiring: batched draw, multi-worker read-only
//! evaluation, draw-order commit with conflict replay.
//!
//! `BENCH_rewire.json` shows the production regime of §IV-E rewiring:
//! fewer than 1% of swap attempts are accepted, and PR 1 made every
//! rejected attempt a pure **read-only** evaluation. Read-only work
//! scales across threads; the rare accepts are what must stay sequential
//! to preserve the engine contract. [`ParallelRewireEngine`] exploits
//! exactly that split while remaining **bitwise-identical** to the
//! sequential [`RewireEngine`](crate::rewire::RewireEngine) — same final
//! graph, same accepted count, same distance trajectory — for the same
//! seed at every thread count.
//!
//! # Block pipeline
//!
//! Each block of `B` attempts runs three phases:
//!
//! 1. **Speculative draw (coordinator).** `B` candidate picks are drawn
//!    from the *sequential* RNG stream against the current committed
//!    state, saving a pre-draw RNG checkpoint per pick.
//! 2. **Evaluation (workers).** The picks are split into contiguous
//!    chunks across `std::thread::scope` workers (the `betweenness.rs`
//!    pattern). Each worker runs the engines' shared read-only
//!    `evaluate_swap` against the block-start snapshot, accumulating
//!    triangle deltas in its own epoch-stamped
//!    [`ScratchAccum`] arena from a
//!    [`ScratchPool`], and leaves the
//!    node-sorted `(node, Δt)` list in a per-pick result buffer. Workers
//!    never touch shared state, and steady-state evaluation performs no
//!    heap allocation.
//! 3. **Commit scan (coordinator).** Picks are decided **in draw order**
//!    through the same `EngineCore::fold_decide` float fold the
//!    sequential engine uses, and accepted swaps are committed
//!    immediately.
//!
//! # Conflict replay
//!
//! A commit invalidates two kinds of speculation behind it:
//!
//! * **The RNG tail.** `pick_swap`'s draw *count* and bucket bounds
//!   depend on slot contents (bucket lengths are invariant — commits
//!   swap entries between buckets in place — but an affected slot can
//!   change which bucket the third draw reads). After the first in-block
//!   commit the coordinator therefore re-draws every subsequent pick
//!   from its checkpoint (`replay`), which by construction consumes the
//!   exact draws the sequential engine would; the block ends with the
//!   caller's RNG in the sequential stream position.
//! * **Evaluations near the swap.** A committed swap changes adjacency
//!   only among its four endpoints, and an evaluation reads only the
//!   adjacency rows of *its* four endpoints. Commits mark their
//!   endpoints in a stamped dirty-node set
//!   ([`DirtyStampSet`]); a
//!   speculative result is reused iff the replayed pick is identical to
//!   the speculative one **and** none of its endpoints is dirty.
//!   Otherwise the coordinator discards it and re-evaluates inline
//!   against the current state.
//!
//! Together with the module-level determinism model (integer Δt, one
//! float fold on one thread, one RNG stream) this yields a simple
//! induction: before every attempt `i`, the (RNG state, engine state)
//! pair equals the sequential engine's, and speculative shortcuts are
//! taken only when provably equal to re-execution. In the reject-heavy
//! tail almost every block commits nothing, so the whole block's
//! evaluations are consumed with zero replay.

use super::{apply_structural, evaluate_swap, EngineCore, RewireStats, SwapPick};
use sgr_graph::{Graph, NodeId};
use sgr_util::scratch::{DirtyStampSet, ScratchAccum, ScratchPool};
use sgr_util::Xoshiro256pp;

/// Default picks per speculation block. Large enough to amortize the
/// per-block scoped-thread spawn, small enough that an early-phase
/// commit does not stall a long evaluated tail into replay.
pub const DEFAULT_BLOCK: usize = 1024;

/// Initial per-pick result-buffer capacity; buffers grow amortized on
/// the rare evaluation that touches more nodes.
const RESULT_CAP: usize = 64;

/// The speculative-parallel rewiring engine; see the module docs.
///
/// Drop-in equivalent of [`RewireEngine`](crate::rewire::RewireEngine):
/// same constructor shape plus a thread count, bitwise-identical
/// results.
pub struct ParallelRewireEngine {
    core: EngineCore,
    threads: usize,
    block: usize,
    /// Speculative picks of the current block, in draw order.
    picks: Vec<Option<SwapPick>>,
    /// RNG state snapshot taken immediately before each pick's draws.
    rng_before: Vec<Xoshiro256pp>,
    /// Node-sorted `(node, Δt)` evaluation result per pick.
    results: Vec<Vec<(NodeId, i64)>>,
    /// One triangle-delta arena per worker.
    pool: ScratchPool<i64>,
    /// Coordinator-side arena for inline re-evaluations after conflicts.
    repair_t: ScratchAccum<i64>,
    repair_pairs: Vec<(NodeId, i64)>,
    /// Per-degree predicted sums for the shared decision fold.
    scratch_s: ScratchAccum<f64>,
    /// Endpoints of swaps committed in the current block.
    dirty: DirtyStampSet,
}

impl ParallelRewireEngine {
    /// Creates an engine over `graph` with rewirable edge multiset
    /// `candidates` and target clustering `target_c`, evaluating with
    /// `threads` workers (`0` = all available cores).
    ///
    /// Argument semantics match
    /// [`RewireEngine::new`](crate::rewire::RewireEngine::new).
    pub fn new(
        graph: Graph,
        candidates: Vec<(NodeId, NodeId)>,
        target_c: &[f64],
        threads: usize,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let core = EngineCore::new(graph, candidates, target_c);
        let n = core.graph.num_nodes();
        let degrees = core.s.len();
        let mut engine = Self {
            core,
            threads,
            block: 0,
            picks: Vec::new(),
            rng_before: Vec::new(),
            results: Vec::new(),
            pool: ScratchPool::new(threads, n),
            repair_t: ScratchAccum::with_keys(n),
            repair_pairs: Vec::with_capacity(n),
            scratch_s: ScratchAccum::with_keys(degrees),
            dirty: DirtyStampSet::with_keys(n),
        };
        engine.set_block_size(DEFAULT_BLOCK);
        engine
    }

    /// Sets the speculation block size (picks drawn per round); builder
    /// form. Exposed for tests (tiny blocks force the replay machinery)
    /// and tuning; results are identical at any value ≥ 1.
    pub fn with_block_size(mut self, block: usize) -> Self {
        self.set_block_size(block);
        self
    }

    fn set_block_size(&mut self, block: usize) {
        let block = block.max(1);
        self.block = block;
        self.picks.resize(block, None);
        self.rng_before
            .resize(block, Xoshiro256pp::seed_from_u64(0));
        self.results
            .resize_with(block, || Vec::with_capacity(RESULT_CAP));
    }

    /// Worker-thread count in use.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Current speculation block size.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Current normalized distance `D`.
    pub fn distance(&self) -> f64 {
        self.core.distance()
    }

    /// Number of rewirable edge slots `|Ẽ_rew|`.
    pub fn num_candidates(&self) -> usize {
        self.core.slots.len()
    }

    /// Current `c̄(k)` of the evolving graph.
    pub fn current_clustering(&self) -> Vec<f64> {
        self.core.current_clustering()
    }

    /// Runs `R = ceil(rc · |Ẽ_rew|)` attempts (§IV-E).
    pub fn run(&mut self, rc: f64, rng: &mut Xoshiro256pp) -> RewireStats {
        let attempts = (rc * self.core.slots.len() as f64).ceil() as u64;
        self.run_attempts(attempts, rng)
    }

    /// Runs exactly `attempts` swap attempts in speculation blocks.
    pub fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        let mut stats = RewireStats {
            attempts,
            initial_distance: self.distance(),
            ..Default::default()
        };
        if self.core.slots.len() < 2 {
            stats.skipped = attempts;
            stats.final_distance = self.distance();
            return stats;
        }
        let mut done = 0u64;
        while done < attempts {
            let b = (attempts - done).min(self.block as u64) as usize;
            self.run_block(b, rng, &mut stats);
            done += b as u64;
        }
        stats.final_distance = self.distance();
        stats
    }

    /// One speculation block of `b ≤ self.block` attempts.
    fn run_block(&mut self, b: usize, rng: &mut Xoshiro256pp, stats: &mut RewireStats) {
        // --- Phase 1: speculative draws on the sequential stream.
        for i in 0..b {
            self.rng_before[i] = rng.clone();
            self.picks[i] = self.core.pick_swap(rng);
        }

        // --- Phase 2: read-only evaluation across workers.
        self.evaluate_block(b);

        // --- Phase 3: draw-order commit with conflict replay. `cursor`
        // is `None` while the block is commit-free (speculation exact);
        // after the first commit it carries the authoritative sequential
        // RNG stream.
        self.dirty.clear();
        let mut cursor: Option<Xoshiro256pp> = None;
        for i in 0..b {
            let (pick, spec_ok) = match cursor.as_mut() {
                None => (self.picks[i], true),
                Some(cur) => {
                    let p = self.core.pick_swap(cur);
                    (p, p == self.picks[i])
                }
            };
            let Some(p) = pick else {
                stats.skipped += 1;
                continue;
            };
            let endpoints = [p.vi, p.vj, p.vi2, p.vj2];
            let clean = endpoints.iter().all(|&x| !self.dirty.contains(x));
            let pairs: &[(NodeId, i64)] = if spec_ok && clean {
                &self.results[i]
            } else {
                // Conflict (or replayed pick diverged): discard the
                // speculative result and re-evaluate inline against the
                // current committed state.
                evaluate_swap(&self.core, &p, &mut self.repair_t, &mut self.repair_pairs);
                &self.repair_pairs
            };
            let new_raw = self.core.fold_decide(pairs, &mut self.scratch_s);
            if new_raw < self.core.dist_raw {
                self.core.commit_decision(pairs, &self.scratch_s, new_raw);
                apply_structural(&mut self.core, p.vi, p.vj, -1);
                apply_structural(&mut self.core, p.vi2, p.vj2, -1);
                apply_structural(&mut self.core, p.vi, p.vj2, 1);
                apply_structural(&mut self.core, p.vi2, p.vj, 1);
                self.core.commit_slot_swap(&p);
                for &x in &endpoints {
                    self.dirty.mark(x);
                }
                if cursor.is_none() {
                    // The sequential stream position after this pick's
                    // draws: the next pick's checkpoint, or — for the
                    // block's last pick — the phase-1 end state.
                    cursor = Some(if i + 1 < b {
                        self.rng_before[i + 1].clone()
                    } else {
                        rng.clone()
                    });
                }
                stats.accepted += 1;
            } else {
                stats.skipped += 1;
            }
        }
        if let Some(cur) = cursor {
            *rng = cur;
        }
    }

    /// Phase 2: evaluates every `Some` pick of the block read-only into
    /// its result buffer. With one thread the coordinator runs inline
    /// (no spawn); otherwise picks are chunked contiguously across
    /// scoped workers, one pool arena each.
    fn evaluate_block(&mut self, b: usize) {
        let picks = &self.picks[..b];
        let results = &mut self.results[..b];
        let core = &self.core;
        if self.threads <= 1 {
            let arena = &mut self.pool.arenas_mut()[0];
            for (pick, out) in picks.iter().zip(results.iter_mut()) {
                match pick {
                    Some(p) => evaluate_swap(core, p, arena, out),
                    None => out.clear(),
                }
            }
            return;
        }
        let chunk = b.div_ceil(self.threads);
        std::thread::scope(|scope| {
            for ((picks_c, results_c), arena) in picks
                .chunks(chunk)
                .zip(results.chunks_mut(chunk))
                .zip(self.pool.arenas_mut().iter_mut())
            {
                scope.spawn(move || {
                    for (pick, out) in picks_c.iter().zip(results_c.iter_mut()) {
                        match pick {
                            Some(p) => evaluate_swap(core, p, arena, out),
                            None => out.clear(),
                        }
                    }
                });
            }
        });
    }

    /// Releases the rewired graph.
    pub fn into_graph(self) -> Graph {
        self.core.graph
    }

    /// The evolving graph (checkpoint serialization reads the adjacency
    /// lists in place).
    pub fn graph(&self) -> &Graph {
        &self.core.graph
    }

    /// The candidate slots `Ẽ_rew` in their current (mutated-by-swaps)
    /// state.
    pub fn slots(&self) -> &[(NodeId, NodeId)] {
        &self.core.slots
    }

    /// The incrementally-maintained per-degree clustering sums `S(k)`.
    pub fn clustering_sums(&self) -> &[f64] {
        &self.core.s
    }

    /// The incrementally-maintained unnormalized distance.
    pub fn dist_raw(&self) -> f64 {
        self.core.dist_raw
    }

    /// Injects checkpointed float state into a freshly reconstructed
    /// engine (see
    /// [`RewireEngine::restore_float_state`](crate::rewire::RewireEngine::restore_float_state)).
    pub fn restore_float_state(&mut self, s: &[f64], dist_raw: f64) -> Result<(), String> {
        self.core.restore_float_state(s, dist_raw)
    }

    /// The degree-bucket arrays (see
    /// [`RewireEngine::bucket_state`](crate::rewire::RewireEngine::bucket_state)).
    pub fn bucket_state(&self) -> Vec<Vec<(u32, u8)>> {
        self.core.bucket_state()
    }

    /// Injects a checkpointed bucket ordering into a freshly
    /// reconstructed engine.
    pub fn restore_bucket_state(&mut self, buckets: Vec<Vec<(u32, u8)>>) -> Result<(), String> {
        self.core.restore_bucket_state(buckets)
    }

    /// Consistency check used by tests: recomputes every maintained
    /// quantity from scratch and compares.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewire::RewireEngine;
    use sgr_props::local::LocalProperties;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(250, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    fn sorted_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        e
    }

    /// Sequential and parallel engines, same seed: distances compared
    /// bitwise after every chunk, final edge multisets exactly.
    fn assert_matches_sequential(
        g: Graph,
        target: &[f64],
        seed: u64,
        threads: usize,
        block: usize,
        chunks: &[u64],
    ) {
        let edges: Vec<_> = g.edges().collect();
        let mut seq = RewireEngine::new(g.clone(), edges.clone(), target);
        let mut par = ParallelRewireEngine::new(g, edges, target, threads).with_block_size(block);
        let mut rng_s = Xoshiro256pp::seed_from_u64(seed);
        let mut rng_p = Xoshiro256pp::seed_from_u64(seed);
        for (c, &n) in chunks.iter().enumerate() {
            let ss = seq.run_attempts(n, &mut rng_s);
            let sp = par.run_attempts(n, &mut rng_p);
            assert_eq!(ss.accepted, sp.accepted, "accepted diverged at chunk {c}");
            assert_eq!(ss.skipped, sp.skipped, "skipped diverged at chunk {c}");
            assert_eq!(
                seq.distance().to_bits(),
                par.distance().to_bits(),
                "distance diverged at chunk {c}: {} vs {}",
                seq.distance(),
                par.distance()
            );
        }
        par.validate().unwrap();
        assert_eq!(
            sorted_edges(&seq.into_graph()),
            sorted_edges(&par.into_graph()),
            "edge multisets diverged"
        );
    }

    #[test]
    fn matches_sequential_across_thread_counts() {
        for threads in [1, 2, 4] {
            let g = social(1);
            let props = LocalProperties::compute(&g);
            let target: Vec<f64> = props
                .clustering_by_degree
                .iter()
                .map(|&c| c * 0.5)
                .collect();
            assert_matches_sequential(g, &target, 42, threads, DEFAULT_BLOCK, &[1500, 700, 801]);
        }
    }

    #[test]
    fn tiny_blocks_force_replay_and_still_match() {
        // Zero-clustering target accepts aggressively early on, so with
        // block sizes this small nearly every block replays its tail.
        let g = social(2);
        let target = vec![0.0; g.max_degree() + 1];
        for block in [1, 2, 3, 7] {
            assert_matches_sequential(g.clone(), &target, 7, 2, block, &[900, 350]);
        }
    }

    #[test]
    fn attempts_not_divisible_by_block() {
        let g = social(3);
        let target = vec![0.0; g.max_degree() + 1];
        assert_matches_sequential(g, &target, 9, 2, 64, &[1, 63, 64, 129, 500]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let g = social(4);
        let target = vec![0.0; g.max_degree() + 1];
        let edges: Vec<_> = g.edges().collect();
        let eng = ParallelRewireEngine::new(g, edges, &target, 0);
        assert!(eng.num_threads() >= 1);
        assert_eq!(eng.block_size(), DEFAULT_BLOCK);
    }

    #[test]
    fn no_candidates_is_a_noop() {
        let g = social(5);
        let before = sorted_edges(&g);
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = ParallelRewireEngine::new(g, Vec::new(), &target, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let stats = eng.run(500.0, &mut rng);
        assert_eq!(stats.accepted, 0);
        assert_eq!(sorted_edges(&eng.into_graph()), before);
    }

    #[test]
    fn run_scales_attempts_by_rc() {
        let g = social(6);
        let m = g.num_edges() as u64;
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = ParallelRewireEngine::new(g, edges, &target, 2);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let stats = eng.run(2.0, &mut rng);
        assert_eq!(stats.attempts, 2 * m);
        assert_eq!(stats.accepted + stats.skipped, 2 * m);
    }
}
