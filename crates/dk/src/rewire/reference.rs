//! Apply-rollback reference implementation of the rewiring engine.
//!
//! This is the pre-optimization design kept on purpose: every swap attempt
//! applies all four edge toggles to the graph **and** the multiplicity
//! index (computing triangle deltas from common-neighbor scans as it
//! goes), allocates a fresh hash map for the touched nodes, and — in the
//! common rejected case — performs four more mutating toggles to roll
//! everything back.
//!
//! It exists for two jobs:
//!
//! * **Equivalence oracle.** [`ApplyRollbackEngine`] shares
//!   `EngineCore`'s swap picking (identical RNG-draw order) and
//!   `EngineCore::fold_decide` (identical float-operation order) with
//!   the production [`RewireEngine`](crate::rewire::RewireEngine), so for
//!   the same seed the two must produce the same accept/reject sequence,
//!   the same final edge multiset, and a bitwise-identical final distance.
//!   Property tests in `crates/dk/tests` assert exactly that.
//! * **Perf baseline.** The `rewire_attempts_per_sec` micro-benchmark
//!   measures both engines; the evaluate-then-commit engine must beat this
//!   one by the margin recorded in `BENCH_rewire.json`.

use super::{EngineCore, RewireStats, SwapPick};
use sgr_graph::{Graph, NodeId};
use sgr_util::scratch::ScratchAccum;
use sgr_util::{FxHashMap, Xoshiro256pp};

/// The apply-rollback engine; see the module docs.
pub struct ApplyRollbackEngine {
    core: EngineCore,
    /// Per-degree predicted sums for the shared decision fold.
    scratch_s: ScratchAccum<f64>,
}

impl ApplyRollbackEngine {
    /// Mirror of [`RewireEngine::new`](crate::rewire::RewireEngine::new).
    pub fn new(graph: Graph, candidates: Vec<(NodeId, NodeId)>, target_c: &[f64]) -> Self {
        let core = EngineCore::new(graph, candidates, target_c);
        let degrees = core.s.len();
        Self {
            core,
            scratch_s: ScratchAccum::with_keys(degrees),
        }
    }

    /// Current normalized distance `D`.
    pub fn distance(&self) -> f64 {
        self.core.distance()
    }

    /// Number of rewirable edge slots.
    pub fn num_candidates(&self) -> usize {
        self.core.slots.len()
    }

    /// Runs `R = ceil(rc · |Ẽ_rew|)` attempts.
    pub fn run(&mut self, rc: f64, rng: &mut Xoshiro256pp) -> RewireStats {
        let attempts = (rc * self.core.slots.len() as f64).ceil() as u64;
        self.run_attempts(attempts, rng)
    }

    /// Runs exactly `attempts` swap attempts.
    pub fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        let mut stats = RewireStats {
            attempts,
            initial_distance: self.distance(),
            ..Default::default()
        };
        if self.core.slots.len() < 2 {
            stats.skipped = attempts;
            stats.final_distance = self.distance();
            return stats;
        }
        for _ in 0..attempts {
            if self.attempt(rng) {
                stats.accepted += 1;
            } else {
                stats.skipped += 1;
            }
        }
        stats.final_distance = self.distance();
        stats
    }

    /// One apply-rollback swap attempt; returns whether it was accepted.
    pub fn attempt(&mut self, rng: &mut Xoshiro256pp) -> bool {
        let Some(pick) = self.core.pick_swap(rng) else {
            return false;
        };
        let SwapPick {
            vi, vj, vi2, vj2, ..
        } = pick;

        // Apply the four edge toggles incrementally (mutating the graph
        // and the index), tracking Δt in a per-attempt hash map.
        let mut touched: FxHashMap<NodeId, i64> = FxHashMap::default();
        self.toggle_edge(vi, vj, -1, &mut touched);
        self.toggle_edge(vi2, vj2, -1, &mut touched);
        self.toggle_edge(vi, vj2, 1, &mut touched);
        self.toggle_edge(vi2, vj, 1, &mut touched);

        // Shared decision fold on node-sorted deltas (bitwise-identical to
        // the evaluate-then-commit engine's).
        let mut pairs: Vec<(NodeId, i64)> = touched.iter().map(|(&n, &d)| (n, d)).collect();
        pairs.sort_unstable();
        let new_raw = self.core.fold_decide(&pairs, &mut self.scratch_s);

        if new_raw < self.core.dist_raw {
            self.core.commit_decision(&pairs, &self.scratch_s, new_raw);
            self.core.commit_slot_swap(&pick);
            true
        } else {
            // Reject: roll the graph and the index back with four more
            // mutating toggles (their scans are pure waste — that is the
            // point of this baseline).
            let mut untouched: FxHashMap<NodeId, i64> = FxHashMap::default();
            self.toggle_edge(vi, vj2, -1, &mut untouched);
            self.toggle_edge(vi2, vj, -1, &mut untouched);
            self.toggle_edge(vi, vj, 1, &mut untouched);
            self.toggle_edge(vi2, vj2, 1, &mut untouched);
            false
        }
    }

    /// Adds (`sign = +1`) or removes (`-1`) one copy of edge `{u, v}`,
    /// updating graph + index and accumulating triangle deltas into
    /// `touched`. Δt is computed on the state *without* the toggled copy.
    fn toggle_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        sign: i64,
        touched: &mut FxHashMap<NodeId, i64>,
    ) {
        let core = &mut self.core;
        if u == v {
            // Self-loops take part in no triangle.
            if sign < 0 {
                core.graph.remove_edge(u, u);
                core.idx.remove_edge(u, u);
            } else {
                core.graph.add_edge(u, u);
                core.idx.add_edge(u, u);
            }
            return;
        }
        if sign < 0 {
            core.graph.remove_edge(u, v);
            core.idx.remove_edge(u, v);
        }
        // Scan the endpoint with the smaller degree (O(1) via deg[]).
        let (x, y) = if core.deg[u as usize] <= core.deg[v as usize] {
            (u, v)
        } else {
            (v, u)
        };
        let mut common = 0i64;
        // Collect to a fresh Vec (per-attempt allocation — baseline cost).
        let entries: Vec<(NodeId, u32)> = core
            .idx
            .entries(x)
            .filter(|&(w, _)| w != u && w != v)
            .collect();
        for (w, a_xw) in entries {
            let a_yw = core.idx.get(y, w);
            if a_yw > 0 {
                let prod = a_xw as i64 * a_yw as i64;
                common += prod;
                *touched.entry(w).or_insert(0) += sign * prod;
            }
        }
        *touched.entry(u).or_insert(0) += sign * common;
        *touched.entry(v).or_insert(0) += sign * common;
        if sign > 0 {
            core.graph.add_edge(u, v);
            core.idx.add_edge(u, v);
        }
    }

    /// Releases the rewired graph.
    pub fn into_graph(self) -> Graph {
        self.core.graph
    }

    /// Full consistency check (see `EngineCore::validate`).
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()
    }
}
