//! Ownership partitioning of the rewiring degree-class space.
//!
//! The sharded parallel engine routes every swap evaluation to exactly
//! one worker, decided by the **degree class** of the pick's first
//! endpoint (both first endpoints of a valid pick share that degree, so
//! the route is well defined). [`ShardPartitioner`] computes the class →
//! shard map once, at engine construction, and the map never changes
//! during a run:
//!
//! * A pick lands in class `k` with probability proportional to the
//!   number of candidate `(slot, side)` entries whose endpoint has
//!   degree `k` — the length of the engine's degree bucket `k`.
//! * Accepted swaps move entries **between** buckets one-out/one-in
//!   (`commit_slot_swap`), so every bucket's *length* is invariant under
//!   rewiring. The weights the partition balances are therefore exact
//!   for the whole run, not a decaying estimate.
//!
//! Classes are assigned greedily, heaviest first, to the currently
//! lightest shard (longest-processing-time rule): the heaviest shard
//! carries at most `total/shards + max_weight`, which is near-balanced
//! whenever no single degree class dominates the candidate set. The
//! assignment is a pure function of `(weights, shards)` — same inputs,
//! same map, on every host — so routing decisions are reproducible and
//! two engines at the same thread count always agree on ownership.

/// Deterministic degree-class → shard map; see the module docs.
#[derive(Clone, Debug)]
pub struct ShardPartitioner {
    /// `assign[k]` — the shard that owns degree class `k`.
    assign: Vec<u32>,
    shards: u32,
}

impl ShardPartitioner {
    /// Partitions classes `0..weights.len()` into `shards` shards
    /// (`shards` is clamped to at least 1), balancing the total weight
    /// per shard greedily: classes are placed heaviest first (ties by
    /// lower class index) onto the lightest shard so far (ties by lower
    /// shard id). Zero-weight classes are assigned too — the map is
    /// total over the class space.
    pub fn new(weights: &[u64], shards: usize) -> Self {
        let shards = shards.max(1).min(u32::MAX as usize) as u32;
        let mut assign = vec![0u32; weights.len()];
        if shards > 1 {
            let mut order: Vec<u32> = (0..weights.len() as u32).collect();
            order.sort_unstable_by_key(|&k| (std::cmp::Reverse(weights[k as usize]), k));
            let mut load = vec![0u64; shards as usize];
            for &k in &order {
                let mut best = 0usize;
                for s in 1..load.len() {
                    if load[s] < load[best] {
                        best = s;
                    }
                }
                assign[k as usize] = best as u32;
                load[best] += weights[k as usize];
            }
        }
        Self { assign, shards }
    }

    /// Number of shards the space is partitioned into (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards as usize
    }

    /// Number of degree classes covered by the map.
    pub fn num_classes(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning degree class `class`; always `< num_shards()`.
    ///
    /// # Panics
    /// Panics if `class >= num_classes()`.
    #[inline]
    pub fn shard_of(&self, class: usize) -> u32 {
        self.assign[class]
    }

    /// Total weight routed to each shard under `weights` (which must be
    /// the slice the partition was built from to be meaningful).
    pub fn loads(&self, weights: &[u64]) -> Vec<u64> {
        let mut load = vec![0u64; self.shards as usize];
        for (k, &w) in weights.iter().enumerate() {
            load[self.assign[k] as usize] += w;
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let p = ShardPartitioner::new(&[5, 0, 3, 9], 1);
        assert_eq!(p.num_shards(), 1);
        for k in 0..4 {
            assert_eq!(p.shard_of(k), 0);
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let p = ShardPartitioner::new(&[1, 2], 0);
        assert_eq!(p.num_shards(), 1);
    }

    #[test]
    fn greedy_balance_bound_holds() {
        let weights: Vec<u64> = (0..40).map(|k| (k as u64 * 13 + 7) % 101).collect();
        for shards in [2usize, 3, 4, 8] {
            let p = ShardPartitioner::new(&weights, shards);
            let loads = p.loads(&weights);
            let total: u64 = weights.iter().sum();
            let max_w = *weights.iter().max().unwrap();
            let bound = total / shards as u64 + max_w;
            assert!(
                loads.iter().all(|&l| l <= bound),
                "loads {loads:?} exceed LPT bound {bound} at {shards} shards"
            );
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let weights: Vec<u64> = (0..25).map(|k| (k as u64 * 31) % 17).collect();
        let a = ShardPartitioner::new(&weights, 4);
        let b = ShardPartitioner::new(&weights, 4);
        for k in 0..weights.len() {
            assert_eq!(a.shard_of(k), b.shard_of(k));
        }
    }
}
