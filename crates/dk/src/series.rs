//! Standalone dK-series generators (0K, 1K, 2K, 2.5K).
//!
//! These are the classical full-information generators: they *measure* the
//! required statistics from a given graph (no sampling involved) and
//! produce a random graph preserving them. They double as extension
//! features and as reference implementations for the restoration tests —
//! e.g. the 2K generator exercises the same stub-matching engine as the
//! paper's Algorithm 5 with an empty subgraph.

use crate::construct::{wire_stubs, DkError};
use crate::extract::joint_degree_matrix;
use crate::rewire::{RewireEngine, RewireStats};
use sgr_graph::{DegreeVector, Graph, NodeId};
use sgr_props::local::LocalProperties;
use sgr_util::{FxHashMap, Xoshiro256pp};

/// 0K: a random multigraph with the same `n` and `m` (hence `k̄`) as the
/// input statistics — uniform stub pairing over an `n`-node graph.
pub fn generate_0k(n: usize, m: usize, rng: &mut Xoshiro256pp) -> Graph {
    let mut g = Graph::with_nodes(n);
    if n == 0 {
        return g;
    }
    for _ in 0..m {
        let u = rng.gen_range(n) as NodeId;
        let v = rng.gen_range(n) as NodeId;
        g.add_edge(u, v);
    }
    g
}

/// 1K: the configuration model — a uniform random pairing of degree
/// stubs realizing the given degree vector (multi-edges and loops allowed,
/// per the paper's model).
///
/// # Errors
/// Fails with [`DkError::LeftoverStubs`] if the degree sum is odd
/// (condition DV-2).
pub fn generate_1k(dv: &DegreeVector, rng: &mut Xoshiro256pp) -> Result<Graph, DkError> {
    let n: usize = dv.iter().sum();
    let mut g = Graph::with_nodes(n);
    // Stub list: node id repeated degree times.
    let mut stubs: Vec<NodeId> = Vec::new();
    let mut node = 0u32;
    for (k, &count) in dv.iter().enumerate() {
        for _ in 0..count {
            for _ in 0..k {
                stubs.push(node);
            }
            node += 1;
        }
    }
    if !stubs.len().is_multiple_of(2) {
        return Err(DkError::LeftoverStubs { count: 1 });
    }
    sgr_util::sampling::shuffle(&mut stubs, rng);
    for pair in stubs.chunks_exact(2) {
        g.add_edge(pair[0], pair[1]);
    }
    Ok(g)
}

/// 2K: a random graph realizing the degree vector *and* joint degree
/// matrix of `source` (measured, then rebuilt from scratch with the
/// stub-matching engine).
pub fn generate_2k(source: &Graph, rng: &mut Xoshiro256pp) -> Result<Graph, DkError> {
    let jdm = joint_degree_matrix(source);
    let target_deg: Vec<u32> = source.nodes().map(|u| source.degree(u) as u32).collect();
    let mut g = Graph::with_nodes(source.num_nodes());
    wire_stubs(&mut g, &target_deg, &jdm, rng)?;
    Ok(g)
}

/// 2.5K: 2K plus rewiring toward the source's degree-dependent
/// clustering. `rc` is the rewiring-attempts coefficient (`R_C` in the
/// paper; 500 there). Returns the graph and the rewiring statistics.
pub fn generate_25k(
    source: &Graph,
    rc: f64,
    rng: &mut Xoshiro256pp,
) -> Result<(Graph, RewireStats), DkError> {
    let g2k = generate_2k(source, rng)?;
    let target = LocalProperties::compute(source).clustering_by_degree;
    let candidates: Vec<(NodeId, NodeId)> = g2k.edges().collect();
    let mut engine = RewireEngine::new(g2k, candidates, &target);
    let stats = engine.run(rc, rng);
    Ok((engine.into_graph(), stats))
}

/// Measures how much of a JDM's mass two graphs share — a convenience for
/// tests and ablations: `1 - L1(jdm_a, jdm_b)/(2m)` (1.0 = identical).
pub fn jdm_similarity(a: &Graph, b: &Graph) -> f64 {
    let ja = joint_degree_matrix(a);
    let jb = joint_degree_matrix(b);
    let mut keys: FxHashMap<(u32, u32), ()> = FxHashMap::default();
    for &k in ja.keys().chain(jb.keys()) {
        keys.insert(k, ());
    }
    let mut diff = 0u64;
    for (&(k, k2), _) in keys.iter() {
        if k > k2 {
            continue;
        }
        let x = ja.get(&(k, k2)).copied().unwrap_or(0);
        let y = jb.get(&(k, k2)).copied().unwrap_or(0);
        diff += x.abs_diff(y);
    }
    let total = (a.num_edges() + b.num_edges()) as f64;
    if total == 0.0 {
        1.0
    } else {
        1.0 - diff as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(2718)
    }

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(400, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn zero_k_preserves_counts() {
        let g = generate_0k(100, 250, &mut rng());
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
        assert!((g.average_degree() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn one_k_preserves_degree_vector() {
        let src = social(1);
        let dv = src.degree_vector();
        let g = generate_1k(&dv, &mut rng()).unwrap();
        assert_eq!(g.degree_vector(), dv);
        assert_eq!(g.num_edges(), src.num_edges());
        g.validate().unwrap();
    }

    #[test]
    fn one_k_rejects_odd_sum() {
        let dv = vec![0usize, 3]; // three degree-1 nodes
        assert!(generate_1k(&dv, &mut rng()).is_err());
    }

    #[test]
    fn two_k_preserves_jdm() {
        let src = social(2);
        let g = generate_2k(&src, &mut rng()).unwrap();
        assert_eq!(g.degree_vector(), src.degree_vector());
        assert_eq!(joint_degree_matrix(&g), joint_degree_matrix(&src));
        assert!((jdm_similarity(&src, &g) - 1.0).abs() < 1e-12);
        g.validate().unwrap();
    }

    #[test]
    fn two_k_randomizes_clustering() {
        // 2K destroys most clustering relative to a Holme–Kim source.
        let src = social(3);
        let g = generate_2k(&src, &mut rng()).unwrap();
        let c_src = LocalProperties::compute(&src).mean_clustering;
        let c_gen = LocalProperties::compute(&g).mean_clustering;
        assert!(
            c_gen < 0.6 * c_src,
            "2K clustering {c_gen} not much below source {c_src}"
        );
    }

    #[test]
    fn two_five_k_restores_clustering() {
        let src = social(4);
        let (g, stats) = generate_25k(&src, 30.0, &mut rng()).unwrap();
        // DV and JDM still exact.
        assert_eq!(g.degree_vector(), src.degree_vector());
        assert_eq!(joint_degree_matrix(&g), joint_degree_matrix(&src));
        // Clustering moved substantially toward the target.
        assert!(
            stats.final_distance < 0.6 * stats.initial_distance,
            "rewiring only got D from {} to {}",
            stats.initial_distance,
            stats.final_distance
        );
    }

    #[test]
    fn jdm_similarity_detects_difference() {
        let a = sgr_gen::classic::star(4);
        let b = sgr_gen::classic::cycle(5);
        assert!(jdm_similarity(&a, &b) < 0.5);
        assert!((jdm_similarity(&a, &a) - 1.0).abs() < 1e-12);
    }
}
