//! Stub-matching construction: wiring free half-edges class by class.
//!
//! This is the engine behind both the paper's Algorithm 5 (extend the
//! sampled subgraph to the target degree vector / joint degree matrix) and
//! the from-empty construction used by Gjoka et al.'s method and the 2K
//! generator: each node with target degree `d*` and current degree `d`
//! gets `d* - d` free half-edges ("stubs"), and for every degree pair
//! `(k, k')` the requested number of edges is created by connecting a
//! uniformly random free stub of class `k` with one of class `k'`.
//!
//! Two engines implement that contract:
//!
//! * [`wire_stubs`] / [`wire_stubs_with`] — the production engine. All
//!   per-class stub pools live in one flat arena
//!   ([`sgr_util::arena::FlatPools`]) with per-class offset ranges and
//!   swap-remove draws against per-class live lengths; every internal
//!   buffer sits in a reusable [`ConstructScratch`], so a warm call
//!   performs **zero heap allocations** inside the matcher.
//! * [`reference::wire_stubs`] — the original per-class `Vec<Vec<_>>`
//!   implementation, kept as the oracle the property suite
//!   (`crates/dk/tests/construct_proptests.rs`) holds the flat engine
//!   bitwise-equal to.
//!
//! # Determinism model
//!
//! The matcher's output is a pure function of `(graph, target_deg, add,
//! rng seed)`; both engines honor the same contract, draw for draw:
//!
//! * **Pair order.** Requested class pairs are wired in ascending
//!   `(k, k')` order over the upper-triangular keys of `add` (`k ≤ k'`;
//!   symmetric duplicates and zero counts are ignored), each pair's
//!   edges placed consecutively.
//! * **Stub pool order.** Class `k`'s pool initially holds each node's id
//!   repeated once per free stub, in ascending node order; removal is
//!   `swap_remove` (the class's last live stub fills the drawn slot).
//! * **RNG stream.** A diagonal edge (`k = k'`) consumes exactly two
//!   draws — `gen_range(len)` then `gen_range(len - 1)`, the second
//!   shifted past the first so the two *slots* are always distinct — and
//!   an off-diagonal edge consumes `gen_range(len_k)` then
//!   `gen_range(len_k')`. Nothing else consumes RNG, so the generator
//!   leaves the matcher in the same state under either engine (the
//!   end-to-end golden test in `crates/core/tests/pipeline_golden.rs`
//!   pins the whole downstream stream).
//! * **Retry policy: none.** Draws are committed as drawn. A pair of
//!   stubs that forms a parallel edge is kept, and a diagonal-class draw
//!   that picks two stubs of the *same* node (possible whenever a node
//!   holds ≥ 2 free stubs in its class) is kept as a self-loop; both are
//!   artifacts the rewiring phase resolves, and both are surfaced by
//!   [`MatchStats`] and the returned edge list rather than silently
//!   retried. Distinct *slots* are guaranteed, so a node with at most
//!   one free stub can never acquire a self-loop here — the no-self-loop
//!   invariant the property suite checks.
//! * **Saturation.** A class that cannot place a requested pair — fewer
//!   than two live stubs on a diagonal draw, an empty side on an
//!   off-diagonal draw, or a class beyond the largest target degree —
//!   fails with [`DkError::OutOfStubs`] carrying the pair, how many of
//!   its edges were already placed, and how many were requested; it
//!   never silently skips the remainder.

use crate::extract::JointDegreeMatrix;
use sgr_graph::{Graph, NodeId};
use sgr_util::arena::FlatPools;
use sgr_util::Xoshiro256pp;

pub mod reference;

/// Errors from stub matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DkError {
    /// A node's target degree is below its current degree.
    TargetBelowCurrent {
        node: NodeId,
        current: usize,
        target: usize,
    },
    /// A degree class ran out of free stubs while wiring `(k, k')`:
    /// `placed` of the `requested` edges were wired before the pool ran
    /// dry (also raised with `placed = 0` when a requested class exceeds
    /// the largest target degree, i.e. has no pool at all).
    OutOfStubs {
        k: u32,
        k2: u32,
        placed: u64,
        requested: u64,
    },
    /// Free stubs remained after wiring every requested edge, i.e. the
    /// inputs violated the marginal identity (JDM-3).
    LeftoverStubs { count: usize },
    /// A target degree vector failed its dominance condition (DV-3):
    /// `n'(k) > n*(k)`. Detected with `checked_sub` where the free-node
    /// count `n*(k) − n'(k)` is formed — in release mode the raw
    /// subtraction used to wrap around and request ~1.8e19 nodes.
    DvDominanceViolated { k: u32, n_star: u64, n_prime: u64 },
    /// A target joint degree matrix failed its dominance condition
    /// (JDM-4): `m'(k,k') > m*(k,k')`. Same wraparound hazard on the
    /// added-edge count `m*(k,k') − m'(k,k')`.
    JdmDominanceViolated {
        k: u32,
        k2: u32,
        m_star: u64,
        m_prime: u64,
    },
}

impl std::fmt::Display for DkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DkError::TargetBelowCurrent {
                node,
                current,
                target,
            } => write!(
                f,
                "node {node} has degree {current} above its target {target}"
            ),
            DkError::OutOfStubs {
                k,
                k2,
                placed,
                requested,
            } => {
                write!(
                    f,
                    "no free stub left while wiring degree pair ({k}, {k2}): \
                     placed {placed} of {requested} requested edges"
                )
            }
            DkError::LeftoverStubs { count } => {
                write!(f, "{count} free stubs left unwired (JDM-3 violated)")
            }
            DkError::DvDominanceViolated { k, n_star, n_prime } => write!(
                f,
                "degree vector dominance (DV-3) violated at k = {k}: \
                 n*(k) = {n_star} < n'(k) = {n_prime}"
            ),
            DkError::JdmDominanceViolated {
                k,
                k2,
                m_star,
                m_prime,
            } => write!(
                f,
                "joint degree matrix dominance (JDM-4) violated at ({k}, {k2}): \
                 m*(k,k') = {m_star} < m'(k,k') = {m_prime}"
            ),
        }
    }
}

impl std::error::Error for DkError {}

/// Counters from one stub-matching run (identical under both engines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Edges added (the length of the returned edge list).
    pub edges: usize,
    /// How many of those edges are self-loops — diagonal-class draws that
    /// picked two free stubs of the same node (see the module-level
    /// determinism model: such draws are kept, not retried).
    pub self_loops: usize,
}

/// Reusable buffers for [`wire_stubs_with`]: the flat stub arena, the
/// per-class stub counts, the sorted pair worklist, and the output edge
/// list. A warm scratch (one whose buffers have grown to the workload's
/// high-water mark) makes the matcher allocation-free; keep one alive
/// across the repeated `construct` / `gjoka::generate` calls of a restore
/// loop (`sgr_core::restore_with` and `generate_with` thread it through).
#[derive(Clone, Debug, Default)]
pub struct ConstructScratch {
    /// Free-stub pools, one class per target degree, in one flat arena.
    pools: FlatPools<NodeId>,
    /// Per-class free-stub counts (layout pass for `pools`).
    counts: Vec<usize>,
    /// Requested `((k, k'), count)` pairs, sorted ascending.
    pairs: Vec<((u32, u32), u64)>,
    /// Added edges, normalized `(min, max)`.
    added: Vec<(NodeId, NodeId)>,
}

impl ConstructScratch {
    /// Creates an empty scratch; the first call sizes every buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the last [`wire_stubs_with`] call's added-edge list out of
    /// the scratch, leaving an empty buffer behind (the next wiring call
    /// re-reserves it to exact size).
    ///
    /// For callers that need to *keep* the edges past the scratch's next
    /// use: a move here replaces the `to_vec()` copy they would
    /// otherwise make from the borrowed [`WireOutcome`] slice.
    pub fn take_added(&mut self) -> Vec<(NodeId, NodeId)> {
        std::mem::take(&mut self.added)
    }
}

/// Wires stubs on top of `g` (possibly non-empty), in place.
///
/// * `target_deg[u]` — the target degree `d*_u` of every node;
/// * `add[(k, k')]` — how many **new** edges to create between target-
///   degree classes `k` and `k'` (upper-triangular keys `k ≤ k'` are
///   read; symmetric duplicates are ignored).
///
/// Returns the list of added edges (the rewiring phase's candidate set).
/// On success the graph preserves `target_deg` exactly, and its JDM (with
/// respect to *target* degrees) equals the prior JDM plus `add`.
///
/// Convenience wrapper over [`wire_stubs_with`] with a fresh
/// [`ConstructScratch`]; callers in a loop should hold a scratch and call
/// `wire_stubs_with` directly to make warm calls allocation-free.
pub fn wire_stubs(
    g: &mut Graph,
    target_deg: &[u32],
    add: &JointDegreeMatrix,
    rng: &mut Xoshiro256pp,
) -> Result<Vec<(NodeId, NodeId)>, DkError> {
    let mut scratch = ConstructScratch::new();
    wire_stubs_with(g, target_deg, add, rng, &mut scratch)?;
    // The scratch is ours alone: move the edge list out instead of
    // copying it.
    Ok(std::mem::take(&mut scratch.added))
}

/// Successful outcome of [`wire_stubs_with`]: the added-edge list
/// (borrowing the scratch until its next use) and the matcher counters.
pub type WireOutcome<'s> = (&'s [(NodeId, NodeId)], MatchStats);

/// [`wire_stubs`] against caller-owned scratch: the flat-arena engine.
///
/// Behaviorally identical to [`reference::wire_stubs`] — same RNG draw
/// sequence, same pair ordering, same errors, bitwise-identical output
/// (see the module-level determinism model) — but every internal buffer
/// lives in `scratch`, so a warm call performs zero heap allocations
/// inside the matcher. The returned edge slice borrows `scratch` and is
/// valid until its next use.
pub fn wire_stubs_with<'s>(
    g: &mut Graph,
    target_deg: &[u32],
    add: &JointDegreeMatrix,
    rng: &mut Xoshiro256pp,
    scratch: &'s mut ConstructScratch,
) -> Result<WireOutcome<'s>, DkError> {
    assert_eq!(target_deg.len(), g.num_nodes(), "target length mismatch");
    let ConstructScratch {
        pools,
        counts,
        pairs,
        added,
    } = scratch;

    let k_max = target_deg.iter().copied().max().unwrap_or(0) as usize;
    // Layout pass: free-stub count per target-degree class, surfacing a
    // target below the current degree at the first offending node (the
    // same node the reference engine reports).
    counts.clear();
    counts.resize(k_max + 1, 0);
    let mut total_stubs = 0usize;
    for u in g.nodes() {
        let cur = g.degree(u);
        let tgt = target_deg[u as usize] as usize;
        if tgt < cur {
            return Err(DkError::TargetBelowCurrent {
                node: u,
                current: cur,
                target: tgt,
            });
        }
        counts[tgt] += tgt - cur;
        total_stubs += tgt - cur;
    }
    // Every node ends at exactly its target degree, so the adjacency
    // lists' final sizes are known now: reserving once up front turns
    // the wiring loop's ~log(deg) growth reallocations per node into
    // none at all (and is a no-op when the caller pre-reserved).
    g.reserve_neighbors(target_deg);
    // Fill pass: node id repeated once per free stub, ascending node
    // order within each class — the reference engine's pool order.
    pools.reset(counts);
    for u in g.nodes() {
        let tgt = target_deg[u as usize] as usize;
        for _ in 0..(tgt - g.degree(u)) {
            pools.push(tgt, u);
        }
    }

    // Deterministic iteration order over the requested pairs.
    pairs.clear();
    pairs.extend(
        add.iter()
            .filter(|(&(k, k2), &c)| k <= k2 && c > 0)
            .map(|(&kk, &c)| (kk, c)),
    );
    pairs.sort_unstable();

    added.clear();
    added.reserve(pairs.iter().map(|&(_, c)| c as usize).sum());
    let mut stats = MatchStats::default();
    for &((k, k2), count) in pairs.iter() {
        if k as usize > k_max || k2 as usize > k_max {
            // No node has this target degree: the class has no pool at
            // all, not merely an empty one.
            return Err(DkError::OutOfStubs {
                k,
                k2,
                placed: 0,
                requested: count,
            });
        }
        for placed in 0..count {
            let (u, v) = if k == k2 {
                let pool_len = pools.len(k as usize);
                if pool_len < 2 {
                    return Err(DkError::OutOfStubs {
                        k,
                        k2,
                        placed,
                        requested: count,
                    });
                }
                let i = rng.gen_range(pool_len);
                let mut j = rng.gen_range(pool_len - 1);
                if j >= i {
                    j += 1;
                }
                // Remove the higher index first so the lower stays valid.
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                let u = pools.swap_remove(k as usize, hi);
                let v = pools.swap_remove(k as usize, lo);
                (u, v)
            } else {
                if pools.is_empty(k as usize) || pools.is_empty(k2 as usize) {
                    return Err(DkError::OutOfStubs {
                        k,
                        k2,
                        placed,
                        requested: count,
                    });
                }
                let i = rng.gen_range(pools.len(k as usize));
                let j = rng.gen_range(pools.len(k2 as usize));
                let u = pools.swap_remove(k as usize, i);
                let v = pools.swap_remove(k2 as usize, j);
                (u, v)
            };
            g.add_edge(u, v);
            added.push(if u <= v { (u, v) } else { (v, u) });
            stats.edges += 1;
            stats.self_loops += usize::from(u == v);
            total_stubs -= 2;
        }
    }
    if total_stubs != 0 {
        return Err(DkError::LeftoverStubs { count: total_stubs });
    }
    Ok((&added[..], stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{jdm_matches_degree_vector, joint_degree_matrix};
    use sgr_util::FxHashMap;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(99)
    }

    #[test]
    fn build_star_from_empty() {
        let mut g = Graph::with_nodes(5);
        let target = [4u32, 1, 1, 1, 1];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 4), 4);
        add.insert((4, 1), 4); // symmetric duplicate must be ignored
        let edges = wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert_eq!(edges.len(), 4);
        assert_eq!(g.degree(0), 4);
        for u in 1..5 {
            assert_eq!(g.degree(u), 1);
        }
        g.validate().unwrap();
    }

    #[test]
    fn extend_existing_subgraph() {
        // Path 0-1-2 exists; extend so that all five nodes reach degree 2
        // by adding (2,2)-class edges.
        let mut g = Graph::from_edges(5, &[(0, 1), (1, 2)]);
        let target = [2u32, 2, 2, 2, 2];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((2, 2), 3); // 5·2/2 = 5 edges total, 2 exist
        wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        // Original path edges are still present.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        g.validate().unwrap();
    }

    #[test]
    fn jdm_of_result_matches_request() {
        // From empty: degree vector {n(1)=4, n(2)=2, n(3)=2}; JDM chosen
        // to satisfy the marginals: s(1)=4, s(2)=4, s(3)=6.
        let mut g = Graph::with_nodes(8);
        let target = [1u32, 1, 1, 1, 2, 2, 3, 3];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 3), 4); // s(1): 4, s(3): 4
        add.insert((2, 2), 1); // s(2): 2
        add.insert((2, 3), 2); // s(2): +2 = 4, s(3): +2 = 6
        let added = wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert_eq!(added.len(), 7);
        let jdm = joint_degree_matrix(&g);
        // Degrees equal targets, so measured JDM = requested.
        assert_eq!(jdm.get(&(1, 3)).copied(), Some(4));
        assert_eq!(jdm.get(&(2, 2)).copied(), Some(1));
        assert_eq!(jdm.get(&(2, 3)).copied(), Some(2));
        assert!(jdm_matches_degree_vector(&jdm, &g.degree_vector()));
    }

    #[test]
    fn error_on_target_below_current() {
        let mut g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        let target = [1u32, 2];
        let add: JointDegreeMatrix = FxHashMap::default();
        match wire_stubs(&mut g, &target, &add, &mut rng()) {
            Err(DkError::TargetBelowCurrent { node: 0, .. }) => {}
            other => panic!("expected TargetBelowCurrent, got {other:?}"),
        }
    }

    #[test]
    fn error_on_out_of_stubs() {
        let mut g = Graph::with_nodes(2);
        let target = [1u32, 1];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 1), 2); // needs 4 stubs, only 2 exist
        match wire_stubs(&mut g, &target, &add, &mut rng()) {
            Err(DkError::OutOfStubs {
                k: 1,
                k2: 1,
                placed: 1,
                requested: 2,
            }) => {}
            other => panic!("expected OutOfStubs with placement context, got {other:?}"),
        }
    }

    #[test]
    fn error_on_class_beyond_k_max() {
        // A requested class with no pool at all (beyond the largest
        // target degree) must be a typed error, not an index panic.
        let mut g = Graph::with_nodes(2);
        let target = [1u32, 1];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 7), 1);
        match wire_stubs(&mut g, &target, &add, &mut rng()) {
            Err(DkError::OutOfStubs {
                k: 1,
                k2: 7,
                placed: 0,
                requested: 1,
            }) => {}
            other => panic!("expected OutOfStubs, got {other:?}"),
        }
    }

    #[test]
    fn error_on_leftover_stubs() {
        let mut g = Graph::with_nodes(2);
        let target = [1u32, 1];
        let add: JointDegreeMatrix = FxHashMap::default(); // wire nothing
        assert!(matches!(
            wire_stubs(&mut g, &target, &add, &mut rng()),
            Err(DkError::LeftoverStubs { count: 2 })
        ));
    }

    #[test]
    fn diagonal_class_needs_two_distinct_stub_slots() {
        // Two degree-1 nodes, one (1,1) edge: must connect them (never a
        // self-loop from picking the same stub twice).
        for seed in 0..20 {
            let mut g = Graph::with_nodes(2);
            let mut r = Xoshiro256pp::seed_from_u64(seed);
            let mut add: JointDegreeMatrix = FxHashMap::default();
            add.insert((1, 1), 1);
            wire_stubs(&mut g, &[1, 1], &add, &mut r).unwrap();
            assert!(g.has_edge(0, 1));
            assert_eq!(g.num_self_loops(), 0);
        }
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        // Same seed through a fresh scratch and a reused one: identical
        // output and stats.
        let mut scratch = ConstructScratch::new();
        let mut last: Option<(Vec<(NodeId, NodeId)>, MatchStats)> = None;
        for round in 0..3 {
            let mut g = Graph::with_nodes(8);
            let target = [1u32, 1, 1, 1, 2, 2, 3, 3];
            let mut add: JointDegreeMatrix = FxHashMap::default();
            add.insert((1, 3), 4);
            add.insert((2, 2), 1);
            add.insert((2, 3), 2);
            let mut r = Xoshiro256pp::seed_from_u64(1234);
            let (edges, stats) =
                wire_stubs_with(&mut g, &target, &add, &mut r, &mut scratch).unwrap();
            let run = (edges.to_vec(), stats);
            if let Some(prev) = &last {
                assert_eq!(prev, &run, "round {round} diverged under scratch reuse");
            }
            last = Some(run);
        }
    }

    use sgr_graph::Graph;
}
