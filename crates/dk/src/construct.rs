//! Stub-matching construction: wiring free half-edges class by class.
//!
//! This is the engine behind both the paper's Algorithm 5 (extend the
//! sampled subgraph to the target degree vector / joint degree matrix) and
//! the from-empty construction used by Gjoka et al.'s method and the 2K
//! generator: each node with target degree `d*` and current degree `d`
//! gets `d* - d` free half-edges ("stubs"), and for every degree pair
//! `(k, k')` the requested number of edges is created by connecting a
//! uniformly random free stub of class `k` with one of class `k'`.

use crate::extract::JointDegreeMatrix;
use sgr_graph::{Graph, NodeId};
use sgr_util::Xoshiro256pp;

/// Errors from stub matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DkError {
    /// A node's target degree is below its current degree.
    TargetBelowCurrent {
        node: NodeId,
        current: usize,
        target: usize,
    },
    /// A degree class ran out of free stubs while wiring `(k, k')`.
    OutOfStubs { k: u32, k2: u32 },
    /// Free stubs remained after wiring every requested edge, i.e. the
    /// inputs violated the marginal identity (JDM-3).
    LeftoverStubs { count: usize },
    /// A target degree vector failed its dominance condition (DV-3):
    /// `n'(k) > n*(k)`. Detected with `checked_sub` where the free-node
    /// count `n*(k) − n'(k)` is formed — in release mode the raw
    /// subtraction used to wrap around and request ~1.8e19 nodes.
    DvDominanceViolated { k: u32, n_star: u64, n_prime: u64 },
    /// A target joint degree matrix failed its dominance condition
    /// (JDM-4): `m'(k,k') > m*(k,k')`. Same wraparound hazard on the
    /// added-edge count `m*(k,k') − m'(k,k')`.
    JdmDominanceViolated {
        k: u32,
        k2: u32,
        m_star: u64,
        m_prime: u64,
    },
}

impl std::fmt::Display for DkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DkError::TargetBelowCurrent {
                node,
                current,
                target,
            } => write!(
                f,
                "node {node} has degree {current} above its target {target}"
            ),
            DkError::OutOfStubs { k, k2 } => {
                write!(f, "no free stub left while wiring degree pair ({k}, {k2})")
            }
            DkError::LeftoverStubs { count } => {
                write!(f, "{count} free stubs left unwired (JDM-3 violated)")
            }
            DkError::DvDominanceViolated { k, n_star, n_prime } => write!(
                f,
                "degree vector dominance (DV-3) violated at k = {k}: \
                 n*(k) = {n_star} < n'(k) = {n_prime}"
            ),
            DkError::JdmDominanceViolated {
                k,
                k2,
                m_star,
                m_prime,
            } => write!(
                f,
                "joint degree matrix dominance (JDM-4) violated at ({k}, {k2}): \
                 m*(k,k') = {m_star} < m'(k,k') = {m_prime}"
            ),
        }
    }
}

impl std::error::Error for DkError {}

/// Wires stubs on top of `g` (possibly non-empty), in place.
///
/// * `target_deg[u]` — the target degree `d*_u` of every node;
/// * `add[(k, k')]` — how many **new** edges to create between target-
///   degree classes `k` and `k'` (upper-triangular keys `k ≤ k'` are
///   read; symmetric duplicates are ignored).
///
/// Returns the list of added edges (the rewiring phase's candidate set).
/// On success the graph preserves `target_deg` exactly, and its JDM (with
/// respect to *target* degrees) equals the prior JDM plus `add`.
pub fn wire_stubs(
    g: &mut Graph,
    target_deg: &[u32],
    add: &JointDegreeMatrix,
    rng: &mut Xoshiro256pp,
) -> Result<Vec<(NodeId, NodeId)>, DkError> {
    assert_eq!(target_deg.len(), g.num_nodes(), "target length mismatch");
    let k_max = target_deg.iter().copied().max().unwrap_or(0) as usize;
    // Stub pools per target-degree class: node id repeated once per free
    // half-edge.
    let mut stubs: Vec<Vec<NodeId>> = vec![Vec::new(); k_max + 1];
    let mut total_stubs = 0usize;
    for u in g.nodes() {
        let cur = g.degree(u);
        let tgt = target_deg[u as usize] as usize;
        if tgt < cur {
            return Err(DkError::TargetBelowCurrent {
                node: u,
                current: cur,
                target: tgt,
            });
        }
        for _ in 0..(tgt - cur) {
            stubs[tgt].push(u);
        }
        total_stubs += tgt - cur;
    }
    // Deterministic iteration order over the requested pairs.
    let mut pairs: Vec<((u32, u32), u64)> = add
        .iter()
        .filter(|(&(k, k2), &c)| k <= k2 && c > 0)
        .map(|(&kk, &c)| (kk, c))
        .collect();
    pairs.sort_unstable();
    let mut added: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(pairs.iter().map(|&(_, c)| c as usize).sum());
    for ((k, k2), count) in pairs {
        for _ in 0..count {
            let (u, v) = if k == k2 {
                let pool_len = stubs[k as usize].len();
                if pool_len < 2 {
                    return Err(DkError::OutOfStubs { k, k2 });
                }
                let i = rng.gen_range(pool_len);
                let mut j = rng.gen_range(pool_len - 1);
                if j >= i {
                    j += 1;
                }
                // Remove the higher index first so the lower stays valid.
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                let u = stubs[k as usize].swap_remove(hi);
                let v = stubs[k as usize].swap_remove(lo);
                (u, v)
            } else {
                if stubs[k as usize].is_empty() || stubs[k2 as usize].is_empty() {
                    return Err(DkError::OutOfStubs { k, k2 });
                }
                let i = rng.gen_range(stubs[k as usize].len());
                let j = rng.gen_range(stubs[k2 as usize].len());
                let u = stubs[k as usize].swap_remove(i);
                let v = stubs[k2 as usize].swap_remove(j);
                (u, v)
            };
            g.add_edge(u, v);
            added.push(if u <= v { (u, v) } else { (v, u) });
            total_stubs -= 2;
        }
    }
    if total_stubs != 0 {
        return Err(DkError::LeftoverStubs { count: total_stubs });
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{jdm_matches_degree_vector, joint_degree_matrix};
    use sgr_util::FxHashMap;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(99)
    }

    #[test]
    fn build_star_from_empty() {
        let mut g = Graph::with_nodes(5);
        let target = [4u32, 1, 1, 1, 1];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 4), 4);
        add.insert((4, 1), 4); // symmetric duplicate must be ignored
        let edges = wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert_eq!(edges.len(), 4);
        assert_eq!(g.degree(0), 4);
        for u in 1..5 {
            assert_eq!(g.degree(u), 1);
        }
        g.validate().unwrap();
    }

    #[test]
    fn extend_existing_subgraph() {
        // Path 0-1-2 exists; extend so that all five nodes reach degree 2
        // by adding (2,2)-class edges.
        let mut g = Graph::from_edges(5, &[(0, 1), (1, 2)]);
        let target = [2u32, 2, 2, 2, 2];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((2, 2), 3); // 5·2/2 = 5 edges total, 2 exist
        wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        // Original path edges are still present.
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        g.validate().unwrap();
    }

    #[test]
    fn jdm_of_result_matches_request() {
        // From empty: degree vector {n(1)=4, n(2)=2, n(3)=2}; JDM chosen
        // to satisfy the marginals: s(1)=4, s(2)=4, s(3)=6.
        let mut g = Graph::with_nodes(8);
        let target = [1u32, 1, 1, 1, 2, 2, 3, 3];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 3), 4); // s(1): 4, s(3): 4
        add.insert((2, 2), 1); // s(2): 2
        add.insert((2, 3), 2); // s(2): +2 = 4, s(3): +2 = 6
        let added = wire_stubs(&mut g, &target, &add, &mut rng()).unwrap();
        assert_eq!(added.len(), 7);
        let jdm = joint_degree_matrix(&g);
        // Degrees equal targets, so measured JDM = requested.
        assert_eq!(jdm.get(&(1, 3)).copied(), Some(4));
        assert_eq!(jdm.get(&(2, 2)).copied(), Some(1));
        assert_eq!(jdm.get(&(2, 3)).copied(), Some(2));
        assert!(jdm_matches_degree_vector(&jdm, &g.degree_vector()));
    }

    #[test]
    fn error_on_target_below_current() {
        let mut g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        let target = [1u32, 2];
        let add: JointDegreeMatrix = FxHashMap::default();
        match wire_stubs(&mut g, &target, &add, &mut rng()) {
            Err(DkError::TargetBelowCurrent { node: 0, .. }) => {}
            other => panic!("expected TargetBelowCurrent, got {other:?}"),
        }
    }

    #[test]
    fn error_on_out_of_stubs() {
        let mut g = Graph::with_nodes(2);
        let target = [1u32, 1];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 1), 2); // needs 4 stubs, only 2 exist
        assert!(matches!(
            wire_stubs(&mut g, &target, &add, &mut rng()),
            Err(DkError::OutOfStubs { .. })
        ));
    }

    #[test]
    fn error_on_leftover_stubs() {
        let mut g = Graph::with_nodes(2);
        let target = [1u32, 1];
        let add: JointDegreeMatrix = FxHashMap::default(); // wire nothing
        assert!(matches!(
            wire_stubs(&mut g, &target, &add, &mut rng()),
            Err(DkError::LeftoverStubs { count: 2 })
        ));
    }

    #[test]
    fn diagonal_class_needs_two_distinct_stub_slots() {
        // Two degree-1 nodes, one (1,1) edge: must connect them (never a
        // self-loop from picking the same stub twice).
        for seed in 0..20 {
            let mut g = Graph::with_nodes(2);
            let mut r = Xoshiro256pp::seed_from_u64(seed);
            let mut add: JointDegreeMatrix = FxHashMap::default();
            add.insert((1, 1), 1);
            wire_stubs(&mut g, &[1, 1], &add, &mut r).unwrap();
            assert!(g.has_edge(0, 1));
            assert_eq!(g.num_self_loops(), 0);
        }
    }

    use sgr_graph::Graph;
}
