//! The original per-class `Vec<Vec<_>>` stub-matching engine, kept as the
//! oracle for the flat-arena engine.
//!
//! This is the implementation [`super::wire_stubs`] shipped with before
//! the flat-arena rewrite, unchanged in behavior: one growable pool per
//! target-degree class, allocated fresh on every call. It consumes the
//! same RNG stream, wires pairs in the same order, and raises the same
//! errors as the production engine (see the determinism model in
//! [`super`]); the property suite in
//! `crates/dk/tests/construct_proptests.rs` holds the two bitwise-equal —
//! the same oracle pattern `sgr_core::target_jdm::reference` uses for the
//! targeting engine.

use super::{DkError, MatchStats};
use crate::extract::JointDegreeMatrix;
use sgr_graph::{Graph, NodeId};
use sgr_util::Xoshiro256pp;

/// Reference [`super::wire_stubs`]: identical contract and output, fresh
/// per-class pool allocations per call. Returns the added edges and the
/// same [`MatchStats`] the production engine reports.
pub fn wire_stubs(
    g: &mut Graph,
    target_deg: &[u32],
    add: &JointDegreeMatrix,
    rng: &mut Xoshiro256pp,
) -> Result<(Vec<(NodeId, NodeId)>, MatchStats), DkError> {
    assert_eq!(target_deg.len(), g.num_nodes(), "target length mismatch");
    let k_max = target_deg.iter().copied().max().unwrap_or(0) as usize;
    // Stub pools per target-degree class: node id repeated once per free
    // half-edge.
    let mut stubs: Vec<Vec<NodeId>> = vec![Vec::new(); k_max + 1];
    let mut total_stubs = 0usize;
    for u in g.nodes() {
        let cur = g.degree(u);
        let tgt = target_deg[u as usize] as usize;
        if tgt < cur {
            return Err(DkError::TargetBelowCurrent {
                node: u,
                current: cur,
                target: tgt,
            });
        }
        for _ in 0..(tgt - cur) {
            stubs[tgt].push(u);
        }
        total_stubs += tgt - cur;
    }
    // Deterministic iteration order over the requested pairs.
    let mut pairs: Vec<((u32, u32), u64)> = add
        .iter()
        .filter(|(&(k, k2), &c)| k <= k2 && c > 0)
        .map(|(&kk, &c)| (kk, c))
        .collect();
    pairs.sort_unstable();
    let mut added: Vec<(NodeId, NodeId)> =
        Vec::with_capacity(pairs.iter().map(|&(_, c)| c as usize).sum());
    let mut stats = MatchStats::default();
    for ((k, k2), count) in pairs {
        if k as usize > k_max || k2 as usize > k_max {
            return Err(DkError::OutOfStubs {
                k,
                k2,
                placed: 0,
                requested: count,
            });
        }
        for placed in 0..count {
            let (u, v) = if k == k2 {
                let pool_len = stubs[k as usize].len();
                if pool_len < 2 {
                    return Err(DkError::OutOfStubs {
                        k,
                        k2,
                        placed,
                        requested: count,
                    });
                }
                let i = rng.gen_range(pool_len);
                let mut j = rng.gen_range(pool_len - 1);
                if j >= i {
                    j += 1;
                }
                // Remove the higher index first so the lower stays valid.
                let (hi, lo) = if i > j { (i, j) } else { (j, i) };
                let u = stubs[k as usize].swap_remove(hi);
                let v = stubs[k as usize].swap_remove(lo);
                (u, v)
            } else {
                if stubs[k as usize].is_empty() || stubs[k2 as usize].is_empty() {
                    return Err(DkError::OutOfStubs {
                        k,
                        k2,
                        placed,
                        requested: count,
                    });
                }
                let i = rng.gen_range(stubs[k as usize].len());
                let j = rng.gen_range(stubs[k2 as usize].len());
                let u = stubs[k as usize].swap_remove(i);
                let v = stubs[k2 as usize].swap_remove(j);
                (u, v)
            };
            g.add_edge(u, v);
            added.push(if u <= v { (u, v) } else { (v, u) });
            stats.edges += 1;
            stats.self_loops += usize::from(u == v);
            total_stubs -= 2;
        }
    }
    if total_stubs != 0 {
        return Err(DkError::LeftoverStubs { count: total_stubs });
    }
    Ok((added, stats))
}
