//! Equivalence and invariant tests for the evaluate-then-commit rewiring
//! engine against the apply-rollback reference.
//!
//! The two implementations share swap picking (RNG-draw order) and the
//! decision fold (float-operation order), so for the same seed they must
//! agree **exactly**: same accept/reject sequence, same final edge
//! multiset, bitwise-identical final distance. These tests assert that,
//! plus the DV/JDM preservation invariant and the allocation-free /
//! mutation-free guarantees of the new engine's reject path.

use proptest::prelude::*;
use sgr_dk::extract::joint_degree_matrix;
use sgr_dk::rewire::reference::ApplyRollbackEngine;
use sgr_dk::rewire::RewireEngine;
use sgr_graph::{Graph, NodeId};
use sgr_props::local::LocalProperties;
use sgr_util::Xoshiro256pp;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Global allocator that counts allocations on the current thread while
/// armed. Used to prove swap attempts are allocation-free.
struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.with(|a| a.get()) {
            ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.with(|a| a.get()) {
            ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting armed; returns its allocation count.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOC_COUNT.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (ALLOC_COUNT.with(|c| c.get()), r)
}

fn sorted_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000).prop_map(|(n, m, pt, seed)| {
        sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    })
}

/// A graph with stub-matching artifacts (multi-edges and self-loops)
/// mixed in, as the construction phase produces.
fn messy_graph(seed: u64) -> Graph {
    let mut g = sgr_gen::holme_kim(200, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xabcd);
    for _ in 0..6 {
        let u = rng.gen_range(g.num_nodes()) as NodeId;
        g.add_edge(u, u);
    }
    for _ in 0..6 {
        let u = rng.gen_range(g.num_nodes()) as NodeId;
        let v = rng.gen_range(g.num_nodes()) as NodeId;
        g.add_edge(u, v);
    }
    g
}

/// Both engines, same seed: per-attempt decisions, final edges, final
/// distance must agree (distance bitwise).
fn assert_equivalent(g: Graph, target: &[f64], rng_seed: u64, attempts: u64) {
    let edges: Vec<_> = g.edges().collect();
    let mut fast = RewireEngine::new(g.clone(), edges.clone(), target);
    let mut slow = ApplyRollbackEngine::new(g, edges, target);

    let mut rng_f = Xoshiro256pp::seed_from_u64(rng_seed);
    let mut rng_s = Xoshiro256pp::seed_from_u64(rng_seed);
    for i in 0..attempts {
        let a = fast.attempt(&mut rng_f);
        let b = slow.attempt(&mut rng_s);
        assert_eq!(a, b, "decision diverged at attempt {i}");
        assert_eq!(
            fast.distance().to_bits(),
            slow.distance().to_bits(),
            "distance diverged at attempt {i}: {} vs {}",
            fast.distance(),
            slow.distance()
        );
    }
    fast.validate().unwrap();
    slow.validate().unwrap();
    let gf = fast.into_graph();
    let gs = slow.into_graph();
    assert_eq!(
        sorted_edges(&gf),
        sorted_edges(&gs),
        "edge multisets diverged"
    );
}

#[test]
fn engines_agree_toward_zero_clustering() {
    let g = messy_graph(1);
    let target = vec![0.0; g.max_degree() + 1];
    assert_equivalent(g, &target, 42, 8_000);
}

#[test]
fn engines_agree_toward_half_clustering() {
    let g = messy_graph(2);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    assert_equivalent(g, &target, 7, 8_000);
}

#[test]
fn engines_agree_toward_inflated_clustering() {
    // Triangle-building direction: most attempts reject, exercising the
    // hot path the optimization targets.
    let g = messy_graph(3);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| (c * 1.5).min(1.0))
        .collect();
    assert_equivalent(g, &target, 9, 8_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_agree_on_arbitrary_graphs(
        g in arb_graph(),
        seed in 0u64..10_000,
        shrink in 0.0f64..1.0,
    ) {
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * shrink)
            .collect();
        assert_equivalent(g, &target, seed, 2_000);
    }

    #[test]
    fn dv_and_jdm_are_exactly_preserved_by_run(g in arb_graph(), seed in 0u64..10_000) {
        let dv = g.degree_vector();
        let jdm = joint_degree_matrix(&g);
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        eng.run(4.0, &mut rng);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        prop_assert_eq!(g2.degree_vector(), dv);
        prop_assert_eq!(joint_degree_matrix(&g2), jdm);
    }
}

#[test]
fn rejected_attempts_perform_zero_heap_allocations() {
    // The acceptance-criterion guarantee: a rejected attempt touches no
    // shared state and performs zero heap allocations. (Accepted swaps
    // may rarely grow an index vec when they introduce a new distinct
    // neighbor — amortized, and irrelevant to the reject-dominated tail.)
    let g = messy_graph(4);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    let edges: Vec<_> = g.edges().collect();
    let mut eng = RewireEngine::new(g, edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    let (mut accepts, mut rejects) = (0u64, 0u64);
    for i in 0..20_000u64 {
        let (allocs, accepted) = count_allocs(|| eng.attempt(&mut rng));
        if accepted {
            accepts += 1;
        } else {
            rejects += 1;
            assert_eq!(allocs, 0, "rejected attempt {i} allocated {allocs} times");
        }
    }
    assert!(accepts > 0, "want a mix of accepts and rejects");
    assert!(rejects > 0, "want a mix of accepts and rejects");
    eng.validate().unwrap();
}

#[test]
fn reference_engine_does_allocate_per_attempt() {
    // Sanity-check the counter itself: the baseline must show the very
    // allocations the new engine eliminates.
    let g = messy_graph(5);
    let target = vec![0.0; g.max_degree() + 1];
    let edges: Vec<_> = g.edges().collect();
    let mut eng = ApplyRollbackEngine::new(g, edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let (allocs, _) = count_allocs(|| eng.run_attempts(1_000, &mut rng));
    assert!(allocs > 0, "baseline unexpectedly allocation-free");
}

#[test]
fn rejected_attempts_leave_graph_and_index_untouched() {
    let g = messy_graph(6);
    let props = LocalProperties::compute(&g);
    // Unreachable target far above current clustering: triangle-creating
    // swaps are rare, so nearly everything rejects.
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| (c * 3.0).min(1.0))
        .collect();
    let edges: Vec<_> = g.edges().collect();
    let mut eng = RewireEngine::new(g.clone(), edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let before = sorted_edges(&g);
    let mut rejected_streak = Vec::new();
    for _ in 0..500 {
        rejected_streak.push(eng.attempt(&mut rng));
    }
    if rejected_streak.iter().all(|&a| !a) {
        // Pure-reject run: the graph must be bit-for-bit unchanged.
        let after = sorted_edges(&eng.into_graph());
        assert_eq!(before, after);
    } else {
        // Some accepts happened; the engine must still validate.
        eng.validate().unwrap();
    }
}
