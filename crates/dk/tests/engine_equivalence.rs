//! Equivalence and invariant tests for the evaluate-then-commit rewiring
//! engine against the apply-rollback reference.
//!
//! The two implementations share swap picking (RNG-draw order) and the
//! decision fold (float-operation order), so for the same seed they must
//! agree **exactly**: same accept/reject sequence, same final edge
//! multiset, bitwise-identical final distance. These tests assert that,
//! plus the DV/JDM preservation invariant and the allocation-free /
//! mutation-free guarantees of the new engine's reject path.

use proptest::prelude::*;
use sgr_dk::extract::joint_degree_matrix;
use sgr_dk::rewire::parallel::ParallelRewireEngine;
use sgr_dk::rewire::reference::ApplyRollbackEngine;
use sgr_dk::rewire::RewireEngine;
use sgr_graph::{Graph, NodeId};
use sgr_props::local::LocalProperties;
use sgr_util::Xoshiro256pp;

mod common;
use common::count_allocs;

fn sorted_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000).prop_map(|(n, m, pt, seed)| {
        sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    })
}

/// A graph with stub-matching artifacts (multi-edges and self-loops)
/// mixed in, as the construction phase produces.
fn messy_graph(seed: u64) -> Graph {
    let mut g = sgr_gen::holme_kim(200, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xabcd);
    for _ in 0..6 {
        let u = rng.gen_range(g.num_nodes()) as NodeId;
        g.add_edge(u, u);
    }
    for _ in 0..6 {
        let u = rng.gen_range(g.num_nodes()) as NodeId;
        let v = rng.gen_range(g.num_nodes()) as NodeId;
        g.add_edge(u, v);
    }
    g
}

/// Both engines, same seed: per-attempt decisions, final edges, final
/// distance must agree (distance bitwise).
fn assert_equivalent(g: Graph, target: &[f64], rng_seed: u64, attempts: u64) {
    let edges: Vec<_> = g.edges().collect();
    let mut fast = RewireEngine::new(g.clone(), edges.clone(), target);
    let mut slow = ApplyRollbackEngine::new(g, edges, target);

    let mut rng_f = Xoshiro256pp::seed_from_u64(rng_seed);
    let mut rng_s = Xoshiro256pp::seed_from_u64(rng_seed);
    for i in 0..attempts {
        let a = fast.attempt(&mut rng_f);
        let b = slow.attempt(&mut rng_s);
        assert_eq!(a, b, "decision diverged at attempt {i}");
        assert_eq!(
            fast.distance().to_bits(),
            slow.distance().to_bits(),
            "distance diverged at attempt {i}: {} vs {}",
            fast.distance(),
            slow.distance()
        );
    }
    fast.validate().unwrap();
    slow.validate().unwrap();
    let gf = fast.into_graph();
    let gs = slow.into_graph();
    assert_eq!(
        sorted_edges(&gf),
        sorted_edges(&gs),
        "edge multisets diverged"
    );
}

#[test]
fn engines_agree_toward_zero_clustering() {
    let g = messy_graph(1);
    let target = vec![0.0; g.max_degree() + 1];
    assert_equivalent(g, &target, 42, 8_000);
}

#[test]
fn engines_agree_toward_half_clustering() {
    let g = messy_graph(2);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    assert_equivalent(g, &target, 7, 8_000);
}

#[test]
fn engines_agree_toward_inflated_clustering() {
    // Triangle-building direction: most attempts reject, exercising the
    // hot path the optimization targets.
    let g = messy_graph(3);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| (c * 1.5).min(1.0))
        .collect();
    assert_equivalent(g, &target, 9, 8_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_agree_on_arbitrary_graphs(
        g in arb_graph(),
        seed in 0u64..10_000,
        shrink in 0.0f64..1.0,
    ) {
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * shrink)
            .collect();
        assert_equivalent(g, &target, seed, 2_000);
    }

    #[test]
    fn dv_and_jdm_are_exactly_preserved_by_run(g in arb_graph(), seed in 0u64..10_000) {
        let dv = g.degree_vector();
        let jdm = joint_degree_matrix(&g);
        let edges: Vec<_> = g.edges().collect();
        let target = vec![0.0; g.max_degree() + 1];
        let mut eng = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        eng.run(4.0, &mut rng);
        eng.validate().unwrap();
        let g2 = eng.into_graph();
        prop_assert_eq!(g2.degree_vector(), dv);
        prop_assert_eq!(joint_degree_matrix(&g2), jdm);
    }
}

/// Thread counts exercised by the parallel-equivalence tests: the
/// default `{1, 2, 4, 8}` matrix, or — when `SGR_REWIRE_TEST_THREADS`
/// is set — exactly that single width, replacing the matrix. CI uses
/// the override to run the suite once at its runners' true core count
/// without re-running the whole matrix.
fn test_thread_counts() -> Vec<usize> {
    match std::env::var("SGR_REWIRE_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("SGR_REWIRE_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

/// Sequential vs speculative-parallel, same seed: accepted counts and the
/// distance trajectory (sampled every `chunk` attempts) must agree
/// bitwise, and the final edge multiset exactly.
fn assert_parallel_equivalent(
    g: Graph,
    target: &[f64],
    rng_seed: u64,
    threads: usize,
    block: usize,
    chunk: u64,
    chunks: usize,
) {
    let edges: Vec<_> = g.edges().collect();
    let mut seq = RewireEngine::new(g.clone(), edges.clone(), target);
    let mut par = ParallelRewireEngine::new(g, edges, target, threads).with_block_size(block);
    let mut rng_s = Xoshiro256pp::seed_from_u64(rng_seed);
    let mut rng_p = Xoshiro256pp::seed_from_u64(rng_seed);
    for c in 0..chunks {
        let ss = seq.run_attempts(chunk, &mut rng_s);
        let sp = par.run_attempts(chunk, &mut rng_p);
        assert_eq!(
            ss.accepted, sp.accepted,
            "accepted diverged at chunk {c} (threads {threads}, block {block})"
        );
        assert_eq!(
            seq.distance().to_bits(),
            par.distance().to_bits(),
            "distance diverged at chunk {c} (threads {threads}, block {block}): {} vs {}",
            seq.distance(),
            par.distance()
        );
    }
    seq.validate().unwrap();
    par.validate().unwrap();
    assert_eq!(
        sorted_edges(&seq.into_graph()),
        sorted_edges(&par.into_graph()),
        "edge multisets diverged (threads {threads}, block {block})"
    );
}

#[test]
fn parallel_engine_is_seed_for_seed_equivalent_at_all_thread_counts() {
    for threads in test_thread_counts() {
        let g = messy_graph(21);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| c * 0.5)
            .collect();
        assert_parallel_equivalent(g, &target, 23, threads, 1024, 1000, 6);
    }
}

#[test]
fn parallel_engine_matches_on_reject_dominated_workload() {
    // Inflated target: triangle-creating swaps are rare, so blocks almost
    // never commit — the pure speculation fast path.
    for threads in test_thread_counts() {
        let g = messy_graph(22);
        let props = LocalProperties::compute(&g);
        let target: Vec<f64> = props
            .clustering_by_degree
            .iter()
            .map(|&c| (c * 1.5).min(1.0))
            .collect();
        assert_parallel_equivalent(g, &target, 29, threads, 512, 2000, 3);
    }
}

#[test]
fn conflict_replay_is_correct_under_high_acceptance() {
    // Crafted high-acceptance workload: a zero-clustering target on a
    // clustered graph accepts a large share of early attempts, and tiny
    // blocks put several commits inside almost every block — maximal
    // pressure on checkpoint replay and dirty-set invalidation.
    let g = messy_graph(23);
    let target = vec![0.0; g.max_degree() + 1];
    let stats = {
        let edges: Vec<_> = g.edges().collect();
        let mut probe = RewireEngine::new(g.clone(), edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        probe.run_attempts(2_000, &mut rng)
    };
    assert!(
        stats.accepted >= 150,
        "workload not acceptance-heavy enough to stress replay ({} accepts)",
        stats.accepted
    );
    for threads in [2, 4] {
        for block in [2, 5, 32] {
            assert_parallel_equivalent(g.clone(), &target, 31, threads, block, 500, 4);
        }
    }
}

#[test]
fn parallel_worker_evaluations_are_allocation_free_on_reject() {
    // Same guarantee as the sequential engine, now for the parallel
    // engine's evaluation kernel: a reject-only run performs zero heap
    // allocations once buffers are warm. Run with one worker so
    // evaluation happens on the (armed) coordinator thread — the
    // counting allocator is thread-local, and the single-worker path
    // runs the exact `evaluate_swap` kernel the scoped workers run,
    // into the same kind of reused arena + pair buffers.
    let g = messy_graph(24);
    let props = LocalProperties::compute(&g);
    // The graph's own clustering as target: D = 0 is already the floor,
    // so `new_raw < dist_raw` can never hold — every attempt rejects.
    let target = props.clustering_by_degree.clone();
    let edges: Vec<_> = g.edges().collect();
    let mut eng = ParallelRewireEngine::new(g, edges, &target, 1);
    assert!(eng.distance() < 1e-9, "D = {}", eng.distance());
    let mut rng = Xoshiro256pp::seed_from_u64(37);
    // Warm-up: let result buffers reach their steady-state capacities.
    let warm = eng.run_attempts(4_096, &mut rng);
    let (allocs, stats) = count_allocs(|| eng.run_attempts(4_096, &mut rng));
    assert_eq!(warm.accepted + stats.accepted, 0, "fixed point accepted?");
    assert_eq!(allocs, 0, "reject-only rewiring allocated {allocs} times");
    assert_eq!(stats.skipped, 4_096);
    eng.validate().unwrap();
}

#[test]
fn rejected_attempts_perform_zero_heap_allocations() {
    // The acceptance-criterion guarantee: a rejected attempt touches no
    // shared state and performs zero heap allocations. (Accepted swaps
    // may rarely grow an index vec when they introduce a new distinct
    // neighbor — amortized, and irrelevant to the reject-dominated tail.)
    let g = messy_graph(4);
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    let edges: Vec<_> = g.edges().collect();
    let mut eng = RewireEngine::new(g, edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(11);
    let (mut accepts, mut rejects) = (0u64, 0u64);
    for i in 0..20_000u64 {
        let (allocs, accepted) = count_allocs(|| eng.attempt(&mut rng));
        if accepted {
            accepts += 1;
        } else {
            rejects += 1;
            assert_eq!(allocs, 0, "rejected attempt {i} allocated {allocs} times");
        }
    }
    assert!(accepts > 0, "want a mix of accepts and rejects");
    assert!(rejects > 0, "want a mix of accepts and rejects");
    eng.validate().unwrap();
}

#[test]
fn reference_engine_does_allocate_per_attempt() {
    // Sanity-check the counter itself: the baseline must show the very
    // allocations the new engine eliminates.
    let g = messy_graph(5);
    let target = vec![0.0; g.max_degree() + 1];
    let edges: Vec<_> = g.edges().collect();
    let mut eng = ApplyRollbackEngine::new(g, edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    let (allocs, _) = count_allocs(|| eng.run_attempts(1_000, &mut rng));
    assert!(allocs > 0, "baseline unexpectedly allocation-free");
}

#[test]
fn rejected_attempts_leave_graph_and_index_untouched() {
    let g = messy_graph(6);
    let props = LocalProperties::compute(&g);
    // Unreachable target far above current clustering: triangle-creating
    // swaps are rare, so nearly everything rejects.
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| (c * 3.0).min(1.0))
        .collect();
    let edges: Vec<_> = g.edges().collect();
    let mut eng = RewireEngine::new(g.clone(), edges, &target);
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let before = sorted_edges(&g);
    let mut rejected_streak = Vec::new();
    for _ in 0..500 {
        rejected_streak.push(eng.attempt(&mut rng));
    }
    if rejected_streak.iter().all(|&a| !a) {
        // Pure-reject run: the graph must be bit-for-bit unchanged.
        let after = sorted_edges(&eng.into_graph());
        assert_eq!(before, after);
    } else {
        // Some accepts happened; the engine must still validate.
        eng.validate().unwrap();
    }
}
