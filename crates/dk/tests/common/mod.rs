//! Shared test support for the sgr-dk integration suites.
//!
//! Declaring `mod common;` pulls this into a test binary — including the
//! counting **global allocator**, so any suite using [`count_allocs`]
//! gets the interposition automatically instead of copy-pasting the
//! allocator (it started life inline in `engine_equivalence.rs`).

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Global allocator that counts allocations on the current thread while
/// armed. Used to prove hot paths (swap attempts, warm stub matching) are
/// allocation-free.
pub struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.with(|a| a.get()) {
            ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.with(|a| a.get()) {
            ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting armed; returns its allocation count.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOC_COUNT.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    let r = f();
    ARMED.with(|a| a.set(false));
    (ALLOC_COUNT.with(|c| c.get()), r)
}
