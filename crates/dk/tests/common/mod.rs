//! Shared test support for the sgr-dk integration suites.
//!
//! Declaring `mod common;` pulls this into a test binary — including the
//! tracking **global allocator**, so any suite using [`count_allocs`]
//! gets the interposition automatically. The allocator itself lives in
//! [`sgr_util::alloc`] (it started life inline in
//! `engine_equivalence.rs`, then here); this module just installs it and
//! re-exports the counting entry point.

// Each integration-test binary compiles this module independently and
// uses a different subset of it.
#![allow(dead_code, unused_imports)]

pub use sgr_util::alloc::count_allocs;

#[global_allocator]
static ALLOC: sgr_util::alloc::TrackingAlloc = sgr_util::alloc::TrackingAlloc;
