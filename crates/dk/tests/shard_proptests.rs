//! Property-based tests of the rewiring shard partitioner.
//!
//! The sharded parallel engine routes every evaluation by degree class
//! through [`ShardPartitioner`]; these properties are what the engine's
//! correctness argument leans on:
//!
//! * **Totality / exclusivity** — every degree class is owned by exactly
//!   one shard, and that shard id is in range, so every drawn pick has
//!   exactly one worker that evaluated it.
//! * **Coverage** — with enough weighted classes, no shard is left
//!   without work (the greedy rule never starves a shard while another
//!   holds two classes it could have taken).
//! * **Stability** — the map is a pure function of `(weights, shards)`:
//!   re-partitioning the same space yields identical routing, and
//!   changing only the shard count never changes *which* classes exist,
//!   so two engines at equal thread counts always agree on ownership.
//! * **Balance** — loads respect the classic LPT bound
//!   `max_load ≤ total/shards + max_weight`.

use proptest::prelude::*;
use sgr_dk::rewire::shard::ShardPartitioner;

/// Weight vectors shaped like real degree-bucket length tables: mostly
/// small classes, a few heavy ones, and embedded zeros (degrees with no
/// rewirable endpoints).
fn weights_strategy() -> impl Strategy<Value = Vec<u64>> {
    collection::vec((0u64..10, 0u64..5_000), 1..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, w)| match kind {
                0..=2 => 0,          // degree class with no candidates
                3..=7 => 1 + w % 49, // typical small bucket
                _ => 50 + w % 4_950, // occasional heavy bucket
            })
            .collect()
    })
}

proptest! {
    /// Every class routes to exactly one in-range shard (the map is a
    /// total function over the class space — zero-weight classes too).
    #[test]
    fn every_class_assigned_to_exactly_one_shard(
        weights in weights_strategy(),
        shards in 1usize..12,
    ) {
        let p = ShardPartitioner::new(&weights, shards);
        prop_assert_eq!(p.num_shards(), shards);
        prop_assert_eq!(p.num_classes(), weights.len());
        for k in 0..weights.len() {
            prop_assert!(p.shard_of(k) < shards as u32);
        }
    }

    /// The shards jointly cover the full space: summing per-shard loads
    /// reproduces the total weight exactly (nothing dropped, nothing
    /// double-counted).
    #[test]
    fn shards_cover_the_full_space(
        weights in weights_strategy(),
        shards in 1usize..12,
    ) {
        let p = ShardPartitioner::new(&weights, shards);
        let loads = p.loads(&weights);
        prop_assert_eq!(loads.len(), shards);
        prop_assert_eq!(loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
    }

    /// With at least as many weighted classes as shards, the greedy rule
    /// leaves no shard empty — each of the first `shards` placements
    /// lands on a distinct (lightest, still-empty) shard.
    #[test]
    fn no_shard_starves_when_classes_suffice(
        mut weights in weights_strategy(),
        shards in 1usize..8,
    ) {
        // Force ≥ `shards` non-zero classes.
        for k in 0..shards {
            if weights.len() <= k {
                weights.push(1 + k as u64);
            } else if weights[k] == 0 {
                weights[k] = 1 + k as u64;
            }
        }
        let p = ShardPartitioner::new(&weights, shards);
        let loads = p.loads(&weights);
        prop_assert!(
            loads.iter().all(|&l| l > 0),
            "empty shard in {:?}", loads
        );
    }

    /// Routing is stable under re-partitioning: rebuilding from the same
    /// `(weights, shards)` gives the identical class → shard map, at
    /// every thread count. This is what lets two engine instances (e.g.
    /// a checkpoint writer and its resumer) agree on ownership without
    /// ever exchanging the map.
    #[test]
    fn routing_is_stable_under_repartitioning(
        weights in weights_strategy(),
    ) {
        for shards in [1usize, 2, 3, 4, 8] {
            let a = ShardPartitioner::new(&weights, shards);
            let b = ShardPartitioner::new(&weights, shards);
            for k in 0..weights.len() {
                prop_assert_eq!(
                    a.shard_of(k),
                    b.shard_of(k),
                    "routing unstable at {} shards, class {}", shards, k
                );
            }
        }
    }

    /// Greedy LPT balance bound: no shard carries more than the perfect
    /// share plus one maximal class.
    #[test]
    fn lpt_balance_bound_holds(
        weights in weights_strategy(),
        shards in 1usize..12,
    ) {
        let p = ShardPartitioner::new(&weights, shards);
        let total: u64 = weights.iter().sum();
        let max_w = weights.iter().copied().max().unwrap_or(0);
        let bound = total / shards as u64 + max_w;
        for (s, &load) in p.loads(&weights).iter().enumerate() {
            prop_assert!(
                load <= bound,
                "shard {} load {} exceeds LPT bound {}", s, load, bound
            );
        }
    }
}
