//! Property-based tests of the dK-series substrate: measurement,
//! realizability, construction, and rewiring must agree with each other
//! on arbitrary graphs.

use proptest::prelude::*;
use sgr_dk::extract::{
    jdm_is_symmetric, jdm_matches_degree_vector, jdm_num_edges, joint_degree_matrix,
};
use sgr_dk::rewire::RewireEngine;
use sgr_dk::series::{generate_1k, generate_25k, generate_2k};
use sgr_graph::Graph;
use sgr_props::local::LocalProperties;
use sgr_util::Xoshiro256pp;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000).prop_map(|(n, m, pt, seed)| {
        sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn measured_jdm_always_satisfies_conditions(g in arb_graph()) {
        let jdm = joint_degree_matrix(&g);
        prop_assert!(jdm_is_symmetric(&jdm));
        prop_assert!(jdm_matches_degree_vector(&jdm, &g.degree_vector()));
        prop_assert_eq!(jdm_num_edges(&jdm), g.num_edges() as u64);
    }

    #[test]
    fn one_k_realizes_any_graphical_degree_vector(g in arb_graph(), seed in 0u64..10_000) {
        let dv = g.degree_vector();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let h = generate_1k(&dv, &mut rng).unwrap();
        prop_assert_eq!(h.degree_vector(), dv);
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn two_k_is_exact(g in arb_graph(), seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let h = generate_2k(&g, &mut rng).unwrap();
        prop_assert_eq!(h.degree_vector(), g.degree_vector());
        prop_assert_eq!(joint_degree_matrix(&h), joint_degree_matrix(&g));
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn two_five_k_keeps_2k_exact_and_never_worsens_distance(
        g in arb_graph(),
        seed in 0u64..10_000,
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let (h, stats) = generate_25k(&g, 2.0, &mut rng).unwrap();
        prop_assert_eq!(h.degree_vector(), g.degree_vector());
        prop_assert_eq!(joint_degree_matrix(&h), joint_degree_matrix(&g));
        prop_assert!(stats.final_distance <= stats.initial_distance + 1e-9);
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn rewiring_engine_internal_state_is_consistent(
        g in arb_graph(),
        seed in 0u64..10_000,
        attempts in 50u64..400,
    ) {
        // Target a foreign clustering vector to force real activity.
        let target: Vec<f64> = LocalProperties::compute(&g)
            .clustering_by_degree
            .iter()
            .map(|&c| (c * 0.5).min(1.0))
            .collect();
        let edges: Vec<_> = g.edges().collect();
        let mut engine = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        engine.run_attempts(attempts, &mut rng);
        prop_assert!(engine.validate().is_ok(), "{:?}", engine.validate());
    }

    #[test]
    fn rewiring_distance_is_monotone_nonincreasing(
        g in arb_graph(),
        seed in 0u64..10_000,
    ) {
        let target = vec![0.0; g.max_degree() + 1];
        let edges: Vec<_> = g.edges().collect();
        let mut engine = RewireEngine::new(g, edges, &target);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut last = engine.distance();
        for _ in 0..10 {
            engine.run_attempts(50, &mut rng);
            let now = engine.distance();
            prop_assert!(now <= last + 1e-9, "distance increased: {last} -> {now}");
            last = now;
        }
    }
}
