//! Property-based tests of the stub-matching construction engines.
//!
//! The flat-arena engine ([`sgr_dk::construct::wire_stubs_with`]) must be
//! **bitwise-equivalent** to the kept per-class-pool implementation
//! ([`sgr_dk::construct::reference::wire_stubs`]): same RNG draw
//! sequence, same pair order, same added-edge list (order included), same
//! errors — the same oracle pattern the targeting engine uses
//! (`sgr_core::target_jdm::reference`). On top of equivalence, the suite
//! pins the matcher's documented contract: degree-sequence exactness,
//! edge-multiset accounting (multi-edges included), the no-self-loop
//! invariant for single-stub nodes, typed out-of-stub errors, the
//! zero-allocation warm path, and a committed golden hash of the draw
//! stream.

use proptest::prelude::*;
use sgr_dk::construct::{reference, wire_stubs_with, ConstructScratch};
use sgr_dk::extract::{joint_degree_matrix, JointDegreeMatrix};
use sgr_graph::{Graph, NodeId};
use sgr_util::rng::SplitMix64;
use sgr_util::{FxHashMap, Xoshiro256pp};

mod common;
use common::count_allocs;

/// A construction problem: an existing graph (possibly empty), the target
/// degree of every node, and the class-pair edge counts to wire.
#[derive(Clone, Debug)]
struct Problem {
    g0: Graph,
    target: Vec<u32>,
    add: JointDegreeMatrix,
}

/// From-empty problem: realize the degree vector and JDM of a Holme–Kim
/// graph from scratch (the 2K-generator / Gjoka workload).
fn from_empty_problem(n: usize, m: usize, pt: f64, seed: u64) -> Problem {
    let src = sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
    let target: Vec<u32> = src.nodes().map(|u| src.degree(u) as u32).collect();
    Problem {
        g0: Graph::with_nodes(src.num_nodes()),
        target,
        add: joint_degree_matrix(&src),
    }
}

/// Extension problem: keep a pseudo-random subset of a Holme–Kim graph's
/// edges as the existing subgraph and request exactly the dropped edges
/// back, classed by the *target* (full-graph) degrees — the Algorithm-5
/// workload, valid by construction (JDM-3 holds: every free stub is one
/// endpoint of one dropped edge).
fn extend_problem(n: usize, m: usize, pt: f64, seed: u64) -> Problem {
    let src = sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
    let target: Vec<u32> = src.nodes().map(|u| src.degree(u) as u32).collect();
    let mut keep: Vec<(NodeId, NodeId)> = Vec::new();
    let mut add: JointDegreeMatrix = FxHashMap::default();
    for (i, (u, v)) in src.edges().enumerate() {
        if SplitMix64::new(seed ^ 0x9e37 ^ i as u64).next_u64() & 1 == 0 {
            keep.push((u, v));
        } else {
            let (k, k2) = (target[u as usize], target[v as usize]);
            let key = if k <= k2 { (k, k2) } else { (k2, k) };
            *add.entry(key).or_insert(0) += 1;
        }
    }
    Problem {
        g0: Graph::from_edges(src.num_nodes(), &keep),
        target,
        add,
    }
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000, 0usize..2).prop_map(
        |(n, m, pt, seed, mode)| {
            if mode == 0 {
                from_empty_problem(n, m, pt, seed)
            } else {
                extend_problem(n, m, pt, seed)
            }
        },
    )
}

fn sorted_edges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let mut e: Vec<_> = g.edges().collect();
    e.sort_unstable();
    e
}

/// Runs both engines on the same problem and seed and asserts bitwise
/// agreement: added list (order included), final graph, stats, errors,
/// and post-run RNG state.
fn assert_engines_bitwise_equal(p: &Problem, seed: u64, scratch: &mut ConstructScratch) {
    let mut g_flat = p.g0.clone();
    let mut g_ref = p.g0.clone();
    let mut rng_flat = Xoshiro256pp::seed_from_u64(seed);
    let mut rng_ref = Xoshiro256pp::seed_from_u64(seed);
    let flat = wire_stubs_with(&mut g_flat, &p.target, &p.add, &mut rng_flat, scratch);
    let refr = reference::wire_stubs(&mut g_ref, &p.target, &p.add, &mut rng_ref);
    match (flat, refr) {
        (Ok((fe, fs)), Ok((re, rs))) => {
            assert_eq!(fe, &re[..], "added edge lists diverged (seed {seed})");
            assert_eq!(fs, rs, "match stats diverged (seed {seed})");
            assert_eq!(
                g_flat.edges().collect::<Vec<_>>(),
                g_ref.edges().collect::<Vec<_>>(),
                "graphs diverged (seed {seed})"
            );
            assert_eq!(
                rng_flat.next_u64(),
                rng_ref.next_u64(),
                "RNG streams diverged (seed {seed})"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "errors diverged (seed {seed})"),
        (a, b) => panic!("one engine failed, the other did not: {a:?} vs {b:?}"),
    }
}

#[test]
fn engines_agree_on_fixed_seeds() {
    let mut scratch = ConstructScratch::new();
    for seed in 0..8u64 {
        let p = from_empty_problem(200, 3, 0.5, seed);
        assert_engines_bitwise_equal(&p, seed ^ 0xabcd, &mut scratch);
        let p = extend_problem(200, 3, 0.5, seed);
        assert_engines_bitwise_equal(&p, seed ^ 0xbeef, &mut scratch);
    }
}

#[test]
fn engines_return_identical_out_of_stubs_errors() {
    // Corrupt the add map two ways: inflate a populated cell past the
    // available stubs, and request a class beyond the largest target
    // degree. Both engines must fail with the same typed error.
    let mut scratch = ConstructScratch::new();
    let base = from_empty_problem(120, 3, 0.4, 7);

    let mut inflated = base.clone();
    let (&key, _) = inflated.add.iter().next().expect("nonempty JDM");
    *inflated.add.get_mut(&key).unwrap() += 1_000_000;
    assert_engines_bitwise_equal(&inflated, 11, &mut scratch);

    let mut phantom = base.clone();
    let k_max = *phantom.target.iter().max().unwrap();
    phantom.add.insert((k_max + 3, k_max + 3), 1);
    assert_engines_bitwise_equal(&phantom, 13, &mut scratch);
}

#[test]
fn warm_stub_matching_performs_zero_heap_allocations() {
    // The acceptance-criterion guarantee: with a warm scratch and a graph
    // whose neighbor lists are pre-reserved to the target degrees, a
    // whole wire_stubs_with call allocates nothing.
    let p = from_empty_problem(400, 3, 0.5, 21);
    let run = |scratch: &mut ConstructScratch, armed: bool| {
        let mut g = Graph::with_nodes(p.target.len());
        g.reserve_neighbors(&p.target);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        // Summarize the borrowed edge slice in place (the hash allocates
        // nothing) so the armed region contains the matcher alone.
        let mut work = || {
            let (e, s) = wire_stubs_with(&mut g, &p.target, &p.add, &mut rng, scratch).unwrap();
            (edge_list_hash(e), s)
        };
        if armed {
            count_allocs(work)
        } else {
            (0, work())
        }
    };
    let mut scratch = ConstructScratch::new();
    let (_, cold) = run(&mut scratch, false); // warm-up sizes every buffer
    let (allocs, warm) = run(&mut scratch, true);
    assert_eq!(warm, cold, "scratch reuse changed the output");
    assert_eq!(allocs, 0, "warm stub matching allocated {allocs} times");
}

/// Chained SplitMix64 over the in-order added-edge list: pins the exact
/// draw sequence, not just the resulting multiset.
fn edge_list_hash(edges: &[(NodeId, NodeId)]) -> u64 {
    let mut h = 0x5851_f42d_4c95_7f2du64;
    for &(u, v) in edges {
        h = SplitMix64::new(h ^ (((u as u64) << 32) | v as u64)).next_u64();
    }
    h
}

#[test]
fn fixed_seed_draw_stream_matches_committed_golden() {
    // Committed golden hash of the matcher's output for one fixed
    // problem and seed. If this changes, the RNG stream contract of
    // `sgr_dk::construct` changed — every downstream fixed-seed result
    // (rewiring input order included) changes with it. Regenerate
    // deliberately and document the break in the module's determinism
    // model; see also the end-to-end golden in
    // crates/core/tests/pipeline_golden.rs.
    let p = from_empty_problem(200, 3, 0.5, 42);
    let mut g = Graph::with_nodes(p.target.len());
    let mut rng = Xoshiro256pp::seed_from_u64(4242);
    let mut scratch = ConstructScratch::new();
    let (edges, _) = wire_stubs_with(&mut g, &p.target, &p.add, &mut rng, &mut scratch).unwrap();
    assert_eq!(
        edge_list_hash(edges),
        0x72b0_77d9_fa45_ea6d,
        "stub-matching draw stream changed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engines_bitwise_equivalent_on_generated_problems(
        p in arb_problem(),
        seed in 0u64..10_000,
    ) {
        let mut scratch = ConstructScratch::new();
        assert_engines_bitwise_equal(&p, seed, &mut scratch);
    }

    #[test]
    fn degree_sequence_is_exact(p in arb_problem(), seed in 0u64..10_000) {
        let mut g = p.g0.clone();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = ConstructScratch::new();
        wire_stubs_with(&mut g, &p.target, &p.add, &mut rng, &mut scratch).unwrap();
        for u in g.nodes() {
            prop_assert_eq!(
                g.degree(u),
                p.target[u as usize] as usize,
                "node {} missed its target degree",
                u
            );
        }
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn edge_multiset_accounting_includes_every_multi_edge_copy(
        p in arb_problem(),
        seed in 0u64..10_000,
    ) {
        // Prior edges + the returned list = the final graph, as edge
        // MULTISETS: every parallel copy the matcher created must appear
        // in the returned list with its multiplicity, and self-loops
        // must reconcile with the reported count.
        let mut g = p.g0.clone();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = ConstructScratch::new();
        let (edges, stats) =
            wire_stubs_with(&mut g, &p.target, &p.add, &mut rng, &mut scratch).unwrap();
        prop_assert_eq!(edges.len(), stats.edges);
        let mut expected = sorted_edges(&p.g0);
        expected.extend_from_slice(edges);
        expected.sort_unstable();
        prop_assert_eq!(expected, sorted_edges(&g));
        prop_assert_eq!(
            stats.self_loops,
            g.num_self_loops() - p.g0.num_self_loops(),
            "self-loop accounting off"
        );
    }

    #[test]
    fn single_stub_nodes_never_acquire_self_loops_matching(
        pairs in 1usize..40,
        seed in 0u64..10_000,
    ) {
        // The no-self-loop invariant: a diagonal draw always picks two
        // distinct SLOTS, so a class whose nodes hold one free stub each
        // can never produce a self-loop. Degree-1 stub matching is a
        // perfect matching, always.
        let n = 2 * pairs;
        let mut g = Graph::with_nodes(n);
        let target = vec![1u32; n];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((1, 1), pairs as u64);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = ConstructScratch::new();
        let (_, stats) =
            wire_stubs_with(&mut g, &target, &add, &mut rng, &mut scratch).unwrap();
        prop_assert_eq!(g.num_self_loops(), 0);
        prop_assert_eq!(stats.self_loops, 0);
        prop_assert!(g.nodes().all(|u| g.degree(u) == 1));
    }

    #[test]
    fn single_stub_nodes_never_acquire_self_loops_extension(
        half in 2usize..40,
        seed in 0u64..10_000,
    ) {
        // Same invariant on the extension workload: every node of a cycle
        // grows from degree 2 to 3 — one free stub per node, so the
        // (3,3) diagonal class is self-loop-free by construction.
        let n = 2 * half;
        let mut g = sgr_gen::classic::cycle(n);
        let target = vec![3u32; n];
        let mut add: JointDegreeMatrix = FxHashMap::default();
        add.insert((3, 3), half as u64);
        let before = g.num_edges();
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut scratch = ConstructScratch::new();
        let (edges, stats) =
            wire_stubs_with(&mut g, &target, &add, &mut rng, &mut scratch).unwrap();
        prop_assert_eq!(edges.len(), half);
        prop_assert_eq!(g.num_edges(), before + half);
        prop_assert_eq!(g.num_self_loops(), 0);
        prop_assert_eq!(stats.self_loops, 0);
        prop_assert!(g.nodes().all(|u| g.degree(u) == 3));
    }
}
