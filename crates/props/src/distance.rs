//! The normalized L1 accuracy measure of §V-C.
//!
//! For a vector property, `Σ_i |x̃_i - x_i| / Σ_i x_i` where `x` is the
//! original graph's vector and `x̃` the generated graph's. For a scalar
//! property this reduces to the relative error `|x̃ - x| / x`.

/// Normalized L1 distance between two property vectors; vectors of
/// different lengths are implicitly zero-padded.
///
/// When the original vector has zero mass (so the paper's normalization is
/// undefined) the unnormalized L1 mass of the other vector is returned —
/// zero iff the two agree.
pub fn normalized_l1(original: &[f64], generated: &[f64]) -> f64 {
    let len = original.len().max(generated.len());
    let get = |xs: &[f64], i: usize| xs.get(i).copied().unwrap_or(0.0);
    let mut diff = 0.0f64;
    let mut mass = 0.0f64;
    for i in 0..len {
        let x = get(original, i);
        let y = get(generated, i);
        diff += (y - x).abs();
        mass += x;
    }
    if mass > 0.0 {
        diff / mass
    } else {
        diff
    }
}

/// Relative error `|x̃ - x| / x`; when the original value is zero, the
/// absolute error is returned (zero iff the two agree).
pub fn relative_error(original: f64, generated: f64) -> f64 {
    let diff = (generated - original).abs();
    if original != 0.0 {
        diff / original.abs()
    } else {
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_zero() {
        assert_eq!(normalized_l1(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(relative_error(5.0, 5.0), 0.0);
    }

    #[test]
    fn paper_example_shape() {
        // Degree distributions: Σ P(k) = 1, so the distance is plain L1.
        let orig = [0.5, 0.3, 0.2];
        let gen = [0.4, 0.4, 0.2];
        assert!((normalized_l1(&orig, &gen) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn length_mismatch_pads_with_zero() {
        let orig = [1.0, 1.0];
        let gen = [1.0, 1.0, 2.0];
        assert!((normalized_l1(&orig, &gen) - 1.0).abs() < 1e-12);
        assert!((normalized_l1(&gen, &orig) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_mass_fallback() {
        assert_eq!(normalized_l1(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert_eq!(normalized_l1(&[], &[1.0, 2.0]), 3.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(0.0, 2.5), 2.5);
    }

    #[test]
    fn relative_error_scales() {
        assert!((relative_error(10.0, 12.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(10.0, 8.0) - 0.2).abs() < 1e-12);
    }
}
