//! Network dissimilarity `D(G, G')` (Schieber et al., Nat. Commun. 2017).
//!
//! The paper's final future-work item suggests using or extending the
//! dissimilarity (its Ref. 64) of a given graph to investigate how well the
//! proposed method restores the original social graph". This module
//! implements that measure so restored graphs can be scored with a single
//! principled number in addition to the 12 per-property distances.
//!
//! For a graph `G`, let `P_i = (p_i(1), …, p_i(d))` be node `i`'s
//! distance distribution (fraction of *other* nodes at each hop count;
//! disconnected pairs are assigned bucket `d+1` so distributions compare
//! across graphs of different connectivity). With `μ_G` the average of
//! the `P_i` and `J(·)` the Jensen–Shannon divergence:
//!
//! * the **network node dispersion** `NND(G) = J(P_1,…,P_n) / log(d+1)`
//!   measures distance-distribution heterogeneity;
//! * the dissimilarity is
//!   `D(G, H) = w1 · sqrt(J(μ_G, μ_H) / log 2)
//!            + w2 · |sqrt(NND(G)) − sqrt(NND(H))|`
//!   with the original paper's weights `w1 = w2 = 0.45` renormalized to
//!   sum to 1 (we omit the third, α-centrality term, which mainly
//!   discriminates graph complements — irrelevant for restoration
//!   quality; the omission is the standard "first two terms" variant).

use crate::bfs::{self, BfsEngine, BfsScratch, BATCH_WIDTH};
use crate::PropsConfig;
use sgr_graph::components::{connected_components, largest_component_csr_with};
use sgr_graph::{GraphView, NodeId};

/// Per-node distance distributions, averaged profile, and dispersion.
#[derive(Clone, Debug)]
pub struct DistanceProfile {
    /// `μ_G` — the mean distance distribution. Index `l` = fraction of
    /// ordered pairs at distance `l`; the last bucket holds unreachable
    /// pairs.
    pub mu: Vec<f64>,
    /// `NND(G)` — network node dispersion.
    pub nnd: f64,
}

/// Computes the distance profile of (the largest component of) `g`.
/// Above `cfg.exact_threshold` nodes, `cfg.num_pivots` sampled sources
/// are used — an unbiased estimator of both `μ` and the dispersion's
/// node average. The component is extracted straight into a CSR snapshot
/// ([`largest_component_csr_with`]) and every BFS reads the flat arena
/// (parallel edges and self-loops never change a distance, so no dedup
/// copy is needed). Sources run in multi-source batches on the shared
/// [`crate::bfs`] engine across `cfg.effective_threads()` source chunks;
/// per-source distributions and the `μ`/`NND` reduction are functions of
/// distances alone, so results are bitwise-identical at every thread
/// count and under [`PropsConfig::bfs`] engine choice.
pub fn distance_profile<G: GraphView + Sync>(g: &G, cfg: &PropsConfig) -> DistanceProfile {
    let comps = match cfg.bfs {
        BfsEngine::DirectionOptimizing => bfs::components(g, &mut BfsScratch::new()),
        BfsEngine::Reference => connected_components(g),
    };
    let (lcc, _) = largest_component_csr_with(g, &comps);
    let n = lcc.num_nodes();
    if n < 2 {
        return DistanceProfile {
            mu: vec![0.0],
            nnd: 0.0,
        };
    }
    let (sources, _) = bfs::pivot_sources(n, cfg, 0xd155);
    // Per-source histograms, computed per source chunk and concatenated
    // in chunk order — i.e. in source order, the same sequence the
    // single-threaded loop produced.
    let mut hists: Vec<Vec<f64>> =
        bfs::run_source_chunks(&lcc, &sources, cfg.effective_threads(), |lcc, chunk| {
            chunk_profiles(lcc, chunk, cfg.bfs)
        })
        .into_iter()
        .flatten()
        .collect();
    let mut d_max = 1usize;
    for h in &hists {
        d_max = d_max.max(h.len().saturating_sub(1));
    }
    // Align lengths: buckets 1..=d_max (+ trailing unreachable bucket,
    // always 0 inside the LCC but kept so graphs of different diameters
    // compare in a common space).
    let len = d_max + 2;
    for h in &mut hists {
        h.resize(len, 0.0);
    }
    let mut mu = vec![0.0f64; len];
    for h in &hists {
        for (m, &x) in mu.iter_mut().zip(h.iter()) {
            *m += x / hists.len() as f64;
        }
    }
    // NND: J(P_1..P_S) = (1/S) Σ_i Σ_l p_i(l) ln(p_i(l)/μ(l)).
    let mut j = 0.0f64;
    for h in &hists {
        for (l, &p) in h.iter().enumerate() {
            if p > 0.0 && mu[l] > 0.0 {
                j += p * (p / mu[l]).ln();
            }
        }
    }
    j /= hists.len() as f64;
    let nnd = (j / ((d_max as f64) + 1.0).ln().max(f64::MIN_POSITIVE)).max(0.0);
    DistanceProfile { mu, nnd }
}

/// One worker's share of the profile pass: the normalized distance
/// distribution of every source in `chunk`, in chunk order. Counts are
/// level-set sizes (exact integers in `f64`), so the engine branch and
/// the reference branch produce bitwise-identical distributions.
fn chunk_profiles<G: GraphView>(g: &G, chunk: &[NodeId], engine: BfsEngine) -> Vec<Vec<f64>> {
    let n = g.num_nodes();
    // Normalize over the n-1 other nodes (all reachable in the LCC).
    let norm = (n - 1) as f64;
    let mut out: Vec<Vec<f64>> = Vec::with_capacity(chunk.len());
    match engine {
        BfsEngine::DirectionOptimizing => {
            let mut scratch = BfsScratch::new();
            for batch in chunk.chunks(BATCH_WIDTH) {
                scratch.batch(g, batch);
                for i in 0..batch.len() {
                    let ecc = scratch.batch_depth(i);
                    let mut h = vec![0.0f64; ecc + 1];
                    for (l, x) in h.iter_mut().enumerate().skip(1) {
                        *x = scratch.batch_count(l, i) as f64 / norm;
                    }
                    out.push(h);
                }
            }
        }
        BfsEngine::Reference => {
            let mut visited = vec![0u64; n.div_ceil(64)];
            let mut queue: Vec<NodeId> = Vec::with_capacity(n);
            for &s in chunk {
                let (h, _) = bfs::reference::bfs_histogram(g, s, &mut visited, &mut queue);
                out.push(h.iter().map(|&c| c as f64 / norm).collect());
            }
        }
    }
    out
}

/// Jensen–Shannon divergence of two discrete distributions (natural log),
/// zero-padding the shorter.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    let len = p.len().max(q.len());
    let get = |xs: &[f64], i: usize| xs.get(i).copied().unwrap_or(0.0);
    let mut js = 0.0f64;
    for i in 0..len {
        let a = get(p, i);
        let b = get(q, i);
        let m = (a + b) / 2.0;
        if a > 0.0 {
            js += 0.5 * a * (a / m).ln();
        }
        if b > 0.0 {
            js += 0.5 * b * (b / m).ln();
        }
    }
    js.max(0.0)
}

/// The dissimilarity `D(G, H) ∈ [0, 1]` (two-term variant, weights
/// renormalized to `0.5 / 0.5`). Zero iff the two graphs have identical
/// distance profiles and dispersion. The two sides may use different
/// [`GraphView`] backends (e.g. a mutable original against a frozen
/// restoration).
pub fn dissimilarity<G: GraphView + Sync, H: GraphView + Sync>(
    g: &G,
    h: &H,
    cfg: &PropsConfig,
) -> f64 {
    let pg = distance_profile(g, cfg);
    let ph = distance_profile(h, cfg);
    let first = (jensen_shannon(&pg.mu, &ph.mu) / 2.0f64.ln()).sqrt();
    let second = (pg.nnd.sqrt() - ph.nnd.sqrt()).abs();
    0.5 * first + 0.5 * second
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, cycle, path, star};
    use sgr_util::Xoshiro256pp;

    fn cfg() -> PropsConfig {
        PropsConfig::default()
    }

    #[test]
    fn identical_graphs_have_zero_dissimilarity() {
        let g = cycle(20);
        assert!(dissimilarity(&g, &g, &cfg()) < 1e-12);
        let g = sgr_gen::holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(1)).unwrap();
        assert!(dissimilarity(&g, &g, &cfg()) < 1e-12);
    }

    #[test]
    fn complete_graph_profile() {
        // K_n: every node sees all others at distance 1; NND = 0.
        let p = distance_profile(&complete(8), &cfg());
        assert!((p.mu[1] - 1.0).abs() < 1e-12);
        assert!(p.nnd.abs() < 1e-12);
    }

    #[test]
    fn path_has_positive_dispersion() {
        // Path nodes have very different distance distributions.
        let p = distance_profile(&path(20), &cfg());
        assert!(p.nnd > 0.05, "NND = {}", p.nnd);
    }

    #[test]
    fn structurally_different_graphs_score_high_and_same_model_scores_low() {
        let a = complete(30);
        let b = path(30);
        let c = star(29);
        assert!(dissimilarity(&a, &b, &cfg()) > 0.2);
        assert!(dissimilarity(&a, &c, &cfg()) > 0.2);
        // Two draws of the same random model are far closer to each other
        // than either is to a path.
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let e1 = sgr_gen::erdos_renyi_gnm(200, 800, &mut rng).unwrap();
        let e2 = sgr_gen::erdos_renyi_gnm(200, 800, &mut rng).unwrap();
        let d_same = dissimilarity(&e1, &e2, &cfg());
        let d_diff = dissimilarity(&e1, &path(200), &cfg());
        assert!(
            d_same < 0.3 * d_diff,
            "same-model D = {d_same}, vs-path D = {d_diff}"
        );
    }

    #[test]
    fn symmetric_and_bounded() {
        let a = sgr_gen::holme_kim(200, 3, 0.6, &mut Xoshiro256pp::seed_from_u64(2)).unwrap();
        let b = sgr_gen::erdos_renyi_gnm(200, 600, &mut Xoshiro256pp::seed_from_u64(3)).unwrap();
        let d1 = dissimilarity(&a, &b, &cfg());
        let d2 = dissimilarity(&b, &a, &cfg());
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1), "D = {d1}");
    }

    #[test]
    fn engines_and_thread_counts_agree_bitwise() {
        let g = sgr_gen::holme_kim(800, 3, 0.4, &mut Xoshiro256pp::seed_from_u64(11)).unwrap();
        let base = PropsConfig {
            exact_threshold: 0,
            num_pivots: 64,
            threads: 1,
            ..PropsConfig::default()
        };
        let want = distance_profile(&g, &base);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for cfg in [
            PropsConfig { threads: 4, ..base },
            PropsConfig {
                bfs: BfsEngine::Reference,
                ..base
            },
            PropsConfig {
                bfs: BfsEngine::Reference,
                threads: 4,
                ..base
            },
        ] {
            let got = distance_profile(&g, &cfg);
            assert_eq!(got.nnd.to_bits(), want.nnd.to_bits());
            assert_eq!(bits(&got.mu), bits(&want.mu));
        }
    }

    #[test]
    fn js_divergence_properties() {
        assert_eq!(jensen_shannon(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        // Disjoint supports: JS = ln 2.
        let js = jensen_shannon(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((js - 2.0f64.ln()).abs() < 1e-12);
        // Length mismatch zero-pads.
        let js = jensen_shannon(&[1.0], &[1.0, 0.0]);
        assert!(js.abs() < 1e-12);
    }

    #[test]
    fn subgraph_of_a_graph_is_measurably_dissimilar() {
        // The future-work use case in miniature: a 10% crawl's subgraph
        // is structurally far from the original, and the measure sees it.
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let g = sgr_gen::holme_kim(600, 4, 0.5, &mut rng).unwrap();
        let mut am = sgr_sample::AccessModel::new(&g);
        let seed = am.random_seed(&mut rng);
        let crawl = sgr_sample::random_walk(&mut am, seed, 60, &mut rng);
        let sub = crawl.subgraph();
        let d_sub = dissimilarity(&g, &sub.graph, &cfg());
        assert!(
            d_sub > 0.02,
            "subgraph dissimilarity suspiciously low: {d_sub}"
        );
    }
}
