//! Largest adjacency eigenvalue `λ1` (property 12) by shifted power
//! iteration.
//!
//! The adjacency matrix of an undirected (multi)graph is symmetric with
//! nonnegative entries, so its spectral radius equals its largest
//! eigenvalue `λ1` (Perron–Frobenius). Plain power iteration can oscillate
//! on bipartite graphs (`λ_min = -λ1`); iterating on `A + I` (spectrum
//! shifted by +1, top eigenvector unchanged) removes the degeneracy.

use sgr_graph::GraphView;

/// Computes `λ1` to relative tolerance `tol` (capped at `max_iters`
/// iterations). Returns 0 for graphs without edges.
///
/// Multi-edges weight the matrix entry (`A_uv` = multiplicity) and a
/// self-loop contributes `A_uu = 2`, both per the paper's conventions —
/// the neighbor-slice representation of any [`GraphView`] backend encodes
/// exactly that. The matrix–vector products stream neighbor slices, so a
/// frozen [`sgr_graph::CsrGraph`] turns each iteration into one pass over
/// a flat arena.
pub fn largest_eigenvalue<G: GraphView>(g: &G, tol: f64, max_iters: usize) -> f64 {
    let n = g.num_nodes();
    if n == 0 || g.num_edges() == 0 {
        return 0.0;
    }
    let mut x = vec![1.0f64 / (n as f64).sqrt(); n];
    let mut y = vec![0.0f64; n];
    let mut prev_lambda = 0.0f64;
    for _ in 0..max_iters {
        // y = (A + I) x  — adjacency lists repeat each neighbor A_uv
        // times and list a loop endpoint twice, matching A exactly.
        for (u, yu) in y.iter_mut().enumerate() {
            let mut acc = x[u]; // the +I shift
            for &v in g.neighbors(u as u32) {
                acc += x[v as usize];
            }
            *yu = acc;
        }
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        for v in &mut y {
            *v /= norm;
        }
        // Rayleigh quotient of the *unshifted* matrix: λ = yᵀ A y.
        let mut lambda = 0.0f64;
        for u in 0..n {
            let mut row = 0.0f64;
            for &v in g.neighbors(u as u32) {
                row += y[v as usize];
            }
            lambda += y[u] * row;
        }
        std::mem::swap(&mut x, &mut y);
        if (lambda - prev_lambda).abs() <= tol * lambda.abs().max(1.0) {
            return lambda;
        }
        prev_lambda = lambda;
    }
    prev_lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, complete_bipartite, cycle, star};
    use sgr_graph::Graph;

    #[test]
    fn complete_graph() {
        // λ1(K_n) = n - 1.
        let g = complete(8);
        assert!((largest_eigenvalue(&g, 1e-12, 2000) - 7.0).abs() < 1e-8);
    }

    #[test]
    fn star_graph() {
        // λ1(star with L leaves) = sqrt(L).
        let g = star(9);
        assert!((largest_eigenvalue(&g, 1e-12, 2000) - 3.0).abs() < 1e-8);
    }

    #[test]
    fn cycle_graph() {
        // λ1(C_n) = 2.
        let g = cycle(10);
        assert!((largest_eigenvalue(&g, 1e-12, 5000) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn bipartite_no_oscillation() {
        // λ1(K_{a,b}) = sqrt(a b); bipartite is the hard case for
        // unshifted power iteration.
        let g = complete_bipartite(4, 9);
        assert!((largest_eigenvalue(&g, 1e-12, 5000) - 6.0).abs() < 1e-7);
    }

    #[test]
    fn multi_edge_doubles_entry() {
        // Two nodes, double edge: A = [[0,2],[2,0]], λ1 = 2.
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert!((largest_eigenvalue(&g, 1e-12, 2000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn self_loop_counts_two() {
        // Single node with a loop: A = [2], λ1 = 2.
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0);
        assert!((largest_eigenvalue(&g, 1e-12, 100) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn edgeless_is_zero() {
        assert_eq!(largest_eigenvalue(&Graph::with_nodes(5), 1e-12, 100), 0.0);
        assert_eq!(largest_eigenvalue(&Graph::with_nodes(0), 1e-12, 100), 0.0);
    }
}
