//! Shortest-path properties (8)–(10): average length, length distribution,
//! diameter.
//!
//! Exact mode runs one BFS per node; sampled mode runs BFS from
//! `num_pivots` uniformly chosen sources, an unbiased estimator of `l̄`
//! and `{P(l)}` (each pivot sees the exact distance profile from itself),
//! plus double-sweep refinement for the diameter. Both modes parallelize
//! over sources with std scoped threads — the role the paper's
//! parallel algorithms (its Ref. 62) play.
//!
//! The BFS reads neighbor slices straight through [`GraphView`] — no
//! intermediate adjacency copy — so handing it a [`sgr_graph::CsrGraph`]
//! snapshot traverses one flat arena. Parallel edges and self-loops cost
//! one extra distance check each and never change a distance, so the
//! histogram is identical on deduplicated input.

use crate::PropsConfig;
use sgr_graph::{GraphView, NodeId};
use sgr_util::Xoshiro256pp;

/// Results of the shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPathProperties {
    /// `l̄` — average shortest-path length over connected pairs.
    pub average_length: f64,
    /// `{P(l)}` indexed by length (index 0 is always 0).
    pub length_dist: Vec<f64>,
    /// `l_max` — the diameter (exact in exact mode, a double-sweep lower
    /// bound in sampled mode).
    pub diameter: usize,
}

/// Single-source level-synchronous BFS; returns the distance histogram
/// (`hist[l]` = number of nodes at distance `l > 0`) and the eccentricity
/// with one farthest node.
///
/// The visited set is a dense bitset (`n/8` bytes — cache-resident even at
/// million-node scale, where a `u32` distance array would be 32× larger
/// and each check a likely miss), and distances are implied by level
/// boundaries in the discovery queue, so no per-node distance store is
/// touched at all. Parallel edges only repeat the (failed) visited check;
/// a self-loop fails it by construction (the source of the scan is already
/// marked).
fn bfs_histogram<G: GraphView>(
    g: &G,
    source: NodeId,
    visited: &mut [u64],
    queue: &mut Vec<NodeId>,
) -> (Vec<u64>, NodeId) {
    for w in visited.iter_mut() {
        *w = 0;
    }
    queue.clear();
    visited[source as usize >> 6] |= 1u64 << (source & 63);
    queue.push(source);
    let mut hist: Vec<u64> = Vec::new();
    let mut start = 0usize;
    while start < queue.len() {
        let end = queue.len();
        for i in start..end {
            let u = queue[i];
            for &v in g.neighbors(u) {
                let word = (v >> 6) as usize;
                let bit = 1u64 << (v & 63);
                if visited[word] & bit == 0 {
                    visited[word] |= bit;
                    queue.push(v);
                }
            }
        }
        if queue.len() > end {
            // Everything pushed during this pass sits one level deeper.
            hist.push((queue.len() - end) as u64);
        }
        start = end;
    }
    // Convert per-level counts to the distance-indexed convention
    // (index 0 is the source's own level and always reads 0).
    let mut full = vec![0u64; hist.len() + 1];
    full[1..].copy_from_slice(&hist);
    (
        full,
        *queue.last().expect("queue holds at least the source"),
    )
}

/// Computes the shortest-path properties of a **connected** graph (callers
/// pass the largest component, ideally as a frozen
/// [`sgr_graph::CsrGraph`]). Empty and single-node graphs yield zeros.
pub fn shortest_path_properties<G: GraphView + Sync>(
    g: &G,
    cfg: &PropsConfig,
) -> ShortestPathProperties {
    let n = g.num_nodes();
    if n < 2 {
        return ShortestPathProperties {
            average_length: 0.0,
            length_dist: vec![0.0],
            diameter: 0,
        };
    }
    let exact = n <= cfg.exact_threshold;
    let sources: Vec<NodeId> = if exact {
        (0..n as NodeId).collect()
    } else {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let k = cfg.num_pivots.min(n);
        sgr_util::sampling::sample_indices(n, k, &mut rng)
            .into_iter()
            .map(|i| i as NodeId)
            .collect()
    };
    let (mut hist, max_far) = parallel_histogram(g, &sources, cfg.effective_threads());

    // Diameter: exact when all sources used; otherwise refine with double
    // sweeps from the farthest nodes found.
    let mut diameter = hist.len().saturating_sub(1);
    if !exact {
        let mut visited = vec![0u64; n.div_ceil(64)];
        let mut queue = Vec::with_capacity(n);
        let mut frontier = max_far;
        for _ in 0..4 {
            let (h, far) = bfs_histogram(g, frontier, &mut visited, &mut queue);
            diameter = diameter.max(h.len().saturating_sub(1));
            if far == frontier {
                break;
            }
            frontier = far;
        }
    }
    if hist.len() <= diameter {
        hist.resize(diameter + 1, 0);
    }

    let total: u64 = hist.iter().sum();
    let weighted: u128 = hist
        .iter()
        .enumerate()
        .map(|(l, &c)| l as u128 * c as u128)
        .sum();
    let average_length = if total > 0 {
        weighted as f64 / total as f64
    } else {
        0.0
    };
    let length_dist: Vec<f64> = hist
        .iter()
        .map(|&c| {
            if total > 0 {
                c as f64 / total as f64
            } else {
                0.0
            }
        })
        .collect();
    ShortestPathProperties {
        average_length,
        length_dist,
        diameter,
    }
}

/// Runs BFS from every source across worker threads, merging histograms.
/// Returns the merged histogram and one farthest node (for double sweep).
fn parallel_histogram<G: GraphView + Sync>(
    g: &G,
    sources: &[NodeId],
    threads: usize,
) -> (Vec<u64>, NodeId) {
    let n = g.num_nodes();
    let threads = threads.max(1).min(sources.len().max(1));
    if threads <= 1 || sources.len() < 4 {
        let mut visited = vec![0u64; n.div_ceil(64)];
        let mut queue = Vec::with_capacity(n);
        let mut merged: Vec<u64> = Vec::new();
        let mut far = sources.first().copied().unwrap_or(0);
        for &s in sources {
            let (h, f) = bfs_histogram(g, s, &mut visited, &mut queue);
            // First-max-wins in source order — the same rule the threaded
            // branch applies per chunk and across chunks, so the
            // double-sweep seed (and hence the sampled-mode diameter
            // bound) does not depend on the thread count.
            if h.len() > merged.len() {
                merged.resize(h.len(), 0);
                far = f;
            }
            for (l, &c) in h.iter().enumerate() {
                merged[l] += c;
            }
        }
        return (merged, far);
    }
    let chunks: Vec<&[NodeId]> = sources.chunks(sources.len().div_ceil(threads)).collect();
    let results: Vec<(Vec<u64>, NodeId)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut visited = vec![0u64; n.div_ceil(64)];
                    let mut queue = Vec::with_capacity(n);
                    let mut merged: Vec<u64> = Vec::new();
                    let mut far = chunk.first().copied().unwrap_or(0);
                    for &s in chunk {
                        let (h, f) = bfs_histogram(g, s, &mut visited, &mut queue);
                        if h.len() > merged.len() {
                            merged.resize(h.len(), 0);
                            far = f;
                        }
                        for (l, &c) in h.iter().enumerate() {
                            merged[l] += c;
                        }
                    }
                    (merged, far)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("BFS worker panicked"))
            .collect()
    });
    let mut merged: Vec<u64> = Vec::new();
    let mut far = sources.first().copied().unwrap_or(0);
    let mut best = 0usize;
    for (h, f) in results {
        if h.len() > best {
            best = h.len();
            far = f;
        }
        if h.len() > merged.len() {
            merged.resize(h.len(), 0);
        }
        for (l, &c) in h.iter().enumerate() {
            merged[l] += c;
        }
    }
    (merged, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{barbell, complete, cycle, path, star};

    fn cfg() -> PropsConfig {
        PropsConfig::default()
    }

    #[test]
    fn path_graph_exact() {
        let g = path(6);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 5);
        // Σ over ordered pairs of l / count: same as unordered average.
        // Path P6: pairs by distance 1:5, 2:4, 3:3, 4:2, 5:1 → l̄ = 35/15.
        assert!((sp.average_length - 35.0 / 15.0).abs() < 1e-12);
        assert!((sp.length_dist[1] - 5.0 / 15.0).abs() < 1e-12);
        assert!((sp.length_dist[5] - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = complete(7);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 1);
        assert!((sp.average_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_even() {
        let g = cycle(8);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 4);
        // Distances from any node: 1,1,2,2,3,3,4 → mean 16/7.
        assert!((sp.average_length - 16.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn star_diameter_two() {
        let g = star(9);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 2);
    }

    #[test]
    fn multi_edges_do_not_change_distances() {
        let mut g = path(4);
        g.add_edge(0, 1);
        g.add_edge(2, 2);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 3);
    }

    #[test]
    fn sampled_mode_close_to_exact() {
        let g = sgr_gen::holme_kim(2000, 3, 0.4, &mut sgr_util::Xoshiro256pp::seed_from_u64(1))
            .unwrap();
        let exact = shortest_path_properties(&g, &cfg());
        let sampled_cfg = PropsConfig {
            exact_threshold: 10, // force sampling
            num_pivots: 256,
            ..cfg()
        };
        let approx = shortest_path_properties(&g, &sampled_cfg);
        assert!(
            (approx.average_length - exact.average_length).abs() / exact.average_length < 0.05,
            "approx {} vs exact {}",
            approx.average_length,
            exact.average_length
        );
        // Diameter lower bound within 1 for double-sweep on small-worlds.
        assert!(approx.diameter <= exact.diameter);
        assert!(approx.diameter + 1 >= exact.diameter);
    }

    #[test]
    fn barbell_diameter() {
        let g = barbell(5);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 3);
    }

    #[test]
    fn tiny_graphs() {
        let sp = shortest_path_properties(&sgr_graph::Graph::with_nodes(0), &cfg());
        assert_eq!(sp.diameter, 0);
        assert_eq!(sp.average_length, 0.0);
        let sp = shortest_path_properties(&sgr_graph::Graph::with_nodes(1), &cfg());
        assert_eq!(sp.diameter, 0);
    }
}
