//! Shortest-path properties (8)–(10): average length, length distribution,
//! diameter.
//!
//! Exact mode runs one BFS per node; sampled mode runs BFS from
//! `num_pivots` uniformly chosen sources, an unbiased estimator of `l̄`
//! and `{P(l)}` (each pivot sees the exact distance profile from itself),
//! plus double-sweep refinement for the diameter. Both modes parallelize
//! over sources with std scoped threads — the role the paper's
//! parallel algorithms (its Ref. 62) play.
//!
//! Traversal runs on the shared [`crate::bfs`] engine: sources are
//! processed in multi-source batches (one arena pass advances up to
//! [`BATCH_WIDTH`] pivots) and the double-sweep refinement uses the
//! direction-optimizing single-source kernel, with all state in a
//! per-worker [`BfsScratch`] — no per-source allocations.
//! [`PropsConfig::bfs`] can select the [`crate::bfs::reference`] oracle
//! instead; results are bitwise-identical (see the crate-level
//! "Traversal model" docs). Parallel edges and self-loops never change a
//! distance, so the histogram is identical on deduplicated input.

use crate::bfs::{self, BfsEngine, BfsScratch, BATCH_WIDTH};
use crate::PropsConfig;
use sgr_graph::{GraphView, NodeId};

/// Results of the shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPathProperties {
    /// `l̄` — average shortest-path length over connected pairs.
    pub average_length: f64,
    /// `{P(l)}` indexed by length (index 0 is always 0).
    pub length_dist: Vec<f64>,
    /// `l_max` — the diameter (exact in exact mode, a double-sweep lower
    /// bound in sampled mode).
    pub diameter: usize,
}

/// Computes the shortest-path properties of a **connected** graph (callers
/// pass the largest component, ideally as a frozen
/// [`sgr_graph::CsrGraph`]). Empty and single-node graphs yield zeros.
pub fn shortest_path_properties<G: GraphView + Sync>(
    g: &G,
    cfg: &PropsConfig,
) -> ShortestPathProperties {
    let n = g.num_nodes();
    if n < 2 {
        return ShortestPathProperties {
            average_length: 0.0,
            length_dist: vec![0.0],
            diameter: 0,
        };
    }
    let (sources, exact) = bfs::pivot_sources(n, cfg, 0);
    let results = bfs::run_source_chunks(g, &sources, cfg.effective_threads(), |g, chunk| {
        chunk_histogram(g, chunk, cfg.bfs)
    });
    // Merge chunk results in chunk order with the same first-max-wins far
    // rule each chunk applies internally, so the double-sweep seed (and
    // hence the sampled-mode diameter bound) does not depend on the
    // thread count.
    let mut hist: Vec<u64> = Vec::new();
    let mut max_far = sources.first().copied().unwrap_or(0);
    let mut best = 0usize;
    for (h, f) in results {
        if h.len() > best {
            best = h.len();
            max_far = f;
        }
        if h.len() > hist.len() {
            hist.resize(h.len(), 0);
        }
        for (l, &c) in h.iter().enumerate() {
            hist[l] += c;
        }
    }

    // Diameter: exact when all sources used; otherwise refine with double
    // sweeps from the farthest nodes found.
    let mut diameter = hist.len().saturating_sub(1);
    if !exact {
        let mut frontier = max_far;
        match cfg.bfs {
            BfsEngine::DirectionOptimizing => {
                let mut scratch = BfsScratch::new();
                for _ in 0..4 {
                    let run = scratch.single_source(g, frontier);
                    diameter = diameter.max(run.depth);
                    if run.far == frontier {
                        break;
                    }
                    frontier = run.far;
                }
            }
            BfsEngine::Reference => {
                let mut visited = vec![0u64; n.div_ceil(64)];
                let mut queue = Vec::with_capacity(n);
                for _ in 0..4 {
                    let (h, far) =
                        bfs::reference::bfs_histogram(g, frontier, &mut visited, &mut queue);
                    diameter = diameter.max(h.len().saturating_sub(1));
                    if far == frontier {
                        break;
                    }
                    frontier = far;
                }
            }
        }
    }
    if hist.len() <= diameter {
        hist.resize(diameter + 1, 0);
    }

    let total: u64 = hist.iter().sum();
    let weighted: u128 = hist
        .iter()
        .enumerate()
        .map(|(l, &c)| l as u128 * c as u128)
        .sum();
    let average_length = if total > 0 {
        weighted as f64 / total as f64
    } else {
        0.0
    };
    let length_dist: Vec<f64> = hist
        .iter()
        .map(|&c| {
            if total > 0 {
                c as f64 / total as f64
            } else {
                0.0
            }
        })
        .collect();
    ShortestPathProperties {
        average_length,
        length_dist,
        diameter,
    }
}

/// One worker's share of the sweep: merged histogram over `chunk`'s
/// sources plus the chunk's far node under first-max-wins in source order
/// (the far node of the first source reaching the chunk's maximum depth).
/// Histogram entries are level-set sizes, so engine choice cannot change
/// them; the far node is level-set determined per source, so the merged
/// pair is bitwise engine-invariant.
fn chunk_histogram<G: GraphView>(g: &G, chunk: &[NodeId], engine: BfsEngine) -> (Vec<u64>, NodeId) {
    let n = g.num_nodes();
    let mut merged: Vec<u64> = Vec::new();
    let mut far = chunk.first().copied().unwrap_or(0);
    let mut best = 0usize;
    match engine {
        BfsEngine::DirectionOptimizing => {
            let mut scratch = BfsScratch::new();
            for batch in chunk.chunks(BATCH_WIDTH) {
                let levels = scratch.batch(g, batch);
                if levels > merged.len() {
                    merged.resize(levels, 0);
                }
                for i in 0..batch.len() {
                    if scratch.batch_depth(i) + 1 > best {
                        best = scratch.batch_depth(i) + 1;
                        far = scratch.batch_far(i);
                    }
                }
                for (l, m) in merged.iter_mut().enumerate().take(levels).skip(1) {
                    let mut sum = 0u64;
                    for i in 0..batch.len() {
                        sum += scratch.batch_count(l, i);
                    }
                    *m += sum;
                }
            }
        }
        BfsEngine::Reference => {
            let mut visited = vec![0u64; n.div_ceil(64)];
            let mut queue = Vec::with_capacity(n);
            for &s in chunk {
                let (h, f) = bfs::reference::bfs_histogram(g, s, &mut visited, &mut queue);
                if h.len() > best {
                    best = h.len();
                    far = f;
                }
                if h.len() > merged.len() {
                    merged.resize(h.len(), 0);
                }
                for (l, &c) in h.iter().enumerate() {
                    merged[l] += c;
                }
            }
        }
    }
    (merged, far)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{barbell, complete, cycle, path, star};

    fn cfg() -> PropsConfig {
        PropsConfig::default()
    }

    #[test]
    fn path_graph_exact() {
        let g = path(6);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 5);
        // Σ over ordered pairs of l / count: same as unordered average.
        // Path P6: pairs by distance 1:5, 2:4, 3:3, 4:2, 5:1 → l̄ = 35/15.
        assert!((sp.average_length - 35.0 / 15.0).abs() < 1e-12);
        assert!((sp.length_dist[1] - 5.0 / 15.0).abs() < 1e-12);
        assert!((sp.length_dist[5] - 1.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = complete(7);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 1);
        assert!((sp.average_length - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_even() {
        let g = cycle(8);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 4);
        // Distances from any node: 1,1,2,2,3,3,4 → mean 16/7.
        assert!((sp.average_length - 16.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn star_diameter_two() {
        let g = star(9);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 2);
    }

    #[test]
    fn multi_edges_do_not_change_distances() {
        let mut g = path(4);
        g.add_edge(0, 1);
        g.add_edge(2, 2);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 3);
    }

    #[test]
    fn sampled_mode_close_to_exact() {
        let g = sgr_gen::holme_kim(2000, 3, 0.4, &mut sgr_util::Xoshiro256pp::seed_from_u64(1))
            .unwrap();
        let exact = shortest_path_properties(&g, &cfg());
        let sampled_cfg = PropsConfig {
            exact_threshold: 10, // force sampling
            num_pivots: 256,
            ..cfg()
        };
        let approx = shortest_path_properties(&g, &sampled_cfg);
        assert!(
            (approx.average_length - exact.average_length).abs() / exact.average_length < 0.05,
            "approx {} vs exact {}",
            approx.average_length,
            exact.average_length
        );
        // Diameter lower bound within 1 for double-sweep on small-worlds.
        assert!(approx.diameter <= exact.diameter);
        assert!(approx.diameter + 1 >= exact.diameter);
    }

    #[test]
    fn engines_agree_bitwise() {
        let g = sgr_gen::holme_kim(1200, 3, 0.3, &mut sgr_util::Xoshiro256pp::seed_from_u64(5))
            .unwrap();
        for exact_threshold in [0, 4000] {
            let base = PropsConfig {
                exact_threshold,
                num_pivots: 96,
                threads: 1,
                ..cfg()
            };
            let engine = shortest_path_properties(&g, &base);
            let reference = shortest_path_properties(
                &g,
                &PropsConfig {
                    bfs: BfsEngine::Reference,
                    ..base
                },
            );
            assert_eq!(engine.diameter, reference.diameter);
            assert_eq!(
                engine.average_length.to_bits(),
                reference.average_length.to_bits()
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&engine.length_dist), bits(&reference.length_dist));
        }
    }

    #[test]
    fn barbell_diameter() {
        let g = barbell(5);
        let sp = shortest_path_properties(&g, &cfg());
        assert_eq!(sp.diameter, 3);
    }

    #[test]
    fn tiny_graphs() {
        let sp = shortest_path_properties(&sgr_graph::Graph::with_nodes(0), &cfg());
        assert_eq!(sp.diameter, 0);
        assert_eq!(sp.average_length, 0.0);
        let sp = shortest_path_properties(&sgr_graph::Graph::with_nodes(1), &cfg());
        assert_eq!(sp.diameter, 0);
    }
}
