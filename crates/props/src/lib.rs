//! # sgr-props
//!
//! The 12 structural properties of the paper's evaluation (§V-B) and the
//! normalized L1 accuracy measure (§V-C).
//!
//! Local properties:
//! 1. number of nodes `n`
//! 2. average degree `k̄`
//! 3. degree distribution `{P(k)}`
//! 4. neighbor connectivity `{k̄nn(k)}`
//! 5. network clustering coefficient `c̄`
//! 6. degree-dependent clustering coefficient `{c̄(k)}`
//! 7. edgewise shared-partner distribution `{P(s)}`
//!
//! Global properties (computed, as in the paper, on the largest connected
//! component):
//! 8. average shortest-path length `l̄`
//! 9. shortest-path length distribution `{P(l)}`
//! 10. diameter `l_max`
//! 11. degree-dependent betweenness centrality `{b̄(k)}`
//! 12. largest adjacency eigenvalue `λ1`
//!
//! The paper computes shortest-path properties with parallel exact
//! algorithms on a 40-core server; here [`PropsConfig`] selects exact
//! computation up to a size threshold and unbiased pivot sampling above it
//! (parallelized with std scoped threads either way), which preserves method rankings —
//! the quantity the reproduction targets.
//!
//! Every kernel is generic over [`sgr_graph::GraphView`], so callers can
//! pass the mutable [`sgr_graph::Graph`] directly or — the fast path —
//! freeze it once into a [`sgr_graph::CsrGraph`] and hand the snapshot to
//! all 12 computations. [`StructuralProperties::compute`] itself extracts
//! the largest component straight into a CSR snapshot
//! ([`sgr_graph::components::largest_component_csr`]) before running the
//! BFS-heavy global kernels. Results are bitwise-identical across the two
//! backends when the snapshot is order-preserving
//! ([`sgr_graph::CsrGraph::freeze`]); the property tests in
//! `tests/backend_equivalence.rs` pin that guarantee.
//!
//! # Traversal model
//!
//! All BFS-heavy kernels (shortest paths, dissimilarity profiles,
//! component labeling, the Brandes phase setup) run on the shared [`bfs`]
//! engine: direction-optimizing single-source BFS (Beamer-style α/β
//! switching between top-down frontier expansion and bottom-up unvisited
//! scanning) and multi-source batched BFS (up to [`bfs::BATCH_WIDTH`]
//! sources per arena pass via per-node `u64` seen-masks), with all state
//! in a reusable allocation-free [`bfs::BfsScratch`]. The key contract:
//! **bottom-up preserves level sets exactly** — level `l + 1` is by
//! definition the set of unvisited nodes adjacent to level `l`, and which
//! endpoint discovers an edge changes only within-level discovery order,
//! never membership — and every engine output (per-level counts,
//! eccentricities, the "lowest id in the deepest level" far-node rule) is
//! a function of level sets alone. Combined with chunk-ordered reduction
//! over source chunks, that makes every kernel's result **bitwise
//! identical** across engines ([`PropsConfig::bfs`] selects the
//! [`bfs::reference`] oracle), backends, batch compositions, and thread
//! counts; `tests/bfs_equivalence.rs` pins the whole surface. See the
//! [`bfs`] module docs for the full determinism argument.

pub mod betweenness;
pub mod bfs;
pub mod dissimilarity;
pub mod distance;
pub mod local;
pub mod paths;
pub mod spectral;
pub mod triangles;

pub use bfs::BfsEngine;

use sgr_graph::components::largest_component_csr;
use sgr_graph::GraphView;

/// Names of the 12 properties in the paper's table order.
pub const PROPERTY_NAMES: [&str; 12] = [
    "n", "k_avg", "P(k)", "knn(k)", "c_avg", "c(k)", "P(s)", "l_avg", "P(l)", "l_max", "b(k)",
    "lambda1",
];

/// Computation knobs.
#[derive(Clone, Copy, Debug)]
pub struct PropsConfig {
    /// Graphs with at most this many nodes get exact shortest-path and
    /// betweenness computation; larger ones use `num_pivots` sampled
    /// sources.
    pub exact_threshold: usize,
    /// Number of BFS/Brandes pivots when sampling.
    pub num_pivots: usize,
    /// Worker threads (0 = all available).
    pub threads: usize,
    /// Seed for pivot selection.
    pub seed: u64,
    /// Which BFS kernel the traversal-heavy computations run on
    /// (results are bitwise-identical either way; see [`bfs`]).
    pub bfs: BfsEngine,
}

impl Default for PropsConfig {
    fn default() -> Self {
        Self {
            exact_threshold: 4_000,
            num_pivots: 512,
            threads: 0,
            seed: 0x5eed,
            bfs: BfsEngine::DirectionOptimizing,
        }
    }
}

impl PropsConfig {
    /// Resolves the worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// All 12 properties of one graph.
#[derive(Clone, Debug)]
pub struct StructuralProperties {
    /// (1) `n`.
    pub num_nodes: f64,
    /// (2) `k̄`.
    pub avg_degree: f64,
    /// (3) `{P(k)}` indexed by degree.
    pub degree_dist: Vec<f64>,
    /// (4) `{k̄nn(k)}` indexed by degree.
    pub knn: Vec<f64>,
    /// (5) `c̄`.
    pub mean_clustering: f64,
    /// (6) `{c̄(k)}` indexed by degree.
    pub clustering_by_degree: Vec<f64>,
    /// (7) `{P(s)}` indexed by shared-partner count.
    pub shared_partner_dist: Vec<f64>,
    /// (8) `l̄` (largest component).
    pub avg_path_length: f64,
    /// (9) `{P(l)}` indexed by path length (largest component).
    pub path_length_dist: Vec<f64>,
    /// (10) diameter (largest component).
    pub diameter: f64,
    /// (11) `{b̄(k)}` indexed by degree (largest component).
    pub betweenness_by_degree: Vec<f64>,
    /// (12) `λ1`.
    pub lambda1: f64,
}

impl StructuralProperties {
    /// Computes all 12 properties of `g` (any [`GraphView`] backend).
    pub fn compute<G: GraphView>(g: &G, cfg: &PropsConfig) -> Self {
        let local = local::LocalProperties::compute(g);
        // Global properties on the largest connected component, as in the
        // paper (§V-B); the component is extracted straight into a CSR
        // snapshot (no intermediate per-node-Vec Graph) and the BFS-heavy
        // kernels read the flat arena.
        let (lcc, _) = largest_component_csr(g);
        let sp = paths::shortest_path_properties(&lcc, cfg);
        let btw = betweenness::betweenness_by_degree(&lcc, cfg);
        let lambda1 = spectral::largest_eigenvalue(g, 1e-10, 1000);
        Self {
            num_nodes: g.num_nodes() as f64,
            avg_degree: g.average_degree(),
            degree_dist: local.degree_dist,
            knn: local.knn,
            mean_clustering: local.mean_clustering,
            clustering_by_degree: local.clustering_by_degree,
            shared_partner_dist: local.shared_partner_dist,
            avg_path_length: sp.average_length,
            path_length_dist: sp.length_dist,
            diameter: sp.diameter as f64,
            betweenness_by_degree: btw,
            lambda1,
        }
    }

    /// The normalized L1 distance of each of the 12 properties between an
    /// original graph's properties (`self`) and a generated graph's
    /// (`other`), in [`PROPERTY_NAMES`] order (§V-C).
    pub fn l1_distances(&self, other: &StructuralProperties) -> [f64; 12] {
        use distance::{normalized_l1, relative_error};
        [
            relative_error(self.num_nodes, other.num_nodes),
            relative_error(self.avg_degree, other.avg_degree),
            normalized_l1(&self.degree_dist, &other.degree_dist),
            normalized_l1(&self.knn, &other.knn),
            relative_error(self.mean_clustering, other.mean_clustering),
            normalized_l1(&self.clustering_by_degree, &other.clustering_by_degree),
            normalized_l1(&self.shared_partner_dist, &other.shared_partner_dist),
            relative_error(self.avg_path_length, other.avg_path_length),
            normalized_l1(&self.path_length_dist, &other.path_length_dist),
            relative_error(self.diameter, other.diameter),
            normalized_l1(&self.betweenness_by_degree, &other.betweenness_by_degree),
            relative_error(self.lambda1, other.lambda1),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, cycle, path, star};

    #[test]
    fn complete_graph_all_properties() {
        let g = complete(10);
        let p = StructuralProperties::compute(&g, &PropsConfig::default());
        assert_eq!(p.num_nodes, 10.0);
        assert_eq!(p.avg_degree, 9.0);
        assert!((p.degree_dist[9] - 1.0).abs() < 1e-12);
        assert!((p.knn[9] - 9.0).abs() < 1e-12);
        assert!((p.mean_clustering - 1.0).abs() < 1e-12);
        assert!((p.clustering_by_degree[9] - 1.0).abs() < 1e-12);
        // Every edge has 8 shared partners.
        assert!((p.shared_partner_dist[8] - 1.0).abs() < 1e-12);
        assert!((p.avg_path_length - 1.0).abs() < 1e-12);
        assert_eq!(p.diameter, 1.0);
        // Betweenness: all zero (every pair adjacent).
        assert!(p.betweenness_by_degree.iter().all(|&b| b == 0.0));
        assert!((p.lambda1 - 9.0).abs() < 1e-6);
    }

    #[test]
    fn path_graph_distances() {
        let g = path(5); // diameter 4
        let p = StructuralProperties::compute(&g, &PropsConfig::default());
        assert_eq!(p.diameter, 4.0);
        // Pairs: 4×1 + 3×2 + 2×3 + 1×4 = 20; 10 pairs → l̄ = 2.0.
        assert!((p.avg_path_length - 2.0).abs() < 1e-12);
        assert!((p.path_length_dist[1] - 0.4).abs() < 1e-12);
        assert!((p.path_length_dist[4] - 0.1).abs() < 1e-12);
        assert_eq!(p.mean_clustering, 0.0);
    }

    #[test]
    fn star_betweenness_concentrates_on_center() {
        let g = star(6);
        let p = StructuralProperties::compute(&g, &PropsConfig::default());
        // Center (degree 6) lies on all C(6,2) = 15 pairs, both directions
        // in Brandes accumulation → b̄(6) = 30 under the directed-count
        // convention the paper's b_i definition uses.
        assert!((p.betweenness_by_degree[6] - 30.0).abs() < 1e-9);
        assert_eq!(p.betweenness_by_degree[1], 0.0);
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let g = cycle(12);
        let p1 = StructuralProperties::compute(&g, &PropsConfig::default());
        let p2 = StructuralProperties::compute(&g, &PropsConfig::default());
        for d in p1.l1_distances(&p2) {
            assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn names_cover_all_12() {
        assert_eq!(PROPERTY_NAMES.len(), 12);
    }
}
