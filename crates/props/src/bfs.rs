//! Shared BFS traversal engine for the read path.
//!
//! Every BFS-heavy property kernel — the shortest-path sweep (properties
//! 8–10), the dissimilarity `distance_profile`, component labeling — used
//! to carry its own ad-hoc level-synchronous loop. This module replaces
//! them with one engine offering two kernels over any
//! [`GraphView`] (ideally a frozen [`sgr_graph::CsrGraph`] arena):
//!
//! * [`BfsScratch::single_source`] — **direction-optimizing** BFS
//!   (Beamer, Asanović, Patterson, SC'12): frontier, next, and visited
//!   live in dense bitsets; level expansion runs *top-down* (scan the
//!   frontier's neighbor slices) while the frontier is small and flips to
//!   *bottom-up* (scan unvisited nodes for any frontier parent, with
//!   early exit on the first hit) once the frontier's outgoing-edge count
//!   crosses the α threshold, switching back for the small tail levels
//!   under the β threshold. Low-diameter social graphs spend most of
//!   their edges in two or three huge middle levels, which is exactly
//!   where bottom-up pays: each unvisited node stops at its first parent
//!   instead of being touched once per incoming frontier edge.
//! * [`BfsScratch::batch`] — **multi-source batched** BFS (up to 64
//!   sources per traversal): each node carries a `u64` seen-mask and
//!   frontier-mask, so one pass over the arena advances all sources of
//!   the batch at once. Workloads that need one histogram *per source* —
//!   the dissimilarity `distance_profile`, the sampled-pivot
//!   shortest-path sweep — amortize every neighbor-slice scan across the
//!   whole batch: a node active at the same level for many sources costs
//!   one slice walk instead of one per source. Levels alternate between
//!   a top-down form (scan the active list) and a bottom-up form (scan
//!   the not-yet-complete candidate list, OR-ing parent masks with early
//!   exit once the remaining mask is covered).
//!
//! # Traversal model
//!
//! **Why bottom-up preserves level sets exactly.** BFS level `l + 1` is,
//! by definition, the set of unvisited nodes adjacent to level `l`; which
//! endpoint of each such edge does the discovering is irrelevant to *set
//! membership*. The top-down step enumerates exactly that set by scanning
//! forward from the frontier; the bottom-up step enumerates exactly that
//! set by scanning backward from the unvisited side. Both produce the
//! same level sets — only the *discovery order within a level* differs.
//! Every output of this engine is therefore defined purely in terms of
//! level sets, never discovery order:
//!
//! * per-level **counts** (the distance histograms) are level-set sizes;
//! * the **eccentricity** is the index of the deepest non-empty level;
//! * the **far node** (the double-sweep seed of the sampled-diameter
//!   refinement) is the *lowest node id in the deepest level* — an
//!   order-free rule shared by every kernel here, including
//!   [`mod@reference`], so direction switching, source batching, neighbor
//!   order (sorted vs insertion-order snapshots), and thread count can
//!   never change a result.
//!
//! **Determinism argument.** Distances in an unweighted graph are unique,
//! so per-source histograms are engine-invariant integers. The α/β mode
//! switches change only which loop materializes a level. Multi-source
//! masks commute (`|=` over `u64`), so batch composition cannot change
//! per-source results. Parallel callers split *sources* into contiguous
//! chunks and reduce chunk results in chunk order (first-max-wins for the
//! far node, ordered summation for float averages), which makes every
//! public result bitwise-identical at any `threads` setting — the
//! equivalence suite (`tests/bfs_equivalence.rs`) pins engine-vs-oracle
//! and thread-count identity on the full property surface.
//!
//! **Scratch reuse.** All traversal state lives in a reusable
//! [`BfsScratch`] (the same pattern as `ConstructScratch` and
//! `EstimateScratch`): buffers are sized once per graph and the warm path
//! performs **zero heap allocations** (proven by
//! `tests/bfs_zero_alloc.rs` with the counting global allocator). Bitsets
//! and mask arrays are bulk-cleared — at BFS scale a linear `fill(0)` of
//! `n/8` bytes is faster than stamp checks in the inner loops — while the
//! per-slot batch bookkeeping is epoch-stamped so a new batch starts in
//! O(batch width).

use crate::PropsConfig;
use sgr_graph::components::Components;
use sgr_graph::{GraphView, NodeId};
use sgr_util::Xoshiro256pp;

/// Top-down → bottom-up switch: flip when the frontier's outgoing-edge
/// count exceeds `unexplored_edges / ALPHA` (Beamer's α).
const ALPHA: u64 = 14;
/// Bottom-up → top-down switch: flip back when the frontier shrinks below
/// `n / BETA` nodes (Beamer's β).
const BETA: usize = 24;
/// Maximum number of sources per batched traversal (one bit per source in
/// the per-node `u64` masks).
pub const BATCH_WIDTH: usize = 64;

/// Selects which traversal kernel the BFS-heavy property computations
/// run on (see [`crate::PropsConfig::bfs`]). Both produce bitwise-identical
/// results — the equivalence suite pins that — so the choice is purely a
/// performance/diagnostics knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BfsEngine {
    /// The direction-optimizing / multi-source batched engine (default).
    #[default]
    DirectionOptimizing,
    /// The pre-engine level-synchronous kernel ([`mod@reference`]), kept as
    /// the oracle for equivalence testing and regression triage.
    Reference,
}

impl BfsEngine {
    /// Parses a CLI/bench name: `engine`/`dir-opt` or `reference`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "engine" | "dir-opt" | "direction-optimizing" => Some(Self::DirectionOptimizing),
            "reference" => Some(Self::Reference),
            _ => None,
        }
    }
}

/// Summary of one single-source traversal; the per-level counts are read
/// from [`BfsScratch::levels`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SingleBfs {
    /// Eccentricity of the source within its component (deepest level).
    pub depth: usize,
    /// Lowest node id in the deepest level (the source itself when the
    /// source is isolated).
    pub far: NodeId,
    /// Number of nodes reached, including the source.
    pub reached: usize,
}

/// Reusable traversal state: zero heap allocations on the warm path.
///
/// One scratch serves both kernels; parallel callers hold one per worker
/// thread. Buffers grow monotonically via [`ensure`](Self::ensure) and
/// are never shrunk.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    /// Visited bitset (single-source kernel; persists across sources in
    /// [`components`]).
    visited: Vec<u64>,
    /// Bottom-up frontier bitset of the current level (single-source).
    front_bits: Vec<u64>,
    /// Discovery queue; level boundaries are tracked by the kernel loop.
    queue: Vec<NodeId>,
    /// Per-level counts of the latest traversal; `levels[0]` is always 0
    /// (the source's own level, per the distance-histogram convention).
    levels: Vec<u64>,
    /// Per-node seen masks (batched kernel): bit `i` set ⇔ source `i`
    /// has reached the node.
    seen: Vec<u64>,
    /// Per-node frontier masks of the current level (batched kernel).
    front: Vec<u64>,
    /// Per-node arrival masks being built for the next level.
    next: Vec<u64>,
    /// Nodes with a non-zero frontier mask this level.
    active: Vec<NodeId>,
    /// Nodes with a non-zero arrival mask next level.
    next_active: Vec<NodeId>,
    /// Bottom-up candidates: nodes whose seen mask is not yet full.
    cand: Vec<NodeId>,
    /// Level-major per-source histogram rows (`BATCH_WIDTH` counts per
    /// level) of the latest batch.
    batch_hist: Vec<u64>,
    /// Per-slot eccentricities of the latest batch.
    depth: [usize; BATCH_WIDTH],
    /// Per-slot far nodes (lowest id in the slot's deepest level).
    far: [NodeId; BATCH_WIDTH],
    /// Number of source slots used by the latest batch.
    batch_len: usize,
    /// Node capacity the buffers are sized for.
    nodes: usize,
}

impl Default for BfsScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl BfsScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            visited: Vec::new(),
            front_bits: Vec::new(),
            queue: Vec::new(),
            levels: Vec::new(),
            seen: Vec::new(),
            front: Vec::new(),
            next: Vec::new(),
            active: Vec::new(),
            next_active: Vec::new(),
            cand: Vec::new(),
            batch_hist: Vec::new(),
            depth: [0; BATCH_WIDTH],
            far: [0; BATCH_WIDTH],
            batch_len: 0,
            nodes: 0,
        }
    }

    /// Grows every buffer to cover `n` nodes (no-op when already sized).
    /// This is the only place the scratch allocates.
    pub fn ensure(&mut self, n: usize) {
        if self.nodes >= n {
            return;
        }
        let words = n.div_ceil(64);
        self.visited.resize(words, 0);
        self.front_bits.resize(words, 0);
        self.queue.reserve(n.saturating_sub(self.queue.capacity()));
        self.seen.resize(n, 0);
        self.front.resize(n, 0);
        self.next.resize(n, 0);
        self.active
            .reserve(n.saturating_sub(self.active.capacity()));
        self.next_active
            .reserve(n.saturating_sub(self.next_active.capacity()));
        self.cand.reserve(n.saturating_sub(self.cand.capacity()));
        self.nodes = n;
    }

    /// Per-level counts of the latest single-source traversal
    /// (`levels()[l]` = nodes at distance `l`; index 0 is always 0).
    #[inline]
    pub fn levels(&self) -> &[u64] {
        &self.levels
    }

    /// Count of nodes at distance `level` from batch source slot `slot`
    /// in the latest [`batch`](Self::batch) run.
    #[inline]
    pub fn batch_count(&self, level: usize, slot: usize) -> u64 {
        debug_assert!(slot < self.batch_len);
        self.batch_hist[level * BATCH_WIDTH + slot]
    }

    /// Eccentricity of batch source slot `slot`.
    #[inline]
    pub fn batch_depth(&self, slot: usize) -> usize {
        debug_assert!(slot < self.batch_len);
        self.depth[slot]
    }

    /// Far node (lowest id in the deepest level) of batch source slot
    /// `slot`.
    #[inline]
    pub fn batch_far(&self, slot: usize) -> NodeId {
        debug_assert!(slot < self.batch_len);
        self.far[slot]
    }

    /// Direction-optimizing single-source BFS from `source`. Per-level
    /// counts land in [`levels`](Self::levels); see [`SingleBfs`] for the
    /// summary. Warm calls perform no heap allocations.
    pub fn single_source<G: GraphView>(&mut self, g: &G, source: NodeId) -> SingleBfs {
        let n = g.num_nodes();
        self.ensure(n);
        self.visited[..n.div_ceil(64)].fill(0);
        self.traverse(g, source, 2 * g.num_edges() as u64, |_| {})
    }

    /// The shared expansion loop: assumes `source` is unvisited, marks
    /// everything it reaches in `self.visited` (which it does **not**
    /// clear — [`components`] relies on that), records per-level counts
    /// in `self.levels`, and calls `on_discover` for every reached node
    /// (including the source).
    fn traverse<G: GraphView>(
        &mut self,
        g: &G,
        source: NodeId,
        total_edge_slots: u64,
        mut on_discover: impl FnMut(NodeId),
    ) -> SingleBfs {
        let n = g.num_nodes();
        self.queue.clear();
        self.levels.clear();
        self.levels.push(0);
        set_bit(&mut self.visited, source);
        self.queue.push(source);
        on_discover(source);
        // Edge-count bookkeeping for the α/β switch heuristic. These are
        // *heuristics only*: results are level-set determined either way.
        let mut explored_edges = g.degree(source) as u64;
        let mut frontier_edges = explored_edges;
        let mut bottom_up = false;
        let mut start = 0usize; // current frontier is queue[start..end]
        let mut last_start = 0usize;
        loop {
            let end = self.queue.len();
            let frontier_len = end - start;
            if frontier_len == 0 {
                break;
            }
            // Mode decision for expanding the next level.
            let unexplored = total_edge_slots.saturating_sub(explored_edges);
            if !bottom_up {
                if frontier_edges > unexplored / ALPHA {
                    bottom_up = true;
                    self.front_bits[..n.div_ceil(64)].fill(0);
                    for &u in &self.queue[start..end] {
                        set_bit(&mut self.front_bits, u);
                    }
                }
            } else if frontier_len < n / BETA {
                bottom_up = false;
            } else {
                // Staying bottom-up: promote last level's discoveries to
                // the frontier bitset (they were recorded in the queue).
                self.front_bits[..n.div_ceil(64)].fill(0);
                for &u in &self.queue[start..end] {
                    set_bit(&mut self.front_bits, u);
                }
            }
            let mut new_edges = 0u64;
            if bottom_up {
                // Bottom-up: every unvisited node scans its neighbor
                // slice for a frontier parent, stopping at the first hit.
                let words = n.div_ceil(64);
                for wi in 0..words {
                    let mut w = !self.visited[wi];
                    if wi == words - 1 && !n.is_multiple_of(64) {
                        w &= (1u64 << (n % 64)) - 1;
                    }
                    while w != 0 {
                        let v = (wi * 64 + w.trailing_zeros() as usize) as NodeId;
                        w &= w - 1;
                        for &u in g.neighbors(v) {
                            if get_bit(&self.front_bits, u) {
                                set_bit(&mut self.visited, v);
                                self.queue.push(v);
                                on_discover(v);
                                new_edges += g.degree(v) as u64;
                                break;
                            }
                        }
                    }
                }
            } else {
                for i in start..end {
                    let u = self.queue[i];
                    for &v in g.neighbors(u) {
                        if !get_bit(&self.visited, v) {
                            set_bit(&mut self.visited, v);
                            self.queue.push(v);
                            on_discover(v);
                            new_edges += g.degree(v) as u64;
                        }
                    }
                }
            }
            if self.queue.len() > end {
                self.levels.push((self.queue.len() - end) as u64);
                last_start = end;
            }
            explored_edges += new_edges;
            frontier_edges = new_edges;
            start = end;
        }
        // Far node: lowest id in the deepest level — level-set
        // determined, so identical under any expansion mode, neighbor
        // order, or batching (see the module docs).
        let far = self.queue[last_start..]
            .iter()
            .copied()
            .min()
            .expect("queue holds at least the source");
        SingleBfs {
            depth: self.levels.len() - 1,
            far,
            reached: self.queue.len(),
        }
    }

    /// Multi-source batched BFS from up to [`BATCH_WIDTH`] `sources`
    /// (must be distinct). After the call, per-source histograms are read
    /// with [`batch_count`](Self::batch_count) /
    /// [`batch_depth`](Self::batch_depth) /
    /// [`batch_far`](Self::batch_far); the traversal's level count is
    /// returned. Warm calls perform no heap allocations as long as the
    /// graph's eccentricities do not exceed those already seen.
    pub fn batch<G: GraphView>(&mut self, g: &G, sources: &[NodeId]) -> usize {
        let n = g.num_nodes();
        let k = sources.len();
        assert!(
            (1..=BATCH_WIDTH).contains(&k),
            "batch width must be 1..={BATCH_WIDTH}, got {k}"
        );
        self.ensure(n);
        let full: u64 = if k == 64 { !0 } else { (1u64 << k) - 1 };
        self.seen[..n].fill(0);
        self.front[..n].fill(0);
        self.next[..n].fill(0);
        self.active.clear();
        self.next_active.clear();
        self.batch_hist.clear();
        self.batch_hist.resize(BATCH_WIDTH, 0); // level-0 row: all zero
        self.batch_len = k;
        for (i, &s) in sources.iter().enumerate() {
            let bit = 1u64 << i;
            debug_assert_eq!(self.seen[s as usize] & bit, 0, "duplicate batch source {s}");
            if self.seen[s as usize] == 0 {
                self.active.push(s);
            }
            self.seen[s as usize] |= bit;
            self.front[s as usize] |= bit;
            self.depth[i] = 0;
            self.far[i] = s;
        }
        let mut frontier_edges: u64 = self.active.iter().map(|&u| g.degree(u) as u64).sum();
        let total_edge_slots = 2 * g.num_edges() as u64;
        let mut explored_edges = frontier_edges;
        let mut bottom_up = false;
        let mut cand_built = false;
        let mut level = 0usize;
        loop {
            level += 1;
            // Mode decision, mirroring the single-source α/β heuristic.
            // "Unexplored" is approximated by the edge slots of nodes not
            // yet complete (`seen != full`) once the candidate list
            // exists; before that, by total − explored.
            let unexplored = total_edge_slots.saturating_sub(explored_edges);
            if !bottom_up && frontier_edges > unexplored / ALPHA {
                bottom_up = true;
            } else if bottom_up && self.active.len() < n / BETA {
                bottom_up = false;
            }
            if bottom_up && !cand_built {
                self.cand.clear();
                for v in 0..n as NodeId {
                    if self.seen[v as usize] != full {
                        self.cand.push(v);
                    }
                }
                cand_built = true;
            }
            self.batch_hist.resize((level + 1) * BATCH_WIDTH, 0);
            if bottom_up {
                // Bottom-up: each incomplete node gathers its neighbors'
                // frontier masks, early-exiting once its remaining mask
                // is covered.
                let mut kept = 0usize;
                for ci in 0..self.cand.len() {
                    let v = self.cand[ci];
                    let rem = full & !self.seen[v as usize];
                    if rem == 0 {
                        continue; // completed earlier; drop from cand
                    }
                    let mut acc = 0u64;
                    for &u in g.neighbors(v) {
                        acc |= self.front[u as usize];
                        if acc & rem == rem {
                            break;
                        }
                    }
                    let new = acc & rem;
                    if new != 0 {
                        self.next[v as usize] = new;
                        self.next_active.push(v);
                    }
                    self.cand[kept] = v;
                    kept += 1;
                }
                self.cand.truncate(kept);
            } else {
                for ai in 0..self.active.len() {
                    let u = self.active[ai];
                    let fu = self.front[u as usize];
                    for &v in g.neighbors(u) {
                        let t = fu & !self.seen[v as usize];
                        if t != 0 {
                            if self.next[v as usize] == 0 {
                                self.next_active.push(v);
                            }
                            self.next[v as usize] |= t;
                        }
                    }
                }
            }
            if self.next_active.is_empty() {
                self.batch_hist.truncate(level * BATCH_WIDTH);
                break;
            }
            // Commit the level: merge arrivals into seen, record
            // per-source counts, update depth/far (min-id rule), and
            // promote next → front.
            for &u in &self.active {
                self.front[u as usize] = 0;
            }
            let row = level * BATCH_WIDTH;
            let mut new_edges = 0u64;
            for &v in &self.next_active {
                let mut new = self.next[v as usize];
                self.next[v as usize] = 0;
                self.front[v as usize] = new;
                self.seen[v as usize] |= new;
                new_edges += g.degree(v) as u64;
                while new != 0 {
                    let i = new.trailing_zeros() as usize;
                    new &= new - 1;
                    self.batch_hist[row + i] += 1;
                    if self.depth[i] < level {
                        self.depth[i] = level;
                        self.far[i] = v;
                    } else if self.far[i] > v {
                        self.far[i] = v;
                    }
                }
            }
            explored_edges += new_edges;
            frontier_edges = new_edges;
            std::mem::swap(&mut self.active, &mut self.next_active);
            self.next_active.clear();
        }
        // Leave front all-zero for the next run.
        for &u in &self.active {
            self.front[u as usize] = 0;
        }
        self.active.clear();
        self.batch_hist.len() / BATCH_WIDTH
    }
}

#[inline]
fn set_bit(bits: &mut [u64], i: NodeId) {
    bits[i as usize >> 6] |= 1u64 << (i & 63);
}

#[inline]
fn get_bit(bits: &[u64], i: NodeId) -> bool {
    bits[i as usize >> 6] & (1u64 << (i & 63)) != 0
}

/// Labels connected components with the direction-optimizing engine
/// (identical labels and sizes to
/// [`sgr_graph::components::connected_components`], which serves as its
/// oracle: labels are assigned in ascending first-node order, so they are
/// traversal-order free).
pub fn components<G: GraphView>(g: &G, scratch: &mut BfsScratch) -> Components {
    let n = g.num_nodes();
    scratch.ensure(n);
    scratch.visited[..n.div_ceil(64)].fill(0);
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let total_edge_slots = 2 * g.num_edges() as u64;
    for start in 0..n as NodeId {
        if get_bit(&scratch.visited, start) {
            continue;
        }
        let c = sizes.len() as u32;
        let run = scratch.traverse(g, start, total_edge_slots, |v| label[v as usize] = c);
        sizes.push(run.reached);
    }
    Components { label, sizes }
}

/// Selects the traversal sources for a kernel: every node in exact mode
/// (`n <= cfg.exact_threshold`), otherwise `cfg.num_pivots` distinct
/// pivots drawn from the RNG stream seeded with `cfg.seed ^ salt` (each
/// kernel keeps its historical salt so committed results are unchanged).
/// Returns the sources and whether exact mode was chosen.
pub fn pivot_sources(n: usize, cfg: &PropsConfig, salt: u64) -> (Vec<NodeId>, bool) {
    if n <= cfg.exact_threshold {
        ((0..n as NodeId).collect(), true)
    } else {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ salt);
        let k = cfg.num_pivots.min(n);
        (
            sgr_util::sampling::sample_indices(n, k, &mut rng)
                .into_iter()
                .map(|i| i as NodeId)
                .collect(),
            false,
        )
    }
}

/// The shared source-parallel phase driver: splits `sources` into at most
/// `threads` contiguous chunks and runs `f` on each (scoped threads when
/// more than one chunk, inline otherwise). Results come back **in chunk
/// order**, so callers can reduce them deterministically — every kernel's
/// thread-count invariance rests on this ordering plus order-free
/// per-chunk results.
pub fn run_source_chunks<R, F, G>(g: &G, sources: &[NodeId], threads: usize, f: F) -> Vec<R>
where
    G: GraphView + Sync,
    R: Send,
    F: Fn(&G, &[NodeId]) -> R + Sync,
{
    let threads = threads.max(1).min(sources.len().max(1));
    if threads <= 1 || sources.len() < 4 {
        return vec![f(g, sources)];
    }
    let chunks: Vec<&[NodeId]> = sources.chunks(sources.len().div_ceil(threads)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(|| f(g, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("BFS worker panicked"))
            .collect()
    })
}

pub mod reference {
    //! The pre-engine level-synchronous BFS kernel, kept as the oracle
    //! the equivalence suite measures the engine against (the same role
    //! `rewire::reference` and `construct::reference` play). Identical
    //! semantics to the engine — including the level-set-determined
    //! far-node rule — with the straightforward queue-and-bitset
    //! implementation that shipped with the CSR layer.

    use sgr_graph::{GraphView, NodeId};

    /// Single-source level-synchronous BFS; returns the distance
    /// histogram (`hist[l]` = number of nodes at distance `l > 0`,
    /// `hist[0] == 0`) and the far node (lowest id in the deepest
    /// level).
    pub fn bfs_histogram<G: GraphView>(
        g: &G,
        source: NodeId,
        visited: &mut [u64],
        queue: &mut Vec<NodeId>,
    ) -> (Vec<u64>, NodeId) {
        for w in visited.iter_mut() {
            *w = 0;
        }
        queue.clear();
        visited[source as usize >> 6] |= 1u64 << (source & 63);
        queue.push(source);
        let mut hist: Vec<u64> = Vec::new();
        let mut start = 0usize;
        let mut last_start = 0usize;
        while start < queue.len() {
            let end = queue.len();
            for i in start..end {
                let u = queue[i];
                for &v in g.neighbors(u) {
                    let word = (v >> 6) as usize;
                    let bit = 1u64 << (v & 63);
                    if visited[word] & bit == 0 {
                        visited[word] |= bit;
                        queue.push(v);
                    }
                }
            }
            if queue.len() > end {
                // Everything pushed during this pass sits one level
                // deeper.
                hist.push((queue.len() - end) as u64);
                last_start = end;
            }
            start = end;
        }
        // Distance-indexed convention: index 0 is the source's own level
        // and always reads 0.
        let mut full = vec![0u64; hist.len() + 1];
        full[1..].copy_from_slice(&hist);
        let far = queue[last_start..]
            .iter()
            .copied()
            .min()
            .expect("queue holds at least the source");
        (full, far)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{barbell, complete, cycle, path, star};
    use sgr_graph::{CsrGraph, Graph};

    fn reference_run<G: GraphView>(g: &G, s: NodeId) -> (Vec<u64>, NodeId) {
        let n = g.num_nodes();
        let mut visited = vec![0u64; n.div_ceil(64)];
        let mut queue = Vec::new();
        reference::bfs_histogram(g, s, &mut visited, &mut queue)
    }

    fn assert_engine_matches_reference<G: GraphView>(g: &G) {
        let mut scratch = BfsScratch::new();
        for s in g.nodes() {
            let (want_hist, want_far) = reference_run(g, s);
            let run = scratch.single_source(g, s);
            assert_eq!(scratch.levels(), want_hist.as_slice(), "hist @ source {s}");
            assert_eq!(run.far, want_far, "far @ source {s}");
            assert_eq!(run.depth, want_hist.len() - 1);
        }
        // Batched: all sources in ≤64-wide batches.
        let sources: Vec<NodeId> = g.nodes().collect();
        for chunk in sources.chunks(BATCH_WIDTH) {
            let levels = scratch.batch(g, chunk);
            for (i, &s) in chunk.iter().enumerate() {
                let (want_hist, want_far) = reference_run(g, s);
                assert_eq!(scratch.batch_depth(i), want_hist.len() - 1, "depth of {s}");
                assert_eq!(scratch.batch_far(i), want_far, "far of {s}");
                for l in 0..levels {
                    let want = want_hist.get(l).copied().unwrap_or(0);
                    assert_eq!(scratch.batch_count(l, i), want, "count({l}) of {s}");
                }
            }
        }
    }

    #[test]
    fn classic_graphs_match_reference() {
        assert_engine_matches_reference(&path(17));
        assert_engine_matches_reference(&cycle(12));
        assert_engine_matches_reference(&complete(9));
        assert_engine_matches_reference(&star(7));
        assert_engine_matches_reference(&barbell(6));
    }

    #[test]
    fn disconnected_and_messy_graphs_match_reference() {
        // Two components, multi-edges, self-loops, isolated nodes.
        let mut g = Graph::from_edges(9, &[(0, 1), (0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        g.add_edge(2, 2);
        assert_engine_matches_reference(&g);
        assert_engine_matches_reference(&CsrGraph::freeze(&g));
        assert_engine_matches_reference(&CsrGraph::freeze_sorted(&g));
    }

    #[test]
    fn random_graph_matches_reference_on_all_backends() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let g = sgr_gen::holme_kim(900, 3, 0.4, &mut rng).unwrap();
        assert_engine_matches_reference(&g);
        assert_engine_matches_reference(&CsrGraph::freeze_sorted(&g));
    }

    #[test]
    fn forced_bottom_up_still_matches() {
        // A dense graph drives the α switch immediately.
        let g = complete(130);
        assert_engine_matches_reference(&g);
    }

    #[test]
    fn far_node_is_min_of_deepest_level() {
        // Star from the center: every leaf is at level 1; lowest id wins.
        let g = star(5);
        let mut scratch = BfsScratch::new();
        let run = scratch.single_source(&g, 0);
        assert_eq!(run.depth, 1);
        assert_eq!(run.far, 1);
        // Isolated source: far is the source itself.
        let g = Graph::with_nodes(3);
        let run = scratch.single_source(&g, 2);
        assert_eq!(run.depth, 0);
        assert_eq!(run.far, 2);
        assert_eq!(scratch.levels(), &[0]);
    }

    #[test]
    fn components_match_oracle() {
        let mut g = Graph::from_edges(10, &[(0, 1), (1, 2), (4, 5), (5, 6), (6, 4), (8, 9)]);
        g.add_edge(9, 9);
        let mut scratch = BfsScratch::new();
        let got = components(&g, &mut scratch);
        let want = sgr_graph::components::connected_components(&g);
        assert_eq!(got.label, want.label);
        assert_eq!(got.sizes, want.sizes);

        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let g = sgr_gen::erdos_renyi_gnm(400, 420, &mut rng).unwrap();
        let got = components(&g, &mut scratch);
        let want = sgr_graph::components::connected_components(&g);
        assert_eq!(got.label, want.label);
        assert_eq!(got.sizes, want.sizes);
    }

    #[test]
    fn batch_width_limits_enforced() {
        let g = path(4);
        let mut scratch = BfsScratch::new();
        let levels = scratch.batch(&g, &[0, 3]);
        assert_eq!(levels, 4); // distances 0..=3 from node 0
        assert_eq!(scratch.batch_depth(0), 3);
        assert_eq!(scratch.batch_depth(1), 3);
        assert_eq!(scratch.batch_far(0), 3);
        assert_eq!(scratch.batch_far(1), 0);
    }

    #[test]
    #[should_panic(expected = "batch width")]
    fn oversized_batch_panics() {
        let g = path(100);
        let sources: Vec<NodeId> = (0..65).collect();
        BfsScratch::new().batch(&g, &sources);
    }

    #[test]
    fn pivot_sources_exact_and_sampled() {
        let cfg = PropsConfig::default();
        let (s, exact) = pivot_sources(10, &cfg, 0);
        assert!(exact);
        assert_eq!(s.len(), 10);
        let cfg = PropsConfig {
            exact_threshold: 0,
            num_pivots: 4,
            ..cfg
        };
        let (s, exact) = pivot_sources(100, &cfg, 0xb7);
        assert!(!exact);
        assert_eq!(s.len(), 4);
        // Distinct pivots.
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 4);
    }
}
