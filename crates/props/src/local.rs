//! Local structural properties (1)–(7) of §V-B.
//!
//! Generic over [`GraphView`], so the same code runs on the mutable
//! adjacency lists and on a frozen [`sgr_graph::CsrGraph`] snapshot. The
//! shared-partner pass keeps `A_u·` marked in an epoch-stamped
//! [`sgr_util::scratch::ScratchAccum`] for the duration of `u`'s edge run
//! (the edge iterator groups edges by ascending `u`), replacing per-edge
//! index probes with dense array reads and allocating nothing per edge.

use crate::triangles::triangle_counts_with_index;
use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{GraphView, NodeId};
use sgr_util::scratch::ScratchAccum;

/// The degree-indexed local properties, computed in one pass.
#[derive(Clone, Debug)]
pub struct LocalProperties {
    /// `{P(k)}` (Eq. 2).
    pub degree_dist: Vec<f64>,
    /// `{k̄nn(k)}` — neighbor connectivity.
    pub knn: Vec<f64>,
    /// `c̄` — network clustering coefficient.
    pub mean_clustering: f64,
    /// `{c̄(k)}` — degree-dependent clustering.
    pub clustering_by_degree: Vec<f64>,
    /// `{P(s)}` — edgewise shared-partner distribution.
    pub shared_partner_dist: Vec<f64>,
}

impl LocalProperties {
    /// Computes properties (3)–(7). Multi-edges and self-loops follow the
    /// paper's adjacency conventions throughout (multiplicities weight
    /// `k̄nn`, triangles, and shared partners; a self-loop contributes 2 to
    /// its node's degree).
    pub fn compute<G: GraphView>(g: &G) -> Self {
        let n = g.num_nodes();
        let kmax = g.max_degree();
        let idx = MultiplicityIndex::build(g);

        // Degree distribution.
        let dv = g.degree_vector();
        let degree_dist: Vec<f64> = dv
            .iter()
            .map(|&c| if n > 0 { c as f64 / n as f64 } else { 0.0 })
            .collect();

        // Neighbor connectivity: k̄nn(k) = mean over deg-k nodes of
        // (1/k) Σ_j A_ij d_j. The adjacency list stores j exactly A_ij
        // times, so summing neighbor degrees over the list is the inner
        // sum.
        let mut knn_sum = vec![0.0f64; kmax + 1];
        for u in g.nodes() {
            let k = g.degree(u);
            if k == 0 {
                continue;
            }
            let s: f64 = g.neighbors(u).iter().map(|&v| g.degree(v) as f64).sum();
            knn_sum[k] += s / k as f64;
        }
        let knn: Vec<f64> = knn_sum
            .iter()
            .zip(dv.iter())
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();

        // Clustering (mean and degree-dependent) from triangle counts.
        let t = triangle_counts_with_index(g, &idx);
        let mut c_sum_by_k = vec![0.0f64; kmax + 1];
        let mut c_total = 0.0f64;
        for u in g.nodes() {
            let k = g.degree(u);
            if k >= 2 {
                let c_u = 2.0 * t[u as usize] as f64 / (k as f64 * (k as f64 - 1.0));
                c_sum_by_k[k] += c_u;
                c_total += c_u;
            }
        }
        let mean_clustering = if n > 0 { c_total / n as f64 } else { 0.0 };
        let clustering_by_degree: Vec<f64> = c_sum_by_k
            .iter()
            .zip(dv.iter())
            .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();

        // Edgewise shared partners: for each non-loop edge (per copy),
        // sp(i,j) = Σ_{k≠i,j} A_ik A_jk. The edge iterator yields edges
        // grouped by ascending u, so A_u· stays marked in the scratch
        // arena across u's whole run and the inner sum folds v's entry
        // list against dense marks.
        let mut sp_counts: Vec<u64> = Vec::new();
        let mut m_eff = 0u64;
        let mut marks: ScratchAccum<i64> = ScratchAccum::with_keys(n);
        let mut marked_u: Option<NodeId> = None;
        for (u, v) in g.edges() {
            if u == v {
                continue; // loops have no well-defined shared partners
            }
            if marked_u != Some(u) {
                marks.begin();
                for (w, a_uw) in idx.entries(u) {
                    marks.add(w, a_uw as i64);
                }
                marked_u = Some(u);
            }
            let mut sp = 0usize;
            for (w, a_vw) in idx.entries(v) {
                if w != u && w != v {
                    let a_uw = marks.get(w);
                    if a_uw > 0 {
                        sp += a_vw as usize * a_uw as usize;
                    }
                }
            }
            if sp_counts.len() <= sp {
                sp_counts.resize(sp + 1, 0);
            }
            sp_counts[sp] += 1;
            m_eff += 1;
        }
        let shared_partner_dist: Vec<f64> = if m_eff == 0 {
            vec![0.0]
        } else {
            sp_counts.iter().map(|&c| c as f64 / m_eff as f64).collect()
        };

        Self {
            degree_dist,
            knn,
            mean_clustering,
            clustering_by_degree,
            shared_partner_dist,
        }
    }
}

/// Degree assortativity coefficient (Newman's `r`): the Pearson
/// correlation of endpoint degrees over edges. Complements the paper's
/// `k̄nn(k)` (property 4) with a scalar summary; social graphs are
/// typically assortative (`r > 0`), web/technology graphs disassortative.
/// Self-loops are excluded; multi-edge copies each count. Returns 0 for
/// graphs with no degree variance across edges.
pub fn degree_assortativity<G: GraphView>(g: &G) -> f64 {
    let mut m = 0.0f64;
    let (mut sum_prod, mut sum_mean, mut sum_sq) = (0.0f64, 0.0f64, 0.0f64);
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        let (j, k) = (g.degree(u) as f64, g.degree(v) as f64);
        m += 1.0;
        sum_prod += j * k;
        sum_mean += 0.5 * (j + k);
        sum_sq += 0.5 * (j * j + k * k);
    }
    if m == 0.0 {
        return 0.0;
    }
    let mean = sum_mean / m;
    let num = sum_prod / m - mean * mean;
    let den = sum_sq / m - mean * mean;
    if den.abs() < 1e-15 {
        0.0
    } else {
        num / den
    }
}

/// `sp(u, v) = Σ_{k ≠ u, v} A_uk A_vk` — multiplicity-weighted common
/// neighbors. Iterates the smaller neighbor map.
///
/// This is the point-query form (and the reference the tests hold the
/// batched pass to); [`LocalProperties::compute`] uses an equivalent
/// [`ScratchAccum`]-marked loop that amortizes `A_u·` across each node's
/// whole edge run instead of probing per pair.
pub fn shared_partners(idx: &MultiplicityIndex, u: NodeId, v: NodeId) -> usize {
    let (a, b) = (u, v);
    let count_from = |x: NodeId, y: NodeId| -> usize {
        idx.entries(x)
            .filter(|&(w, _)| w != x && w != y)
            .map(|(w, a_xw)| a_xw as usize * idx.get(y, w) as usize)
            .sum()
    };
    // Pick the endpoint with fewer distinct neighbors to iterate (O(1)
    // via the index's per-node size, not a full entries() walk).
    let deg_a = idx.num_distinct(a);
    let deg_b = idx.num_distinct(b);
    if deg_a <= deg_b {
        count_from(a, b)
    } else {
        count_from(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, cycle, star};
    use sgr_graph::Graph;

    #[test]
    fn star_properties() {
        let g = star(5);
        let p = LocalProperties::compute(&g);
        // 5 leaves of degree 1, one hub of degree 5.
        assert!((p.degree_dist[1] - 5.0 / 6.0).abs() < 1e-12);
        assert!((p.degree_dist[5] - 1.0 / 6.0).abs() < 1e-12);
        // Leaves see the hub: knn(1) = 5; hub sees leaves: knn(5) = 1.
        assert!((p.knn[1] - 5.0).abs() < 1e-12);
        assert!((p.knn[5] - 1.0).abs() < 1e-12);
        assert_eq!(p.mean_clustering, 0.0);
        // Each edge has 0 shared partners.
        assert!((p.shared_partner_dist[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn complete_graph_properties() {
        let g = complete(6);
        let p = LocalProperties::compute(&g);
        assert!((p.degree_dist[5] - 1.0).abs() < 1e-12);
        assert!((p.knn[5] - 5.0).abs() < 1e-12);
        assert!((p.mean_clustering - 1.0).abs() < 1e-12);
        assert!((p.clustering_by_degree[5] - 1.0).abs() < 1e-12);
        // Every edge of K_6 has 4 shared partners.
        assert!((p.shared_partner_dist[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(10);
        let p = LocalProperties::compute(&g);
        assert!((p.degree_dist[2] - 1.0).abs() < 1e-12);
        assert!((p.knn[2] - 2.0).abs() < 1e-12);
        assert_eq!(p.mean_clustering, 0.0);
        assert!((p.shared_partner_dist[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_partners_multiplicity() {
        // Triangle with doubled third edge: sp(0,1) counts A_02 * A_12.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (1, 2), (2, 0)]);
        let idx = MultiplicityIndex::build(&g);
        assert_eq!(shared_partners(&idx, 0, 1), 2);
        assert_eq!(shared_partners(&idx, 1, 2), 1);
    }

    #[test]
    fn batched_sp_pass_matches_point_query_reference() {
        // The marks-arena loop inside compute() and the public
        // shared_partners() point query must never drift apart.
        let mut g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 0),
                (4, 2),
                (5, 6),
            ],
        );
        g.add_edge(1, 1);
        let idx = MultiplicityIndex::build(&g);
        let mut expected: Vec<u64> = Vec::new();
        let mut m_eff = 0u64;
        for (u, v) in g.edges() {
            if u == v {
                continue;
            }
            let sp = shared_partners(&idx, u, v);
            if expected.len() <= sp {
                expected.resize(sp + 1, 0);
            }
            expected[sp] += 1;
            m_eff += 1;
        }
        let expected: Vec<f64> = expected.iter().map(|&c| c as f64 / m_eff as f64).collect();
        let p = LocalProperties::compute(&g);
        assert_eq!(p.shared_partner_dist, expected);
    }

    #[test]
    fn loop_edges_are_skipped_in_sp_dist() {
        let mut g = complete(3);
        g.add_edge(0, 0);
        let p = LocalProperties::compute(&g);
        // Only the three triangle edges count; each has one shared partner.
        assert!((p.shared_partner_dist[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_signs() {
        // Regular graphs: no degree variance → r = 0 by convention.
        assert_eq!(degree_assortativity(&cycle(10)), 0.0);
        assert_eq!(degree_assortativity(&complete(6)), 0.0);
        // Stars are maximally disassortative: r = -1.
        assert!((degree_assortativity(&star(8)) + 1.0).abs() < 1e-12);
        // Two joined cliques of different sizes: assortative core exists;
        // just check the value is finite and in [-1, 1].
        let g = sgr_gen::classic::barbell(5);
        let r = degree_assortativity(&g);
        assert!((-1.0..=1.0).contains(&r));
        // Edgeless / loop-only graphs are 0.
        let mut h = Graph::with_nodes(2);
        assert_eq!(degree_assortativity(&h), 0.0);
        h.add_edge(0, 0);
        assert_eq!(degree_assortativity(&h), 0.0);
    }

    #[test]
    fn empty_graph_is_well_defined() {
        let g = Graph::with_nodes(0);
        let p = LocalProperties::compute(&g);
        assert_eq!(p.mean_clustering, 0.0);
        assert_eq!(p.shared_partner_dist, vec![0.0]);
    }
}
