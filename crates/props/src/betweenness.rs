//! Degree-dependent betweenness centrality (property 11).
//!
//! Brandes' algorithm, exact (all sources) below the size threshold and
//! pivot-sampled above it (Brandes–Pich estimation: accumulate dependencies
//! from `K` uniform sources and scale by `n / K`). The paper's definition
//! `b_i = Σ_{j≠i} Σ_{k≠i,j} σ_jk(i)/σ_jk` counts **ordered** pairs, which
//! is exactly what undirected Brandes accumulation produces without the
//! usual halving.
//!
//! Traversal reads neighbor slices straight through [`GraphView`] — no
//! deduplicated adjacency copy. The path-count semantics of the paper's σ
//! are over node *sequences*, so parallel edges must contribute once; a
//! per-relaxation stamp array suppresses duplicate neighbors in O(1)
//! without allocating or reordering (results follow each backend's
//! neighbor order, which [`sgr_graph::CsrGraph::freeze`] preserves).

use crate::bfs;
use crate::PropsConfig;
use sgr_graph::{GraphView, NodeId};

/// Per-node betweenness centrality.
pub fn betweenness<G: GraphView + Sync>(g: &G, cfg: &PropsConfig) -> Vec<f64> {
    let n = g.num_nodes();
    if n < 3 {
        return vec![0.0; n];
    }
    // Pivot selection and source-chunk dispatch are the shared BFS-phase
    // setup from the traversal engine (the historical `seed ^ 0xb7` pivot
    // stream is preserved); only the per-chunk kernel — Brandes
    // dependency accumulation — is betweenness-specific. Partial sums
    // come back in chunk order, so the merged result is thread-count
    // invariant up to float association, exactly as before.
    let (sources, exact) = bfs::pivot_sources(n, cfg, 0xb7);
    let scale = if exact {
        1.0
    } else {
        n as f64 / sources.len() as f64
    };
    let partials: Vec<Vec<f64>> =
        bfs::run_source_chunks(g, &sources, cfg.effective_threads(), accumulate);
    let mut b = vec![0.0f64; n];
    for part in partials {
        for (i, &x) in part.iter().enumerate() {
            b[i] += x;
        }
    }
    for x in &mut b {
        *x *= scale;
    }
    b
}

/// Brandes dependency accumulation over the given sources.
///
/// Predecessor lists live in one flat arena indexed by cumulative degree
/// (every predecessor of `v` is a neighbor of `v`, so `deg(v)` slots
/// always suffice — parallel copies are suppressed before the push): no
/// per-node `Vec` headers, no per-source clearing beyond a length reset
/// of the visited nodes.
fn accumulate<G: GraphView>(g: &G, sources: &[NodeId]) -> Vec<f64> {
    let n = g.num_nodes();
    let mut b = vec![0.0f64; n];
    let mut dist = vec![-1i32; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    // Flat predecessor arena: v's slots are pred_off[v] .. pred_off[v+1].
    // Offsets are u32 to halve their cache footprint — the same limit
    // CsrGraph::freeze asserts, enforced here too because the mutable
    // Graph backend carries no size cap of its own.
    assert!(
        u32::try_from(2 * g.num_edges()).is_ok(),
        "graph too large for u32 predecessor offsets ({} neighbor entries)",
        2 * g.num_edges()
    );
    let mut pred_off: Vec<u32> = Vec::with_capacity(n + 1);
    pred_off.push(0);
    for u in g.nodes() {
        pred_off.push(pred_off[u as usize] + g.degree(u) as u32);
    }
    let mut pred_data: Vec<NodeId> = vec![0; *pred_off.last().unwrap() as usize];
    let mut pred_len: Vec<u32> = vec![0; n];
    // Duplicate-neighbor suppression: `relaxed[v] == token` means `v` was
    // already seen while scanning the current node's neighbor slice, so a
    // parallel edge adds nothing to σ. u64 tokens never wrap.
    let mut relaxed = vec![0u64; n];
    let mut token = 0u64;
    for &s in sources {
        // Reset per-source state touching only visited nodes.
        for &v in &order {
            dist[v as usize] = -1;
            sigma[v as usize] = 0.0;
            delta[v as usize] = 0.0;
            pred_len[v as usize] = 0;
        }
        dist[s as usize] = -1; // in case s was untouched
        sigma[s as usize] = 0.0;
        delta[s as usize] = 0.0;
        pred_len[s as usize] = 0;
        order.clear();

        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let du = dist[u as usize];
            let su = sigma[u as usize];
            token += 1;
            for &v in g.neighbors(u) {
                if v == u || relaxed[v as usize] == token {
                    continue; // self-loop or repeated parallel edge
                }
                relaxed[v as usize] = token;
                if dist[v as usize] < 0 {
                    dist[v as usize] = du + 1;
                    order.push(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += su;
                    pred_data[(pred_off[v as usize] + pred_len[v as usize]) as usize] = u;
                    pred_len[v as usize] += 1;
                }
            }
        }
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            let lo = pred_off[w as usize] as usize;
            let hi = lo + pred_len[w as usize] as usize;
            for &p in &pred_data[lo..hi] {
                let p = p as usize;
                delta[p] += sigma[p] * coeff;
            }
            if w != s {
                b[w as usize] += delta[w as usize];
            }
        }
    }
    b
}

/// `{b̄(k)}` — mean betweenness of the nodes with degree `k`, indexed by
/// degree (0 where no node of that degree exists).
pub fn betweenness_by_degree<G: GraphView + Sync>(g: &G, cfg: &PropsConfig) -> Vec<f64> {
    let b = betweenness(g, cfg);
    let kmax = g.max_degree();
    let mut sum = vec![0.0f64; kmax + 1];
    let mut cnt = vec![0u64; kmax + 1];
    for u in g.nodes() {
        let k = g.degree(u);
        sum[k] += b[u as usize];
        cnt[k] += 1;
    }
    sum.iter()
        .zip(cnt.iter())
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, path, star};
    use sgr_graph::Graph;

    fn cfg() -> PropsConfig {
        PropsConfig::default()
    }

    #[test]
    fn star_center_carries_everything() {
        let g = star(5);
        let b = betweenness(&g, &cfg());
        // Ordered pairs among 5 leaves: 5*4 = 20, all via the center.
        assert!((b[0] - 20.0).abs() < 1e-9);
        for &leaf_b in &b[1..=5] {
            assert_eq!(leaf_b, 0.0);
        }
    }

    #[test]
    fn path_interior_counts() {
        let g = path(5);
        let b = betweenness(&g, &cfg());
        // Node 2 (middle) separates {0,1} from {3,4}: 2*2 ordered pairs
        // each direction = 8; plus pairs (0,?) vs ... compute directly:
        // pairs through node 2: (0,3),(0,4),(1,3),(1,4) and reverses = 8.
        assert!((b[2] - 8.0).abs() < 1e-9);
        // Node 1 separates {0} from {2,3,4}: 3 ordered * 2 = 6.
        assert!((b[1] - 6.0).abs() < 1e-9);
        assert_eq!(b[0], 0.0);
    }

    #[test]
    fn complete_graph_zero() {
        let g = complete(6);
        let b = betweenness(&g, &cfg());
        assert!(b.iter().all(|&x| x.abs() < 1e-12));
    }

    #[test]
    fn multiple_shortest_paths_split_weight() {
        // 4-cycle: two shortest paths between opposite corners; each
        // intermediate carries 1/2 per ordered pair => b = 1 for each node
        // (2 opposite ordered pairs × 1/2).
        let g = sgr_gen::classic::cycle(4);
        let b = betweenness(&g, &cfg());
        for &x in &b {
            assert!((x - 1.0).abs() < 1e-9, "b = {x}");
        }
    }

    #[test]
    fn by_degree_grouping() {
        let g = star(4);
        let bd = betweenness_by_degree(&g, &cfg());
        assert!((bd[4] - 12.0).abs() < 1e-9); // center: 4*3 ordered pairs
        assert_eq!(bd[1], 0.0);
    }

    #[test]
    fn sampled_close_to_exact() {
        let g = sgr_gen::holme_kim(1500, 3, 0.4, &mut sgr_util::Xoshiro256pp::seed_from_u64(2))
            .unwrap();
        let exact = betweenness_by_degree(&g, &cfg());
        let sampled = betweenness_by_degree(
            &g,
            &PropsConfig {
                exact_threshold: 10,
                num_pivots: 400,
                ..cfg()
            },
        );
        // Compare total normalized L1 over degrees: should be small.
        let sum_exact: f64 = exact.iter().sum();
        let l1: f64 = exact
            .iter()
            .zip(sampled.iter().chain(std::iter::repeat(&0.0)))
            .map(|(&a, &b)| (a - b).abs())
            .sum();
        assert!(l1 / sum_exact < 0.35, "relative L1 = {}", l1 / sum_exact);
    }

    #[test]
    fn tiny_graphs_zero() {
        assert!(betweenness(&Graph::with_nodes(0), &cfg()).is_empty());
        assert_eq!(betweenness(&Graph::with_nodes(2), &cfg()), vec![0.0, 0.0]);
    }
}
