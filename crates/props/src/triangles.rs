//! Per-node triangle counts on multigraphs.
//!
//! The paper's definition (§III-C):
//! `t_i = Σ_{j<l, j≠i, l≠i} A_ij A_il A_jl` — triangles through `v_i`,
//! counted with edge multiplicities. Self-loops never contribute (the sum
//! excludes `j = i` and `l = i`, and `A_jl` with `j ≠ l` ignores loops).

use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{Graph, NodeId};

/// Computes `t_i` for every node. O(Σ_i d_i²) with O(1) multiplicity
/// lookups.
pub fn triangle_counts(g: &Graph) -> Vec<u64> {
    let idx = MultiplicityIndex::build(g);
    triangle_counts_with_index(g, &idx)
}

/// As [`triangle_counts`] but reusing a prebuilt index.
pub fn triangle_counts_with_index(g: &Graph, idx: &MultiplicityIndex) -> Vec<u64> {
    let n = g.num_nodes();
    let mut t = vec![0u64; n];
    let mut nbrs: Vec<(NodeId, u32)> = Vec::new();
    for i in 0..n as NodeId {
        nbrs.clear();
        nbrs.extend(idx.entries(i).filter(|&(j, _)| j != i));
        let mut ti = 0u64;
        for a in 0..nbrs.len() {
            let (j, a_ij) = nbrs[a];
            for &(l, a_il) in &nbrs[a + 1..] {
                let a_jl = idx.get(j, l) as u64;
                if a_jl > 0 {
                    ti += a_ij as u64 * a_il as u64 * a_jl;
                }
            }
        }
        t[i as usize] = ti;
    }
    t
}

/// Total number of triangles `(1/3) Σ_i t_i`.
pub fn total_triangles(g: &Graph) -> u64 {
    triangle_counts(g).iter().sum::<u64>() / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, complete_bipartite, cycle};

    #[test]
    fn triangle_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
        assert_eq!(total_triangles(&g), 1);
    }

    #[test]
    fn complete_graph_counts() {
        // K_5: each node is in C(4,2) = 6 triangles.
        let g = complete(5);
        assert_eq!(triangle_counts(&g), vec![6; 5]);
        assert_eq!(total_triangles(&g), 10);
    }

    #[test]
    fn bipartite_has_none() {
        let g = complete_bipartite(3, 4);
        assert_eq!(total_triangles(&g), 0);
        let g = cycle(8);
        assert_eq!(total_triangles(&g), 0);
    }

    #[test]
    fn multi_edges_multiply() {
        // Triangle with doubled edge (0,1): t_2 = A_20 A_21 A_01 = 2,
        // t_0 = t_1 = 2 as well (paired with the double edge).
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![2, 2, 2]);
    }

    #[test]
    fn self_loops_do_not_count() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
    }

    #[test]
    fn empty_and_single() {
        assert!(triangle_counts(&Graph::with_nodes(0)).is_empty());
        assert_eq!(triangle_counts(&Graph::with_nodes(3)), vec![0, 0, 0]);
    }
}
