//! Per-node triangle counts on multigraphs.
//!
//! The paper's definition (§III-C):
//! `t_i = Σ_{j<l, j≠i, l≠i} A_ij A_il A_jl` — triangles through `v_i`,
//! counted with edge multiplicities. Self-loops never contribute (the sum
//! excludes `j = i` and `l = i`, and `A_jl` with `j ≠ l` ignores loops).
//!
//! The kernel marks `A_i·` in an epoch-stamped
//! [`sgr_util::scratch::ScratchAccum`] and folds each neighbor's entry
//! list against the dense marks, replacing the per-pair binary-search /
//! hash probes of the naive double loop with O(1) array reads. The arena
//! is sized once, so steady-state counting performs no per-node heap
//! allocation.

use sgr_graph::index::MultiplicityIndex;
use sgr_graph::GraphView;
use sgr_util::scratch::ScratchAccum;

/// Computes `t_i` for every node of any [`GraphView`] backend.
/// O(Σ_i d̃_i²) (distinct-neighbor degrees) with O(1) adjacency reads.
pub fn triangle_counts<G: GraphView + ?Sized>(g: &G) -> Vec<u64> {
    let idx = MultiplicityIndex::build(g);
    triangle_counts_with_index(g, &idx)
}

/// As [`triangle_counts`] but reusing a prebuilt index.
pub fn triangle_counts_with_index<G: GraphView + ?Sized>(
    g: &G,
    idx: &MultiplicityIndex,
) -> Vec<u64> {
    let n = g.num_nodes();
    debug_assert_eq!(n, idx.num_nodes());
    let mut t = vec![0u64; n];
    // marks.get(l) = A_il while node i is being processed.
    let mut marks: ScratchAccum<i64> = ScratchAccum::with_keys(n);
    for i in g.nodes() {
        marks.begin();
        for (l, a_il) in idx.entries(i) {
            if l != i {
                marks.add(l, a_il as i64);
            }
        }
        // Each unordered pair {j, l} of distinct marked neighbors is seen
        // twice (once from j's list, once from l's), hence the final /2.
        let mut acc = 0u64;
        for (j, a_ij) in idx.entries(i) {
            if j == i {
                continue;
            }
            let mut through_j = 0u64;
            for (l, a_jl) in idx.entries(j) {
                if l == i || l == j {
                    continue;
                }
                let a_il = marks.get(l);
                if a_il > 0 {
                    through_j += a_jl as u64 * a_il as u64;
                }
            }
            acc += a_ij as u64 * through_j;
        }
        debug_assert!(acc.is_multiple_of(2));
        t[i as usize] = acc / 2;
    }
    t
}

/// Total number of triangles `(1/3) Σ_i t_i`.
pub fn total_triangles<G: GraphView + ?Sized>(g: &G) -> u64 {
    triangle_counts(g).iter().sum::<u64>() / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, complete_bipartite, cycle};
    use sgr_graph::{CsrGraph, Graph};

    #[test]
    fn triangle_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
        assert_eq!(total_triangles(&g), 1);
    }

    #[test]
    fn complete_graph_counts() {
        // K_5: each node is in C(4,2) = 6 triangles.
        let g = complete(5);
        assert_eq!(triangle_counts(&g), vec![6; 5]);
        assert_eq!(total_triangles(&g), 10);
    }

    #[test]
    fn bipartite_has_none() {
        let g = complete_bipartite(3, 4);
        assert_eq!(total_triangles(&g), 0);
        let g = cycle(8);
        assert_eq!(total_triangles(&g), 0);
    }

    #[test]
    fn multi_edges_multiply() {
        // Triangle with doubled edge (0,1): t_2 = A_20 A_21 A_01 = 2,
        // t_0 = t_1 = 2 as well (paired with the double edge).
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_counts(&g), vec![2, 2, 2]);
    }

    #[test]
    fn self_loops_do_not_count() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        assert_eq!(triangle_counts(&g), vec![1, 1, 1]);
    }

    #[test]
    fn empty_and_single() {
        assert!(triangle_counts(&Graph::with_nodes(0)).is_empty());
        assert_eq!(triangle_counts(&Graph::with_nodes(3)), vec![0, 0, 0]);
    }

    #[test]
    fn csr_backend_counts_identically() {
        let mut g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (0, 1), (2, 3), (3, 4)]);
        g.add_edge(4, 4);
        let csr = CsrGraph::freeze(&g);
        assert_eq!(triangle_counts(&g), triangle_counts(&csr));
        assert_eq!(total_triangles(&g), total_triangles(&csr));
    }
}
