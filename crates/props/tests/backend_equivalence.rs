//! The CSR contract: every property kernel must produce **bitwise**
//! identical results on the adjacency-list backend and on an
//! order-preserving CSR snapshot of the same graph. Floating-point
//! accumulation is order-sensitive, so this only holds because
//! `CsrGraph::freeze` keeps each node's neighbor order and the kernels
//! never branch on representation — which is exactly what these tests
//! pin down, on random multigraphs with parallel edges and self-loops.

use proptest::prelude::*;
use sgr_graph::{CsrGraph, Graph, NodeId};
use sgr_props::{PropsConfig, StructuralProperties};

/// A small random multigraph; duplicate pairs and `u == v` draws give
/// multi-edges and self-loops, so the loop conventions are exercised.
fn arb_multigraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..32).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..90))
    })
}

fn assert_bits_eq(name: &str, a: f64, b: f64) {
    prop_assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{} differs between backends: {} vs {}",
        name,
        a,
        b
    );
}

fn assert_vec_bits_eq(name: &str, a: &[f64], b: &[f64]) {
    prop_assert_eq!(a.len(), b.len(), "{} length differs", name);
    for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{}[{}] differs between backends: {} vs {}",
            name,
            i,
            x,
            y
        );
    }
}

fn assert_all_12_identical(g: &Graph, cfg: &PropsConfig) {
    let csr = CsrGraph::freeze(g);
    let pa = StructuralProperties::compute(g, cfg);
    let pb = StructuralProperties::compute(&csr, cfg);
    assert_bits_eq("n", pa.num_nodes, pb.num_nodes);
    assert_bits_eq("k_avg", pa.avg_degree, pb.avg_degree);
    assert_vec_bits_eq("P(k)", &pa.degree_dist, &pb.degree_dist);
    assert_vec_bits_eq("knn(k)", &pa.knn, &pb.knn);
    assert_bits_eq("c_avg", pa.mean_clustering, pb.mean_clustering);
    assert_vec_bits_eq("c(k)", &pa.clustering_by_degree, &pb.clustering_by_degree);
    assert_vec_bits_eq("P(s)", &pa.shared_partner_dist, &pb.shared_partner_dist);
    assert_bits_eq("l_avg", pa.avg_path_length, pb.avg_path_length);
    assert_vec_bits_eq("P(l)", &pa.path_length_dist, &pb.path_length_dist);
    assert_bits_eq("l_max", pa.diameter, pb.diameter);
    assert_vec_bits_eq("b(k)", &pa.betweenness_by_degree, &pb.betweenness_by_degree);
    assert_bits_eq("lambda1", pa.lambda1, pb.lambda1);
}

proptest! {
    /// Exact mode (the default config covers these sizes).
    #[test]
    fn all_12_properties_bitwise_identical_exact((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        assert_all_12_identical(&g, &PropsConfig::default());
    }

    /// Sampled mode: forcing pivot sampling exercises the RNG-seeded
    /// source selection and double-sweep diameter refinement paths.
    #[test]
    fn all_12_properties_bitwise_identical_sampled((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let cfg = PropsConfig {
            exact_threshold: 0,
            num_pivots: 8,
            threads: 1,
            seed: 0xc0ffee,
            ..PropsConfig::default()
        };
        assert_all_12_identical(&g, &cfg);
    }

    /// The auxiliary measures follow the same contract.
    #[test]
    fn dissimilarity_and_assortativity_identical((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze(&g);
        let cfg = PropsConfig::default();
        let d_gg = sgr_props::dissimilarity::dissimilarity(&g, &csr, &cfg);
        prop_assert!(d_gg < 1e-12, "self-dissimilarity across backends: {}", d_gg);
        let ra = sgr_props::local::degree_assortativity(&g);
        let rb = sgr_props::local::degree_assortativity(&csr);
        prop_assert_eq!(ra.to_bits(), rb.to_bits());
        let ta = sgr_props::triangles::triangle_counts(&g);
        let tb = sgr_props::triangles::triangle_counts(&csr);
        prop_assert_eq!(ta, tb);
    }
}
