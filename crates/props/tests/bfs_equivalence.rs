//! The traversal-engine contract: the direction-optimizing multi-source
//! engine (`sgr_props::bfs`) must produce **bitwise** identical results
//! to the level-synchronous reference kernel (`sgr_props::bfs::reference`)
//! for every property built on it, at every thread count and batch
//! composition. This holds because every output is a function of the BFS
//! *level sets* alone — per-level counts, eccentricities, and the
//! lowest-id-in-deepest-level far node — and level sets are invariant
//! under traversal order, direction switching, and batching. The merge
//! across source chunks is performed in chunk order, so thread count
//! only changes who computes each chunk, never the reduction order.
//!
//! Two layers of evidence:
//! * proptest over random multigraphs (parallel edges, self-loops,
//!   disconnected pieces) comparing the raw batch kernel and component
//!   labeling against the reference;
//! * fixed-seed end-to-end runs on a clustered heavy-tailed graph,
//!   comparing every derived property across engines × thread counts.

use proptest::prelude::*;
use sgr_graph::components::connected_components;
use sgr_graph::{CsrGraph, Graph, NodeId};
use sgr_props::bfs::{self, BfsScratch, BATCH_WIDTH};
use sgr_props::{betweenness, dissimilarity, paths, BfsEngine, PropsConfig};
use sgr_util::Xoshiro256pp;

fn arb_multigraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..48).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

/// Reference per-source histogram and far node.
fn reference_run(g: &CsrGraph, source: NodeId) -> (Vec<u64>, NodeId) {
    let n = g.num_nodes();
    let mut visited = vec![0u64; n.div_ceil(64)];
    let mut queue = Vec::new();
    bfs::reference::bfs_histogram(g, source, &mut visited, &mut queue)
}

proptest! {
    /// The batched kernel agrees with the reference for every slot of
    /// every batch composition, including repeated sources in one batch.
    #[test]
    fn batch_kernel_matches_reference(
        (n, edges) in arb_multigraph(),
        width in 1usize..=BATCH_WIDTH,
        seed in 0u64..1000,
    ) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze_sorted(&g);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let sources: Vec<NodeId> =
            (0..width).map(|_| (rng.next_u64() % n as u64) as NodeId).collect();
        let mut scratch = BfsScratch::new();
        let levels = scratch.batch(&csr, &sources);
        for (i, &s) in sources.iter().enumerate() {
            let (hist, far) = reference_run(&csr, s);
            prop_assert_eq!(
                scratch.batch_depth(i), hist.len() - 1,
                "slot {} depth mismatch for source {}", i, s
            );
            prop_assert_eq!(scratch.batch_far(i), far);
            for (l, &c) in hist.iter().enumerate() {
                prop_assert!(l < levels);
                prop_assert_eq!(
                    scratch.batch_count(l, i), c,
                    "slot {} level {} count mismatch", i, l
                );
            }
            for l in hist.len()..levels {
                prop_assert_eq!(scratch.batch_count(l, i), 0);
            }
        }
    }

    /// The single-source direction-optimizing kernel agrees with the
    /// reference from every start node.
    #[test]
    fn single_source_matches_reference((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze_sorted(&g);
        let mut scratch = BfsScratch::new();
        for s in 0..n as NodeId {
            let run = scratch.single_source(&csr, s);
            let (hist, far) = reference_run(&csr, s);
            prop_assert_eq!(run.depth, hist.len() - 1);
            prop_assert_eq!(run.far, far);
            prop_assert_eq!(scratch.levels(), &hist[..]);
            let reached: u64 = 1 + hist.iter().sum::<u64>();
            prop_assert_eq!(run.reached as u64, reached);
        }
    }

    /// Engine-driven component labeling is identical to the classic
    /// sequential flood fill: same labels, same sizes, same order.
    #[test]
    fn components_match_flood_fill((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze(&g);
        let a = connected_components(&csr);
        let b = bfs::components(&csr, &mut BfsScratch::new());
        prop_assert_eq!(a.label, b.label);
        prop_assert_eq!(a.sizes, b.sizes);
    }

    /// End-to-end path properties: engine × thread counts vs reference,
    /// bitwise, on arbitrary messy graphs in sampled mode.
    #[test]
    fn path_properties_bitwise_across_engines((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let base = PropsConfig {
            exact_threshold: 0,
            num_pivots: 12,
            threads: 1,
            seed: 0xfeed,
            bfs: BfsEngine::Reference,
        };
        let oracle = paths::shortest_path_properties(&g, &base);
        for (bfs, threads) in [
            (BfsEngine::Reference, 4),
            (BfsEngine::DirectionOptimizing, 1),
            (BfsEngine::DirectionOptimizing, 4),
        ] {
            let cfg = PropsConfig { bfs, threads, ..base };
            let p = paths::shortest_path_properties(&g, &cfg);
            prop_assert_eq!(p.diameter, oracle.diameter);
            prop_assert_eq!(
                p.average_length.to_bits(),
                oracle.average_length.to_bits()
            );
            prop_assert_eq!(p.length_dist.len(), oracle.length_dist.len());
            for (a, b) in p.length_dist.iter().zip(&oracle.length_dist) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Fixed-seed end-to-end agreement on a clustered heavy-tailed graph
/// large enough to trigger real bottom-up switching and multi-batch
/// chunking, across both engines and thread counts 1 and 4.
#[test]
fn fixed_seed_properties_bitwise_across_engines_and_threads() {
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let g = sgr_gen::holme_kim(2500, 3, 0.5, &mut rng).unwrap();
    let base = PropsConfig {
        exact_threshold: 0,
        num_pivots: 160,
        threads: 1,
        seed: 0x5eed,
        bfs: BfsEngine::Reference,
    };

    let sp0 = paths::shortest_path_properties(&g, &base);
    let dp0 = dissimilarity::distance_profile(&g, &base);

    for (bfs, threads) in [
        (BfsEngine::Reference, 4),
        (BfsEngine::DirectionOptimizing, 1),
        (BfsEngine::DirectionOptimizing, 4),
    ] {
        let cfg = PropsConfig {
            bfs,
            threads,
            ..base
        };

        let sp = paths::shortest_path_properties(&g, &cfg);
        assert_eq!(sp.diameter, sp0.diameter, "{bfs:?} t={threads}");
        assert_eq!(
            sp.average_length.to_bits(),
            sp0.average_length.to_bits(),
            "{bfs:?} t={threads}"
        );
        assert_eq!(
            sp.length_dist
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            sp0.length_dist
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "{bfs:?} t={threads}"
        );

        let dp = dissimilarity::distance_profile(&g, &cfg);
        assert_eq!(dp.nnd.to_bits(), dp0.nnd.to_bits(), "{bfs:?} t={threads}");
        assert_eq!(
            dp.mu.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            dp0.mu.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "{bfs:?} t={threads}"
        );
    }

    // Betweenness shares the pivot selection and chunked scheduling but
    // its Brandes kernel never touches the traversal engine, so the
    // engine choice must not move a single bit at a fixed thread count.
    // (Across *thread counts* its float bits legitimately differ — the
    // per-chunk dependency partials are regrouped, and float addition is
    // not associative — which is why the ISSUE's bitwise contract covers
    // level-set-derived outputs, not Brandes sums.)
    for threads in [1usize, 4] {
        let r = betweenness::betweenness_by_degree(&g, &PropsConfig { threads, ..base });
        let e = betweenness::betweenness_by_degree(
            &g,
            &PropsConfig {
                bfs: BfsEngine::DirectionOptimizing,
                threads,
                ..base
            },
        );
        assert_eq!(
            r.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            e.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "betweenness engine-dependent at t={threads}"
        );
    }
}

/// Exact mode (every node a source) exercises full-width batch tiling:
/// n = 130 gives two full 64-wide batches plus a ragged tail of 2.
#[test]
fn exact_mode_ragged_batches_bitwise() {
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let g = sgr_gen::erdos_renyi_gnm(130, 220, &mut rng).unwrap();
    let reference = PropsConfig {
        bfs: BfsEngine::Reference,
        ..PropsConfig::default()
    };
    let engine = PropsConfig {
        bfs: BfsEngine::DirectionOptimizing,
        threads: 3,
        ..PropsConfig::default()
    };
    let a = paths::shortest_path_properties(&g, &reference);
    let b = paths::shortest_path_properties(&g, &engine);
    assert_eq!(a.diameter, b.diameter);
    assert_eq!(a.average_length.to_bits(), b.average_length.to_bits());
    let da = dissimilarity::distance_profile(&g, &reference);
    let db = dissimilarity::distance_profile(&g, &engine);
    assert_eq!(da.nnd.to_bits(), db.nnd.to_bits());
}
