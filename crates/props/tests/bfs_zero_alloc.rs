//! The warm-path allocation contract of [`sgr_props::bfs::BfsScratch`]:
//! after one cold traversal over a source set, repeating the same
//! traversals performs **zero** heap allocations. This is what makes the
//! scratch safe to hold per worker thread in the interactive serving
//! path — steady-state property queries never touch the allocator.
//!
//! Reuses the counting global allocator from the dk crash-safety suites
//! (`crates/dk/tests/common`), the same instrument that pins down the
//! rewiring engine's swap loop and warm stub matching.

#[path = "../../dk/tests/common/mod.rs"]
mod common;

use sgr_graph::{CsrGraph, NodeId};
use sgr_props::bfs::{self, BfsScratch, BATCH_WIDTH};
use sgr_util::Xoshiro256pp;

/// A clustered graph big enough for multi-word bitsets, real bottom-up
/// switching, and multi-level frontiers.
fn test_graph() -> CsrGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    let g = sgr_gen::holme_kim(4000, 3, 0.5, &mut rng).unwrap();
    CsrGraph::freeze_sorted(&g)
}

#[test]
fn warm_single_source_is_allocation_free() {
    let g = test_graph();
    let sources: Vec<NodeId> = (0..50)
        .map(|i| (i * 79) % g.num_nodes() as NodeId)
        .collect();
    let mut scratch = BfsScratch::new();
    // Cold pass: grows every buffer to this graph's high-water mark
    // (bitsets, queue, level histogram).
    let cold: Vec<_> = sources
        .iter()
        .map(|&s| scratch.single_source(&g, s))
        .collect();
    let (allocs, warm) = common::count_allocs(|| {
        sources
            .iter()
            .map(|&s| scratch.single_source(&g, s))
            .collect::<Vec<_>>()
    });
    // The only allocation permitted is the result Vec the closure itself
    // builds (one reserve per doubling); the traversals must contribute
    // nothing. Bound it by the collect's own growth.
    assert!(
        allocs <= 8,
        "warm single-source BFS allocated {allocs} times (expected only the result Vec)"
    );
    assert_eq!(cold, warm, "warm results diverged from cold results");
}

#[test]
fn warm_single_source_alone_is_strictly_zero_alloc() {
    let g = test_graph();
    let mut scratch = BfsScratch::new();
    let cold = scratch.single_source(&g, 17);
    let (allocs, warm) = common::count_allocs(|| scratch.single_source(&g, 17));
    assert_eq!(allocs, 0, "warm single-source traversal allocated");
    assert_eq!(cold, warm);
}

#[test]
fn warm_batch_is_strictly_zero_alloc() {
    let g = test_graph();
    let n = g.num_nodes() as NodeId;
    let sources: Vec<NodeId> = (0..BATCH_WIDTH as NodeId).map(|i| (i * 61) % n).collect();
    let ragged: Vec<NodeId> = sources[..7].to_vec();
    let mut scratch = BfsScratch::new();
    // Cold pass over both batch shapes (full-width and ragged tail).
    let cold_levels = scratch.batch(&g, &sources);
    scratch.batch(&g, &ragged);
    let (allocs, warm_levels) = common::count_allocs(|| {
        let full = scratch.batch(&g, &sources);
        let tail = scratch.batch(&g, &ragged);
        (full, tail)
    });
    assert_eq!(allocs, 0, "warm batched BFS allocated");
    assert_eq!(warm_levels.0, cold_levels);
}

#[test]
fn warm_components_are_zero_alloc_after_label_buffer_exists() {
    let g = test_graph();
    let mut scratch = BfsScratch::new();
    let cold = bfs::components(&g, &mut scratch);
    // `components` returns fresh label/size Vecs (they are the result,
    // not scratch), so the warm bound is those two allocations plus the
    // sizes Vec's growth — the traversals themselves add nothing.
    let (allocs, warm) = common::count_allocs(|| bfs::components(&g, &mut scratch));
    assert!(
        allocs <= 4,
        "warm component labeling allocated {allocs} times (expected only the result Vecs)"
    );
    assert_eq!(cold.label, warm.label);
    assert_eq!(cold.sizes, warm.sizes);
}
