//! `small_threshold_sweep`: measures the `MultiplicityIndex`
//! sorted-vec/hash cutoff across degree profiles, backing the
//! `SMALL_THRESHOLD` constant in `sgr_graph::index` with numbers instead
//! of reasoning (ROADMAP open item).
//!
//! Three degree profiles bracket the regimes the cutoff separates:
//! * `er` — Erdős–Rényi, k̄ ≈ 8: every node far below any candidate
//!   cutoff (the common social-graph case);
//! * `hk` — Holme–Kim heavy tail, m = 8: hubs far above the cutoff mixed
//!   with a low-degree bulk;
//! * `ws` — Watts–Strogatz ring, k = 100 (≈ 200 distinct neighbors per
//!   node): the whole graph sits on one side of every candidate cutoff,
//!   exposing each representation's pathology undiluted.
//!
//! Three workloads per (profile, threshold):
//! * `lookup` — random `A_uv` queries along existing edges (the
//!   clustering-estimator read mix; edge-sampling biases toward hubs,
//!   like the real kernels);
//! * `iterate` — full `entries(u)` folds at edge-sampled endpoints (the
//!   triangle / shared-partner mix, where sorted vecs stream
//!   contiguously and hash maps jump buckets);
//! * `churn` — add/remove an edge per op at random endpoints (the
//!   rewiring engine's update mix).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{Graph, NodeId};
use sgr_util::Xoshiro256pp;

const THRESHOLDS: [usize; 5] = [16, 32, 64, 128, 256];

fn profiles() -> Vec<(&'static str, Graph)> {
    let mut rng = Xoshiro256pp::seed_from_u64(0x7472e5);
    vec![
        (
            "er",
            sgr_gen::erdos_renyi_gnm(2_000, 8_000, &mut rng).unwrap(),
        ),
        ("hk", sgr_gen::holme_kim(2_000, 8, 0.5, &mut rng).unwrap()),
        (
            "ws",
            sgr_gen::watts_strogatz(2_000, 100, 0.1, &mut rng).unwrap(),
        ),
    ]
}

fn bench_threshold_sweep(c: &mut Criterion) {
    for (name, g) in profiles() {
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        for &t in &THRESHOLDS {
            // Lookup mix: A_uv along existing edges plus misses.
            let idx = MultiplicityIndex::build_with_threshold(&g, t);
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            c.bench_function(&format!("small_threshold/{name}/t{t}/lookup"), |b| {
                b.iter(|| {
                    let (u, v) = edges[rng.gen_range(edges.len())];
                    let w = rng.gen_range(g.num_nodes()) as NodeId;
                    black_box(idx.get(u, v) + idx.get(u, w))
                })
            });
            // Iteration mix: fold one endpoint's full entry list.
            let idx = MultiplicityIndex::build_with_threshold(&g, t);
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            c.bench_function(&format!("small_threshold/{name}/t{t}/iterate"), |b| {
                b.iter(|| {
                    let (u, _) = edges[rng.gen_range(edges.len())];
                    black_box(
                        idx.entries(u)
                            .map(|(v, c)| v as u64 + c as u64)
                            .sum::<u64>(),
                    )
                })
            });
            // Churn mix: remove an existing edge, add it back (keeps the
            // index at a steady state across samples).
            let mut idx = MultiplicityIndex::build_with_threshold(&g, t);
            let mut rng = Xoshiro256pp::seed_from_u64(2);
            c.bench_function(&format!("small_threshold/{name}/t{t}/churn"), |b| {
                b.iter(|| {
                    let (u, v) = edges[rng.gen_range(edges.len())];
                    idx.remove_edge(u, v);
                    idx.add_edge(u, v);
                    black_box(idx.get(u, v))
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_threshold_sweep
}
criterion_main!(benches);
