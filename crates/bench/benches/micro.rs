//! Criterion micro-benchmarks of the pipeline's hot components: crawling,
//! subgraph induction, estimation, dK construction, triangle counting,
//! rewiring throughput, and property computation.

use criterion::{criterion_group, criterion_main, Criterion};
use sgr_core::{restore, RestoreConfig};
use sgr_dk::rewire::reference::ApplyRollbackEngine;
use sgr_dk::rewire::RewireEngine;
use sgr_dk::series::generate_2k;
use sgr_estimate::estimate_all;
use sgr_graph::Graph;
use sgr_props::triangles::triangle_counts;
use sgr_props::{PropsConfig, StructuralProperties};
use sgr_sample::{random_walk, AccessModel, Crawl};
use sgr_util::Xoshiro256pp;
use std::hint::black_box;

fn social(n: usize, seed: u64) -> Graph {
    sgr_gen::holme_kim(n, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
}

fn crawl_of(g: &Graph, frac: f64, seed: u64) -> Crawl {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut am = AccessModel::new(g);
    let start = am.random_seed(&mut rng);
    let target = ((g.num_nodes() as f64 * frac) as usize).max(2);
    random_walk(&mut am, start, target, &mut rng)
}

fn bench_crawling(c: &mut Criterion) {
    let g = social(4_000, 1);
    c.bench_function("random_walk_10pct_4k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(crawl_of(&g, 0.10, seed))
        })
    });
    c.bench_function("subgraph_induction_10pct_4k", |b| {
        let crawl = crawl_of(&g, 0.10, 7);
        b.iter(|| black_box(crawl.subgraph()))
    });
}

fn bench_estimators(c: &mut Criterion) {
    let g = social(4_000, 2);
    let crawl = crawl_of(&g, 0.10, 8);
    c.bench_function("estimate_all_10pct_4k", |b| {
        b.iter(|| black_box(estimate_all(&crawl).unwrap()))
    });
}

fn bench_dk(c: &mut Criterion) {
    let g = social(2_000, 3);
    c.bench_function("triangle_counts_2k_nodes", |b| {
        b.iter(|| black_box(triangle_counts(&g)))
    });
    c.bench_function("construct_2k_model", |b| {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        b.iter(|| black_box(generate_2k(&g, &mut rng).unwrap()))
    });
    c.bench_function("rewire_1000_attempts", |b| {
        let target = vec![0.05; g.max_degree() + 1];
        b.iter_batched(
            || {
                let edges: Vec<_> = g.edges().collect();
                RewireEngine::new(g.clone(), edges, &target)
            },
            |mut engine| {
                let mut rng = Xoshiro256pp::seed_from_u64(10);
                black_box(engine.run_attempts(1_000, &mut rng))
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// Throughput gate: evaluate-then-commit vs apply-rollback on the same
/// graph, same target (≈half the current clustering — a fixed mix of
/// accepts early and rejects late), same RNG seed.
fn bench_rewire_throughput(c: &mut Criterion) {
    let g = social(2_000, 6);
    let props = sgr_props::local::LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    c.bench_function("rewire_attempts_per_sec/evaluate_commit", |b| {
        b.iter_batched(
            || {
                let edges: Vec<_> = g.edges().collect();
                RewireEngine::new(g.clone(), edges, &target)
            },
            |mut engine| {
                let mut rng = Xoshiro256pp::seed_from_u64(10);
                black_box(engine.run_attempts(5_000, &mut rng))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    c.bench_function("rewire_attempts_per_sec/apply_rollback", |b| {
        b.iter_batched(
            || {
                let edges: Vec<_> = g.edges().collect();
                ApplyRollbackEngine::new(g.clone(), edges, &target)
            },
            |mut engine| {
                let mut rng = Xoshiro256pp::seed_from_u64(10);
                black_box(engine.run_attempts(5_000, &mut rng))
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let g = social(2_000, 4);
    c.bench_function("restore_full_10pct_2k_rc5", |b| {
        let mut seed = 100u64;
        b.iter(|| {
            seed += 1;
            let crawl = crawl_of(&g, 0.10, seed);
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let cfg = RestoreConfig {
                rewiring_coefficient: 5.0,
                ..RestoreConfig::default()
            };
            black_box(restore(&crawl, &cfg, &mut rng).unwrap())
        })
    });
}

fn bench_properties(c: &mut Criterion) {
    let g = social(2_000, 5);
    let cfg = PropsConfig {
        exact_threshold: 10_000, // exact at this size
        ..PropsConfig::default()
    };
    c.bench_function("all_12_properties_exact_2k", |b| {
        b.iter(|| black_box(StructuralProperties::compute(&g, &cfg)))
    });
    let sampled = PropsConfig {
        exact_threshold: 10,
        num_pivots: 256,
        ..PropsConfig::default()
    };
    c.bench_function("all_12_properties_sampled_2k", |b| {
        b.iter(|| black_box(StructuralProperties::compute(&g, &sampled)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crawling, bench_estimators, bench_dk, bench_rewire_throughput, bench_pipeline, bench_properties
}
criterion_main!(benches);
