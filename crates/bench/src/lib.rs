//! # sgr-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§V–VI). One binary per artifact:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `fig3`   | Fig. 3 — average L1 vs % queried (Anybeat/Brightkite/Epinions) |
//! | `table2` | Table II — per-property L1 at 10% (Slashdot/Gowalla/Livemocha) |
//! | `table3` | Table III — avg ± SD of L1 at 10% (six datasets) |
//! | `table4` | Table IV — generation times at 10% (six datasets) |
//! | `table5` | Table V — YouTube at 1% (L1 + times) |
//! | `fig4`   | Fig. 4 — visual comparison SVGs (Anybeat) |
//! | `ablation` | design-choice ablations (candidate set, RC sweep, modification steps) |
//!
//! The shared machinery lives in [`harness`]. See `EXPERIMENTS.md` at the
//! workspace root for paper-vs-measured results.

pub mod harness;

pub use harness::{Args, Method, MethodOutput, RunResult};
