//! Shared experiment machinery: the six compared methods, the evaluation
//! loop, and a tiny CLI-argument parser for the experiment binaries.

use sgr_core::{gjoka, restore, RestoreConfig};
use sgr_gen::Dataset;
use sgr_graph::Graph;
use sgr_props::{PropsConfig, StructuralProperties};
use sgr_sample::{bfs, forest_fire, random_walk, snowball, AccessModel};
use sgr_util::Xoshiro256pp;

/// The six methods of the paper's comparison (§V-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Subgraph sampling via breadth-first search.
    Bfs,
    /// Subgraph sampling via snowball sampling (`k = 50`).
    Snowball,
    /// Subgraph sampling via forest fire (`p_f = 0.7`).
    ForestFire,
    /// Subgraph sampling via random walk.
    Rw,
    /// Gjoka et al.'s 2.5K method (Appendix B).
    Gjoka,
    /// The proposed restoration method.
    Proposed,
}

impl Method {
    /// All six, in the paper's column order.
    pub const ALL: [Method; 6] = [
        Method::Bfs,
        Method::Snowball,
        Method::ForestFire,
        Method::Rw,
        Method::Gjoka,
        Method::Proposed,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Bfs => "BFS",
            Method::Snowball => "Snowball",
            Method::ForestFire => "FF",
            Method::Rw => "RW",
            Method::Gjoka => "Gjoka et al.",
            Method::Proposed => "Proposed",
        }
    }
}

/// One method's generated graph plus timing.
#[derive(Debug)]
pub struct MethodOutput {
    /// Which method produced it.
    pub method: Method,
    /// The generated graph (for subgraph sampling, the subgraph itself).
    pub graph: Graph,
    /// An order-preserving CSR snapshot of `graph`, frozen exactly once
    /// (reused from the restoration pipelines, which freeze after their
    /// last mutation) — this is what property computation consumes.
    pub snapshot: sgr_graph::CsrGraph,
    /// Total generation time in seconds (crawling excluded, as in the
    /// paper's Table IV, which times *generation*).
    pub total_secs: f64,
    /// Rewiring time in seconds (0 for subgraph sampling).
    pub rewire_secs: f64,
}

impl MethodOutput {
    fn new(method: Method, graph: Graph, total_secs: f64, rewire_secs: f64) -> Self {
        let snapshot = graph.freeze();
        Self {
            method,
            graph,
            snapshot,
            total_secs,
            rewire_secs,
        }
    }
}

/// The L1 distances of one method in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which method.
    pub method: Method,
    /// The 12 distances in `sgr_props::PROPERTY_NAMES` order.
    pub distances: [f64; 12],
    /// Total / rewiring generation times.
    pub total_secs: f64,
    /// Rewiring seconds.
    pub rewire_secs: f64,
}

impl RunResult {
    /// Mean of the 12 distances (the paper's "average L1 distance").
    pub fn mean_distance(&self) -> f64 {
        sgr_util::stats::mean(&self.distances)
    }
}

/// Runs all six methods on one hidden graph with the §V-D protocol:
/// one uniform seed node; BFS / snowball / FF crawl from that seed; a
/// single random walk serves RW subgraph sampling, Gjoka et al., and the
/// proposed method.
pub fn run_all_methods(
    g: &Graph,
    fraction: f64,
    rc: f64,
    rng: &mut Xoshiro256pp,
) -> Vec<MethodOutput> {
    let target = ((g.num_nodes() as f64 * fraction).round() as usize).max(2);
    let seed_node = {
        let am = AccessModel::new(g);
        am.random_seed(rng)
    };
    let mut out = Vec::with_capacity(6);

    // --- BFS subgraph sampling.
    let t = std::time::Instant::now();
    let crawl = {
        let mut am = AccessModel::new(g);
        bfs(&mut am, seed_node, target)
    };
    let sg = crawl.subgraph();
    out.push(MethodOutput::new(
        Method::Bfs,
        sg.graph,
        t.elapsed().as_secs_f64(),
        0.0,
    ));

    // --- Snowball subgraph sampling (k = 50).
    let t = std::time::Instant::now();
    let crawl = {
        let mut am = AccessModel::new(g);
        snowball(&mut am, seed_node, 50, target, rng)
    };
    let sg = crawl.subgraph();
    out.push(MethodOutput::new(
        Method::Snowball,
        sg.graph,
        t.elapsed().as_secs_f64(),
        0.0,
    ));

    // --- Forest fire subgraph sampling (p_f = 0.7).
    let t = std::time::Instant::now();
    let crawl = {
        let mut am = AccessModel::new(g);
        forest_fire(&mut am, seed_node, 0.7, target, rng)
    };
    let sg = crawl.subgraph();
    out.push(MethodOutput::new(
        Method::ForestFire,
        sg.graph,
        t.elapsed().as_secs_f64(),
        0.0,
    ));

    // --- One random walk shared by RW / Gjoka / Proposed (§V-D: "we
    // perform these methods for the same RW to achieve a fair
    // comparison").
    let rw_crawl = {
        let mut am = AccessModel::new(g);
        random_walk(&mut am, seed_node, target, rng)
    };
    let t = std::time::Instant::now();
    let sg = rw_crawl.subgraph();
    out.push(MethodOutput::new(
        Method::Rw,
        sg.graph,
        t.elapsed().as_secs_f64(),
        0.0,
    ));

    let gjoka_cfg = RestoreConfig {
        rewiring_coefficient: rc,
        ..RestoreConfig::default()
    };
    let gj = gjoka::generate(&rw_crawl, &gjoka_cfg, rng).expect("gjoka generation failed");
    out.push(MethodOutput {
        method: Method::Gjoka,
        graph: gj.graph,
        snapshot: gj.snapshot,
        total_secs: gj.stats.total_secs(),
        rewire_secs: gj.stats.rewire_secs,
    });

    let cfg = RestoreConfig {
        rewiring_coefficient: rc,
        ..RestoreConfig::default()
    };
    let rs = restore(&rw_crawl, &cfg, rng).expect("proposed restoration failed");
    out.push(MethodOutput {
        method: Method::Proposed,
        graph: rs.graph,
        snapshot: rs.snapshot,
        total_secs: rs.stats.total_secs(),
        rewire_secs: rs.stats.rewire_secs,
    });

    out
}

/// Evaluates one run: generates with all methods and measures the 12
/// distances against precomputed original properties.
pub fn evaluate_run(
    g: &Graph,
    orig: &StructuralProperties,
    fraction: f64,
    rc: f64,
    props_cfg: &PropsConfig,
    rng: &mut Xoshiro256pp,
) -> Vec<RunResult> {
    run_all_methods(g, fraction, rc, rng)
        .into_iter()
        .map(|mo| {
            // The 12 property kernels are read-only: consume the CSR
            // snapshot each method froze exactly once.
            let props = StructuralProperties::compute(&mo.snapshot, props_cfg);
            RunResult {
                method: mo.method,
                distances: orig.l1_distances(&props),
                total_secs: mo.total_secs,
                rewire_secs: mo.rewire_secs,
            }
        })
        .collect()
}

/// Averages per-method results across runs: returns, per method, the
/// element-wise mean of the 12 distances plus mean times.
pub fn average_runs(runs: &[Vec<RunResult>]) -> Vec<RunResult> {
    assert!(!runs.is_empty());
    Method::ALL
        .iter()
        .map(|&method| {
            let mut distances = [0.0f64; 12];
            let mut total = 0.0;
            let mut rewire = 0.0;
            let mut count = 0usize;
            for run in runs {
                for r in run.iter().filter(|r| r.method == method) {
                    for (d, &x) in distances.iter_mut().zip(r.distances.iter()) {
                        *d += x;
                    }
                    total += r.total_secs;
                    rewire += r.rewire_secs;
                    count += 1;
                }
            }
            assert!(count > 0, "method {method:?} missing from runs");
            for d in &mut distances {
                *d /= count as f64;
            }
            RunResult {
                method,
                distances,
                total_secs: total / count as f64,
                rewire_secs: rewire / count as f64,
            }
        })
        .collect()
}

/// Generates the analogue for `ds` at `scale`, deterministic in `seed`.
pub fn analogue(ds: Dataset, scale: f64, seed: u64) -> Graph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xda7a);
    ds.spec().scaled(scale).generate(&mut rng)
}

/// CLI arguments shared by the experiment binaries. Hand-rolled parser —
/// the binaries take only `--key value` pairs.
#[derive(Clone, Debug)]
pub struct Args {
    /// Independent runs to average (paper: 10; default here: 3).
    pub runs: usize,
    /// Rewiring coefficient `R_C` (paper: 500; default here: 60 so the
    /// whole suite fits a session — see EXPERIMENTS.md).
    pub rc: f64,
    /// Analogue size multiplier.
    pub scale: f64,
    /// Output directory for TSV/SVG artifacts.
    pub out_dir: std::path::PathBuf,
    /// Base seed.
    pub seed: u64,
    /// Exact-computation node threshold for properties.
    pub exact_threshold: usize,
    /// Pivot count for sampled shortest paths / betweenness.
    pub pivots: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            runs: 3,
            rc: 60.0,
            scale: 1.0,
            out_dir: std::path::PathBuf::from("out"),
            seed: 20220512,
            exact_threshold: 2_000,
            pivots: 384,
        }
    }
}

impl Args {
    /// Parses `--runs N --rc X --scale X --out DIR --seed N
    /// --exact-threshold N --pivots N` from `std::env::args`.
    ///
    /// # Panics
    /// Panics with a usage message on malformed input.
    pub fn parse() -> Self {
        let mut args = Self::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i].as_str();
            let val = argv
                .get(i + 1)
                .unwrap_or_else(|| panic!("missing value for {key}"));
            match key {
                "--runs" => args.runs = val.parse().expect("--runs expects an integer"),
                "--rc" => args.rc = val.parse().expect("--rc expects a number"),
                "--scale" => args.scale = val.parse().expect("--scale expects a number"),
                "--out" => args.out_dir = val.into(),
                "--seed" => args.seed = val.parse().expect("--seed expects an integer"),
                "--exact-threshold" => {
                    args.exact_threshold =
                        val.parse().expect("--exact-threshold expects an integer")
                }
                "--pivots" => args.pivots = val.parse().expect("--pivots expects an integer"),
                other => panic!("unknown argument {other}"),
            }
            i += 2;
        }
        args
    }

    /// The properties configuration implied by these arguments.
    pub fn props_cfg(&self) -> PropsConfig {
        PropsConfig {
            exact_threshold: self.exact_threshold,
            num_pivots: self.pivots,
            threads: 0,
            seed: self.seed ^ 0x9999,
            ..PropsConfig::default()
        }
    }

    /// Ensures the output directory exists and returns it.
    pub fn ensure_out_dir(&self) -> &std::path::Path {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create output directory");
        &self.out_dir
    }
}

/// Times one checkpoint round trip of a frozen graph through the on-disk
/// snapshot container (the same container the restore checkpoints use)
/// and gates on bitwise fidelity: the loaded snapshot must re-encode to
/// exactly the bytes that were written.
///
/// Returns `(write_secs, load_secs, file_bytes)`.
pub fn checkpoint_round_trip(csr: &sgr_graph::CsrGraph, path: &std::path::Path) -> (f64, f64, u64) {
    use sgr_graph::snapshot;
    let t = std::time::Instant::now();
    snapshot::write_csr(csr, path).expect("checkpoint write failed");
    let write_secs = t.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(path)
        .expect("checkpoint file missing")
        .len();
    let t = std::time::Instant::now();
    let loaded = snapshot::read_csr(path).expect("checkpoint load failed");
    let load_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        snapshot::encode_csr(&loaded),
        snapshot::encode_csr(csr),
        "checkpoint round trip lost information"
    );
    (write_secs, load_secs, bytes)
}

/// Loads a bench binary's hidden graph from its on-disk snapshot cache,
/// or generates it and populates the cache for the next run.
///
/// The cache lives in `$SGR_BENCH_CACHE` (default `bench_cache/` under
/// the working directory, gitignored), one `<key>.sgrsnap` CSR container
/// per workload — the key must encode every generation parameter
/// (generator, size, seed). Hidden graphs are the dominant setup cost of
/// the large bench rows (a 1M-node Holme–Kim generation dwarfs some of
/// the phases being measured), and they are pure functions of their
/// seed, so regenerating them every harness run is waste.
///
/// The load path is **order-preserving** — the snapshot was frozen from
/// the generated graph (freeze keeps neighbor order) and is thawed with
/// [`Graph::from_view`] (which keeps it too, unlike `CsrGraph::thaw`) —
/// so a cached run and a regenerated run hand byte-identical adjacency
/// to everything downstream, and every bench number is comparable across
/// the two. The returned flag is `true` when the graph was regenerated
/// (reported as `"regenerated"` in the bench JSON so a timing read off a
/// cold-cache run can be told apart).
///
/// A corrupt or unreadable cache entry falls back to regeneration; a
/// failed cache write is reported to stderr but never fails the bench.
pub fn load_or_generate_hidden(key: &str, generate: impl FnOnce() -> Graph) -> (Graph, bool) {
    use sgr_graph::snapshot;
    let dir = std::env::var_os("SGR_BENCH_CACHE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("bench_cache"));
    let path = dir.join(format!("{key}.sgrsnap"));
    match snapshot::read_csr(&path) {
        Ok(csr) => {
            eprintln!("  hidden graph: cached ({})", path.display());
            (Graph::from_view(&csr), false)
        }
        Err(sgr_graph::SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            let g = generate();
            if let Err(e) = std::fs::create_dir_all(&dir)
                .map_err(sgr_graph::SnapshotError::Io)
                .and_then(|()| snapshot::write_csr(&g.freeze(), &path))
            {
                eprintln!("  hidden graph: cache write failed ({e}), continuing uncached");
            } else {
                eprintln!("  hidden graph: generated, cached to {}", path.display());
            }
            (g, true)
        }
        Err(e) => {
            eprintln!("  hidden graph: cache unreadable ({e}), regenerating");
            (generate(), true)
        }
    }
}

/// Formats a row of f64 cells with a label, TSV.
pub fn tsv_row(label: &str, cells: &[f64]) -> String {
    let mut row = String::from(label);
    for c in cells {
        row.push('\t');
        row.push_str(&format!("{c:.3}"));
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_produce_graphs() {
        let g = sgr_gen::holme_kim(400, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(1)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let outs = run_all_methods(&g, 0.1, 5.0, &mut rng);
        assert_eq!(outs.len(), 6);
        for mo in &outs {
            assert!(mo.graph.num_nodes() > 0, "{} empty", mo.method.name());
            assert!(mo.graph.num_edges() > 0, "{} edgeless", mo.method.name());
        }
        // Subgraph sampling keeps only the observed edges; restoration
        // regenerates close to the full edge count.
        let by = |m: Method| outs.iter().find(|o| o.method == m).unwrap();
        assert!(by(Method::Bfs).graph.num_edges() < by(Method::Proposed).graph.num_edges());
    }

    #[test]
    fn evaluate_and_average() {
        let g = sgr_gen::holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(3)).unwrap();
        let cfg = PropsConfig::default();
        let orig = StructuralProperties::compute(&g, &cfg);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let runs: Vec<Vec<RunResult>> = (0..2)
            .map(|_| evaluate_run(&g, &orig, 0.1, 3.0, &cfg, &mut rng))
            .collect();
        let avg = average_runs(&runs);
        assert_eq!(avg.len(), 6);
        for r in &avg {
            assert!(r.mean_distance().is_finite());
            assert!(r.distances.iter().all(|d| d.is_finite() && *d >= 0.0));
        }
    }

    #[test]
    fn tsv_row_formats() {
        assert_eq!(tsv_row("x", &[1.0, 0.25]), "x\t1.000\t0.250");
    }

    #[test]
    fn checkpoint_round_trip_is_lossless() {
        let g = sgr_gen::holme_kim(500, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(5)).unwrap();
        let path = std::env::temp_dir().join(format!(
            "sgr_bench_roundtrip_{}.sgrsnap",
            std::process::id()
        ));
        let (w, l, bytes) = checkpoint_round_trip(&g.freeze(), &path);
        assert!(w >= 0.0 && l >= 0.0);
        assert!(bytes > 32, "payload missing beyond the header");
        let _ = std::fs::remove_file(&path);
    }
}
