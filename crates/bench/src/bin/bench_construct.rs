//! Construction-throughput harness: times the pre-rewiring half of the
//! restoration pipeline — estimation, target setup (Algorithms 1–4), and
//! stub-matching construction (Algorithm 5) — at 100k and 1M hidden-graph
//! nodes, writing `BENCH_construct.json`. Closes the "construction is
//! still unbenchmarked" gap next to `BENCH_rewire.json` (rewiring) and
//! `BENCH_props.json` (read-only kernels).
//!
//! Phases per size (each on the same fixed crawl):
//! * `estimate` — the five §III estimators via [`estimate_all_with`] on a
//!   reused [`EstimateScratch`] (the arena-backed path);
//! * `targeting` — target degree vector + joint degree matrix
//!   (Algorithms 1–4 with the subgraph modification steps), reported
//!   both as a total and as a per-phase split: `dv` (Algorithms 1–2),
//!   `jdm_init` (arena allocation + subgraph JDM), `jdm_adjust`
//!   (Algorithm 3, first pass), `jdm_modify` (Algorithm 4), and
//!   `jdm_readjust` (Algorithm 3 with subgraph lower limits). The split
//!   is what made the dense-matrix initialization cost visible in the
//!   first place — keep it so regressions name their phase;
//! * `construct` — node addition + stub matching
//!   ([`extend_subgraph_with`](sgr_core::construct::extend_subgraph_with)),
//!   with built-edges/sec as the headline rate and the stub-matching
//!   wall time split out (`stub_matching_seconds`) so the wiring loop's
//!   cost is visible next to node addition / degree shuffling. The
//!   timed run is cold (fresh scratch — comparable with earlier PRs'
//!   committed numbers); a second run on the warmed
//!   [`ConstructScratch`] with a cloned RNG reports the allocation-free
//!   steady state (`warm_stub_matching_seconds`) a restore loop sees;
//! * `checkpoint` — one round trip of the constructed graph through the
//!   on-disk snapshot container (the container the resumable-restore
//!   checkpoints are built on): write and load wall time plus file size,
//!   gated on bitwise fidelity by
//!   [`sgr_bench::harness::checkpoint_round_trip`].
//!
//! Memory is **measured, not asserted**, through the tracking global
//! allocator ([`sgr_util::alloc`]): `graph_bytes` is the modeled heap
//! footprint of the constructed arena-backed graph,
//! `reference_graph_bytes` that of a [`ReferenceGraph`] replica (the
//! retired one-`Vec`-per-node representation with exact-fit buffers),
//! `graph_bytes_ratio` their quotient (CI gates the 1M row at ≤ 0.60),
//! and `peak_construct_bytes` the construction phase's high-water mark
//! (graph + stub-matching scratch). The hidden graph is pulled from the
//! snapshot cache when present ([`load_or_generate_hidden`]) and the
//! `regenerated` field records which happened; the crawl runs off its
//! own seed so cached and regenerated runs drive the identical pipeline.
//!
//! CI gates `targeting_seconds ≤ 2 × construct_seconds` and the split
//! sanity `stub_matching_seconds ≤ construct_seconds` at 100k (see
//! `.github/workflows/ci.yml`): targeting must stay cheaper than the
//! stub matching it feeds, which the batched engine satisfies with
//! headroom while the per-unit one did not.
//!
//! Usage: `bench_construct [out.json] [sizes_csv]`
//! (defaults: `BENCH_construct.json`, sizes `100000,1000000`).

use sgr_bench::harness::load_or_generate_hidden;
use sgr_core::{construct, target_dv, target_jdm};
use sgr_dk::ConstructScratch;
use sgr_estimate::{estimate_all_with, EstimateScratch};
use sgr_graph::reference::ReferenceGraph;
use sgr_sample::random_walk_until_fraction;
use sgr_util::{alloc, Xoshiro256pp};
use std::time::Instant;

#[global_allocator]
static ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc;

const GRAPH_SEED: u64 = 14;
/// The crawl draws from its own stream (it used to continue the
/// generator's) so a cache-loaded hidden graph leaves the pipeline's RNG
/// state — and with it every downstream number — identical to a
/// regenerated run's.
const CRAWL_SEED: u64 = 15;
const CRAWL_FRACTION: f64 = 0.1;

struct SizeResult {
    hidden_nodes: usize,
    hidden_edges: usize,
    queried: usize,
    built_nodes: usize,
    built_edges: usize,
    added_edges: usize,
    estimate_secs: f64,
    dv_secs: f64,
    jdm_stats: target_jdm::JdmBuildStats,
    targeting_secs: f64,
    construct_secs: f64,
    stub_matching_secs: f64,
    warm_stub_matching_secs: f64,
    checkpoint_bytes: u64,
    checkpoint_write_secs: f64,
    checkpoint_load_secs: f64,
    regenerated: bool,
    graph_bytes: u64,
    reference_graph_bytes: u64,
    peak_construct_bytes: u64,
}

fn run_size(n: usize, scratch: &mut EstimateScratch) -> SizeResult {
    let (g, regenerated) =
        load_or_generate_hidden(&format!("holme_kim_n{n}_m4_pt0.5_seed{GRAPH_SEED}"), || {
            sgr_gen::holme_kim(n, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(GRAPH_SEED)).unwrap()
        });
    let mut rng = Xoshiro256pp::seed_from_u64(CRAWL_SEED);
    let crawl = random_walk_until_fraction(&g, CRAWL_FRACTION, &mut rng);
    let subgraph = crawl.subgraph();

    let t = Instant::now();
    let estimates = estimate_all_with(&crawl, scratch).expect("estimation failed");
    let estimate_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mut dv = target_dv::build(&subgraph, &estimates, &mut rng);
    let dv_secs = t.elapsed().as_secs_f64();
    let (jdm, jdm_stats) =
        target_jdm::build_with_stats(&subgraph, &estimates, &mut dv).expect("targeting failed");
    let targeting_secs = t.elapsed().as_secs_f64();

    // Cold timed run on a per-size fresh scratch (fresh alloc state is
    // part of what earlier PRs measured — a scratch shared across sizes
    // would arrive pre-warmed); clone the RNG first so the warm repeat
    // below replays the identical draw stream.
    let mut cs = ConstructScratch::new();
    let rng_replay = rng.clone();
    alloc::reset_peak();
    let live_at_reset = alloc::live_model_bytes();
    let t = Instant::now();
    let built = construct::extend_subgraph_with(&subgraph, &dv, &jdm, &mut rng, &mut cs)
        .expect("construction failed");
    let construct_secs = t.elapsed().as_secs_f64();
    // High-water mark of the cold construction alone: graph arena plus
    // stub-matching scratch, above whatever was already resident.
    let peak_construct_bytes = alloc::peak_model_bytes().saturating_sub(live_at_reset);
    let built_nodes = built.graph.num_nodes();
    let built_edges = built.graph.num_edges();
    let stub_matching_secs = built.stub_matching_secs;
    let added_edges = built.added_edges;
    // Free the cold run's graph before the warm repeat so the two 1M-node
    // graphs are never resident together (the doubled footprint skews the
    // warm timing on small hosts).
    drop(built.graph);

    // Warm repeat: same inputs, same draws, scratch now at its
    // high-water mark — the matcher's allocation-free steady state.
    let mut rng2 = rng_replay;
    let rebuilt = construct::extend_subgraph_with(&subgraph, &dv, &jdm, &mut rng2, &mut cs)
        .expect("warm construction failed");
    assert_eq!(
        rebuilt.added_edges, added_edges,
        "scratch reuse changed the construction output"
    );

    // Measured graph footprints: live-byte delta while one extra copy of
    // the constructed graph is resident — once in the arena
    // representation, once as a ReferenceGraph replica (the retired
    // one-`Vec`-per-node layout, exact-fit buffers, i.e. its floor).
    let live0 = alloc::live_model_bytes();
    let arena_copy = rebuilt.graph.clone();
    let graph_bytes = alloc::live_model_bytes().saturating_sub(live0);
    drop(arena_copy);
    let live0 = alloc::live_model_bytes();
    let replica = ReferenceGraph::replica_of(&rebuilt.graph);
    let reference_graph_bytes = alloc::live_model_bytes().saturating_sub(live0);
    drop(replica);

    // Checkpoint round trip of the constructed graph through the snapshot
    // container, gated on bitwise fidelity.
    let ckpt_path = std::env::temp_dir().join(format!(
        "sgr_bench_construct_ckpt_{}_{n}.sgrsnap",
        std::process::id()
    ));
    let (checkpoint_write_secs, checkpoint_load_secs, checkpoint_bytes) =
        sgr_bench::harness::checkpoint_round_trip(&rebuilt.graph.freeze(), &ckpt_path);
    let _ = std::fs::remove_file(&ckpt_path);

    SizeResult {
        hidden_nodes: g.num_nodes(),
        hidden_edges: g.num_edges(),
        queried: crawl.num_queried(),
        built_nodes,
        built_edges,
        added_edges: added_edges.len(),
        estimate_secs,
        dv_secs,
        jdm_stats,
        targeting_secs,
        construct_secs,
        stub_matching_secs,
        warm_stub_matching_secs: rebuilt.stub_matching_secs,
        checkpoint_bytes,
        checkpoint_write_secs,
        checkpoint_load_secs,
        regenerated,
        graph_bytes,
        reference_graph_bytes,
        peak_construct_bytes,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out = args.next().unwrap_or_else(|| "BENCH_construct.json".into());
    let sizes: Vec<usize> = args
        .next()
        .unwrap_or_else(|| "100000,1000000".into())
        .split(',')
        .map(|t| t.trim().parse().expect("sizes must be integers"))
        .collect();

    // One estimate scratch across every size: the arena-reuse path the
    // experiment harness takes when it re-estimates per run. (The
    // construct scratch is deliberately per-size so the cold timing
    // stays cold; see run_size.)
    let mut scratch = EstimateScratch::new();
    let mut entries: Vec<String> = Vec::new();
    for &n in &sizes {
        eprintln!(
            "bench_construct: hidden n={n} (graph seed {GRAPH_SEED}, crawl fraction {CRAWL_FRACTION})"
        );
        let r = run_size(n, &mut scratch);
        let total = r.estimate_secs + r.targeting_secs + r.construct_secs;
        let edges_per_sec = r.built_edges as f64 / r.construct_secs;
        let stub_rate = r.added_edges as f64 / r.stub_matching_secs;
        let warm_stub_rate = r.added_edges as f64 / r.warm_stub_matching_secs;
        eprintln!(
            "  estimate {:.3}s · targeting {:.3}s (dv {:.3} · init {:.3} · adjust {:.3} · modify {:.3} · readjust {:.3}) · construct {:.3}s ({} nodes, {} edges, {:.0} edges/s)",
            r.estimate_secs, r.targeting_secs, r.dv_secs,
            r.jdm_stats.init_secs, r.jdm_stats.adjust_secs,
            r.jdm_stats.modify_secs, r.jdm_stats.readjust_secs,
            r.construct_secs, r.built_nodes, r.built_edges, edges_per_sec,
        );
        eprintln!(
            "  stub matching {:.3}s ({:.0} added edges/s) · warm {:.3}s ({:.0} added edges/s)",
            r.stub_matching_secs, stub_rate, r.warm_stub_matching_secs, warm_stub_rate,
        );
        let mb = r.checkpoint_bytes as f64 / (1024.0 * 1024.0);
        let ckpt_write_mb_s = mb / r.checkpoint_write_secs;
        let ckpt_load_mb_s = mb / r.checkpoint_load_secs;
        eprintln!(
            "  checkpoint {:.2} MiB · write {:.3}s ({:.0} MiB/s) · load {:.3}s ({:.0} MiB/s)",
            mb, r.checkpoint_write_secs, ckpt_write_mb_s, r.checkpoint_load_secs, ckpt_load_mb_s,
        );
        let graph_bytes_ratio = r.graph_bytes as f64 / r.reference_graph_bytes as f64;
        eprintln!(
            "  memory: graph {:.2} MiB (arena) vs {:.2} MiB (reference) → ratio {:.3} · construct peak {:.2} MiB · hidden graph {}",
            r.graph_bytes as f64 / (1024.0 * 1024.0),
            r.reference_graph_bytes as f64 / (1024.0 * 1024.0),
            graph_bytes_ratio,
            r.peak_construct_bytes as f64 / (1024.0 * 1024.0),
            if r.regenerated { "regenerated" } else { "cached" },
        );
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"hidden_nodes\": {},\n",
                "      \"hidden_edges\": {},\n",
                "      \"queried_nodes\": {},\n",
                "      \"built_nodes\": {},\n",
                "      \"built_edges\": {},\n",
                "      \"added_edges\": {},\n",
                "      \"estimate_seconds\": {:.6},\n",
                "      \"dv_seconds\": {:.6},\n",
                "      \"jdm_init_seconds\": {:.6},\n",
                "      \"jdm_adjust_seconds\": {:.6},\n",
                "      \"jdm_modify_seconds\": {:.6},\n",
                "      \"jdm_readjust_seconds\": {:.6},\n",
                "      \"targeting_seconds\": {:.6},\n",
                "      \"construct_seconds\": {:.6},\n",
                "      \"stub_matching_seconds\": {:.6},\n",
                "      \"warm_stub_matching_seconds\": {:.6},\n",
                "      \"total_seconds\": {:.6},\n",
                "      \"construct_edges_per_sec\": {:.1},\n",
                "      \"stub_matching_edges_per_sec\": {:.1},\n",
                "      \"warm_stub_matching_edges_per_sec\": {:.1},\n",
                "      \"checkpoint_bytes\": {},\n",
                "      \"checkpoint_write_seconds\": {:.6},\n",
                "      \"checkpoint_load_seconds\": {:.6},\n",
                "      \"checkpoint_write_mb_per_sec\": {:.1},\n",
                "      \"checkpoint_load_mb_per_sec\": {:.1},\n",
                "      \"regenerated\": {},\n",
                "      \"graph_bytes\": {},\n",
                "      \"reference_graph_bytes\": {},\n",
                "      \"graph_bytes_ratio\": {:.6},\n",
                "      \"peak_construct_bytes\": {}\n",
                "    }}"
            ),
            n,
            r.hidden_nodes,
            r.hidden_edges,
            r.queried,
            r.built_nodes,
            r.built_edges,
            r.added_edges,
            r.estimate_secs,
            r.dv_secs,
            r.jdm_stats.init_secs,
            r.jdm_stats.adjust_secs,
            r.jdm_stats.modify_secs,
            r.jdm_stats.readjust_secs,
            r.targeting_secs,
            r.construct_secs,
            r.stub_matching_secs,
            r.warm_stub_matching_secs,
            total,
            edges_per_sec,
            stub_rate,
            warm_stub_rate,
            r.checkpoint_bytes,
            r.checkpoint_write_secs,
            r.checkpoint_load_secs,
            ckpt_write_mb_s,
            ckpt_load_mb_s,
            r.regenerated,
            r.graph_bytes,
            r.reference_graph_bytes,
            graph_bytes_ratio,
            r.peak_construct_bytes,
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"construct_and_targeting\",\n",
            "  \"graph\": {{\"generator\": \"holme_kim\", \"m\": 4, \"pt\": 0.5, \"seed\": {}}},\n",
            "  \"crawl_fraction\": {},\n",
            "  \"sizes\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        GRAPH_SEED,
        CRAWL_FRACTION,
        entries.join(",\n"),
    );
    std::fs::write(&out, json).expect("writing benchmark JSON");
    eprintln!("  wrote {out}");
}
