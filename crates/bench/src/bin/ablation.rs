//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. **Rewiring candidate set** — `Ẽ \ E'` (proposed) vs `Ẽ` (Gjoka
//!    style), holding everything else fixed: accuracy of `c̄(k)` and
//!    rewiring time.
//! 2. **`R_C` sweep** — rewiring budget vs clustering distance and time.
//! 3. **Modification steps on/off** — skip Algorithms 2 and 4 (i.e. use
//!    the Gjoka-style targets) but still embed the subgraph: isolates the
//!    value of the subgraph-aware targets.
//!
//! Output: three TSV sections, written to `out/ablation.tsv`.

use sgr_bench::harness::{self, Args};
use sgr_core::{restore, RestoreConfig};
use sgr_dk::rewire::RewireEngine;
use sgr_gen::Dataset;
use sgr_props::{PropsConfig, StructuralProperties};
use sgr_sample::random_walk_until_fraction;
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();
    let props_cfg: PropsConfig = args.props_cfg();
    let mut file =
        std::fs::File::create(out_dir.join("ablation.tsv")).expect("create ablation.tsv");

    let g = harness::analogue(Dataset::Anybeat, args.scale, args.seed);
    let orig = StructuralProperties::compute(&g, &props_cfg);

    // ------------------------------------------------------------------
    // Ablation 1: candidate set. Build once with the proposed pipeline
    // (phases 1–3), then rewire the same constructed graph with (a) only
    // the added edges and (b) every edge as candidates.
    // ------------------------------------------------------------------
    let section1 = "## ablation 1: rewiring candidate set (Anybeat analogue, 10% queried)";
    println!("{section1}");
    writeln!(file, "{section1}").unwrap();
    let header = "candidates\tnum_candidates\trewire_sec\tD_initial\tD_final\tc(k)_L1_vs_orig";
    println!("{header}");
    writeln!(file, "{header}").unwrap();
    for exclude_subgraph in [true, false] {
        let mut rng = Xoshiro256pp::seed_from_u64(args.seed ^ 0xab1);
        let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: 0.0,
            rewire: false,
            ..RestoreConfig::default()
        };
        let built = restore(&crawl, &cfg, &mut rng).expect("construction failed");
        // Recover the candidate sets: added edges = all edges minus the
        // subgraph's (the restore API rewires internally; here we rewire
        // explicitly to control the candidate set).
        let sub_edges: sgr_util::FxHashSet<(u32, u32)> = built.subgraph.graph.edges().collect();
        let all_edges: Vec<(u32, u32)> = built.graph.edges().collect();
        let candidates: Vec<(u32, u32)> = if exclude_subgraph {
            // One subgraph copy of each edge is protected; extra copies
            // (multi-edges from construction) stay rewirable.
            let mut seen: sgr_util::FxHashSet<(u32, u32)> = Default::default();
            all_edges
                .iter()
                .copied()
                .filter(|e| !(sub_edges.contains(e) && seen.insert(*e)))
                .collect()
        } else {
            all_edges.clone()
        };
        let mut target_c = built.estimates.clustering.clone();
        let kmax = built.graph.max_degree() + 1;
        target_c.resize(kmax.max(target_c.len()), 0.0);
        let num_candidates = candidates.len();
        let mut engine = RewireEngine::new(built.graph.clone(), candidates, &target_c);
        let t = std::time::Instant::now();
        let stats = engine.run(args.rc, &mut rng);
        let secs = t.elapsed().as_secs_f64();
        let rewired = engine.into_graph();
        let props = StructuralProperties::compute(&rewired, &props_cfg);
        let ck_l1 = sgr_props::distance::normalized_l1(
            &orig.clustering_by_degree,
            &props.clustering_by_degree,
        );
        let label = if exclude_subgraph {
            "E_tilde \\ E' (proposed)"
        } else {
            "E_tilde (Gjoka-style)"
        };
        let row = format!(
            "{label}\t{num_candidates}\t{secs:.3}\t{:.4}\t{:.4}\t{ck_l1:.4}",
            stats.initial_distance, stats.final_distance
        );
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }

    // ------------------------------------------------------------------
    // Ablation 2: R_C sweep.
    // ------------------------------------------------------------------
    let section2 = "\n## ablation 2: rewiring coefficient R_C sweep";
    println!("{section2}");
    writeln!(file, "{section2}").unwrap();
    let header = "rc\ttotal_sec\trewire_sec\tD_final\tavg_L1";
    println!("{header}");
    writeln!(file, "{header}").unwrap();
    for rc in [0.0, 10.0, 30.0, 100.0, 300.0] {
        let mut rng = Xoshiro256pp::seed_from_u64(args.seed ^ 0xab2);
        let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: rc,
            rewire: rc > 0.0,
            ..RestoreConfig::default()
        };
        let r = restore(&crawl, &cfg, &mut rng).expect("restore failed");
        let props = StructuralProperties::compute(&r.graph, &props_cfg);
        let avg_l1 = sgr_util::stats::mean(&orig.l1_distances(&props));
        let row = format!(
            "{rc}\t{:.3}\t{:.3}\t{:.4}\t{avg_l1:.4}",
            r.stats.total_secs(),
            r.stats.rewire_secs,
            r.stats.rewire_stats.final_distance
        );
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }

    // ------------------------------------------------------------------
    // Ablation 3: subgraph-aware target modification on/off. "Off" runs
    // the Gjoka baseline (no subgraph at all); "on" runs the full
    // proposed pipeline; the difference isolates what embedding the
    // sampled subgraph buys.
    // ------------------------------------------------------------------
    let section3 = "\n## ablation 3: subgraph embedding on/off (avg L1 over 12 properties)";
    println!("{section3}");
    writeln!(file, "{section3}").unwrap();
    let header = "variant\tavg_L1\ttotal_sec";
    println!("{header}");
    writeln!(file, "{header}").unwrap();
    for proposed in [true, false] {
        let mut avg_acc = 0.0;
        let mut time_acc = 0.0;
        for run in 0..args.runs {
            let mut rng = Xoshiro256pp::seed_from_u64(args.seed ^ 0xab3 ^ (run as u64) << 20);
            let crawl = random_walk_until_fraction(&g, 0.10, &mut rng);
            let (graph, secs) = if proposed {
                let r = restore(
                    &crawl,
                    &RestoreConfig {
                        rewiring_coefficient: args.rc,
                        ..RestoreConfig::default()
                    },
                    &mut rng,
                )
                .expect("restore failed");
                (r.graph, r.stats.total_secs())
            } else {
                let o = sgr_core::gjoka::generate(
                    &crawl,
                    &RestoreConfig {
                        rewiring_coefficient: args.rc,
                        ..RestoreConfig::default()
                    },
                    &mut rng,
                )
                .expect("gjoka failed");
                (o.graph, o.stats.total_secs())
            };
            let props = StructuralProperties::compute(&graph, &props_cfg);
            avg_acc += sgr_util::stats::mean(&orig.l1_distances(&props));
            time_acc += secs;
        }
        let label = if proposed {
            "with subgraph (proposed)"
        } else {
            "without subgraph (Gjoka)"
        };
        let row = format!(
            "{label}\t{:.4}\t{:.3}",
            avg_acc / args.runs as f64,
            time_acc / args.runs as f64
        );
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }
    eprintln!("wrote {}", out_dir.join("ablation.tsv").display());
}
