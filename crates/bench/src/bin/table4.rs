//! Table IV — generation times (seconds) of the six methods at 10%
//! queried nodes, for the six smaller dataset analogues. For the
//! restoration methods both the total and the rewiring time are shown —
//! the paper's headline here is that the proposed method is several times
//! faster than Gjoka et al.'s because its rewiring candidate set excludes
//! the subgraph's edges.

use sgr_bench::harness::{self, Args, Method};
use sgr_gen::Dataset;
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();

    let mut file = std::fs::File::create(out_dir.join("table4.tsv")).expect("create table4.tsv");
    let header = "dataset\tBFS\tSnowball\tFF\tRW\tGjoka_total\tGjoka_rewire\tProposed_total\tProposed_rewire\tspeedup";
    println!(
        "# Table IV — generation times in seconds at 10%% queried (runs = {}, RC = {})",
        args.runs, args.rc
    );
    println!("{header}");
    writeln!(file, "{header}").unwrap();

    for ds in Dataset::SMALL_SIX {
        let g = harness::analogue(ds, args.scale, args.seed);
        let mut sums = [0.0f64; 8];
        for run in 0..args.runs {
            let mut rng =
                Xoshiro256pp::seed_from_u64(args.seed ^ (run as u64) << 32 ^ (ds as u64) << 8);
            let outs = harness::run_all_methods(&g, 0.10, args.rc, &mut rng);
            let by = |m: Method| outs.iter().find(|o| o.method == m).unwrap();
            sums[0] += by(Method::Bfs).total_secs;
            sums[1] += by(Method::Snowball).total_secs;
            sums[2] += by(Method::ForestFire).total_secs;
            sums[3] += by(Method::Rw).total_secs;
            sums[4] += by(Method::Gjoka).total_secs;
            sums[5] += by(Method::Gjoka).rewire_secs;
            sums[6] += by(Method::Proposed).total_secs;
            sums[7] += by(Method::Proposed).rewire_secs;
        }
        for s in &mut sums {
            *s /= args.runs as f64;
        }
        let speedup = if sums[6] > 0.0 {
            sums[4] / sums[6]
        } else {
            f64::NAN
        };
        let row = format!(
            "{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{:.2}",
            ds.name(),
            sums[0],
            sums[1],
            sums[2],
            sums[3],
            sums[4],
            sums[5],
            sums[6],
            sums[7],
            speedup
        );
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }
    eprintln!("wrote {}", out_dir.join("table4.tsv").display());
}
