//! Fig. 3 — average L1 distance over the 12 structural properties vs the
//! percentage of queried nodes (1%–10%), for the Anybeat, Brightkite and
//! Epinions analogues.
//!
//! Output: one TSV row per (dataset, percentage), columns = the six
//! methods' average L1 distance (averaged over `--runs`).

use sgr_bench::harness::{self, Args, Method};
use sgr_gen::Dataset;
use sgr_props::StructuralProperties;
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();
    let props_cfg = args.props_cfg();
    let datasets = [Dataset::Anybeat, Dataset::Brightkite, Dataset::Epinions];

    let mut file = std::fs::File::create(out_dir.join("fig3.tsv")).expect("create fig3.tsv");
    let header = {
        let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        format!("dataset\tpct_queried\t{}", names.join("\t"))
    };
    println!(
        "# Fig. 3 — average L1 distance vs %% queried (runs = {})",
        args.runs
    );
    println!("{header}");
    writeln!(file, "{header}").unwrap();

    for ds in datasets {
        let g = harness::analogue(ds, args.scale, args.seed);
        let orig = StructuralProperties::compute(&g, &props_cfg);
        for pct in 1..=10u32 {
            let fraction = pct as f64 / 100.0;
            let runs: Vec<_> = (0..args.runs)
                .map(|run| {
                    let mut rng = Xoshiro256pp::seed_from_u64(
                        args.seed ^ (run as u64) << 32 ^ pct as u64 ^ (ds as u64) << 16,
                    );
                    harness::evaluate_run(&g, &orig, fraction, args.rc, &props_cfg, &mut rng)
                })
                .collect();
            let avg = harness::average_runs(&runs);
            let cells: Vec<f64> = avg.iter().map(|r| r.mean_distance()).collect();
            let row = harness::tsv_row(&format!("{}\t{pct}", ds.name()), &cells);
            println!("{row}");
            writeln!(file, "{row}").unwrap();
        }
    }
    eprintln!("wrote {}", out_dir.join("fig3.tsv").display());
}
