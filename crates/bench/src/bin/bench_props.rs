//! Property-kernel throughput: the same read-only kernels on the mutable
//! adjacency-list `Graph` and on CSR snapshots, writing `BENCH_props.json`
//! so the CSR layer has a perf trajectory to defend (next to
//! `BENCH_rewire.json` for the rewiring engine).
//!
//! Kernels (the per-backend rows run the single-threaded **reference**
//! BFS kernel so the numbers measure the memory layout, not the
//! scheduler, and stay comparable across committed baselines):
//! * `bfs_sweep` — pivot-sampled shortest-path properties (pure BFS);
//!   additionally measured on the direction-optimizing multi-source
//!   engine (`sgr_props::bfs`) at 1 thread and at `engine_threads`
//!   workers — the interactive-property-serving configuration the CI
//!   gate defends (engine vs `csr_sorted` baseline);
//! * `betweenness` — pivot-sampled Brandes (BFS + dependency pass);
//! * `triangles` — multiplicity-index triangle counting (index-bound, so
//!   the backends are expected to tie; reported for completeness);
//! * `distance_profile` — the dissimilarity profile (per-source
//!   distance distributions), reference vs engine vs parallel engine.
//!
//! Backends: `graph` (adjacency lists), `csr` (order-preserving freeze —
//! results asserted **bitwise identical** to `graph`), `csr_sorted`
//! (per-node sorted arena; level sets — and, with the level-set-determined
//! far-node rule, diameters — match exactly, so the sweep is asserted
//! bitwise across all three). Engine results are asserted bitwise
//! identical to the reference kernel at both thread counts. The
//! betweenness kernel is additionally measured on `csr_relabeled`
//! (degree-descending [`CsrGraph::freeze_relabeled`]) to quantify what
//! hub-first node packing buys the σ/δ-bound Brandes inner loop.
//!
//! Like `BENCH_rewire.json`, the output carries `host_cpus` and a
//! `scaling_valid` flag: multi-threaded engine rows produced on a host
//! with fewer cores than `engine_threads` are marked invalid so they
//! cannot be mistaken for real scaling numbers (CI regenerates the JSON
//! on its 4-vCPU runner).
//!
//! Usage: `bench_props [nodes] [reps] [out.json] [engine_threads]`
//! (defaults: 1_000_000 nodes — the paper's YouTube scale, where the
//! layout difference is at its most production-relevant — 3 reps with
//! best-of reported, `BENCH_props.json`, 4 engine workers — the CI
//! runner's vCPU count).

use sgr_graph::{CsrGraph, Graph};
use sgr_props::{betweenness, dissimilarity, paths, triangles, BfsEngine, PropsConfig};
use sgr_util::Xoshiro256pp;
use std::time::Instant;

const GRAPH_SEED: u64 = 22;

fn props_cfg(pivots: usize, threads: usize, bfs: BfsEngine) -> PropsConfig {
    PropsConfig {
        exact_threshold: 0, // always pivot-sample at bench sizes
        num_pivots: pivots,
        threads,
        seed: 0x5eed,
        bfs,
    }
}

/// Best-of-`reps` wall time of `f`.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.unwrap())
}

struct Kernel {
    name: &'static str,
    /// Seconds per backend, in [`BACKENDS`] order.
    secs: Vec<f64>,
}

const BACKENDS: [&str; 3] = ["graph", "csr", "csr_sorted"];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("nodes must be an integer"))
        .unwrap_or(1_000_000);
    let reps: usize = args
        .next()
        .map(|a| a.parse().expect("reps must be an integer"))
        .unwrap_or(3);
    let out = args.next().unwrap_or_else(|| "BENCH_props.json".into());
    let engine_threads: usize = args
        .next()
        .map(|a| a.parse().expect("engine_threads must be an integer"))
        .unwrap_or(4);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Same honesty flag as BENCH_rewire.json: multi-threaded rows timed
    // on a host with fewer cores than workers are not scaling numbers.
    let scaling_valid = host_cpus >= engine_threads;

    // Fixed workload: a clustered, heavy-tailed social-ish graph at the
    // low average degree of the paper's datasets (m = 2 → k̄ ≈ 4; Anybeat
    // is 4.9, YouTube 5.3). The edge list is shuffled before insertion to
    // reproduce the adjacency layout the pipeline actually hands to
    // property computation: stub matching (Algorithm 5) adds edges in
    // random order, interleaving every node's `Vec` growth — holme_kim's
    // per-node insertion order would give the adjacency-list backend an
    // unrealistically compact heap.
    // The whole build (generation + shuffle) is deterministic from
    // GRAPH_SEED, so the snapshot cache stores the post-shuffle layout
    // and cached runs replay it byte for byte.
    let (g, regenerated): (Graph, bool) = sgr_bench::harness::load_or_generate_hidden(
        &format!("holme_kim_shuffled_n{n}_m2_pt0.5_seed{GRAPH_SEED}"),
        || {
            let mut rng = Xoshiro256pp::seed_from_u64(GRAPH_SEED);
            let built = sgr_gen::holme_kim(n, 2, 0.5, &mut rng).unwrap();
            let mut edges: Vec<_> = built.edges().collect();
            sgr_util::sampling::shuffle(&mut edges, &mut rng);
            Graph::from_edges(built.num_nodes(), &edges)
        },
    );
    let csr = CsrGraph::freeze(&g);
    let sorted = CsrGraph::freeze_sorted(&g);
    eprintln!(
        "bench_props: n={} m={} reps={} engine_threads={} host_cpus={} (graph seed {GRAPH_SEED})",
        g.num_nodes(),
        g.num_edges(),
        reps,
        engine_threads,
        host_cpus,
    );

    let mut kernels: Vec<Kernel> = Vec::new();

    // --- BFS sweep (shortest-path properties, 128 pivots): reference
    // kernel per backend, then the direction-optimizing multi-source
    // engine on the sorted arena at 1 thread and at engine_threads.
    let bfs_sweep_engine = {
        let cfg = props_cfg(128, 1, BfsEngine::Reference);
        let (tg, rg) = time(reps, || paths::shortest_path_properties(&g, &cfg));
        let (tc, rc) = time(reps, || paths::shortest_path_properties(&csr, &cfg));
        let (ts, rs) = time(reps, || paths::shortest_path_properties(&sorted, &cfg));
        assert_eq!(
            rg.length_dist, rc.length_dist,
            "bfs_sweep diverged between graph and csr"
        );
        assert_eq!(rg.diameter, rc.diameter);
        // Histograms are level-set sizes and the far-node rule is
        // level-set determined, so even the sorted arena (different
        // traversal order) must agree bitwise.
        assert_eq!(
            rg.length_dist, rs.length_dist,
            "bfs_sweep diverged on the sorted arena"
        );
        assert_eq!(rg.diameter, rs.diameter);

        let ecfg = props_cfg(128, 1, BfsEngine::DirectionOptimizing);
        let (te, re) = time(reps, || paths::shortest_path_properties(&sorted, &ecfg));
        let mcfg = props_cfg(128, engine_threads, BfsEngine::DirectionOptimizing);
        let (tm, rm) = time(reps, || paths::shortest_path_properties(&sorted, &mcfg));
        assert_eq!(
            bits(&re.length_dist),
            bits(&rs.length_dist),
            "engine sweep diverged from the reference kernel"
        );
        assert_eq!(re.diameter, rs.diameter);
        assert_eq!(
            bits(&rm.length_dist),
            bits(&re.length_dist),
            "parallel engine sweep diverged from single-threaded engine"
        );
        assert_eq!(rm.diameter, re.diameter);
        kernels.push(Kernel {
            name: "bfs_sweep",
            secs: vec![tg, tc, ts],
        });
        (te, tm, ts)
    };

    // --- Betweenness (Brandes, 16 pivots — the heavy constant). Also
    // measured on the degree-descending relabeled snapshot: Brandes'
    // σ/δ/dist random accesses are what keep the plain-CSR speedup at
    // ≈1.2×, and packing hubs into the low ids concentrates those
    // accesses into the hot front of each state array. The relabeled run
    // is the same graph up to isomorphism but a different id space, so
    // its pivot sample differs — a valid estimate, not bitwise-comparable
    // (only its timing is reported).
    let betweenness_relabeled_secs = {
        let cfg = props_cfg(16, 1, BfsEngine::Reference);
        let (tg, rg) = time(reps, || betweenness::betweenness_by_degree(&g, &cfg));
        let (tc, rc) = time(reps, || betweenness::betweenness_by_degree(&csr, &cfg));
        let (ts, _) = time(reps, || betweenness::betweenness_by_degree(&sorted, &cfg));
        let relabeled = CsrGraph::freeze_relabeled(&g);
        let (tr, rr) = time(reps, || {
            betweenness::betweenness_by_degree(&relabeled.csr, &cfg)
        });
        assert_eq!(
            bits(&rg),
            bits(&rc),
            "betweenness diverged between graph and csr"
        );
        // The by-degree vector's shape is id-space invariant.
        assert_eq!(
            rg.len(),
            rr.len(),
            "relabeling changed the degree range of the betweenness vector"
        );
        kernels.push(Kernel {
            name: "betweenness",
            secs: vec![tg, tc, ts],
        });
        tr
    };

    // --- Triangle counts (index-bound; included as the control).
    {
        let (tg, rg) = time(reps, || triangles::triangle_counts(&g));
        let (tc, rc) = time(reps, || triangles::triangle_counts(&csr));
        let (ts, rs) = time(reps, || triangles::triangle_counts(&sorted));
        assert_eq!(rg, rc, "triangles diverged between graph and csr");
        assert_eq!(rg, rs, "triangles diverged on the sorted arena");
        kernels.push(Kernel {
            name: "triangles",
            secs: vec![tg, tc, ts],
        });
    }

    // --- Distance profile (dissimilarity per-source distributions, 128
    // pivots): reference vs engine vs parallel engine, all reading the
    // sorted arena. Outputs are distance-determined, so all three must
    // agree bitwise.
    let distance_profile_secs = {
        let rcfg = props_cfg(128, 1, BfsEngine::Reference);
        let (tr, pr) = time(reps, || dissimilarity::distance_profile(&sorted, &rcfg));
        let ecfg = props_cfg(128, 1, BfsEngine::DirectionOptimizing);
        let (te, pe) = time(reps, || dissimilarity::distance_profile(&sorted, &ecfg));
        let mcfg = props_cfg(128, engine_threads, BfsEngine::DirectionOptimizing);
        let (tm, pm) = time(reps, || dissimilarity::distance_profile(&sorted, &mcfg));
        assert_eq!(
            bits(&pe.mu),
            bits(&pr.mu),
            "engine distance profile diverged from reference"
        );
        assert_eq!(pe.nnd.to_bits(), pr.nnd.to_bits());
        assert_eq!(
            bits(&pm.mu),
            bits(&pe.mu),
            "parallel engine distance profile diverged"
        );
        assert_eq!(pm.nnd.to_bits(), pe.nnd.to_bits());
        (tr, te, tm)
    };

    let mut entries: Vec<String> = Vec::new();
    for k in &kernels {
        let base = k.secs[0];
        let speedups: Vec<f64> = k.secs.iter().map(|&s| base / s).collect();
        let best_csr = speedups[1].max(speedups[2]);
        eprintln!("  {:>12}:", k.name);
        for (i, b) in BACKENDS.iter().enumerate() {
            eprintln!(
                "    {:>10}: {:>8.3}s  ({:.2}x vs graph)",
                b, k.secs[i], speedups[i]
            );
        }
        // Kernel-specific extra rows: the engine configurations for the
        // sweep, the relabeled snapshot for betweenness.
        let extra = if k.name == "bfs_sweep" {
            let (te, tm, ts) = bfs_sweep_engine;
            eprintln!(
                "    {:>10}: {:>8.3}s  ({:.2}x vs csr_sorted)",
                "engine",
                te,
                ts / te
            );
            eprintln!(
                "    {:>10}: {:>8.3}s  ({:.2}x vs csr_sorted, {} threads)",
                "engine_mt",
                tm,
                ts / tm,
                engine_threads
            );
            format!(
                concat!(
                    ",\n      \"engine_seconds\": {:.6},\n",
                    "      \"engine_mt_seconds\": {:.6},\n",
                    "      \"engine_speedup_vs_csr_sorted\": {:.3},\n",
                    "      \"engine_mt_speedup_vs_csr_sorted\": {:.3}"
                ),
                te,
                tm,
                ts / te,
                ts / tm
            )
        } else if k.name == "betweenness" {
            let tr = betweenness_relabeled_secs;
            eprintln!(
                "    {:>10}: {:>8.3}s  ({:.2}x vs graph)",
                "relabeled",
                tr,
                base / tr
            );
            format!(
                concat!(
                    ",\n      \"csr_relabeled_seconds\": {:.6},\n",
                    "      \"csr_relabeled_speedup\": {:.3}"
                ),
                tr,
                base / tr
            )
        } else {
            String::new()
        };
        entries.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"graph_seconds\": {:.6},\n",
                "      \"csr_seconds\": {:.6},\n",
                "      \"csr_sorted_seconds\": {:.6},\n",
                "      \"csr_speedup\": {:.3},\n",
                "      \"csr_sorted_speedup\": {:.3},\n",
                "      \"best_csr_speedup\": {:.3}{}\n",
                "    }}"
            ),
            k.name, k.secs[0], k.secs[1], k.secs[2], speedups[1], speedups[2], best_csr, extra,
        ));
    }
    {
        let (tr, te, tm) = distance_profile_secs;
        eprintln!("  distance_profile:");
        eprintln!("    {:>10}: {:>8.3}s", "reference", tr);
        eprintln!(
            "    {:>10}: {:>8.3}s  ({:.2}x vs reference)",
            "engine",
            te,
            tr / te
        );
        eprintln!(
            "    {:>10}: {:>8.3}s  ({:.2}x vs reference, {} threads)",
            "engine_mt",
            tm,
            tr / tm,
            engine_threads
        );
        entries.push(format!(
            concat!(
                "    \"distance_profile\": {{\n",
                "      \"reference_seconds\": {:.6},\n",
                "      \"engine_seconds\": {:.6},\n",
                "      \"engine_mt_seconds\": {:.6},\n",
                "      \"engine_speedup\": {:.3},\n",
                "      \"engine_mt_speedup\": {:.3}\n",
                "    }}"
            ),
            tr,
            te,
            tm,
            tr / te,
            tr / tm
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"props_kernels_graph_vs_csr\",\n",
            "  \"graph\": {{\"generator\": \"holme_kim\", \"nodes\": {}, \"edges\": {}, ",
            "\"seed\": {}}},\n",
            "  \"reps\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"engine_threads\": {},\n",
            "  \"scaling_valid\": {},\n",
            "  \"regenerated\": {},\n",
            "  \"backends\": [\"graph\", \"csr\", \"csr_sorted\"],\n",
            "  \"kernels\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        g.num_nodes(),
        g.num_edges(),
        GRAPH_SEED,
        reps,
        host_cpus,
        engine_threads,
        scaling_valid,
        regenerated,
        entries.join(",\n"),
    );
    std::fs::write(&out, json).expect("writing benchmark JSON");
    eprintln!("  wrote {out}");
}
