//! Table III — average ± standard deviation of the L1 distance over the
//! 12 structural properties at 10% queried nodes, for the six smaller
//! dataset analogues.
//!
//! Output: one TSV row per dataset, two columns (avg, sd) per method.

use sgr_bench::harness::{self, Args, Method};
use sgr_gen::Dataset;
use sgr_props::StructuralProperties;
use sgr_util::stats::mean_std;
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();
    let props_cfg = args.props_cfg();

    let mut file = std::fs::File::create(out_dir.join("table3.tsv")).expect("create table3.tsv");
    let header = {
        let cols: Vec<String> = Method::ALL
            .iter()
            .flat_map(|m| [format!("{}_avg", m.name()), format!("{}_sd", m.name())])
            .collect();
        format!("dataset\t{}", cols.join("\t"))
    };
    println!(
        "# Table III — avg ± SD of L1 over 12 properties at 10%% queried (runs = {})",
        args.runs
    );
    println!("{header}");
    writeln!(file, "{header}").unwrap();

    for ds in Dataset::SMALL_SIX {
        let g = harness::analogue(ds, args.scale, args.seed);
        let orig = StructuralProperties::compute(&g, &props_cfg);
        // The paper's ± is the spread over the 12 properties (then
        // averaged over runs): compute per run, average avg and sd.
        let mut per_method: Vec<(f64, f64)> = vec![(0.0, 0.0); Method::ALL.len()];
        for run in 0..args.runs {
            let mut rng =
                Xoshiro256pp::seed_from_u64(args.seed ^ (run as u64) << 32 ^ (ds as u64) << 8);
            let results = harness::evaluate_run(&g, &orig, 0.10, args.rc, &props_cfg, &mut rng);
            for (slot, r) in per_method.iter_mut().zip(results.iter()) {
                let (avg, sd) = mean_std(&r.distances);
                slot.0 += avg;
                slot.1 += sd;
            }
        }
        let cells: Vec<f64> = per_method
            .iter()
            .flat_map(|&(a, s)| [a / args.runs as f64, s / args.runs as f64])
            .collect();
        let row = harness::tsv_row(ds.name(), &cells);
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }
    eprintln!("wrote {}", out_dir.join("table3.tsv").display());
}
