//! Fig. 4 — graph visualizations for the Anybeat analogue: the original
//! graph plus the output of each of the six methods at 10% queried nodes,
//! rendered as SVGs (the offline substitute for the paper's Gephi
//! figures).
//!
//! Alongside each SVG a one-line structural summary is printed, so the
//! figure's qualitative claims can also be checked numerically: subgraph
//! sampling misses most low-degree periphery nodes; the proposed method
//! restores them.

use sgr_bench::harness::{self, Args};
use sgr_gen::Dataset;
use sgr_util::Xoshiro256pp;
use sgr_viz::write_svg;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().join("fig4");
    std::fs::create_dir_all(&out_dir).expect("create fig4 dir");

    let g = harness::analogue(Dataset::Anybeat, args.scale, args.seed);
    let mut rng = Xoshiro256pp::seed_from_u64(args.seed ^ 0xf164);

    let mut summary =
        std::fs::File::create(out_dir.join("summary.tsv")).expect("create summary.tsv");
    let header = "graph\tnodes\tedges\tdeg1_frac\tmax_degree";
    println!("# Fig. 4 — visual comparison, Anybeat analogue at 10%% queried");
    println!("{header}");
    writeln!(summary, "{header}").unwrap();

    let describe = |name: &str, graph: &sgr_graph::Graph| -> String {
        let deg1 = graph.nodes().filter(|&u| graph.degree(u) <= 1).count();
        format!(
            "{name}\t{}\t{}\t{:.3}\t{}",
            graph.num_nodes(),
            graph.num_edges(),
            deg1 as f64 / graph.num_nodes().max(1) as f64,
            graph.max_degree()
        )
    };

    write_svg(&g, out_dir.join("original.svg")).expect("render original");
    let row = describe("original", &g);
    println!("{row}");
    writeln!(summary, "{row}").unwrap();

    for mo in harness::run_all_methods(&g, 0.10, args.rc, &mut rng) {
        let file = format!("{}.svg", mo.method.name().replace([' ', '.'], "_"));
        write_svg(&mo.graph, out_dir.join(&file)).expect("render method output");
        let row = describe(mo.method.name(), &mo.graph);
        println!("{row}");
        writeln!(summary, "{row}").unwrap();
    }
    eprintln!("wrote SVGs to {}", out_dir.display());
}
