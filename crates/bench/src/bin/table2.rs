//! Table II — L1 distance of each of the 12 structural properties at 10%
//! queried nodes, for the Slashdot, Gowalla and Livemocha analogues.
//!
//! Output: one TSV row per (dataset, method), columns = the 12 properties
//! in the paper's order, averaged over `--runs`.

use sgr_bench::harness::{self, Args};
use sgr_gen::Dataset;
use sgr_props::{StructuralProperties, PROPERTY_NAMES};
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();
    let props_cfg = args.props_cfg();
    let datasets = [Dataset::Slashdot, Dataset::Gowalla, Dataset::Livemocha];

    let mut file = std::fs::File::create(out_dir.join("table2.tsv")).expect("create table2.tsv");
    let header = format!("dataset\tmethod\t{}", PROPERTY_NAMES.join("\t"));
    println!(
        "# Table II — per-property L1 at 10%% queried (runs = {})",
        args.runs
    );
    println!("{header}");
    writeln!(file, "{header}").unwrap();

    for ds in datasets {
        let g = harness::analogue(ds, args.scale, args.seed);
        let orig = StructuralProperties::compute(&g, &props_cfg);
        let runs: Vec<_> = (0..args.runs)
            .map(|run| {
                let mut rng =
                    Xoshiro256pp::seed_from_u64(args.seed ^ (run as u64) << 32 ^ (ds as u64) << 8);
                harness::evaluate_run(&g, &orig, 0.10, args.rc, &props_cfg, &mut rng)
            })
            .collect();
        for r in harness::average_runs(&runs) {
            let row =
                harness::tsv_row(&format!("{}\t{}", ds.name(), r.method.name()), &r.distances);
            println!("{row}");
            writeln!(file, "{row}").unwrap();
        }
    }
    eprintln!("wrote {}", out_dir.join("table2.tsv").display());
}
