//! Table V — the YouTube analogue at 1% queried nodes: per-property L1
//! distance, average ± SD over the 12 properties, and generation time,
//! for every method.

use sgr_bench::harness::{self, Args};
use sgr_gen::Dataset;
use sgr_props::{StructuralProperties, PROPERTY_NAMES};
use sgr_util::stats::mean_std;
use sgr_util::Xoshiro256pp;
use std::io::Write;

fn main() {
    let args = Args::parse();
    let out_dir = args.ensure_out_dir().to_path_buf();
    let props_cfg = args.props_cfg();

    let g = harness::analogue(Dataset::YouTube, args.scale, args.seed);
    eprintln!(
        "YouTube analogue: n = {}, m = {}",
        g.num_nodes(),
        g.num_edges()
    );
    let orig = StructuralProperties::compute(&g, &props_cfg);

    let runs: Vec<_> = (0..args.runs)
        .map(|run| {
            let mut rng = Xoshiro256pp::seed_from_u64(args.seed ^ (run as u64) << 32 ^ 0x7b3);
            harness::evaluate_run(&g, &orig, 0.01, args.rc, &props_cfg, &mut rng)
        })
        .collect();
    let avg = harness::average_runs(&runs);

    let mut file = std::fs::File::create(out_dir.join("table5.tsv")).expect("create table5.tsv");
    let header = format!("method\t{}\tavg\tsd\ttime_sec", PROPERTY_NAMES.join("\t"));
    println!(
        "# Table V — YouTube analogue at 1%% queried (runs = {}, RC = {})",
        args.runs, args.rc
    );
    println!("{header}");
    writeln!(file, "{header}").unwrap();
    for r in &avg {
        let (mean, sd) = mean_std(&r.distances);
        let mut cells: Vec<f64> = r.distances.to_vec();
        cells.push(mean);
        cells.push(sd);
        cells.push(r.total_secs);
        let row = harness::tsv_row(r.method.name(), &cells);
        println!("{row}");
        writeln!(file, "{row}").unwrap();
    }
    eprintln!("wrote {}", out_dir.join("table5.tsv").display());
}
