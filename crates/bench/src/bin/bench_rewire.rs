//! Rewiring-throughput harness: measures swap attempts/sec for the
//! evaluate-then-commit engine against the apply-rollback reference, plus
//! a thread-scaling section for the speculative-parallel engine, on the
//! same graph, target, and RNG seed. Writes `BENCH_rewire.json` so future
//! PRs have a perf trajectory to defend.
//!
//! Every engine and thread count is asserted to produce the **same
//! accepted count and bitwise-identical final distance** before any
//! number is reported — a perf number for a wrong engine is worthless.
//!
//! Usage: `bench_rewire [nodes] [attempts] [out.json] [threads_csv]`
//! (defaults: 2000 nodes, 200_000 attempts, `BENCH_rewire.json`,
//! threads `1,2,4,8`; pass `none` to skip the scaling section).
//! The committed JSON is generated at 250_000 nodes
//! (≈1M edges) — the scale where the parallel engine is aimed; CI
//! re-runs at the 2000-node size for its gates. `host_cpus` records the
//! cores the measuring host actually had: scaling numbers from a 1-core
//! container show thread overhead, not speedup, and say nothing about
//! multi-core behavior.

use sgr_dk::rewire::parallel::ParallelRewireEngine;
use sgr_dk::rewire::reference::ApplyRollbackEngine;
use sgr_dk::rewire::{RewireEngine, RewireStats};
use sgr_graph::Graph;
use sgr_props::local::LocalProperties;
use sgr_util::Xoshiro256pp;
use std::time::Instant;

const GRAPH_SEED: u64 = 6;
const RNG_SEED: u64 = 10;

/// Speculation block size for the scaling entries: large enough that the
/// per-block scoped-thread spawns are noise against 4096 evaluations.
const BENCH_BLOCK: usize = 4096;

struct Measurement {
    name: String,
    secs: f64,
    attempts_per_sec: f64,
    stats: RewireStats,
}

fn measure(
    name: String,
    attempts: u64,
    run: impl FnOnce(u64, &mut Xoshiro256pp) -> RewireStats,
) -> Measurement {
    let mut rng = Xoshiro256pp::seed_from_u64(RNG_SEED);
    let t = Instant::now();
    let stats = run(attempts, &mut rng);
    let secs = t.elapsed().as_secs_f64();
    Measurement {
        name,
        secs,
        attempts_per_sec: attempts as f64 / secs,
        stats,
    }
}

fn json_entry(m: &Measurement, extra: &str) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"seconds\": {:.6},\n",
            "      \"attempts_per_sec\": {:.1},\n",
            "      \"accepted\": {},\n",
            "      \"skipped\": {},\n",
            "      \"initial_distance\": {:.12},\n",
            "      \"final_distance\": {:.12}{}\n",
            "    }}"
        ),
        m.name,
        m.secs,
        m.attempts_per_sec,
        m.stats.accepted,
        m.stats.skipped,
        m.stats.initial_distance,
        m.stats.final_distance,
        extra,
    )
}

/// Engines must agree exactly before their numbers mean anything.
fn assert_equivalent(reference: &Measurement, other: &Measurement) {
    assert_eq!(
        reference.stats.accepted, other.stats.accepted,
        "{} diverged from {} in accepted count",
        other.name, reference.name
    );
    assert_eq!(
        reference.stats.final_distance.to_bits(),
        other.stats.final_distance.to_bits(),
        "{} diverged from {} in final distance",
        other.name,
        reference.name
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("nodes must be an integer"))
        .unwrap_or(2_000);
    let attempts: u64 = args
        .next()
        .map(|a| a.parse().expect("attempts must be an integer"))
        .unwrap_or(200_000);
    let out = args.next().unwrap_or_else(|| "BENCH_rewire.json".into());
    // `none` (or an empty list) skips the scaling section entirely —
    // the evaluate-vs-rollback CI gate reads only `speedup` and should
    // not pay for parallel measurements it discards.
    let thread_counts: Vec<usize> = args
        .next()
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty() && *t != "none")
        .map(|t| t.parse().expect("threads must be integers"))
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // Fixed workload: a clustered social-ish graph, every edge rewirable,
    // target = half the current clustering (accepts early, a reject-heavy
    // tail later — the production mix).
    let g: Graph =
        sgr_gen::holme_kim(n, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(GRAPH_SEED)).unwrap();
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    let edges: Vec<_> = g.edges().collect();

    eprintln!(
        "bench_rewire: n={} m={} attempts={} host_cpus={} (graph seed {GRAPH_SEED}, rng seed {RNG_SEED})",
        g.num_nodes(),
        g.num_edges(),
        attempts,
        host_cpus,
    );

    let fast = {
        let mut eng = RewireEngine::new(g.clone(), edges.clone(), &target);
        measure("evaluate_commit".into(), attempts, |a, rng| {
            eng.run_attempts(a, rng)
        })
    };
    let slow = {
        let mut eng = ApplyRollbackEngine::new(g.clone(), edges.clone(), &target);
        measure("apply_rollback".into(), attempts, |a, rng| {
            eng.run_attempts(a, rng)
        })
    };
    assert_equivalent(&fast, &slow);

    // Thread scaling of the speculative-parallel engine, normalized to
    // the sequential evaluate-then-commit engine.
    let scaling: Vec<Measurement> = thread_counts
        .iter()
        .map(|&t| {
            let mut eng = ParallelRewireEngine::new(g.clone(), edges.clone(), &target, t)
                .with_block_size(BENCH_BLOCK);
            let m = measure(format!("parallel{t}"), attempts, |a, rng| {
                eng.run_attempts(a, rng)
            });
            assert_equivalent(&fast, &m);
            m
        })
        .collect();

    let speedup = fast.attempts_per_sec / slow.attempts_per_sec;
    for m in [&fast, &slow].into_iter().chain(scaling.iter()) {
        eprintln!(
            "  {:>16}: {:>10.0} attempts/s ({:.3}s, {} accepted, {:.2}x vs sequential)",
            m.name,
            m.attempts_per_sec,
            m.secs,
            m.stats.accepted,
            m.attempts_per_sec / fast.attempts_per_sec,
        );
    }
    eprintln!("  evaluate_commit vs apply_rollback: {speedup:.2}x");

    let scaling_entries: Vec<String> = scaling
        .iter()
        .map(|m| {
            let extra = format!(
                ",\n      \"speedup_vs_sequential\": {:.3}",
                m.attempts_per_sec / fast.attempts_per_sec
            );
            json_entry(m, &extra)
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"rewire_attempts_per_sec\",\n",
            "  \"graph\": {{\"generator\": \"holme_kim\", \"nodes\": {}, \"edges\": {}, ",
            "\"seed\": {}}},\n",
            "  \"attempts\": {},\n",
            "  \"rng_seed\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"block_size\": {},\n",
            "  \"engines\": {{\n{},\n{}\n  }},\n",
            "  \"scaling\": {{\n{}\n  }},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        g.num_nodes(),
        g.num_edges(),
        GRAPH_SEED,
        attempts,
        RNG_SEED,
        host_cpus,
        BENCH_BLOCK,
        json_entry(&fast, ""),
        json_entry(&slow, ""),
        scaling_entries.join(",\n"),
        speedup,
    );
    std::fs::write(&out, json).expect("writing benchmark JSON");
    eprintln!("  wrote {out}");
}
