//! Rewiring-throughput harness: measures swap attempts/sec for the
//! evaluate-then-commit engine against the apply-rollback reference on the
//! same graph, target, and RNG seed, and writes `BENCH_rewire.json` so
//! future PRs have a perf trajectory to defend.
//!
//! Usage: `bench_rewire [nodes] [attempts] [out.json]`
//! (defaults: 2000 nodes, 200_000 attempts, `BENCH_rewire.json`).

use sgr_dk::rewire::reference::ApplyRollbackEngine;
use sgr_dk::rewire::{RewireEngine, RewireStats};
use sgr_graph::Graph;
use sgr_props::local::LocalProperties;
use sgr_util::Xoshiro256pp;
use std::time::Instant;

const GRAPH_SEED: u64 = 6;
const RNG_SEED: u64 = 10;

struct Measurement {
    name: &'static str,
    secs: f64,
    attempts_per_sec: f64,
    stats: RewireStats,
}

fn measure(
    name: &'static str,
    attempts: u64,
    run: impl FnOnce(u64, &mut Xoshiro256pp) -> RewireStats,
) -> Measurement {
    let mut rng = Xoshiro256pp::seed_from_u64(RNG_SEED);
    let t = Instant::now();
    let stats = run(attempts, &mut rng);
    let secs = t.elapsed().as_secs_f64();
    Measurement {
        name,
        secs,
        attempts_per_sec: attempts as f64 / secs,
        stats,
    }
}

fn json_entry(m: &Measurement) -> String {
    format!(
        concat!(
            "    \"{}\": {{\n",
            "      \"seconds\": {:.6},\n",
            "      \"attempts_per_sec\": {:.1},\n",
            "      \"accepted\": {},\n",
            "      \"skipped\": {},\n",
            "      \"initial_distance\": {:.12},\n",
            "      \"final_distance\": {:.12}\n",
            "    }}"
        ),
        m.name,
        m.secs,
        m.attempts_per_sec,
        m.stats.accepted,
        m.stats.skipped,
        m.stats.initial_distance,
        m.stats.final_distance,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("nodes must be an integer"))
        .unwrap_or(2_000);
    let attempts: u64 = args
        .next()
        .map(|a| a.parse().expect("attempts must be an integer"))
        .unwrap_or(200_000);
    let out = args.next().unwrap_or_else(|| "BENCH_rewire.json".into());

    // Fixed workload: a clustered social-ish graph, every edge rewirable,
    // target = half the current clustering (accepts early, a reject-heavy
    // tail later — the production mix).
    let g: Graph =
        sgr_gen::holme_kim(n, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(GRAPH_SEED)).unwrap();
    let props = LocalProperties::compute(&g);
    let target: Vec<f64> = props
        .clustering_by_degree
        .iter()
        .map(|&c| c * 0.5)
        .collect();
    let edges: Vec<_> = g.edges().collect();

    eprintln!(
        "bench_rewire: n={} m={} attempts={} (graph seed {GRAPH_SEED}, rng seed {RNG_SEED})",
        g.num_nodes(),
        g.num_edges(),
        attempts
    );

    let fast = {
        let mut eng = RewireEngine::new(g.clone(), edges.clone(), &target);
        measure("evaluate_commit", attempts, |a, rng| {
            eng.run_attempts(a, rng)
        })
    };
    let slow = {
        let mut eng = ApplyRollbackEngine::new(g.clone(), edges.clone(), &target);
        measure("apply_rollback", attempts, |a, rng| {
            eng.run_attempts(a, rng)
        })
    };

    // The two engines must agree exactly — a perf number for a wrong
    // engine is worthless.
    assert_eq!(fast.stats.accepted, slow.stats.accepted, "engines diverged");
    assert_eq!(
        fast.stats.final_distance.to_bits(),
        slow.stats.final_distance.to_bits(),
        "final distances diverged"
    );

    let speedup = fast.attempts_per_sec / slow.attempts_per_sec;
    for m in [&fast, &slow] {
        eprintln!(
            "  {:>16}: {:>10.0} attempts/s ({:.3}s, {} accepted)",
            m.name, m.attempts_per_sec, m.secs, m.stats.accepted
        );
    }
    eprintln!("  speedup: {speedup:.2}x");

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"rewire_attempts_per_sec\",\n",
            "  \"graph\": {{\"generator\": \"holme_kim\", \"nodes\": {}, \"edges\": {}, ",
            "\"seed\": {}}},\n",
            "  \"attempts\": {},\n",
            "  \"rng_seed\": {},\n",
            "  \"engines\": {{\n{},\n{}\n  }},\n",
            "  \"speedup\": {:.3}\n",
            "}}\n"
        ),
        g.num_nodes(),
        g.num_edges(),
        GRAPH_SEED,
        attempts,
        RNG_SEED,
        json_entry(&fast),
        json_entry(&slow),
        speedup,
    );
    std::fs::write(&out, json).expect("writing benchmark JSON");
    eprintln!("  wrote {out}");
}
