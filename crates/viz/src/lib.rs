//! # sgr-viz
//!
//! Graph visualization substrate — the offline substitute for the Gephi
//! renderings of the paper's Fig. 4.
//!
//! * [`layout`] — a grid-accelerated Fruchterman–Reingold force-directed
//!   layout (repulsion approximated within neighborhood cells, linear-ish
//!   per iteration, deterministic given a seed);
//! * [`svg`] — renders a laid-out graph to an SVG file in the figure's
//!   style (black circles for nodes, gray curves for edges).
//!
//! The qualitative claims of Fig. 4 — subgraph sampling captures the core
//! but misses the low-degree periphery; Gjoka et al.'s method loses the
//! geometry entirely; the proposed method preserves both core and
//! periphery — are inspected on the emitted SVGs.

pub mod layout;
pub mod svg;

pub use layout::{fruchterman_reingold, LayoutConfig};
pub use svg::write_svg;
