//! SVG rendering in the style of the paper's Fig. 4: black circles for
//! nodes, translucent gray strokes for edges.

use sgr_graph::GraphView;
use std::io::Write;
use std::path::Path;

/// Writes the laid-out graph as an SVG document.
pub fn render_svg<G: GraphView, W: Write>(
    g: &G,
    pos: &[(f64, f64)],
    size: f64,
    mut out: W,
) -> std::io::Result<()> {
    assert_eq!(pos.len(), g.num_nodes(), "position/node count mismatch");
    let margin = size * 0.02;
    let canvas = size + 2.0 * margin;
    writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{canvas:.0}" height="{canvas:.0}" viewBox="0 0 {canvas:.0} {canvas:.0}">"#
    )?;
    writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#)?;
    // Edges beneath nodes. Stroke opacity keeps hairballs readable.
    writeln!(
        out,
        r##"<g stroke="#888888" stroke-opacity="0.25" stroke-width="0.5" fill="none">"##
    )?;
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        let (x1, y1) = pos[u as usize];
        let (x2, y2) = pos[v as usize];
        writeln!(
            out,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}"/>"#,
            x1 + margin,
            y1 + margin,
            x2 + margin,
            y2 + margin
        )?;
    }
    writeln!(out, "</g>")?;
    // Nodes: radius grows slowly with degree so hubs stand out.
    writeln!(out, r#"<g fill="black">"#)?;
    for u in g.nodes() {
        let (x, y) = pos[u as usize];
        let r = 0.8 + (g.degree(u) as f64).sqrt() * 0.25;
        writeln!(
            out,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{r:.2}"/>"#,
            x + margin,
            y + margin
        )?;
    }
    writeln!(out, "</g>")?;
    writeln!(out, "</svg>")?;
    Ok(())
}

/// Lays out the graph with default Fruchterman–Reingold parameters and
/// writes an SVG file.
pub fn write_svg<G: GraphView, P: AsRef<Path>>(g: &G, path: P) -> std::io::Result<()> {
    let cfg = crate::layout::LayoutConfig::default();
    let pos = crate::layout::fruchterman_reingold(g, &cfg);
    let file = std::fs::File::create(path)?;
    render_svg(g, &pos, cfg.size, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_all_elements() {
        let g = sgr_graph::Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let pos = vec![(0.0, 0.0), (100.0, 0.0), (50.0, 80.0)];
        let mut buf = Vec::new();
        render_svg(&g, &pos, 100.0, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("<line").count(), 3);
        assert_eq!(text.matches("<circle").count(), 3);
        assert!(text.starts_with("<svg"));
        assert!(text.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn self_loops_are_skipped_in_edges() {
        let mut g = sgr_graph::Graph::with_nodes(1);
        g.add_edge(0, 0);
        let mut buf = Vec::new();
        render_svg(&g, &[(5.0, 5.0)], 10.0, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.matches("<line").count(), 0);
        assert_eq!(text.matches("<circle").count(), 1);
    }

    #[test]
    fn file_output_works() {
        let dir = std::env::temp_dir().join("sgr_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.svg");
        let g = sgr_gen::classic::cycle(8);
        write_svg(&g, &path).unwrap();
        let meta = std::fs::metadata(&path).unwrap();
        assert!(meta.len() > 100);
        std::fs::remove_file(&path).ok();
    }
}
