//! Fruchterman–Reingold force-directed layout with grid-bucketed
//! repulsion.

use sgr_graph::GraphView;
use sgr_util::Xoshiro256pp;

/// Layout parameters.
#[derive(Clone, Copy, Debug)]
pub struct LayoutConfig {
    /// Iterations of force simulation.
    pub iterations: usize,
    /// Side length of the square drawing area.
    pub size: f64,
    /// Initial temperature as a fraction of `size` (cooled linearly).
    pub initial_temp: f64,
    /// RNG seed for the initial placement.
    pub seed: u64,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        Self {
            iterations: 120,
            size: 1000.0,
            initial_temp: 0.1,
            seed: 42,
        }
    }
}

/// Computes node positions with the Fruchterman–Reingold algorithm.
/// Repulsion is evaluated only against nodes in the surrounding 3×3 grid
/// cells (cell side = ideal edge length `k`), the standard FR grid
/// variant — O(n) per iteration on near-uniform layouts instead of O(n²).
pub fn fruchterman_reingold<G: GraphView>(g: &G, cfg: &LayoutConfig) -> Vec<(f64, f64)> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let size = cfg.size;
    let mut pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.next_f64() * size, rng.next_f64() * size))
        .collect();
    if n == 1 {
        return pos;
    }
    // Ideal pairwise distance.
    let k = (size * size / n as f64).sqrt();
    let mut disp = vec![(0.0f64, 0.0f64); n];
    let cells_per_side = ((size / k).ceil() as usize).max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 / size * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 / size * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for iter in 0..cfg.iterations {
        let temp = cfg.initial_temp * size * (1.0 - iter as f64 / cfg.iterations as f64);
        for d in disp.iter_mut() {
            *d = (0.0, 0.0);
        }
        for cell in grid.iter_mut() {
            cell.clear();
        }
        for (i, &p) in pos.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            grid[cy * cells_per_side + cx].push(i as u32);
        }
        // Repulsion within neighboring cells.
        for (i, &p) in pos.iter().enumerate() {
            let (cx, cy) = cell_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = cx as i64 + dx;
                    let ny = cy as i64 + dy;
                    if nx < 0
                        || ny < 0
                        || nx >= cells_per_side as i64
                        || ny >= cells_per_side as i64
                    {
                        continue;
                    }
                    for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        let dx = p.0 - pos[j].0;
                        let dy = p.1 - pos[j].1;
                        let dist2 = (dx * dx + dy * dy).max(1e-6);
                        let dist = dist2.sqrt();
                        let force = k * k / dist;
                        disp[i].0 += dx / dist * force;
                        disp[i].1 += dy / dist * force;
                    }
                }
            }
        }
        // Attraction along edges.
        for (u, v) in g.edges() {
            if u == v {
                continue;
            }
            let (u, v) = (u as usize, v as usize);
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
            let force = dist * dist / k;
            let fx = dx / dist * force;
            let fy = dy / dist * force;
            disp[u].0 -= fx;
            disp[u].1 -= fy;
            disp[v].0 += fx;
            disp[v].1 += fy;
        }
        // Displace, capped by temperature, clamped to the frame.
        for (p, d) in pos.iter_mut().zip(disp.iter()) {
            let len = (d.0 * d.0 + d.1 * d.1).sqrt();
            if len > 0.0 {
                let step = len.min(temp);
                p.0 = (p.0 + d.0 / len * step).clamp(0.0, size);
                p.1 = (p.1 + d.1 / len * step).clamp(0.0, size);
            }
        }
    }
    pos
}

/// Mean edge length of a layout — a cheap quality metric used by tests
/// (connected structure should contract well below random placement).
pub fn mean_edge_length<G: GraphView>(g: &G, pos: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        let dx = pos[u as usize].0 - pos[v as usize].0;
        let dy = pos[u as usize].1 - pos[v as usize].1;
        total += (dx * dx + dy * dy).sqrt();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_deterministic_and_in_bounds() {
        let g = sgr_gen::holme_kim(200, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(1)).unwrap();
        let cfg = LayoutConfig::default();
        let a = fruchterman_reingold(&g, &cfg);
        let b = fruchterman_reingold(&g, &cfg);
        assert_eq!(a, b);
        for &(x, y) in &a {
            assert!((0.0..=cfg.size).contains(&x));
            assert!((0.0..=cfg.size).contains(&y));
        }
    }

    #[test]
    fn edges_contract_relative_to_random_placement() {
        let g = sgr_gen::holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(2)).unwrap();
        let cfg = LayoutConfig::default();
        let random = fruchterman_reingold(
            &g,
            &LayoutConfig {
                iterations: 0,
                ..cfg
            },
        );
        let laid = fruchterman_reingold(&g, &cfg);
        let before = mean_edge_length(&g, &random);
        let after = mean_edge_length(&g, &laid);
        assert!(
            after < 0.8 * before,
            "layout did not contract edges: {before} -> {after}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(
            fruchterman_reingold(&sgr_graph::Graph::with_nodes(0), &LayoutConfig::default())
                .is_empty()
        );
        let one = fruchterman_reingold(&sgr_graph::Graph::with_nodes(1), &LayoutConfig::default());
        assert_eq!(one.len(), 1);
        // Self-loops must not crash the attraction pass.
        let mut g = sgr_graph::Graph::with_nodes(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let pos = fruchterman_reingold(&g, &LayoutConfig::default());
        assert_eq!(pos.len(), 2);
    }
}
