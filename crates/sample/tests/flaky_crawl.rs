//! The flaky-crawl guarantee: injected faults plus retry never perturb the
//! walk. Because [`FlakyAccessModel`] draws faults from its own RNG stream,
//! a crawl that survives its failures is **identical** — same visit
//! sequence, same neighbor lists, same query accounting — to the
//! failure-free crawl with the same walk seed.

use proptest::prelude::*;
use sgr_sample::{
    random_walk, try_random_walk, AccessModel, FlakyAccessModel, QueryFault, RetryPolicy,
};
use sgr_util::Xoshiro256pp;

fn hidden(seed: u64) -> sgr_graph::Graph {
    sgr_gen::holme_kim(500, 4, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
}

#[test]
fn flaky_walk_with_retry_matches_failure_free_walk() {
    let g = hidden(21);
    let walk_seed = 5;
    let clean = {
        let mut am = AccessModel::new(&g);
        let mut rng = Xoshiro256pp::seed_from_u64(walk_seed);
        random_walk(&mut am, 0, 60, &mut rng)
    };
    let mut flaky = FlakyAccessModel::new(&g, 0.3, 0.15, 0, 77);
    let mut rng = Xoshiro256pp::seed_from_u64(walk_seed);
    let crawl = try_random_walk(&mut flaky, 0, 60, &RetryPolicy::no_wait(64), &mut rng).unwrap();

    assert_eq!(crawl.seq, clean.seq, "faults perturbed the walk");
    assert_eq!(crawl.neighbors, clean.neighbors);
    assert!(flaky.faults_injected() > 0, "fault rates never fired");
    // Failed attempts consume no query budget: one completed query per
    // distinct visited node, exactly like the clean crawl.
    assert_eq!(flaky.inner().query_calls(), crawl.num_queried());
}

#[test]
fn unreachable_node_aborts_with_typed_error() {
    let g = hidden(22);
    // Every attempt fails; even a generous retry budget is exhausted on
    // the very first node.
    let mut flaky = FlakyAccessModel::new(&g, 1.0, 0.0, 0, 3);
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let err = try_random_walk(&mut flaky, 7, 20, &RetryPolicy::no_wait(5), &mut rng).unwrap_err();
    assert_eq!(err.node, 7);
    assert_eq!(err.attempts, 5);
    assert_eq!(err.last_fault, QueryFault::Transient);
    assert_eq!(flaky.inner().query_calls(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The identity holds for arbitrary fault seeds and rates: the fault
    /// stream is independent of the walk stream by construction, so no
    /// fault pattern can change what the walk visits.
    #[test]
    fn retry_equivalence_for_arbitrary_fault_patterns(
        walk_seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        failure_rate in 0.0f64..0.45,
        rate_limit_rate in 0.0f64..0.45,
    ) {
        let g = hidden(23);
        let clean = {
            let mut am = AccessModel::new(&g);
            let mut rng = Xoshiro256pp::seed_from_u64(walk_seed);
            random_walk(&mut am, 3, 40, &mut rng)
        };
        let mut flaky =
            FlakyAccessModel::new(&g, failure_rate, rate_limit_rate, 0, fault_seed);
        let mut rng = Xoshiro256pp::seed_from_u64(walk_seed);
        // With per-attempt success probability >= 0.1 and 512 attempts,
        // a node failing the whole budget is impossible in practice.
        let crawl =
            try_random_walk(&mut flaky, 3, 40, &RetryPolicy::no_wait(512), &mut rng).unwrap();
        prop_assert_eq!(crawl.seq, clean.seq);
        prop_assert_eq!(crawl.neighbors, clean.neighbors);
        prop_assert_eq!(flaky.inner().query_calls(), 40);
    }
}
