//! Property-based tests of the crawling layer: every crawler, on every
//! random connected graph, must respect the access model's invariants.

use proptest::prelude::*;
use sgr_graph::components::largest_component;
use sgr_graph::Graph;
use sgr_sample::{
    bfs, forest_fire, metropolis_hastings_walk, non_backtracking_walk, random_walk, snowball,
    AccessModel, Subgraph,
};
use sgr_util::Xoshiro256pp;

/// A connected social-ish graph (Holme–Kim LCC).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000).prop_map(|(n, m, pt, seed)| {
        let g = sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
        largest_component(&g).0
    })
}

fn check_crawl_invariants(g: &Graph, crawl: &sgr_sample::Crawl) {
    // Every queried node's cached neighbor list equals the truth.
    for (&q, ns) in crawl.neighbors.iter() {
        assert_eq!(ns.len(), g.degree(q));
        for &v in ns {
            assert!(g.has_edge(q, v));
        }
    }
    // The sequence only contains queried nodes.
    for &x in &crawl.seq {
        assert!(crawl.is_queried(x));
    }
}

fn check_subgraph_invariants(g: &Graph, sg: &Subgraph) {
    // Lemma 1 in both directions.
    for u in sg.queried_nodes() {
        assert_eq!(sg.graph.degree(u), g.degree(sg.orig_id[u as usize]));
    }
    for u in sg.visible_nodes() {
        assert!(sg.graph.degree(u) <= g.degree(sg.orig_id[u as usize]));
        assert!(sg.graph.degree(u) >= 1, "visible nodes come from edges");
    }
    // E' is exactly the union of queried neighborhoods: every subgraph
    // edge touches at least one queried node, and is real.
    for (u, v) in sg.graph.edges() {
        let (ou, ov) = (sg.orig_id[u as usize], sg.orig_id[v as usize]);
        assert!(g.has_edge(ou, ov));
        assert!(
            sg.queried[u as usize] || sg.queried[v as usize],
            "edge with no queried endpoint"
        );
    }
    assert!(sg.graph.is_simple());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_walk_invariants(g in arb_graph(), seed in 0u64..10_000, frac in 0.05f64..0.5) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let target = ((g.num_nodes() as f64 * frac) as usize).max(1);
        let crawl = random_walk(&mut am, start, target, &mut rng);
        prop_assert_eq!(crawl.num_queried(), target.min(g.num_nodes()));
        check_crawl_invariants(&g, &crawl);
        // Consecutive walk nodes are adjacent.
        for w in crawl.seq.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
        check_subgraph_invariants(&g, &crawl.subgraph());
    }

    #[test]
    fn bfs_and_snowball_invariants(g in arb_graph(), seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let target = (g.num_nodes() / 5).max(2);
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let b = bfs(&mut am, start, target);
        prop_assert_eq!(b.num_queried(), target);
        check_crawl_invariants(&g, &b);
        check_subgraph_invariants(&g, &b.subgraph());

        let mut am = AccessModel::new(&g);
        let s = snowball(&mut am, start, 3, target, &mut rng);
        prop_assert!(s.num_queried() <= target);
        check_crawl_invariants(&g, &s);
        check_subgraph_invariants(&g, &s.subgraph());
    }

    #[test]
    fn forest_fire_invariants(g in arb_graph(), seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let target = (g.num_nodes() / 5).max(2);
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let f = forest_fire(&mut am, start, 0.7, target, &mut rng);
        // FF with revival reaches the target on a connected graph.
        prop_assert_eq!(f.num_queried(), target);
        check_crawl_invariants(&g, &f);
        check_subgraph_invariants(&g, &f.subgraph());
    }

    #[test]
    fn improved_walks_invariants(g in arb_graph(), seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let target = (g.num_nodes() / 5).max(2);
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let nb = non_backtracking_walk(&mut am, start, target, &mut rng);
        prop_assert_eq!(nb.num_queried(), target);
        check_crawl_invariants(&g, &nb);
        // Non-backtracking above degree 1.
        for w in nb.seq.windows(3) {
            if g.degree(w[1]) > 1 {
                prop_assert_ne!(w[0], w[2]);
            }
        }
        let mut am = AccessModel::new(&g);
        let mh = metropolis_hastings_walk(&mut am, start, target, &mut rng);
        prop_assert!(mh.num_queried() >= target);
        check_crawl_invariants(&g, &mh);
        check_subgraph_invariants(&g, &mh.subgraph());
    }

    #[test]
    fn subgraph_edge_count_is_union_of_neighborhoods(g in arb_graph(), seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let crawl = random_walk(&mut am, start, (g.num_nodes() / 4).max(1), &mut rng);
        let sg = crawl.subgraph();
        // Count the union by brute force from the crawl.
        let mut union: std::collections::BTreeSet<(u32, u32)> = Default::default();
        for (&q, ns) in crawl.neighbors.iter() {
            for &v in ns {
                union.insert(if q < v { (q, v) } else { (v, q) });
            }
        }
        prop_assert_eq!(sg.num_edges(), union.len());
    }
}
