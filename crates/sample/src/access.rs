//! The restricted access model of §III-A.

use sgr_graph::{Graph, GraphView, NodeId};
use sgr_util::{FxHashSet, Xoshiro256pp};

/// Query-counting view of a hidden graph.
///
/// Crawlers receive an `&mut AccessModel` and may only call [`query`] — the
/// operation a real social-network API exposes ("give me this user's
/// friends"). The model records which nodes were queried so experiments can
/// stop at a target *queried fraction* and report query budgets.
///
/// The hidden graph can be any read-only [`GraphView`] backend (the
/// default, [`Graph`], keeps existing call sites unchanged); experiment
/// harnesses that crawl the same hidden graph many times can freeze it
/// once and crawl the [`sgr_graph::CsrGraph`] snapshot.
///
/// [`query`]: AccessModel::query
pub struct AccessModel<'g, G: GraphView = Graph> {
    graph: &'g G,
    queried: FxHashSet<NodeId>,
    query_calls: usize,
}

impl<'g, G: GraphView> AccessModel<'g, G> {
    /// Wraps a hidden graph.
    pub fn new(graph: &'g G) -> Self {
        Self {
            graph,
            queried: FxHashSet::default(),
            query_calls: 0,
        }
    }

    /// Queries node `v`, returning its neighbor list `N(v)` (the only data
    /// access the model permits). Repeat queries are counted but cached
    /// upstream by crawlers.
    pub fn query(&mut self, v: NodeId) -> &'g [NodeId] {
        self.queried.insert(v);
        self.query_calls += 1;
        self.graph.neighbors(v)
    }

    /// Picks a uniformly random seed node. The paper's experiments select
    /// the seed uniformly at random from the node set (§V-D); this is an
    /// experiment-harness convenience, not part of the crawler-visible API.
    pub fn random_seed(&self, rng: &mut Xoshiro256pp) -> NodeId {
        assert!(self.graph.num_nodes() > 0, "empty hidden graph");
        rng.gen_range(self.graph.num_nodes()) as NodeId
    }

    /// Number of *distinct* nodes queried so far.
    pub fn num_queried(&self) -> usize {
        self.queried.len()
    }

    /// Total `query` invocations (including repeats).
    pub fn query_calls(&self) -> usize {
        self.query_calls
    }

    /// Fraction of the hidden graph's nodes queried so far.
    pub fn queried_fraction(&self) -> f64 {
        if self.graph.num_nodes() == 0 {
            0.0
        } else {
            self.queried.len() as f64 / self.graph.num_nodes() as f64
        }
    }

    /// Number of nodes in the hidden graph. Used only to express
    /// experiment stopping rules ("x% of nodes queried"), mirroring the
    /// paper's §V-D protocol.
    pub fn hidden_num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_returns_neighbors_and_counts() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let mut am = AccessModel::new(&g);
        assert_eq!(am.num_queried(), 0);
        let n0 = am.query(0).to_vec();
        assert_eq!(n0.len(), 2);
        assert_eq!(am.num_queried(), 1);
        assert_eq!(am.query_calls(), 1);
        // Repeat query: counted as a call, not as a new queried node.
        am.query(0);
        assert_eq!(am.num_queried(), 1);
        assert_eq!(am.query_calls(), 2);
        am.query(1);
        assert_eq!(am.num_queried(), 2);
        assert!((am.queried_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_seed_in_range() {
        let g = Graph::from_edges(5, &[(0, 1)]);
        let am = AccessModel::new(&g);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert!((am.random_seed(&mut rng) as usize) < 5);
        }
    }
}
