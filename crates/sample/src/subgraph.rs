//! The induced subgraph `G'` of §III-D.

use crate::crawl::Crawl;
use sgr_graph::{Graph, NodeId};
use sgr_util::{FxHashMap, FxHashSet};

/// The subgraph `G' = (V', E')` induced from the union of the queried
/// nodes' edge sets: `E' = ⋃_{v ∈ V'qry} N(v)`, with
/// `V' = V'qry ⊎ V'vis` (queried nodes plus nodes visible as their
/// neighbors).
///
/// Nodes are re-indexed densely (`0 .. |V'|`); `orig_id` maps back to the
/// hidden graph's ids and `queried` records which side of the partition
/// each node is on. The restoration method relies on Lemma 1: a queried
/// node's subgraph degree equals its true degree, a visible node's subgraph
/// degree is a lower bound.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The subgraph itself, over dense ids.
    pub graph: Graph,
    /// `orig_id[dense] = id in the hidden graph`.
    pub orig_id: Vec<NodeId>,
    /// `queried[dense]` — whether the node was queried (`V'qry`) or merely
    /// visible (`V'vis`).
    pub queried: Vec<bool>,
}

impl Subgraph {
    /// Builds `G'` from a crawl. The hidden graphs of the paper are simple,
    /// so `E'` deduplicates edges reported by both endpoints.
    pub fn from_crawl(crawl: &Crawl) -> Self {
        let mut dense: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut orig_id: Vec<NodeId> = Vec::new();
        let mut queried_flags: Vec<bool> = Vec::new();
        let intern = |orig: NodeId,
                      is_query: bool,
                      dense: &mut FxHashMap<NodeId, u32>,
                      orig_id: &mut Vec<NodeId>,
                      queried_flags: &mut Vec<bool>| {
            match dense.get(&orig) {
                Some(&d) => {
                    if is_query {
                        queried_flags[d as usize] = true;
                    }
                    d
                }
                None => {
                    let d = orig_id.len() as u32;
                    dense.insert(orig, d);
                    orig_id.push(orig);
                    queried_flags.push(is_query);
                    d
                }
            }
        };
        // Intern queried nodes first (stable, deterministic order: query
        // order from the crawl sequence, then map order for leftovers).
        let mut seen_q: FxHashSet<NodeId> = FxHashSet::default();
        for &x in &crawl.seq {
            if crawl.is_queried(x) && seen_q.insert(x) {
                intern(x, true, &mut dense, &mut orig_id, &mut queried_flags);
            }
        }
        // Any queried node not in seq (possible for MH walks that query
        // proposals they never move to).
        let mut extra: Vec<NodeId> = crawl
            .neighbors
            .keys()
            .copied()
            .filter(|x| !seen_q.contains(x))
            .collect();
        extra.sort_unstable();
        for x in extra {
            intern(x, true, &mut dense, &mut orig_id, &mut queried_flags);
        }
        // Collect E' with deduplication.
        let mut edge_set: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
        let mut queried_sorted: Vec<NodeId> = crawl.neighbors.keys().copied().collect();
        queried_sorted.sort_unstable();
        for &q in &queried_sorted {
            for &v in crawl.neighbors_of(q) {
                let key = if q < v { (q, v) } else { (v, q) };
                edge_set.insert(key);
            }
        }
        let mut edges: Vec<(NodeId, NodeId)> = edge_set.into_iter().collect();
        edges.sort_unstable();
        let mut dense_edges: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for (u, v) in edges {
            let du = intern(u, false, &mut dense, &mut orig_id, &mut queried_flags);
            let dv = intern(v, false, &mut dense, &mut orig_id, &mut queried_flags);
            dense_edges.push((du, dv));
        }
        let graph = Graph::from_edges(orig_id.len(), &dense_edges);
        Self {
            graph,
            orig_id,
            queried: queried_flags,
        }
    }

    /// Number of nodes in `V'`.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of edges in `E'`.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of queried nodes `|V'qry|`.
    pub fn num_queried(&self) -> usize {
        self.queried.iter().filter(|&&q| q).count()
    }

    /// Number of visible-only nodes `|V'vis|`.
    pub fn num_visible(&self) -> usize {
        self.num_nodes() - self.num_queried()
    }

    /// Iterates dense ids of queried nodes.
    pub fn queried_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.queried
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| q.then_some(i as u32))
    }

    /// Iterates dense ids of visible-only nodes.
    pub fn visible_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.queried
            .iter()
            .enumerate()
            .filter_map(|(i, &q)| (!q).then_some(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessModel;
    use crate::walks::random_walk;
    use sgr_util::Xoshiro256pp;

    /// Builds the paper's Fig. 1 example: walk v1 → v3 → v6 → v3.
    /// Node ids are zero-based (paper's v1 = 0, …, v10 = 9).
    fn fig1_crawl() -> (sgr_graph::Graph, Crawl) {
        // Edges visible in the figure: v1-v3, v2-v3, v3-v4, v3-v6, v5-v6,
        // v6-v8, plus non-visible ones among v4,v5,v7,v9,v10 — we add a
        // few: v7-v9, v9-v10, v4-v7, v1-v2 is NOT in the figure.
        let g = sgr_graph::Graph::from_edges(
            10,
            &[
                (0, 2), // v1-v3
                (1, 2), // v2-v3
                (2, 3), // v3-v4
                (2, 5), // v3-v6
                (4, 5), // v5-v6
                (5, 7), // v6-v8
                (6, 8), // v7-v9 (non-visible)
                (8, 9), // v9-v10 (non-visible)
                (3, 6), // v4-v7 (non-visible)
            ],
        );
        let mut crawl = Crawl::default();
        for &x in &[0u32, 2, 5, 2] {
            crawl.seq.push(x);
            crawl
                .neighbors
                .entry(x)
                .or_insert_with(|| g.neighbors(x).to_vec());
        }
        (g, crawl)
    }

    #[test]
    fn fig1_example_matches_paper() {
        let (_, crawl) = fig1_crawl();
        let sg = Subgraph::from_crawl(&crawl);
        // Paper: V'qry = {v1, v3, v6}, V'vis = {v2, v4, v5, v8},
        // E' = {(v1,v3), (v2,v3), (v3,v4), (v3,v6), (v5,v6), (v6,v8)}.
        assert_eq!(sg.num_queried(), 3);
        assert_eq!(sg.num_visible(), 4);
        assert_eq!(sg.num_nodes(), 7);
        assert_eq!(sg.num_edges(), 6);
        // Queried nodes keep their true degrees (Lemma 1, first case).
        let (g, _) = fig1_crawl();
        for d in sg.queried_nodes() {
            let orig = sg.orig_id[d as usize];
            assert_eq!(sg.graph.degree(d), g.degree(orig));
        }
        // Visible nodes have degree lower bounds (Lemma 1, second case).
        for d in sg.visible_nodes() {
            let orig = sg.orig_id[d as usize];
            assert!(sg.graph.degree(d) <= g.degree(orig));
        }
    }

    #[test]
    fn subgraph_is_simple_and_consistent() {
        let g = sgr_gen::holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(1)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, 0, 30, &mut rng);
        let sg = crawl.subgraph();
        assert!(sg.graph.is_simple());
        sg.graph.validate().unwrap();
        assert_eq!(sg.num_queried(), 30);
        assert_eq!(sg.orig_id.len(), sg.num_nodes());
        // Every subgraph edge exists in the hidden graph.
        for (u, v) in sg.graph.edges() {
            assert!(g.has_edge(sg.orig_id[u as usize], sg.orig_id[v as usize]));
        }
        // Every edge incident to a queried node is present.
        for d in sg.queried_nodes() {
            let orig = sg.orig_id[d as usize];
            assert_eq!(sg.graph.degree(d), g.degree(orig));
        }
    }

    #[test]
    fn empty_crawl_gives_empty_subgraph() {
        let crawl = Crawl::default();
        let sg = Subgraph::from_crawl(&crawl);
        assert_eq!(sg.num_nodes(), 0);
        assert_eq!(sg.num_edges(), 0);
        assert_eq!(sg.num_queried(), 0);
    }

    #[test]
    fn single_node_crawl() {
        let g = sgr_gen::classic::star(3);
        let mut am = AccessModel::new(&g);
        let mut crawl = Crawl::default();
        crawl.seq.push(0);
        crawl.neighbors.insert(0, am.query(0).to_vec());
        let sg = Subgraph::from_crawl(&crawl);
        assert_eq!(sg.num_queried(), 1);
        assert_eq!(sg.num_visible(), 3);
        assert_eq!(sg.num_edges(), 3);
    }

    #[test]
    fn dense_ids_are_stable_for_same_crawl() {
        let (_, crawl) = fig1_crawl();
        let a = Subgraph::from_crawl(&crawl);
        let b = Subgraph::from_crawl(&crawl);
        assert_eq!(a.orig_id, b.orig_id);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }
}
