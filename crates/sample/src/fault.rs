//! Fault injection and retry for flaky crawls.
//!
//! # Failure model
//!
//! A real crawler talks to a rate-limited, occasionally failing API; the
//! paper's access model (§III-A) idealizes that away. This module puts
//! the failures back — deterministically — so the crawl layer's error
//! handling can be tested without a network:
//!
//! * **Transient failures** ([`QueryFault::Transient`]): the request
//!   dies (timeout, connection reset, 5xx). Retrying may succeed.
//! * **Rate limiting** ([`QueryFault::RateLimited`]): the service tells
//!   the crawler to back off, with a stall hint. Retrying after the
//!   stall may succeed.
//!
//! Failures are injected by [`FlakyAccessModel`], a decorator over
//! [`AccessModel`] that draws faults from its **own** seeded RNG stream.
//! Keeping the fault stream separate from the walk RNG is the load-bearing
//! design point: the walk's transition draws consume the same stream
//! positions whether or not faults fire, so a flaky crawl that eventually
//! succeeds visits the **identical node sequence** as the failure-free
//! crawl with the same walk seed (pinned by tests here and in
//! [`crate::walks`]).
//!
//! Crawlers recover via [`query_with_retry`]: bounded attempts with
//! exponential backoff (doubling from [`RetryPolicy::base_backoff`],
//! capped at [`RetryPolicy::max_backoff`]; rate-limit stall hints are
//! honored when longer). A node that stays unreachable after
//! [`RetryPolicy::max_attempts`] surfaces as a typed [`CrawlError`]
//! carrying the node, the attempt count, and the last fault — crawlers
//! propagate it; they never panic and never record a half-fetched node.
//!
//! A failed attempt consumes **no** query budget ([`AccessModel`] counts
//! only completed requests), matching the accounting a real crawler
//! would do.

use std::time::Duration;

use crate::access::AccessModel;
use sgr_graph::{Graph, GraphView, NodeId};
use sgr_util::Xoshiro256pp;

/// One failed neighbor-list fetch, as a real crawl would observe it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryFault {
    /// The request died mid-flight (timeout, reset, server error).
    Transient,
    /// The service throttled the crawler; `retry_after_ms` is its stall
    /// hint (simulated — tests run with a zero hint and a zero-wait
    /// retry policy, so nothing actually sleeps).
    RateLimited {
        /// Suggested wait before the next attempt, in milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for QueryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryFault::Transient => write!(f, "transient query failure"),
            QueryFault::RateLimited { retry_after_ms } => {
                write!(f, "rate limited (retry after {retry_after_ms} ms)")
            }
        }
    }
}

/// A crawl aborted because one node stayed unreachable through the whole
/// retry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrawlError {
    /// The node whose neighbor list could not be fetched.
    pub node: NodeId,
    /// Attempts made (== the policy's `max_attempts`).
    pub attempts: u32,
    /// The fault observed on the final attempt.
    pub last_fault: QueryFault,
}

impl std::fmt::Display for CrawlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "querying node {} failed after {} attempts: {}",
            self.node, self.attempts, self.last_fault
        )
    }
}

impl std::error::Error for CrawlError {}

/// A neighbor-list source that can fail per request.
///
/// The fallible crawlers ([`crate::try_random_walk`]) are written against
/// this trait, so the same walk code runs over the ideal [`AccessModel`]
/// (which never fails) and the [`FlakyAccessModel`] decorator.
pub trait NeighborSource {
    /// Attempts to fetch `N(v)`.
    fn try_query(&mut self, v: NodeId) -> Result<Vec<NodeId>, QueryFault>;
}

impl<G: GraphView> NeighborSource for AccessModel<'_, G> {
    fn try_query(&mut self, v: NodeId) -> Result<Vec<NodeId>, QueryFault> {
        Ok(self.query(v).to_vec())
    }
}

/// Bounded-retry policy with exponential backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per node (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Wait after the first failure; doubles per subsequent failure.
    pub base_backoff: Duration,
    /// Backoff ceiling (also caps honored rate-limit stall hints).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A zero-wait policy for tests and simulations: same retry
    /// semantics, no real sleeping.
    pub fn no_wait(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Backoff before retry number `attempt + 1`, given `attempt` failures
    /// so far (1-based): `base · 2^(attempt-1)`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << (attempt - 1).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }

    /// The wait implied by `fault` after `attempt` failures: exponential
    /// backoff, or the rate-limit stall hint when that is longer (still
    /// capped at `max_backoff`).
    pub fn wait_for(&self, fault: QueryFault, attempt: u32) -> Duration {
        let backoff = self.backoff(attempt);
        match fault {
            QueryFault::Transient => backoff,
            QueryFault::RateLimited { retry_after_ms } => backoff
                .max(Duration::from_millis(retry_after_ms))
                .min(self.max_backoff),
        }
    }
}

/// Fetches `N(v)` with bounded retry and exponential backoff; the typed
/// [`CrawlError`] surfaces only after the whole budget is exhausted.
pub fn query_with_retry<S: NeighborSource>(
    src: &mut S,
    v: NodeId,
    policy: &RetryPolicy,
) -> Result<Vec<NodeId>, CrawlError> {
    assert!(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
    let mut last_fault = QueryFault::Transient;
    for attempt in 1..=policy.max_attempts {
        match src.try_query(v) {
            Ok(nbrs) => return Ok(nbrs),
            Err(fault) => {
                last_fault = fault;
                if attempt < policy.max_attempts {
                    let wait = policy.wait_for(fault, attempt);
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                }
            }
        }
    }
    Err(CrawlError {
        node: v,
        attempts: policy.max_attempts,
        last_fault,
    })
}

/// A fault-injecting decorator over [`AccessModel`].
///
/// Each `try_query` first rolls the **fault RNG** (its own stream, seeded
/// independently of the walk RNG): with probability `failure_rate` the
/// request dies transiently; with probability `rate_limit_rate` it is
/// rate-limited with the configured stall hint; otherwise the inner
/// query proceeds. Failed attempts never touch the inner model, so query
/// budgets count completed requests only.
///
/// Everything is deterministic in the fault seed — the same seed
/// reproduces the same fault pattern, which is what makes flaky-crawl
/// tests exact rather than statistical.
pub struct FlakyAccessModel<'g, G: GraphView = Graph> {
    inner: AccessModel<'g, G>,
    fault_rng: Xoshiro256pp,
    failure_rate: f64,
    rate_limit_rate: f64,
    retry_after_ms: u64,
    faults_injected: u64,
}

impl<'g, G: GraphView> FlakyAccessModel<'g, G> {
    /// Wraps `graph` with independent per-request failure draws.
    ///
    /// `failure_rate` and `rate_limit_rate` are probabilities in
    /// `[0, 1]` with `failure_rate + rate_limit_rate <= 1`.
    pub fn new(
        graph: &'g G,
        failure_rate: f64,
        rate_limit_rate: f64,
        retry_after_ms: u64,
        fault_seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_rate)
                && (0.0..=1.0).contains(&rate_limit_rate)
                && failure_rate + rate_limit_rate <= 1.0,
            "fault rates must be probabilities summing to <= 1"
        );
        Self {
            inner: AccessModel::new(graph),
            fault_rng: Xoshiro256pp::seed_from_u64(fault_seed),
            failure_rate,
            rate_limit_rate,
            retry_after_ms,
            faults_injected: 0,
        }
    }

    /// The wrapped query-counting model (budget reporting).
    pub fn inner(&self) -> &AccessModel<'g, G> {
        &self.inner
    }

    /// Uniform random seed node (delegates; see
    /// [`AccessModel::random_seed`]).
    pub fn random_seed(&self, rng: &mut Xoshiro256pp) -> NodeId {
        self.inner.random_seed(rng)
    }

    /// Number of faults injected so far (across all retries).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }
}

impl<G: GraphView> NeighborSource for FlakyAccessModel<'_, G> {
    fn try_query(&mut self, v: NodeId) -> Result<Vec<NodeId>, QueryFault> {
        let roll = self.fault_rng.next_f64();
        if roll < self.failure_rate {
            self.faults_injected += 1;
            return Err(QueryFault::Transient);
        }
        if roll < self.failure_rate + self.rate_limit_rate {
            self.faults_injected += 1;
            return Err(QueryFault::RateLimited {
                retry_after_ms: self.retry_after_ms,
            });
        }
        Ok(self.inner.query(v).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(200, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let g = social(1);
        let mut flaky = FlakyAccessModel::new(&g, 0.4, 0.1, 0, 7);
        let policy = RetryPolicy::no_wait(20);
        for v in 0..20u32 {
            let got = query_with_retry(&mut flaky, v, &policy).unwrap();
            assert_eq!(got, g.neighbors(v));
        }
        assert!(flaky.faults_injected() > 0, "fault rates never fired");
        // Only completed requests count against the budget.
        assert_eq!(flaky.inner().query_calls(), 20);
    }

    #[test]
    fn exhausted_retries_surface_a_typed_error() {
        let g = social(2);
        // failure_rate 1.0: every attempt dies.
        let mut flaky = FlakyAccessModel::new(&g, 1.0, 0.0, 0, 3);
        let policy = RetryPolicy::no_wait(4);
        let err = query_with_retry(&mut flaky, 5, &policy).unwrap_err();
        assert_eq!(err.node, 5);
        assert_eq!(err.attempts, 4);
        assert_eq!(err.last_fault, QueryFault::Transient);
        assert_eq!(flaky.inner().query_calls(), 0);
        assert!(err.to_string().contains("node 5"));
    }

    #[test]
    fn fault_pattern_is_deterministic_in_the_seed() {
        let g = social(3);
        let run = |fault_seed: u64| {
            let mut flaky = FlakyAccessModel::new(&g, 0.5, 0.2, 0, fault_seed);
            (0..50u32)
                .map(|v| flaky.try_query(v % 7).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds, same fault pattern");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(450),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(100));
        assert_eq!(policy.backoff(2), Duration::from_millis(200));
        assert_eq!(policy.backoff(3), Duration::from_millis(400));
        assert_eq!(policy.backoff(4), Duration::from_millis(450));
        assert_eq!(policy.backoff(9), Duration::from_millis(450));
        // The rate-limit stall hint wins when longer, but respects the cap.
        assert_eq!(
            policy.wait_for(
                QueryFault::RateLimited {
                    retry_after_ms: 300
                },
                1
            ),
            Duration::from_millis(300)
        );
        assert_eq!(
            policy.wait_for(
                QueryFault::RateLimited {
                    retry_after_ms: 900
                },
                1
            ),
            Duration::from_millis(450)
        );
    }

    #[test]
    fn rate_limit_faults_carry_the_stall_hint() {
        let g = social(4);
        let mut flaky = FlakyAccessModel::new(&g, 0.0, 1.0, 250, 5);
        match flaky.try_query(0) {
            Err(QueryFault::RateLimited { retry_after_ms }) => {
                assert_eq!(retry_after_ms, 250)
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let g = social(5);
        let err = std::panic::catch_unwind(|| FlakyAccessModel::new(&g, 0.8, 0.5, 0, 1));
        assert!(err.is_err(), "rates summing over 1 must be rejected");
    }
}
