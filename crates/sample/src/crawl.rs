//! Crawl results and the non-walk crawlers (BFS, snowball, forest fire).

use crate::access::AccessModel;
use crate::subgraph::Subgraph;
use sgr_graph::{GraphView, NodeId};
use sgr_util::{FxHashMap, FxHashSet, Xoshiro256pp};

/// The outcome of a crawl: the paper's sampling list
/// `L = ((x_i, N(x_i)))_{i=1..r}`.
///
/// For walks, [`seq`](Crawl::seq) is the full visit sequence *including
/// revisits* (the Markov chain sample the estimators re-weight); for
/// BFS-style crawlers it is the distinct query order. `neighbors` caches
/// `N(x)` for every queried node.
#[derive(Clone, Debug, Default)]
pub struct Crawl {
    /// Visit sequence `x_1, …, x_r`.
    pub seq: Vec<NodeId>,
    /// `N(x)` for every distinct queried node `x`.
    pub neighbors: FxHashMap<NodeId, Vec<NodeId>>,
}

impl Crawl {
    /// Length `r` of the sample sequence (with revisits, for walks).
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// Whether no node was sampled.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Number of distinct queried nodes.
    pub fn num_queried(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree (in the hidden graph) of the `i`-th sampled node — available
    /// to the analyst because the node was queried.
    pub fn degree_of_step(&self, i: usize) -> usize {
        self.neighbors[&self.seq[i]].len()
    }

    /// Neighbor list of a queried node.
    ///
    /// # Panics
    /// Panics if `x` was never queried.
    pub fn neighbors_of(&self, x: NodeId) -> &[NodeId] {
        &self.neighbors[&x]
    }

    /// Whether `x` was queried.
    pub fn is_queried(&self, x: NodeId) -> bool {
        self.neighbors.contains_key(&x)
    }

    /// Whether the (simple-graph) edge `{u, v}` is visible in the sample,
    /// i.e. at least one endpoint was queried and lists the other.
    pub fn sees_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors
            .get(&u)
            .map(|ns| ns.contains(&v))
            .or_else(|| self.neighbors.get(&v).map(|ns| ns.contains(&u)))
            .unwrap_or(false)
    }

    /// Builds the induced subgraph `G'` (§III-D).
    pub fn subgraph(&self) -> Subgraph {
        Subgraph::from_crawl(self)
    }
}

/// Breadth-first search from `seed`, querying nodes in FIFO order until
/// `target_queried` distinct nodes are queried (or the component is
/// exhausted).
pub fn bfs<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    target_queried: usize,
) -> Crawl {
    let mut crawl = Crawl::default();
    let mut enqueued: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    enqueued.insert(seed);
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        if crawl.neighbors.len() >= target_queried {
            break;
        }
        let nbrs = am.query(u).to_vec();
        crawl.seq.push(u);
        for &v in &nbrs {
            if enqueued.insert(v) {
                queue.push_back(v);
            }
        }
        crawl.neighbors.insert(u, nbrs);
    }
    crawl
}

/// Snowball sampling: BFS in which at most `k` uniformly chosen neighbors
/// of each queried node are enqueued (the paper uses `k = 50`, §V-E).
pub fn snowball<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    k: usize,
    target_queried: usize,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    let mut crawl = Crawl::default();
    let mut enqueued: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    enqueued.insert(seed);
    queue.push_back(seed);
    while let Some(u) = queue.pop_front() {
        if crawl.neighbors.len() >= target_queried {
            break;
        }
        let nbrs = am.query(u).to_vec();
        crawl.seq.push(u);
        let chosen = sgr_util::sampling::reservoir_sample(nbrs.iter().copied(), k, rng);
        for v in chosen {
            if enqueued.insert(v) {
                queue.push_back(v);
            }
        }
        crawl.neighbors.insert(u, nbrs);
    }
    crawl
}

/// Forest-fire sampling (§V-D): each queried node "burns" a random number
/// of its not-yet-seen neighbors, drawn from a geometric distribution with
/// mean `p_f / (1 - p_f)`. If the fire dies before the query budget is
/// reached, it is revived from a uniformly random already-sampled node
/// (following Kurant et al., as the paper does).
pub fn forest_fire<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    p_f: f64,
    target_queried: usize,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    assert!((0.0..1.0).contains(&p_f), "p_f must be in [0, 1)");
    let geom_p = 1.0 - p_f; // success prob: mean failures = p_f / (1 - p_f)
    let mut crawl = Crawl::default();
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    seen.insert(seed);
    queue.push_back(seed);
    while crawl.neighbors.len() < target_queried {
        let Some(u) = queue.pop_front() else {
            // Fire died: revive from a random already-sampled node whose
            // neighborhood may still contain unseen nodes.
            let sampled: Vec<NodeId> = crawl.neighbors.keys().copied().collect();
            if sampled.is_empty() {
                break;
            }
            let revive = sampled[rng.gen_range(sampled.len())];
            let fresh: Vec<NodeId> = crawl.neighbors[&revive]
                .iter()
                .copied()
                .filter(|v| !seen.contains(v))
                .collect();
            if fresh.is_empty() {
                // Try any unseen neighbor of any sampled node.
                let mut found = None;
                'outer: for q in &sampled {
                    for &v in &crawl.neighbors[q] {
                        if !seen.contains(&v) {
                            found = Some(v);
                            break 'outer;
                        }
                    }
                }
                match found {
                    Some(v) => {
                        seen.insert(v);
                        queue.push_back(v);
                    }
                    // Component exhausted.
                    None => break,
                }
            } else {
                let v = fresh[rng.gen_range(fresh.len())];
                seen.insert(v);
                queue.push_back(v);
            }
            continue;
        };
        if crawl.neighbors.contains_key(&u) {
            continue;
        }
        let nbrs = am.query(u).to_vec();
        crawl.seq.push(u);
        let burn_count = rng.gen_geometric(geom_p);
        let unseen: Vec<NodeId> = nbrs.iter().copied().filter(|v| !seen.contains(v)).collect();
        let burned = sgr_util::sampling::reservoir_sample(unseen, burn_count, rng);
        for v in burned {
            seen.insert(v);
            queue.push_back(v);
        }
        crawl.neighbors.insert(u, nbrs);
    }
    crawl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, path, star};
    use sgr_graph::Graph;

    #[test]
    fn bfs_visits_in_level_order() {
        let g = path(6);
        let mut am = AccessModel::new(&g);
        let crawl = bfs(&mut am, 0, 4);
        assert_eq!(crawl.seq, vec![0, 1, 2, 3]);
        assert_eq!(crawl.num_queried(), 4);
        assert_eq!(am.num_queried(), 4);
    }

    #[test]
    fn bfs_exhausts_component() {
        let g = star(3);
        let mut am = AccessModel::new(&g);
        let crawl = bfs(&mut am, 0, 100);
        assert_eq!(crawl.num_queried(), 4);
    }

    #[test]
    fn snowball_caps_fanout() {
        // Star: with k = 1 only one leaf is enqueued from the center.
        let g = star(10);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut am = AccessModel::new(&g);
        let crawl = snowball(&mut am, 0, 1, 100, &mut rng);
        // center + one leaf (leaf's only neighbor, the center, already seen)
        assert_eq!(crawl.num_queried(), 2);
    }

    #[test]
    fn snowball_with_large_k_equals_bfs_coverage() {
        let g = complete(6);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut am = AccessModel::new(&g);
        let crawl = snowball(&mut am, 0, 50, 100, &mut rng);
        assert_eq!(crawl.num_queried(), 6);
    }

    #[test]
    fn forest_fire_reaches_target_on_connected_graph() {
        let g = sgr_gen::holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(3)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut am = AccessModel::new(&g);
        let crawl = forest_fire(&mut am, 0, 0.7, 30, &mut rng);
        assert_eq!(crawl.num_queried(), 30);
        // Every queried node has its true neighbor list.
        for (&x, ns) in crawl.neighbors.iter() {
            assert_eq!(ns.len(), g.degree(x));
        }
    }

    #[test]
    fn forest_fire_terminates_when_component_exhausted() {
        let g = path(4);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut am = AccessModel::new(&g);
        let crawl = forest_fire(&mut am, 0, 0.7, 1000, &mut rng);
        assert_eq!(crawl.num_queried(), 4);
    }

    #[test]
    fn crawl_accessors() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut am = AccessModel::new(&g);
        let crawl = bfs(&mut am, 1, 1);
        assert_eq!(crawl.len(), 1);
        assert!(!crawl.is_empty());
        assert!(crawl.is_queried(1));
        assert!(!crawl.is_queried(0));
        assert_eq!(crawl.degree_of_step(0), 2);
        assert!(crawl.sees_edge(0, 1));
        assert!(crawl.sees_edge(1, 2));
        assert!(!crawl.sees_edge(0, 2));
        assert_eq!(crawl.neighbors_of(1), &[0, 2]);
    }
}
