//! # sgr-sample
//!
//! The crawling layer: everything between the hidden graph and the
//! estimators/restorers.
//!
//! The paper's access model (§III-A) is: querying a node returns its full
//! neighbor list; global or random access to the graph is impossible; the
//! graph is static. [`access::AccessModel`] enforces exactly that interface
//! over any in-memory [`sgr_graph::GraphView`] backend — the mutable
//! [`sgr_graph::Graph`] by default, or a frozen [`sgr_graph::CsrGraph`]
//! when a harness crawls the same hidden graph many times — and counts
//! queries, so every crawler in this crate — and everything downstream —
//! can only see the data a real third-party crawler would see.
//!
//! Crawlers (§II, §V-D):
//! * [`random_walk`] / [`random_walk_until_fraction`] — simple random walk
//!   (the proposed method's crawler);
//! * [`bfs`] — breadth-first search;
//! * [`snowball`] — snowball sampling with per-node fan-out cap `k`;
//! * [`forest_fire`] — forest-fire sampling with burn parameter `p_f`;
//! * [`non_backtracking_walk`], [`metropolis_hastings_walk`] — the improved
//!   walks discussed in Related Work (extension features).
//!
//! Every crawler produces a [`Crawl`]: the ordered sequence of sampled
//! nodes (with revisits, for walks) plus the neighbor lists of all queried
//! nodes — the paper's sampling list `L = ((x_i, N(x_i)))_{i=1..r}`. A
//! [`Subgraph`] (`G'` in the paper, §III-D) is induced from the union of
//! the queried nodes' edge sets.
//!
//! Front ends don't call the crawlers directly: [`strategy`] packages a
//! crawler choice plus its parameters into a [`CrawlSpec`] and
//! [`run_crawl`] dispatches it under a pinned RNG discipline, so the CLI
//! and the `sgr serve` job server produce bit-identical crawls from the
//! same seed.
//!
//! Real crawls also fail: [`fault`] adds a deterministic failure model
//! ([`FlakyAccessModel`] injecting transient and rate-limit faults) and
//! bounded retry with exponential backoff; [`try_random_walk`] is the
//! fallible walk built on it, guaranteed to visit the same node sequence
//! as the failure-free walk whenever the retries eventually succeed.

pub mod access;
pub mod crawl;
pub mod fault;
pub mod strategy;
pub mod subgraph;
pub mod walks;

pub use access::AccessModel;
pub use crawl::{bfs, forest_fire, snowball, Crawl};
pub use fault::{
    query_with_retry, CrawlError, FlakyAccessModel, NeighborSource, QueryFault, RetryPolicy,
};
pub use strategy::{run_crawl, CrawlOutcome, CrawlSpec, WalkKind};
pub use subgraph::Subgraph;
pub use walks::{
    metropolis_hastings_walk, non_backtracking_walk, random_walk, random_walk_until_fraction,
    try_random_walk,
};
