//! Random-walk crawlers.

use crate::access::AccessModel;
use crate::crawl::Crawl;
use crate::fault::{query_with_retry, CrawlError, NeighborSource, RetryPolicy};
use sgr_graph::{GraphView, NodeId};
use sgr_util::Xoshiro256pp;

/// Simple random walk (§III-B): from the current node, move along an edge
/// chosen uniformly at random from `N(x_i)`. Runs until `target_queried`
/// distinct nodes have been queried, recording the *full* visit sequence
/// `x_1, …, x_r` (revisits included — the estimators need the Markov
/// chain, not the set).
///
/// A `max_steps` safety valve (1000 × target) guards against pathological
/// hidden graphs (e.g. a walk trapped next to a degree-0 neighbor set);
/// real social graphs never hit it.
pub fn random_walk<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    target_queried: usize,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    // The ideal access model never fails, so one attempt always succeeds.
    match try_random_walk(am, seed, target_queried, &RetryPolicy::no_wait(1), rng) {
        Ok(crawl) => crawl,
        Err(_) => unreachable!("AccessModel::try_query is infallible"),
    }
}

/// [`random_walk`] over a fallible [`NeighborSource`]: identical transition
/// logic — and an identical walk-RNG stream, fault or no fault — plus
/// bounded retry with backoff on every neighbor fetch (see the failure
/// model in [`crate::fault`]).
///
/// A node that stays unreachable through the whole retry budget aborts the
/// crawl with a typed [`CrawlError`]; the partial crawl is dropped, never
/// returned half-fetched.
pub fn try_random_walk<S: NeighborSource>(
    src: &mut S,
    seed: NodeId,
    target_queried: usize,
    policy: &RetryPolicy,
    rng: &mut Xoshiro256pp,
) -> Result<Crawl, CrawlError> {
    let mut crawl = Crawl::default();
    let max_steps = target_queried.saturating_mul(1000).max(1024);
    let mut current = seed;
    for _ in 0..max_steps {
        // Not the entry() API: the fetch is fallible, and `?` cannot
        // escape an or_insert_with closure.
        #[allow(clippy::map_entry)]
        if !crawl.neighbors.contains_key(&current) {
            let fetched = query_with_retry(src, current, policy)?;
            crawl.neighbors.insert(current, fetched);
        }
        crawl.seq.push(current);
        if crawl.neighbors.len() >= target_queried {
            break;
        }
        let nbrs = &crawl.neighbors[&current];
        if nbrs.is_empty() {
            break; // isolated seed: nowhere to go
        }
        current = nbrs[rng.gen_range(nbrs.len())];
    }
    Ok(crawl)
}

/// Convenience wrapper used by the experiment harness: walk a hidden graph
/// from a uniformly random seed until `fraction` of its nodes have been
/// queried (the paper's stopping rule, §V-D).
pub fn random_walk_until_fraction<G: GraphView>(
    g: &G,
    fraction: f64,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    let mut am = AccessModel::new(g);
    let seed = am.random_seed(rng);
    let target = ((g.num_nodes() as f64 * fraction).round() as usize).max(1);
    random_walk(&mut am, seed, target, rng)
}

/// Non-backtracking random walk (Lee, Xu & Eun, SIGMETRICS 2012; paper
/// §II): like the simple walk but never immediately returns along the edge
/// it just crossed, unless the current node has degree 1. Improves query
/// efficiency while keeping the chain Markovian on directed edges.
pub fn non_backtracking_walk<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    target_queried: usize,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    let mut crawl = Crawl::default();
    let max_steps = target_queried.saturating_mul(1000).max(1024);
    let mut current = seed;
    let mut previous: Option<NodeId> = None;
    for _ in 0..max_steps {
        crawl.neighbors.entry(current).or_insert_with(|| {
            let fetched = am.query(current).to_vec();
            fetched
        });
        crawl.seq.push(current);
        if crawl.neighbors.len() >= target_queried {
            break;
        }
        let nbrs = &crawl.neighbors[&current];
        if nbrs.is_empty() {
            break;
        }
        let next = if nbrs.len() == 1 {
            nbrs[0]
        } else {
            match previous {
                None => nbrs[rng.gen_range(nbrs.len())],
                Some(prev) => loop {
                    let cand = nbrs[rng.gen_range(nbrs.len())];
                    if cand != prev {
                        break cand;
                    }
                },
            }
        };
        previous = Some(current);
        current = next;
    }
    crawl
}

/// Metropolis–Hastings random walk targeting the uniform distribution:
/// propose a uniform neighbor `w`, accept with probability
/// `min(1, d(x)/d(w))`, else stay. The stationary distribution is uniform
/// over nodes, so sample means need no re-weighting (an alternative to
/// re-weighted RW discussed in the crawling literature the paper builds
/// on).
pub fn metropolis_hastings_walk<G: GraphView>(
    am: &mut AccessModel<'_, G>,
    seed: NodeId,
    target_queried: usize,
    rng: &mut Xoshiro256pp,
) -> Crawl {
    let mut crawl = Crawl::default();
    let max_steps = target_queried.saturating_mul(1000).max(1024);
    let mut current = seed;
    for _ in 0..max_steps {
        crawl.neighbors.entry(current).or_insert_with(|| {
            let fetched = am.query(current).to_vec();
            fetched
        });
        crawl.seq.push(current);
        if crawl.neighbors.len() >= target_queried {
            break;
        }
        let d_cur = crawl.neighbors[&current].len();
        if d_cur == 0 {
            break;
        }
        let w = crawl.neighbors[&current][rng.gen_range(d_cur)];
        // Need d(w): querying it is exactly what a real MH walker must do.
        crawl.neighbors.entry(w).or_insert_with(|| {
            let fetched = am.query(w).to_vec();
            fetched
        });
        let d_w = crawl.neighbors[&w].len();
        if d_w == 0 {
            break;
        }
        if rng.next_f64() < d_cur as f64 / d_w as f64 {
            current = w;
        }
    }
    crawl
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::{complete, cycle, path};
    use sgr_graph::Graph;
    use sgr_util::FxHashMap;

    fn social(seed: u64) -> Graph {
        sgr_gen::holme_kim(400, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn walk_reaches_target_and_is_contiguous() {
        let g = social(1);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, 0, 40, &mut rng);
        assert_eq!(crawl.num_queried(), 40);
        // Consecutive sampled nodes are adjacent in the hidden graph.
        for w in crawl.seq.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]), "walk steps not adjacent");
        }
        // Every node in the sequence was queried.
        for &x in &crawl.seq {
            assert!(crawl.is_queried(x));
            assert_eq!(crawl.neighbors_of(x).len(), g.degree(x));
        }
    }

    #[test]
    fn walk_visits_high_degree_nodes_more() {
        // The stationary distribution is ∝ degree: on a star, the center
        // is every second step.
        let g = sgr_gen::classic::star(20);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, 1, 15, &mut rng);
        let center_visits = crawl.seq.iter().filter(|&&x| x == 0).count();
        assert!(center_visits * 2 >= crawl.len() - 2);
    }

    #[test]
    fn walk_until_fraction_counts_queried_not_steps() {
        let g = social(4);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
        assert_eq!(crawl.num_queried(), 40);
        assert!(
            crawl.len() >= 40,
            "revisits make the sequence at least as long"
        );
    }

    #[test]
    fn walk_on_isolated_seed_stops() {
        let g = Graph::with_nodes(3); // no edges at all
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, 1, 10, &mut rng);
        assert_eq!(crawl.seq, vec![1]);
        assert_eq!(crawl.num_queried(), 1);
    }

    #[test]
    fn walk_trapped_in_component() {
        // Two components: the walk can only ever query its own.
        let mut g = path(3);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, a, 10, &mut rng);
        assert_eq!(crawl.num_queried(), 2);
    }

    #[test]
    fn nbtw_never_backtracks_above_degree_one() {
        let g = cycle(30);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut am = AccessModel::new(&g);
        let crawl = non_backtracking_walk(&mut am, 0, 20, &mut rng);
        for w in crawl.seq.windows(3) {
            assert_ne!(w[0], w[2], "backtracked on a cycle");
        }
    }

    #[test]
    fn nbtw_backtracks_at_dead_ends() {
        let g = path(3);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut am = AccessModel::new(&g);
        let crawl = non_backtracking_walk(&mut am, 0, 3, &mut rng);
        assert_eq!(crawl.num_queried(), 3);
    }

    #[test]
    fn mh_walk_is_roughly_uniform_on_heterogeneous_graph() {
        // On a "lollipop" (clique + path) the simple walk oversamples the
        // clique; MH should visit path nodes much more uniformly.
        let g = sgr_gen::classic::lollipop(10, 10);
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let mut am = AccessModel::new(&g);
        let crawl = metropolis_hastings_walk(&mut am, 0, g.num_nodes(), &mut rng);
        let mut visits: FxHashMap<NodeId, usize> = FxHashMap::default();
        for &x in &crawl.seq {
            *visits.entry(x).or_insert(0) += 1;
        }
        assert_eq!(crawl.num_queried(), g.num_nodes());
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let g = social(11);
        let s1 = {
            let mut rng = Xoshiro256pp::seed_from_u64(12);
            let mut am = AccessModel::new(&g);
            random_walk(&mut am, 5, 30, &mut rng).seq
        };
        let s2 = {
            let mut rng = Xoshiro256pp::seed_from_u64(12);
            let mut am = AccessModel::new(&g);
            random_walk(&mut am, 5, 30, &mut rng).seq
        };
        assert_eq!(s1, s2);
    }

    #[test]
    fn complete_graph_walk_queries_everything_quickly() {
        let g = complete(12);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut am = AccessModel::new(&g);
        let crawl = random_walk(&mut am, 0, 12, &mut rng);
        assert_eq!(crawl.num_queried(), 12);
    }
}
