//! Declarative crawl specifications — one value that names a crawler and
//! its parameters, runnable against any hidden graph.
//!
//! The CLI (`sgr crawl` / `sgr restore`) and the `sgr serve` job server
//! both accept "crawl this fraction with that walk" requests; this module
//! is the single dispatch point so the two front ends cannot drift. The
//! RNG discipline is part of the contract: [`run_crawl`] consumes the
//! stream exactly as the original CLI path did — one draw for the seed
//! node via [`AccessModel::random_seed`], then whatever the chosen crawler
//! draws — so a job submitted over the wire reproduces `sgr restore`'s
//! crawl bit for bit given the same seed.

use crate::access::AccessModel;
use crate::crawl::{bfs, forest_fire, snowball, Crawl};
use crate::walks::{metropolis_hastings_walk, non_backtracking_walk, random_walk};
use sgr_graph::GraphView;
use sgr_util::Xoshiro256pp;

/// The crawler families the pipeline accepts (§II, §V-D of the paper plus
/// the Related-Work walks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkKind {
    /// Simple random walk — the proposed method's crawler.
    RandomWalk,
    /// Breadth-first search.
    Bfs,
    /// Snowball sampling with per-node fan-out cap `k`.
    Snowball,
    /// Forest-fire sampling with burn parameter `p_f`.
    ForestFire,
    /// Non-backtracking random walk.
    NonBacktracking,
    /// Metropolis-Hastings random walk.
    MetropolisHastings,
}

impl WalkKind {
    /// Parses the CLI/wire name (`rw`, `bfs`, `snowball`, `ff`, `nbrw`,
    /// `mhrw`).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "rw" => WalkKind::RandomWalk,
            "bfs" => WalkKind::Bfs,
            "snowball" => WalkKind::Snowball,
            "ff" => WalkKind::ForestFire,
            "nbrw" => WalkKind::NonBacktracking,
            "mhrw" => WalkKind::MetropolisHastings,
            _ => return None,
        })
    }

    /// The canonical short name (inverse of [`WalkKind::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            WalkKind::RandomWalk => "rw",
            WalkKind::Bfs => "bfs",
            WalkKind::Snowball => "snowball",
            WalkKind::ForestFire => "ff",
            WalkKind::NonBacktracking => "nbrw",
            WalkKind::MetropolisHastings => "mhrw",
        }
    }

    /// Stable numeric code for wire/persistence encodings.
    pub fn code(&self) -> u32 {
        match self {
            WalkKind::RandomWalk => 1,
            WalkKind::Bfs => 2,
            WalkKind::Snowball => 3,
            WalkKind::ForestFire => 4,
            WalkKind::NonBacktracking => 5,
            WalkKind::MetropolisHastings => 6,
        }
    }

    /// Inverse of [`WalkKind::code`].
    pub fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            1 => WalkKind::RandomWalk,
            2 => WalkKind::Bfs,
            3 => WalkKind::Snowball,
            4 => WalkKind::ForestFire,
            5 => WalkKind::NonBacktracking,
            6 => WalkKind::MetropolisHastings,
            _ => return None,
        })
    }
}

/// A complete crawl request: which crawler, how much of the graph, and
/// the crawler-specific knobs (ignored by crawlers that don't use them).
#[derive(Clone, Copy, Debug)]
pub struct CrawlSpec {
    /// The crawler family.
    pub walk: WalkKind,
    /// Fraction of the hidden graph's nodes to query, in `[0, 1]`
    /// (rounded to a node count, minimum 1).
    pub fraction: f64,
    /// Snowball fan-out cap `k` (the paper uses 50).
    pub snowball_k: usize,
    /// Forest-fire burn parameter `p_f` in `[0, 1)`.
    pub burn_prob: f64,
}

impl Default for CrawlSpec {
    fn default() -> Self {
        Self {
            walk: WalkKind::RandomWalk,
            fraction: 0.1,
            snowball_k: 50,
            burn_prob: 0.7,
        }
    }
}

impl CrawlSpec {
    /// Validates the parameter ranges; consumes no RNG, so rejecting a
    /// spec never perturbs a stream.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.fraction) {
            return Err("--fraction must be in [0, 1]".into());
        }
        if self.walk == WalkKind::ForestFire && !(0.0..1.0).contains(&self.burn_prob) {
            return Err("--pf must be in [0, 1)".into());
        }
        Ok(())
    }
}

/// A finished crawl plus the access-model telemetry front ends report.
#[derive(Debug)]
pub struct CrawlOutcome {
    /// The sampling list `L`.
    pub crawl: Crawl,
    /// Total queries issued against the hidden graph's API.
    pub query_calls: usize,
    /// Fraction of the hidden graph's nodes that was queried.
    pub queried_fraction: f64,
}

/// Runs `spec` against the hidden graph behind a fresh [`AccessModel`].
///
/// RNG contract: exactly one `random_seed` draw, then the crawler's own
/// draws — the stream the CLI has always consumed, pinned by the server
/// determinism suite.
pub fn run_crawl<G: GraphView>(
    g: &G,
    spec: &CrawlSpec,
    rng: &mut Xoshiro256pp,
) -> Result<CrawlOutcome, String> {
    spec.validate()?;
    let target = ((g.num_nodes() as f64 * spec.fraction).round() as usize).max(1);
    let mut am = AccessModel::new(g);
    let seed_node = am.random_seed(rng);
    let crawl = match spec.walk {
        WalkKind::RandomWalk => random_walk(&mut am, seed_node, target, rng),
        WalkKind::Bfs => bfs(&mut am, seed_node, target),
        WalkKind::Snowball => snowball(&mut am, seed_node, spec.snowball_k, target, rng),
        WalkKind::ForestFire => forest_fire(&mut am, seed_node, spec.burn_prob, target, rng),
        WalkKind::NonBacktracking => non_backtracking_walk(&mut am, seed_node, target, rng),
        WalkKind::MetropolisHastings => metropolis_hastings_walk(&mut am, seed_node, target, rng),
    };
    Ok(CrawlOutcome {
        crawl,
        query_calls: am.query_calls(),
        queried_fraction: am.queried_fraction(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::Graph;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn names_and_codes_roundtrip() {
        for name in ["rw", "bfs", "snowball", "ff", "nbrw", "mhrw"] {
            let kind = WalkKind::from_name(name).unwrap();
            assert_eq!(kind.name(), name);
            assert_eq!(WalkKind::from_code(kind.code()), Some(kind));
        }
        assert!(WalkKind::from_name("dfs").is_none());
        assert!(WalkKind::from_code(0).is_none());
        assert!(WalkKind::from_code(7).is_none());
    }

    #[test]
    fn validation_rejects_bad_ranges_without_consuming_rng() {
        let bad = CrawlSpec {
            fraction: 1.5,
            ..CrawlSpec::default()
        };
        assert!(bad.validate().is_err());
        let bad_pf = CrawlSpec {
            walk: WalkKind::ForestFire,
            burn_prob: 1.0,
            ..CrawlSpec::default()
        };
        assert!(bad_pf.validate().is_err());
        // pf is ignored (and unvalidated) for non-forest-fire walks.
        let ok = CrawlSpec {
            walk: WalkKind::RandomWalk,
            burn_prob: 1.0,
            ..CrawlSpec::default()
        };
        assert!(ok.validate().is_ok());
    }

    /// The spec dispatch must consume the identical RNG stream as calling
    /// the crawler directly with a hand-rolled seed draw (the historic
    /// CLI path).
    #[test]
    fn spec_dispatch_matches_direct_call_stream() {
        let g = ring(60);
        let spec = CrawlSpec {
            fraction: 0.2,
            ..CrawlSpec::default()
        };
        let mut rng_a = Xoshiro256pp::seed_from_u64(99);
        let out = run_crawl(&g, &spec, &mut rng_a).unwrap();
        let mut rng_b = Xoshiro256pp::seed_from_u64(99);
        let mut am = AccessModel::new(&g);
        let seed_node = am.random_seed(&mut rng_b);
        let direct = random_walk(&mut am, seed_node, 12, &mut rng_b);
        assert_eq!(out.crawl.seq, direct.seq);
        assert_eq!(out.query_calls, am.query_calls());
        // Both streams end at the same position.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn every_walk_kind_runs() {
        let g = ring(40);
        for code in 1..=6 {
            let spec = CrawlSpec {
                walk: WalkKind::from_code(code).unwrap(),
                fraction: 0.25,
                ..CrawlSpec::default()
            };
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            let out = run_crawl(&g, &spec, &mut rng).unwrap();
            assert!(out.crawl.num_queried() > 0, "walk code {code}");
        }
    }
}
