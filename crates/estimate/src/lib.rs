//! # sgr-estimate
//!
//! Re-weighted random walk estimators of local structural properties
//! (§III-E of the paper).
//!
//! A simple random walk samples nodes with stationary probability
//! proportional to degree; these estimators re-weight the sample to undo
//! that bias. Implemented here, each taking only the sampling list
//! `L = ((x_i, N(x_i)))` — never the hidden graph:
//!
//! * [`estimate_num_nodes`] — the collision estimator `n̂` (Hardiman &
//!   Katzir / Katzir et al.), with pair-gap threshold `M = 0.025 r`;
//! * [`estimate_average_degree`] — `k̄̂ = 1 / Φ̄` with
//!   `Φ̄ = (1/r) Σ 1/d_{x_i}` (harmonic-mean estimator);
//! * [`estimate_degree_distribution`] — `P̂(k) = Φ(k) / Φ̄`;
//! * [`estimate_jdd`] — the hybrid joint-degree-distribution estimator
//!   combining induced edges (IE) and traversed edges (TE) with threshold
//!   `k + k' ≥ 2 k̄̂` (Gjoka et al.; the paper proves its asymptotic
//!   unbiasedness in Appendix A);
//! * [`estimate_clustering`] — the degree-dependent clustering estimator
//!   `ĉ̄(k) = Φ_c̄(k) / Φ(k)` (Hardiman & Katzir).
//!
//! [`Estimates`] bundles all five; [`estimate_all`] computes them in one
//! pass over the walk.
//!
//! # Scratch reuse
//!
//! The accumulator-heavy estimators (the size estimator's observed-node
//! fallback, the JDD's IE/TE tallies) run on reusable epoch-stamped
//! arenas from [`sgr_util::scratch`] instead of per-call hash
//! sets/maps, the same discipline the rewiring engine and the property
//! kernels follow. [`EstimateScratch`] owns the arenas;
//! [`estimate_all_with`] (and the `_with` variants of the individual
//! estimators) share one across calls, so repeated estimation — the
//! experiment harness re-estimates per run — performs no steady-state
//! accumulator allocations. The plain entry points allocate a fresh
//! scratch internally and are unchanged in behavior: results are
//! bitwise-identical to the hash-map implementation because every
//! per-key accumulation order is preserved.

use sgr_sample::Crawl;
use sgr_util::scratch::{DirtyStampSet, ScratchAccum};
use sgr_util::{FxHashMap, FxHashSet};

/// Errors from the estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The walk is too short for the requested estimator; carries the
    /// minimum length required.
    WalkTooShort { len: usize, need: usize },
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::WalkTooShort { len, need } => {
                write!(f, "walk of length {len} too short; need at least {need}")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// The fraction of the walk length used as the collision-pair gap
/// threshold `M` (the paper follows Hardiman & Katzir and uses `0.025 r`).
pub const PAIR_GAP_FRACTION: f64 = 0.025;

/// Ceiling on the dense rank-pair key space of the JDD accumulators
/// (2M keys ≈ 25 MB of arena). Walks whose distinct-degree count squared
/// exceeds this fall back to hash-map accumulation — same values, just
/// without the dense-arena speed.
const MAX_DENSE_PAIR_KEYS: usize = 1 << 21;

/// Reusable epoch-stamped scratch for the estimators; see the module
/// docs. One instance serves any number of walks — arenas grow to the
/// largest walk seen and are O(1)-cleared per call.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    /// Observed-node marks (size-estimator collision-free fallback).
    observed: DirtyStampSet,
    /// Walk degree → dense rank, assigned in first-visit order.
    rank_of: ScratchAccum<u32>,
    /// Inverse of `rank_of`: rank → degree.
    degree_by_rank: Vec<u32>,
    /// Induced-edge tallies keyed by packed rank pair.
    ie: ScratchAccum<f64>,
    /// Traversed-edge tallies keyed by packed rank pair.
    te: ScratchAccum<f64>,
}

impl EstimateScratch {
    /// Creates an empty scratch; arenas are sized lazily per walk.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The bundle of all five local-property estimates the restoration
/// pipeline consumes.
#[derive(Clone, Debug)]
pub struct Estimates {
    /// `n̂` — estimated number of nodes.
    pub n_hat: f64,
    /// `k̄̂` — estimated average degree.
    pub avg_degree_hat: f64,
    /// `P̂(k)` indexed by degree `k` (index 0 unused, 0.0).
    pub degree_dist: Vec<f64>,
    /// `P̂(k, k')` as a sparse symmetric map (both `(k,k')` and `(k',k)`
    /// present with equal values).
    pub jdd: FxHashMap<(u32, u32), f64>,
    /// `ĉ̄(k)` indexed by degree `k`.
    pub clustering: Vec<f64>,
}

impl Estimates {
    /// `P̂(k)` with out-of-range degrees reading 0.
    pub fn degree_prob(&self, k: usize) -> f64 {
        self.degree_dist.get(k).copied().unwrap_or(0.0)
    }

    /// `P̂(k, k')` with missing entries reading 0.
    pub fn jdd_prob(&self, k: u32, k2: u32) -> f64 {
        self.jdd.get(&(k, k2)).copied().unwrap_or(0.0)
    }

    /// `ĉ̄(k)` with out-of-range degrees reading 0.
    pub fn clustering_at(&self, k: usize) -> f64 {
        self.clustering.get(k).copied().unwrap_or(0.0)
    }

    /// Maximum degree with positive `P̂(k)`.
    pub fn max_degree(&self) -> usize {
        self.degree_dist.iter().rposition(|&p| p > 0.0).unwrap_or(0)
    }
}

/// Computes the pair-gap threshold `M = max(1, ⌊0.025 r⌋)`.
fn pair_gap(r: usize) -> usize {
    ((r as f64 * PAIR_GAP_FRACTION) as usize).max(1)
}

/// Number of **ordered** index pairs `(i, j)` with `1 ≤ i, j ≤ r` and
/// `|i - j| ≥ M`.
fn num_gap_pairs(r: usize, m: usize) -> u64 {
    let r = r as u64;
    let m = m as u64;
    if m >= r {
        return 0;
    }
    // Ordered pairs with |i-j| >= M: for each gap g in M..r there are
    // 2 * (r - g) ordered pairs.
    (m..r).map(|g| 2 * (r - g)).sum()
}

/// `n̂` — the collision estimator of the number of nodes
/// (§III-E; Hardiman & Katzir 2013, Katzir et al. 2011):
///
/// `n̂ = Σ_{(i,j)∈I} d_{x_i}/d_{x_j}  /  Σ_{(i,j)∈I} 1{x_i = x_j}`
///
/// over ordered pairs at least `M = 0.025 r` apart. When the walk contains
/// **no** collision pairs the estimator is undefined; this implementation
/// falls back to the observed node count (queried + visible), the natural
/// lower bound, which keeps short-walk pipelines total. Errors only when
/// the walk is empty.
pub fn estimate_num_nodes(crawl: &Crawl) -> Result<f64, EstimateError> {
    estimate_num_nodes_with(crawl, &mut EstimateScratch::new())
}

/// As [`estimate_num_nodes`], reusing the caller's scratch arenas.
pub fn estimate_num_nodes_with(
    crawl: &Crawl,
    scratch: &mut EstimateScratch,
) -> Result<f64, EstimateError> {
    let r = crawl.len();
    if r == 0 {
        return Err(EstimateError::WalkTooShort { len: 0, need: 1 });
    }
    let m = pair_gap(r);
    let degrees: Vec<f64> = (0..r).map(|i| crawl.degree_of_step(i) as f64).collect();
    // Numerator: Σ over ordered pairs d_i / d_j with |i-j| >= M.
    // = Σ_i d_i * (T - W_i) where T = Σ 1/d_j and W_i = Σ_{|i-j|<M} 1/d_j,
    // computed with a prefix-sum of 1/d.
    let inv: Vec<f64> = degrees.iter().map(|&d| 1.0 / d.max(1.0)).collect();
    let mut prefix = vec![0.0f64; r + 1];
    for i in 0..r {
        prefix[i + 1] = prefix[i] + inv[i];
    }
    let total_inv = prefix[r];
    let mut numerator = 0.0f64;
    for (i, &deg_i) in degrees.iter().enumerate() {
        let lo = i.saturating_sub(m - 1);
        let hi = (i + m).min(r); // window [lo, hi) has |i-j| < M
        let near = prefix[hi] - prefix[lo];
        numerator += deg_i * (total_inv - near);
    }
    // Denominator: ordered collision pairs with gap >= M.
    let mut positions: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (i, &x) in crawl.seq.iter().enumerate() {
        positions.entry(x).or_default().push(i);
    }
    let mut collisions: u64 = 0;
    for list in positions.values() {
        // Two-pointer count of unordered pairs with gap >= M.
        let mut lo = 0usize;
        for hi in 0..list.len() {
            while list[hi] - list[lo] >= m {
                lo += 1;
            }
            collisions += lo as u64; // pairs (list[0..lo], list[hi])
        }
    }
    let collisions = collisions * 2; // ordered
    if collisions == 0 {
        // Fallback: the number of distinct observed nodes, counted with
        // the reusable stamped mark set (no per-call hash set).
        let max_id = crawl
            .neighbors
            .iter()
            .flat_map(|(&q, ns)| std::iter::once(q).chain(ns.iter().copied()))
            .max()
            .unwrap_or(0);
        scratch.observed.ensure_keys(max_id as usize + 1);
        scratch.observed.clear();
        for (&q, ns) in crawl.neighbors.iter() {
            scratch.observed.mark(q);
            for &v in ns {
                scratch.observed.mark(v);
            }
        }
        return Ok(scratch.observed.len() as f64);
    }
    Ok(numerator / collisions as f64)
}

/// `k̄̂ = 1 / Φ̄` with `Φ̄ = (1/r) Σ_i 1/d_{x_i}` (§III-E).
pub fn estimate_average_degree(crawl: &Crawl) -> Result<f64, EstimateError> {
    let r = crawl.len();
    if r == 0 {
        return Err(EstimateError::WalkTooShort { len: 0, need: 1 });
    }
    let phi_bar: f64 = (0..r)
        .map(|i| 1.0 / (crawl.degree_of_step(i) as f64).max(1.0))
        .sum::<f64>()
        / r as f64;
    Ok(1.0 / phi_bar)
}

/// `P̂(k) = Φ(k) / Φ̄` with `Φ(k) = (1/(k r)) Σ_i 1{d_{x_i} = k}`
/// (§III-E). Returns a vector indexed by degree.
pub fn estimate_degree_distribution(crawl: &Crawl) -> Result<Vec<f64>, EstimateError> {
    let r = crawl.len();
    if r == 0 {
        return Err(EstimateError::WalkTooShort { len: 0, need: 1 });
    }
    let max_deg = (0..r).map(|i| crawl.degree_of_step(i)).max().unwrap_or(0);
    let mut counts = vec![0u64; max_deg + 1];
    let mut phi_bar = 0.0f64;
    for i in 0..r {
        let d = crawl.degree_of_step(i);
        counts[d] += 1;
        phi_bar += 1.0 / (d as f64).max(1.0);
    }
    phi_bar /= r as f64;
    let mut dist = vec![0.0f64; max_deg + 1];
    for (k, &c) in counts.iter().enumerate().skip(1) {
        if c > 0 {
            let phi_k = c as f64 / (k as f64 * r as f64);
            dist[k] = phi_k / phi_bar;
        }
    }
    Ok(dist)
}

/// The hybrid joint-degree-distribution estimator `P̂(k, k')` (§III-E):
/// induced-edges (IE) for high-degree pairs (`k + k' ≥ 2 k̄̂`),
/// traversed-edges (TE) otherwise. The returned map is symmetric.
///
/// Needs `r ≥ 2` (TE uses consecutive pairs) and uses the same gap
/// threshold `M` as the size estimator for IE pairs.
pub fn estimate_jdd(crawl: &Crawl) -> Result<FxHashMap<(u32, u32), f64>, EstimateError> {
    estimate_jdd_with(crawl, &mut EstimateScratch::new())
}

/// As [`estimate_jdd`], reusing the caller's scratch arenas.
///
/// The IE/TE tallies accumulate in dense epoch-stamped arenas keyed by
/// *degree rank* (walk degrees remapped to `0..num_ranks` in first-visit
/// order), so the key space is `num_ranks²` — a few thousand entries for
/// a social-graph walk — instead of `k_max²`. Walks with so many
/// distinct degrees that `num_ranks²` exceeds `MAX_DENSE_PAIR_KEYS`
/// take a hash-map fallback with identical results.
pub fn estimate_jdd_with(
    crawl: &Crawl,
    scratch: &mut EstimateScratch,
) -> Result<FxHashMap<(u32, u32), f64>, EstimateError> {
    let r = crawl.len();
    if r < 2 {
        return Err(EstimateError::WalkTooShort { len: r, need: 2 });
    }
    let n_hat = estimate_num_nodes_with(crawl, scratch)?;
    let k_hat = estimate_average_degree(crawl)?;
    let m = pair_gap(r);
    let num_pairs = num_gap_pairs(r, m);

    let mut positions: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (i, &x) in crawl.seq.iter().enumerate() {
        positions.entry(x).or_default().push(i);
    }

    // Degree ranks in first-visit order. Every degree the IE/TE loops
    // see belongs to a *walked* node (IE's neighbor endpoint is looked
    // up through `positions`), so ranking the step degrees covers all.
    let k_max_walk = (0..r).map(|i| crawl.degree_of_step(i)).max().unwrap_or(0);
    scratch.rank_of.ensure_keys(k_max_walk + 1);
    scratch.rank_of.begin();
    scratch.degree_by_rank.clear();
    for i in 0..r {
        let d = crawl.degree_of_step(i) as u32;
        if !scratch.rank_of.is_touched(d) {
            let rank = scratch.degree_by_rank.len() as u32;
            *scratch.rank_of.entry_or(d, rank) = rank;
            scratch.degree_by_rank.push(d);
        }
    }
    let nr = scratch.degree_by_rank.len();
    if nr.saturating_mul(nr) > MAX_DENSE_PAIR_KEYS {
        return jdd_hybrid_hashed(crawl, n_hat, k_hat, m, num_pairs, &positions);
    }
    let EstimateScratch {
        rank_of,
        degree_by_rank,
        ie,
        te,
        ..
    } = scratch;
    let pair_key = |k: u32, k2: u32| rank_of.get(k) * nr as u32 + rank_of.get(k2);

    // --- IE: Φ(k,k') = 1/(k k' |I|) Σ_{(i,j)∈I} 1{d=k, d=k'} A_{x_i x_j}.
    // Iterate positions i; for each neighbor u of x_i that appears in the
    // walk, count positions j of u with |i - j| >= M by binary search.
    ie.ensure_keys(nr * nr);
    ie.begin();
    if num_pairs > 0 {
        for (i, &x) in crawl.seq.iter().enumerate() {
            let k = crawl.degree_of_step(i) as u32;
            for &u in crawl.neighbors_of(x) {
                let Some(list) = positions.get(&u) else {
                    continue;
                };
                // j <= i - M  or  j >= i + M
                let left = list.partition_point(|&j| j + m <= i);
                let right = list.len() - list.partition_point(|&j| j < i + m);
                let cnt = (left + right) as f64;
                if cnt > 0.0 {
                    let k2 = crawl.neighbors_of(u).len() as u32;
                    *ie.entry_or(pair_key(k, k2), 0.0) += cnt;
                }
            }
        }
    }

    // --- TE: consecutive pairs, both orientations.
    te.ensure_keys(nr * nr);
    te.begin();
    let te_norm = 1.0 / (2.0 * (r as f64 - 1.0));
    for i in 0..r - 1 {
        let k = crawl.degree_of_step(i) as u32;
        let k2 = crawl.degree_of_step(i + 1) as u32;
        *te.entry_or(pair_key(k, k2), 0.0) += te_norm;
        *te.entry_or(pair_key(k2, k), 0.0) += te_norm;
    }

    // --- Hybrid with threshold 2 k̄̂.
    let decode = |key: u32| {
        (
            degree_by_rank[key as usize / nr],
            degree_by_rank[key as usize % nr],
        )
    };
    let mut out: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let threshold = 2.0 * k_hat;
    if num_pairs > 0 {
        for &key in ie.touched() {
            let (k, k2) = decode(key);
            if (k + k2) as f64 >= threshold {
                let phi = ie.get(key) / (k as f64 * k2 as f64 * num_pairs as f64);
                let p = n_hat * k_hat * phi;
                if p > 0.0 {
                    out.insert((k, k2), p);
                }
            }
        }
    }
    for &key in te.touched() {
        let (k, k2) = decode(key);
        let p = te.get(key);
        if ((k + k2) as f64) < threshold && p > 0.0 {
            out.insert((k, k2), p);
        }
    }
    symmetrize(&mut out);
    Ok(out)
}

/// Hash-map accumulation path of [`estimate_jdd_with`], for walks whose
/// distinct-degree count overflows the dense rank-pair arena. Values are
/// identical — per-key accumulation order matches the arena path.
#[cold]
fn jdd_hybrid_hashed(
    crawl: &Crawl,
    n_hat: f64,
    k_hat: f64,
    m: usize,
    num_pairs: u64,
    positions: &FxHashMap<u32, Vec<usize>>,
) -> Result<FxHashMap<(u32, u32), f64>, EstimateError> {
    let r = crawl.len();
    let mut ie_raw: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    if num_pairs > 0 {
        for (i, &x) in crawl.seq.iter().enumerate() {
            let k = crawl.degree_of_step(i) as u32;
            for &u in crawl.neighbors_of(x) {
                let Some(list) = positions.get(&u) else {
                    continue;
                };
                let left = list.partition_point(|&j| j + m <= i);
                let right = list.len() - list.partition_point(|&j| j < i + m);
                let cnt = (left + right) as f64;
                if cnt > 0.0 {
                    let k2 = crawl.neighbors_of(u).len() as u32;
                    *ie_raw.entry((k, k2)).or_insert(0.0) += cnt;
                }
            }
        }
    }
    let mut te: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let te_norm = 1.0 / (2.0 * (r as f64 - 1.0));
    for i in 0..r - 1 {
        let k = crawl.degree_of_step(i) as u32;
        let k2 = crawl.degree_of_step(i + 1) as u32;
        *te.entry((k, k2)).or_insert(0.0) += te_norm;
        *te.entry((k2, k)).or_insert(0.0) += te_norm;
    }
    let mut out: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let threshold = 2.0 * k_hat;
    if num_pairs > 0 {
        for (&(k, k2), &raw) in ie_raw.iter() {
            if (k + k2) as f64 >= threshold {
                let phi = raw / (k as f64 * k2 as f64 * num_pairs as f64);
                let p = n_hat * k_hat * phi;
                if p > 0.0 {
                    out.insert((k, k2), p);
                }
            }
        }
    }
    for (&(k, k2), &p) in te.iter() {
        if ((k + k2) as f64) < threshold && p > 0.0 {
            out.insert((k, k2), p);
        }
    }
    symmetrize(&mut out);
    Ok(out)
}

/// Enforces JDD symmetry (IE accumulation is symmetric in expectation
/// but not per-sample; average the two orientations).
fn symmetrize(out: &mut FxHashMap<(u32, u32), f64>) {
    let keys: Vec<(u32, u32)> = out.keys().copied().collect();
    for (k, k2) in keys {
        if k < k2 {
            let a = out.get(&(k, k2)).copied().unwrap_or(0.0);
            let b = out.get(&(k2, k)).copied().unwrap_or(0.0);
            let avg = (a + b) / 2.0;
            out.insert((k, k2), avg);
            out.insert((k2, k), avg);
        }
    }
}

/// `ĉ̄(k) = Φ_c̄(k) / Φ(k)` — the degree-dependent clustering estimator
/// (§III-E; Hardiman & Katzir 2013):
///
/// `Φ_c̄(k) = 1/((k-1)(r-2)) Σ_{i=2}^{r-1} 1{d_{x_i} = k} A_{x_{i-1} x_{i+1}}`
///
/// The adjacency between the predecessor and successor is observable
/// because both were queried. Needs `r ≥ 3`.
pub fn estimate_clustering(crawl: &Crawl) -> Result<Vec<f64>, EstimateError> {
    let r = crawl.len();
    if r < 3 {
        return Err(EstimateError::WalkTooShort { len: r, need: 3 });
    }
    let max_deg = (0..r).map(|i| crawl.degree_of_step(i)).max().unwrap_or(0);
    // Observed-edge set for O(1) adjacency checks between queried nodes.
    let mut edge_set: FxHashSet<(u32, u32)> = FxHashSet::default();
    for (&q, ns) in crawl.neighbors.iter() {
        for &v in ns {
            edge_set.insert(if q < v { (q, v) } else { (v, q) });
        }
    }
    let has_edge = |a: u32, b: u32| edge_set.contains(&if a < b { (a, b) } else { (b, a) });

    let mut phi_c = vec![0.0f64; max_deg + 1];
    let mut phi = vec![0.0f64; max_deg + 1];
    for i in 0..r {
        let d = crawl.degree_of_step(i);
        phi[d] += 1.0 / (d as f64 * r as f64).max(1.0);
        if i >= 1 && i + 1 < r {
            let prev = crawl.seq[i - 1];
            let next = crawl.seq[i + 1];
            if d >= 2 && has_edge(prev, next) {
                phi_c[d] += 1.0 / ((d as f64 - 1.0) * (r as f64 - 2.0));
            }
        }
    }
    let mut out = vec![0.0f64; max_deg + 1];
    for k in 2..=max_deg {
        if phi[k] > 0.0 {
            out[k] = phi_c[k] / phi[k];
        }
    }
    Ok(out)
}

/// `m̂ = n̂ k̄̂ / 2` — the edge-count estimator implied by the handshake
/// lemma (used by the target-JDM initialization through
/// `n̂ k̄̂ P̂(k,k')`; exposed for analysts who only need the scale).
pub fn estimate_num_edges(crawl: &Crawl) -> Result<f64, EstimateError> {
    Ok(estimate_num_nodes(crawl)? * estimate_average_degree(crawl)? / 2.0)
}

/// The *global* (network-average) clustering coefficient estimator
/// `ĉ̄ = Σ_k P̂(k) ĉ̄(k)` — the re-weighted-walk counterpart of the
/// paper's property (5), composed from the §III-E estimators.
pub fn estimate_global_clustering(crawl: &Crawl) -> Result<f64, EstimateError> {
    let dist = estimate_degree_distribution(crawl)?;
    let ck = estimate_clustering(crawl)?;
    Ok(dist.iter().zip(ck.iter()).map(|(&p, &c)| p * c).sum())
}

/// Computes all five estimates (§III-E) from one walk.
pub fn estimate_all(crawl: &Crawl) -> Result<Estimates, EstimateError> {
    estimate_all_with(crawl, &mut EstimateScratch::new())
}

/// As [`estimate_all`], reusing the caller's scratch arenas — the entry
/// point for harnesses that estimate many walks in a loop.
pub fn estimate_all_with(
    crawl: &Crawl,
    scratch: &mut EstimateScratch,
) -> Result<Estimates, EstimateError> {
    Ok(Estimates {
        n_hat: estimate_num_nodes_with(crawl, scratch)?,
        avg_degree_hat: estimate_average_degree(crawl)?,
        degree_dist: estimate_degree_distribution(crawl)?,
        jdd: estimate_jdd_with(crawl, scratch)?,
        clustering: estimate_clustering(crawl)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_gen::classic::complete;
    use sgr_sample::{random_walk, AccessModel};
    use sgr_util::Xoshiro256pp;

    fn walk_on(g: &sgr_graph::Graph, target: usize, seed: u64) -> Crawl {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut am = AccessModel::new(g);
        let start = am.random_seed(&mut rng);
        let mut crawl = random_walk(&mut am, start, target, &mut rng);
        // Extend the walk to several times the query target so estimator
        // statistics (collisions, consecutive pairs) are plentiful.
        let extra_steps = target * 10;
        let mut current = *crawl.seq.last().unwrap();
        for _ in 0..extra_steps {
            let nbrs = crawl.neighbors_of(current);
            if nbrs.is_empty() {
                break;
            }
            let next = nbrs[rng.gen_range(nbrs.len())];
            crawl.neighbors.entry(next).or_insert_with(|| {
                let fetched = am.query(next).to_vec();
                fetched
            });
            crawl.seq.push(next);
            current = next;
        }
        crawl
    }

    #[test]
    fn complete_graph_estimates_are_exact_shaped() {
        // On K_20 every degree is 19, clustering 1, n = 20.
        let g = complete(20);
        let crawl = walk_on(&g, 20, 1);
        let est = estimate_all(&crawl).unwrap();
        assert!((est.avg_degree_hat - 19.0).abs() < 1e-9);
        assert!((est.degree_prob(19) - 1.0).abs() < 1e-9);
        assert_eq!(est.max_degree(), 19);
        // ĉ̄(19) = (k/(k-1)) * P(no backtrack) in expectation = 1 exactly,
        // but each sample fluctuates with the backtrack count.
        assert!((est.clustering_at(19) - 1.0).abs() < 0.05);
        // Collision estimator close to 20.
        assert!((est.n_hat - 20.0).abs() < 6.0, "n_hat = {}", est.n_hat);
        // JDD mass concentrates at (19, 19).
        let p = est.jdd_prob(19, 19);
        assert!((p - 1.0).abs() < 0.4, "P(19,19) = {p}");
    }

    #[test]
    fn average_degree_on_social_graph() {
        let g = sgr_gen::holme_kim(2000, 4, 0.4, &mut Xoshiro256pp::seed_from_u64(2)).unwrap();
        let crawl = walk_on(&g, 400, 3);
        let est = estimate_average_degree(&crawl).unwrap();
        let truth = g.average_degree();
        assert!(
            (est - truth).abs() / truth < 0.15,
            "estimated {est}, true {truth}"
        );
    }

    #[test]
    fn size_estimator_on_social_graph() {
        let g = sgr_gen::holme_kim(1000, 4, 0.4, &mut Xoshiro256pp::seed_from_u64(4)).unwrap();
        let crawl = walk_on(&g, 300, 5);
        let n_hat = estimate_num_nodes(&crawl).unwrap();
        assert!(
            (n_hat - 1000.0).abs() / 1000.0 < 0.35,
            "n_hat = {n_hat} vs 1000"
        );
    }

    #[test]
    fn degree_distribution_sums_to_about_one() {
        let g = sgr_gen::holme_kim(1500, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(6)).unwrap();
        let crawl = walk_on(&g, 300, 7);
        let dist = estimate_degree_distribution(&crawl).unwrap();
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 0.15, "ΣP̂(k) = {total}");
        // Minimum degree of HK graph is m = 3; nothing below.
        assert_eq!(dist[1], 0.0);
        assert_eq!(dist[2], 0.0);
        assert!(dist[3] > 0.0);
    }

    #[test]
    fn jdd_is_symmetric_and_positive() {
        let g = sgr_gen::holme_kim(800, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(8)).unwrap();
        let crawl = walk_on(&g, 200, 9);
        let jdd = estimate_jdd(&crawl).unwrap();
        assert!(!jdd.is_empty());
        for (&(k, k2), &p) in jdd.iter() {
            assert!(p > 0.0);
            let mirror = jdd.get(&(k2, k)).copied().unwrap_or(-1.0);
            assert!(
                (p - mirror).abs() < 1e-12,
                "asymmetric entry ({k},{k2}): {p} vs {mirror}"
            );
        }
        // Total mass should be within a factor ~2 of 1 on a decent walk.
        let total: f64 = jdd
            .iter()
            .map(|(&(k, k2), &p)| if k <= k2 { p } else { 0.0 })
            .sum();
        assert!(total > 0.3 && total < 2.5, "JDD mass (upper tri) = {total}");
    }

    #[test]
    fn clustering_zero_on_triangle_free_graph() {
        let g = sgr_gen::classic::complete_bipartite(6, 6);
        let crawl = walk_on(&g, 12, 10);
        let c = estimate_clustering(&crawl).unwrap();
        assert!(c.iter().all(|&x| x == 0.0), "bipartite has no triangles");
    }

    #[test]
    fn short_walks_error() {
        let g = complete(5);
        let mut crawl = Crawl::default();
        assert!(matches!(
            estimate_num_nodes(&crawl),
            Err(EstimateError::WalkTooShort { .. })
        ));
        crawl.seq.push(0);
        crawl.neighbors.insert(0, g.neighbors(0).to_vec());
        assert!(estimate_jdd(&crawl).is_err());
        assert!(estimate_clustering(&crawl).is_err());
        assert!(estimate_average_degree(&crawl).is_ok());
    }

    #[test]
    fn no_collision_fallback_counts_observed_nodes() {
        // A 2-step walk on a path has no repeat visits at gap >= M.
        let g = sgr_gen::classic::path(10);
        let mut crawl = Crawl::default();
        for x in [4u32, 5] {
            crawl.seq.push(x);
            crawl.neighbors.insert(x, g.neighbors(x).to_vec());
        }
        let n_hat = estimate_num_nodes(&crawl).unwrap();
        // Observed: 4, 5 queried; 3, 6 visible => 4 nodes.
        assert_eq!(n_hat, 4.0);
    }

    #[test]
    fn gap_pair_count_formula() {
        // r = 5, M = 2: ordered pairs with |i-j| >= 2:
        // gaps 2,3,4 -> 2*(3+2+1) = 12.
        assert_eq!(num_gap_pairs(5, 2), 12);
        assert_eq!(num_gap_pairs(5, 5), 0);
        assert_eq!(num_gap_pairs(3, 1), 2 * (2 + 1));
    }

    #[test]
    fn edge_count_and_global_clustering_on_complete_graph() {
        // K_12: m = 66, c̄ = 1.
        let g = complete(12);
        let crawl = walk_on(&g, 12, 21);
        let m_hat = estimate_num_edges(&crawl).unwrap();
        assert!((m_hat - 66.0).abs() < 20.0, "m̂ = {m_hat}");
        let c_hat = estimate_global_clustering(&crawl).unwrap();
        assert!((c_hat - 1.0).abs() < 0.06, "ĉ̄ = {c_hat}");
    }

    #[test]
    fn global_clustering_zero_on_bipartite() {
        let g = sgr_gen::classic::complete_bipartite(6, 6);
        let crawl = walk_on(&g, 12, 22);
        assert_eq!(estimate_global_clustering(&crawl).unwrap(), 0.0);
    }

    #[test]
    fn frozen_hidden_graph_yields_identical_estimates() {
        // Crawling a CSR snapshot of the hidden graph (order-preserving)
        // must reproduce the walk — and therefore every estimate —
        // exactly: the estimators only ever see the sampling list.
        let g = sgr_gen::holme_kim(600, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(30)).unwrap();
        let csr = sgr_graph::CsrGraph::freeze(&g);
        fn walk<G: sgr_graph::GraphView>(am: &mut AccessModel<'_, G>) -> Crawl {
            let mut rng = Xoshiro256pp::seed_from_u64(31);
            random_walk(am, 0, 120, &mut rng)
        }
        let a = walk(&mut AccessModel::new(&g));
        let b = walk(&mut AccessModel::new(&csr));
        assert_eq!(a.seq, b.seq);
        let ea = estimate_all(&a).unwrap();
        let eb = estimate_all(&b).unwrap();
        assert_eq!(ea.n_hat.to_bits(), eb.n_hat.to_bits());
        assert_eq!(ea.avg_degree_hat.to_bits(), eb.avg_degree_hat.to_bits());
        assert_eq!(ea.degree_dist, eb.degree_dist);
        assert_eq!(ea.clustering, eb.clustering);
        assert_eq!(ea.jdd.len(), eb.jdd.len());
        for (k, v) in ea.jdd.iter() {
            assert_eq!(
                eb.jdd.get(k).copied().unwrap_or(f64::NAN).to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn reused_scratch_is_bitwise_identical_to_fresh() {
        // One scratch across several different walks must give exactly
        // the per-call results: stale epochs and previously grown arenas
        // can leak nothing.
        let mut scratch = EstimateScratch::new();
        for seed in [1u64, 5, 9] {
            let g =
                sgr_gen::holme_kim(700, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
            let crawl = walk_on(&g, 150, seed ^ 0x77);
            let fresh = estimate_all(&crawl).unwrap();
            let reused = estimate_all_with(&crawl, &mut scratch).unwrap();
            assert_eq!(fresh.n_hat.to_bits(), reused.n_hat.to_bits());
            assert_eq!(fresh.degree_dist, reused.degree_dist);
            assert_eq!(fresh.clustering, reused.clustering);
            assert_eq!(fresh.jdd.len(), reused.jdd.len());
            for (k, v) in fresh.jdd.iter() {
                assert_eq!(
                    reused.jdd.get(k).copied().unwrap_or(f64::NAN).to_bits(),
                    v.to_bits(),
                    "jdd diverged at {k:?}"
                );
            }
        }
    }

    #[test]
    fn no_collision_fallback_reuses_observed_marks() {
        // Exercise the observed-node fallback twice through one scratch.
        let g = sgr_gen::classic::path(10);
        let mut scratch = EstimateScratch::new();
        for (a, b, expect) in [(4u32, 5u32, 4.0), (1, 2, 4.0)] {
            let mut crawl = Crawl::default();
            for x in [a, b] {
                crawl.seq.push(x);
                crawl.neighbors.insert(x, g.neighbors(x).to_vec());
            }
            assert_eq!(
                estimate_num_nodes_with(&crawl, &mut scratch).unwrap(),
                expect
            );
        }
    }

    #[test]
    fn estimates_accessors() {
        let g = complete(8);
        let crawl = walk_on(&g, 8, 11);
        let est = estimate_all(&crawl).unwrap();
        assert_eq!(est.degree_prob(1000), 0.0);
        assert_eq!(est.jdd_prob(999, 999), 0.0);
        assert_eq!(est.clustering_at(1000), 0.0);
    }
}
