//! Property-based tests of the estimator layer: well-definedness and
//! basic sanity on arbitrary connected graphs and walks. (Unbiasedness is
//! tested by Monte-Carlo integration tests at the workspace level.)

use proptest::prelude::*;
use sgr_estimate::{estimate_all, Estimates};
use sgr_graph::components::largest_component;
use sgr_graph::Graph;
use sgr_sample::{random_walk, AccessModel, Crawl};
use sgr_util::Xoshiro256pp;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (30usize..150, 2usize..4, 0.0f64..0.8, 0u64..1_000).prop_map(|(n, m, pt, seed)| {
        let g = sgr_gen::holme_kim(n, m, pt, &mut Xoshiro256pp::seed_from_u64(seed)).unwrap();
        largest_component(&g).0
    })
}

fn crawl_on(g: &Graph, frac: f64, seed: u64) -> Crawl {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut am = AccessModel::new(g);
    let start = am.random_seed(&mut rng);
    let target = ((g.num_nodes() as f64 * frac) as usize).max(3);
    random_walk(&mut am, start, target, &mut rng)
}

fn check_estimates(g: &Graph, crawl: &Crawl, est: &Estimates) {
    // All finite and nonnegative.
    assert!(est.n_hat.is_finite() && est.n_hat > 0.0);
    assert!(est.avg_degree_hat.is_finite() && est.avg_degree_hat >= 1.0);
    assert!(est.degree_dist.iter().all(|p| p.is_finite() && *p >= 0.0));
    assert!(est.clustering.iter().all(|c| c.is_finite() && *c >= 0.0));
    for (&(k, k2), &p) in est.jdd.iter() {
        assert!(p.is_finite() && p > 0.0);
        assert_eq!(
            est.jdd.get(&(k2, k)).copied().unwrap_or(-1.0),
            p,
            "asymmetric JDD entry"
        );
    }
    // n̂ is at least the number of distinct observed nodes only when
    // collisions exist is not guaranteed; but it must be at least the
    // number of *queried* nodes divided by a sane factor — we only check
    // positivity plus an upper sanity bound of 1000× the truth.
    assert!(est.n_hat <= 1000.0 * g.num_nodes() as f64);
    // Every observed degree has positive estimated probability.
    for i in 0..crawl.len() {
        let d = crawl.degree_of_step(i);
        assert!(
            est.degree_prob(d) > 0.0,
            "observed degree {d} has zero probability"
        );
    }
    // ĉ̄(k) is a ratio of two unbiased estimators; on very short walks a
    // degree visited once can produce values above 1 (bounded by
    // k·r / ((k-1)(r-2))). Only nonnegativity and finiteness are
    // guaranteed per-sample — asymptotic accuracy is covered by the
    // Monte-Carlo integration tests.
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_are_well_defined(g in arb_graph(), seed in 0u64..100_000, frac in 0.05f64..0.6) {
        let crawl = crawl_on(&g, frac, seed);
        let est = estimate_all(&crawl).unwrap();
        check_estimates(&g, &crawl, &est);
    }

    #[test]
    fn degree_distribution_mass_is_reasonable(g in arb_graph(), seed in 0u64..100_000) {
        // P̂(k) is a ratio of unbiased estimators; its total mass should
        // stay within a broad band even on small walks.
        let crawl = crawl_on(&g, 0.4, seed);
        let est = estimate_all(&crawl).unwrap();
        let total: f64 = est.degree_dist.iter().sum();
        prop_assert!((0.4..=2.5).contains(&total), "ΣP̂(k) = {total}");
    }

    #[test]
    fn longer_walks_do_not_increase_average_degree_error_much(
        g in arb_graph(),
        seed in 0u64..100_000,
    ) {
        // Weak consistency: the k̄ estimate from a 60% crawl should not
        // be wildly off (within a factor of 2 of the truth).
        let crawl = crawl_on(&g, 0.6, seed);
        let est = estimate_all(&crawl).unwrap();
        let truth = g.average_degree();
        prop_assert!(
            est.avg_degree_hat > truth / 2.0 && est.avg_degree_hat < truth * 2.0,
            "k̄̂ = {} vs truth {truth}",
            est.avg_degree_hat
        );
    }

    #[test]
    fn estimators_only_touch_the_sampling_list(g in arb_graph(), seed in 0u64..100_000) {
        // Re-running the estimators from a *copied* crawl (no graph
        // access) gives identical results — i.e. the analyst needs only L.
        let crawl = crawl_on(&g, 0.3, seed);
        let copy = Crawl {
            seq: crawl.seq.clone(),
            neighbors: crawl.neighbors.clone(),
        };
        let a = estimate_all(&crawl).unwrap();
        let b = estimate_all(&copy).unwrap();
        prop_assert_eq!(a.n_hat, b.n_hat);
        prop_assert_eq!(a.avg_degree_hat, b.avg_degree_hat);
        prop_assert_eq!(a.degree_dist, b.degree_dist);
        prop_assert_eq!(a.clustering, b.clustering);
    }
}
