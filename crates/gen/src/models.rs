//! Random graph models.
//!
//! All generators are deterministic given the caller-supplied
//! [`Xoshiro256pp`] state and produce **simple** graphs (the paper's
//! datasets are simplified before use; multigraphs only arise later, inside
//! the restoration pipeline).

use sgr_graph::{Graph, NodeId};
use sgr_util::{FxHashSet, Xoshiro256pp};

/// Parameter errors from the generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A parameter was outside its valid range; the message names it.
    InvalidParameter(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GenError {}

fn err(msg: impl Into<String>) -> GenError {
    GenError::InvalidParameter(msg.into())
}

/// Erdős–Rényi `G(n, m)`: `m` distinct edges chosen uniformly among all
/// `n(n-1)/2` pairs.
pub fn erdos_renyi_gnm(n: usize, m: usize, rng: &mut Xoshiro256pp) -> Result<Graph, GenError> {
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_m {
        return Err(err(format!("m = {m} exceeds max {max_m} for n = {n}")));
    }
    let mut g = Graph::with_nodes(n);
    let mut seen: FxHashSet<(NodeId, NodeId)> = sgr_util::hash::fx_set_with_capacity(m);
    while seen.len() < m {
        let u = rng.gen_range(n) as NodeId;
        let v = rng.gen_range(n) as NodeId;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            g.add_edge(key.0, key.1);
        }
    }
    Ok(g)
}

/// Erdős–Rényi `G(n, p)`: each pair independently with probability `p`.
/// Uses geometric skipping, O(n + m) expected time.
pub fn erdos_renyi_gnp(n: usize, p: f64, rng: &mut Xoshiro256pp) -> Result<Graph, GenError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(err(format!("p = {p} outside [0, 1]")));
    }
    let mut g = Graph::with_nodes(n);
    if p == 0.0 || n < 2 {
        return Ok(g);
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                g.add_edge(u, v);
            }
        }
        return Ok(g);
    }
    // Batagelj–Brandes skipping over the strictly-lower-triangular order.
    let lp = (1.0 - p).ln();
    let (mut v, mut w) = (1usize, -1isize);
    while v < n {
        let mut u = rng.next_f64();
        if u <= 0.0 {
            u = f64::MIN_POSITIVE;
        }
        let lr = (1.0 - u).ln();
        w += 1 + (lr / lp) as isize;
        while w >= v as isize && v < n {
            w -= v as isize;
            v += 1;
        }
        if v < n {
            g.add_edge(v as NodeId, w as NodeId);
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: starts from a star of `m + 1`
/// nodes, then each new node attaches to `m` distinct existing nodes chosen
/// proportionally to degree. Produces a connected graph with a power-law
/// degree tail.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Xoshiro256pp) -> Result<Graph, GenError> {
    if m == 0 {
        return Err(err("BA m must be >= 1"));
    }
    if n < m + 1 {
        return Err(err(format!("BA needs n >= m + 1 (n = {n}, m = {m})")));
    }
    let mut g = Graph::with_nodes(n);
    // `targets` holds one entry per half-edge: sampling uniformly from it
    // is sampling proportionally to degree.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for v in 1..=m {
        g.add_edge(0, v as NodeId);
        targets.push(0);
        targets.push(v as NodeId);
    }
    let mut picked: FxHashSet<NodeId> = FxHashSet::default();
    for v in (m + 1)..n {
        picked.clear();
        while picked.len() < m {
            let t = targets[rng.gen_range(targets.len())];
            picked.insert(t);
        }
        for &t in &picked {
            g.add_edge(v as NodeId, t);
            targets.push(v as NodeId);
            targets.push(t);
        }
    }
    Ok(g)
}

/// Holme–Kim power-law-cluster model: Barabási–Albert growth where, after
/// each preferential attachment, a *triad-formation* step connects the new
/// node to a random neighbor of the just-chosen target with probability
/// `p_t`. Yields heavy-tailed degrees **and** tunable clustering — the
/// canonical synthetic stand-in for social graphs, used here for the
/// paper's dataset analogues.
pub fn holme_kim(n: usize, m: usize, p_t: f64, rng: &mut Xoshiro256pp) -> Result<Graph, GenError> {
    if m == 0 {
        return Err(err("HK m must be >= 1"));
    }
    if n < m + 1 {
        return Err(err(format!("HK needs n >= m + 1 (n = {n}, m = {m})")));
    }
    if !(0.0..=1.0).contains(&p_t) {
        return Err(err(format!("HK p_t = {p_t} outside [0, 1]")));
    }
    let mut g = Graph::with_nodes(n);
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * m * n);
    for v in 1..=m {
        g.add_edge(0, v as NodeId);
        targets.push(0);
        targets.push(v as NodeId);
    }
    let mut picked: FxHashSet<NodeId> = FxHashSet::default();
    for v in (m + 1)..n {
        picked.clear();
        let vid = v as NodeId;
        // First link is always preferential attachment.
        let mut last_target = loop {
            let t = targets[rng.gen_range(targets.len())];
            if t != vid && picked.insert(t) {
                break t;
            }
        };
        while picked.len() < m {
            let mut attached = false;
            if rng.gen_bool(p_t) {
                // Triad formation: a uniform neighbor of the last target.
                let nbrs = g.neighbors(last_target);
                if !nbrs.is_empty() {
                    let w = nbrs[rng.gen_range(nbrs.len())];
                    if w != vid && picked.insert(w) {
                        last_target = w;
                        attached = true;
                    }
                }
            }
            if !attached {
                // Preferential attachment fallback.
                let t = loop {
                    let t = targets[rng.gen_range(targets.len())];
                    if t != vid && !picked.contains(&t) {
                        break t;
                    }
                };
                picked.insert(t);
                last_target = t;
            }
        }
        for &t in &picked {
            g.add_edge(vid, t);
            targets.push(vid);
            targets.push(t);
        }
    }
    Ok(g)
}

/// Watts–Strogatz small world: ring lattice of `n` nodes with `k` nearest
/// neighbors on each side (`2k` total), each edge rewired with probability
/// `beta` to a uniform non-duplicate endpoint.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut Xoshiro256pp,
) -> Result<Graph, GenError> {
    if k == 0 || 2 * k >= n {
        return Err(err(format!("WS needs 0 < 2k < n (n = {n}, k = {k})")));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(err(format!("WS beta = {beta} outside [0, 1]")));
    }
    let mut g = Graph::with_nodes(n);
    let mut seen: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
    let norm = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            seen.insert(norm(u as NodeId, v as NodeId));
        }
    }
    let lattice: Vec<(NodeId, NodeId)> = seen.iter().copied().collect();
    for (u, v) in lattice {
        if rng.gen_bool(beta) {
            // Try a few times to find a fresh endpoint; keep the original
            // edge if the neighborhood is saturated.
            let mut rewired = false;
            for _ in 0..32 {
                let w = rng.gen_range(n) as NodeId;
                if w == u || seen.contains(&norm(u, w)) {
                    continue;
                }
                seen.remove(&norm(u, v));
                seen.insert(norm(u, w));
                rewired = true;
                break;
            }
            let _ = rewired;
        }
    }
    for &(u, v) in seen.iter() {
        g.add_edge(u, v);
    }
    Ok(g)
}

/// Planted-partition community model: `communities` equal-sized blocks;
/// within-block pairs connected with `p_in`, across-block with `p_out`.
/// A lightweight LFR substitute for community-structure workloads.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut Xoshiro256pp,
) -> Result<Graph, GenError> {
    if communities == 0 || communities > n {
        return Err(err(format!(
            "need 1 <= communities <= n (n = {n}, c = {communities})"
        )));
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(err(format!("{name} = {p} outside [0, 1]")));
        }
    }
    let mut g = Graph::with_nodes(n);
    let block = |u: usize| u * communities / n;
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block(u) == block(v) { p_in } else { p_out };
            if rng.gen_bool(p) {
                g.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::components::is_connected;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(20220501)
    }

    #[test]
    fn gnm_has_exact_edge_count_and_is_simple() {
        let g = erdos_renyi_gnm(100, 300, &mut rng()).unwrap();
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
        assert!(g.is_simple());
    }

    #[test]
    fn gnm_rejects_overfull() {
        assert!(erdos_renyi_gnm(4, 7, &mut rng()).is_err());
        assert!(erdos_renyi_gnm(4, 6, &mut rng()).is_ok());
    }

    #[test]
    fn gnp_expected_density() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng()).unwrap();
        let expect = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        assert!(
            (m - expect).abs() < 4.0 * expect.sqrt(),
            "m = {m}, expect = {expect}"
        );
        assert!(g.is_simple());
    }

    #[test]
    fn gnp_extremes() {
        let g0 = erdos_renyi_gnp(50, 0.0, &mut rng()).unwrap();
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi_gnp(20, 1.0, &mut rng()).unwrap();
        assert_eq!(g1.num_edges(), 190);
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng()).is_err());
    }

    #[test]
    fn ba_structure() {
        let n = 1000;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng()).unwrap();
        assert_eq!(g.num_nodes(), n);
        // Star seed contributes m edges; each of the (n - m - 1) later
        // nodes adds exactly m edges.
        assert_eq!(g.num_edges(), m + (n - m - 1) * m);
        assert!(g.is_simple());
        assert!(is_connected(&g));
        // Heavy tail: max degree far above average.
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
    }

    #[test]
    fn ba_rejects_bad_params() {
        assert!(barabasi_albert(3, 0, &mut rng()).is_err());
        assert!(barabasi_albert(3, 3, &mut rng()).is_err());
    }

    #[test]
    fn hk_is_connected_simple_and_clustered() {
        let g = holme_kim(1000, 4, 0.7, &mut rng()).unwrap();
        assert!(g.is_simple());
        assert!(is_connected(&g));
        assert_eq!(g.num_nodes(), 1000);
        // Same edge-count bookkeeping as BA.
        assert_eq!(g.num_edges(), 4 + (1000 - 5) * 4);
        // Triad formation creates triangles: count a few.
        let idx = sgr_graph::index::MultiplicityIndex::build(&g);
        let mut triangles = 0usize;
        'outer: for u in g.nodes() {
            let nbrs = g.neighbors(u);
            for i in 0..nbrs.len() {
                for j in (i + 1)..nbrs.len() {
                    if idx.has_edge(nbrs[i], nbrs[j]) {
                        triangles += 1;
                        if triangles > 100 {
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(triangles > 100, "expected plentiful triangles");
    }

    #[test]
    fn hk_zero_triad_matches_ba_shape() {
        // With p_t = 0, HK degenerates to BA-style attachment.
        let g = holme_kim(500, 2, 0.0, &mut rng()).unwrap();
        assert!(is_connected(&g));
        assert_eq!(g.num_edges(), 2 + (500 - 3) * 2);
    }

    #[test]
    fn ws_ring_degree_and_connectivity() {
        let g = watts_strogatz(200, 3, 0.1, &mut rng()).unwrap();
        assert_eq!(g.num_nodes(), 200);
        // Rewiring preserves edge count.
        assert_eq!(g.num_edges(), 200 * 3);
        assert!(g.is_simple());
    }

    #[test]
    fn ws_beta_zero_is_lattice() {
        let g = watts_strogatz(50, 2, 0.0, &mut rng()).unwrap();
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn planted_partition_denser_inside() {
        let g = planted_partition(200, 4, 0.2, 0.01, &mut rng()).unwrap();
        let block = |u: usize| u * 4 / 200;
        let (mut within, mut across) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if block(u as usize) == block(v as usize) {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Within-pairs: 4 * C(50,2) = 4900 * 0.2 ≈ 980.
        // Across-pairs: C(200,2) - 4900 = 15000 * 0.01 ≈ 150.
        assert!(within > 4 * across, "within = {within}, across = {across}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(9)).unwrap();
        let b = holme_kim(300, 3, 0.5, &mut Xoshiro256pp::seed_from_u64(9)).unwrap();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
