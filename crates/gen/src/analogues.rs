//! Dataset analogues for the paper's seven evaluation graphs.
//!
//! The originals (Table I of the paper) are unavailable offline, so each is
//! substituted by a Holme–Kim power-law-cluster graph whose average degree
//! matches the original and whose node count is scaled down so the complete
//! table/figure suite runs in-session (the methods' *relative* behaviour —
//! who wins, by what factor — is driven by heavy-tailed degrees, high
//! clustering, and small diameter, all of which Holme–Kim reproduces).
//! `paper_n` / `paper_m` record the original sizes for EXPERIMENTS.md.

use crate::models::holme_kim;
use sgr_graph::components::largest_component;
use sgr_graph::Graph;
use sgr_util::Xoshiro256pp;

/// The seven datasets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Anybeat social network (12,645 nodes / 49,132 edges).
    Anybeat,
    /// Brightkite location-based network (56,739 / 212,945).
    Brightkite,
    /// Epinions trust network (75,877 / 405,739).
    Epinions,
    /// Slashdot Zoo (77,360 / 469,180).
    Slashdot,
    /// Gowalla check-in network (196,591 / 950,327).
    Gowalla,
    /// Livemocha language community (104,103 / 2,193,083).
    Livemocha,
    /// YouTube friendship graph (1,134,890 / 2,987,624).
    YouTube,
}

impl Dataset {
    /// All seven datasets in the paper's order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Anybeat,
        Dataset::Brightkite,
        Dataset::Epinions,
        Dataset::Slashdot,
        Dataset::Gowalla,
        Dataset::Livemocha,
        Dataset::YouTube,
    ];

    /// The six datasets used in Tables II–IV (all but YouTube).
    pub const SMALL_SIX: [Dataset; 6] = [
        Dataset::Anybeat,
        Dataset::Brightkite,
        Dataset::Epinions,
        Dataset::Slashdot,
        Dataset::Gowalla,
        Dataset::Livemocha,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Anybeat => "Anybeat",
            Dataset::Brightkite => "Brightkite",
            Dataset::Epinions => "Epinions",
            Dataset::Slashdot => "Slashdot",
            Dataset::Gowalla => "Gowalla",
            Dataset::Livemocha => "Livemocha",
            Dataset::YouTube => "YouTube",
        }
    }

    /// Analogue specification (scaled; see module docs).
    pub fn spec(self) -> AnalogueSpec {
        // `m_attach` ≈ half the original average degree, the Holme–Kim
        // edge budget per node; `p_t` tuned so clustering is social-graph
        // sized (higher for the location networks, lower for the denser
        // media graphs, mirroring the originals' clustering ordering).
        match self {
            Dataset::Anybeat => AnalogueSpec::new(self, 12_645, 49_132, 4_000, 4, 0.30),
            Dataset::Brightkite => AnalogueSpec::new(self, 56_739, 212_945, 5_000, 4, 0.45),
            Dataset::Epinions => AnalogueSpec::new(self, 75_877, 405_739, 6_000, 5, 0.30),
            Dataset::Slashdot => AnalogueSpec::new(self, 77_360, 469_180, 6_000, 6, 0.20),
            Dataset::Gowalla => AnalogueSpec::new(self, 196_591, 950_327, 8_000, 5, 0.40),
            // Livemocha's original average degree (42.1) is additionally
            // halved: at the analogue scale, a k̄ ≈ 42 graph would dominate
            // the whole suite's runtime while exercising the same code
            // paths. It remains by far the densest analogue, preserving
            // its role in the comparison (documented in DESIGN.md §3).
            Dataset::Livemocha => AnalogueSpec::new(self, 104_103, 2_193_083, 4_000, 10, 0.15),
            Dataset::YouTube => AnalogueSpec::new(self, 1_134_890, 2_987_624, 20_000, 3, 0.20),
        }
    }
}

/// Concrete parameters of one dataset analogue.
#[derive(Clone, Copy, Debug)]
pub struct AnalogueSpec {
    /// Which dataset this stands in for.
    pub dataset: Dataset,
    /// Original node count (Table I).
    pub paper_n: usize,
    /// Original edge count (Table I).
    pub paper_m: usize,
    /// Analogue node count (scaled).
    pub n: usize,
    /// Holme–Kim attachment budget per node (≈ k̄ / 2).
    pub m_attach: usize,
    /// Holme–Kim triad-formation probability.
    pub p_t: f64,
}

impl AnalogueSpec {
    fn new(
        dataset: Dataset,
        paper_n: usize,
        paper_m: usize,
        n: usize,
        m_attach: usize,
        p_t: f64,
    ) -> Self {
        Self {
            dataset,
            paper_n,
            paper_m,
            n,
            m_attach,
            p_t,
        }
    }

    /// Returns a copy with the node count multiplied by `factor`
    /// (minimum `m_attach + 2`). Used by quick tests and by anyone who
    /// wants paper-scale graphs.
    pub fn scaled(mut self, factor: f64) -> Self {
        let scaled = (self.n as f64 * factor).round() as usize;
        self.n = scaled.max(self.m_attach + 2);
        self
    }

    /// Original average degree `2 m / n` of the real dataset.
    pub fn paper_average_degree(&self) -> f64 {
        2.0 * self.paper_m as f64 / self.paper_n as f64
    }

    /// Generates the analogue: Holme–Kim graph, largest connected
    /// component, simple (matching the paper's preprocessing).
    pub fn generate(&self, rng: &mut Xoshiro256pp) -> Graph {
        let g = holme_kim(self.n, self.m_attach, self.p_t, rng)
            .expect("analogue specs are valid by construction");
        // HK graphs are connected by construction; extraction is a no-op
        // kept for parity with the paper's preprocessing pipeline.
        let (lcc, _) = largest_component(&g);
        lcc
    }
}

/// Convenience: generate a dataset analogue at default scale.
pub fn dataset_analogue(dataset: Dataset, rng: &mut Xoshiro256pp) -> Graph {
    dataset.spec().generate(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::components::is_connected;

    #[test]
    fn all_specs_generate_connected_simple_graphs() {
        for ds in Dataset::ALL {
            let spec = ds.spec().scaled(0.1);
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            let g = spec.generate(&mut rng);
            assert!(is_connected(&g), "{} analogue disconnected", ds.name());
            assert!(g.is_simple(), "{} analogue not simple", ds.name());
            assert!(g.num_nodes() > 0);
        }
    }

    #[test]
    fn average_degree_tracks_paper() {
        // The analogue's average degree should be within 35% of the
        // original's (HK gives ≈ 2 * m_attach); Livemocha is deliberately
        // halved (see `Dataset::spec`), so its tolerance is wider.
        for ds in Dataset::ALL {
            let spec = ds.spec().scaled(0.2);
            let mut rng = Xoshiro256pp::seed_from_u64(2);
            let g = spec.generate(&mut rng);
            let ratio = g.average_degree() / spec.paper_average_degree();
            let lo = if ds == Dataset::Livemocha { 0.40 } else { 0.65 };
            assert!(
                (lo..=1.35).contains(&ratio),
                "{}: analogue k̄ = {:.2}, paper k̄ = {:.2}",
                ds.name(),
                g.average_degree(),
                spec.paper_average_degree()
            );
        }
    }

    #[test]
    fn youtube_is_largest_and_sparsest_analogue() {
        let yt = Dataset::YouTube.spec();
        for ds in Dataset::SMALL_SIX {
            assert!(yt.n >= ds.spec().n);
        }
        assert!(yt.paper_average_degree() < Dataset::Livemocha.spec().paper_average_degree());
    }

    #[test]
    fn scaled_respects_minimum() {
        let spec = Dataset::Anybeat.spec().scaled(0.000001);
        assert!(spec.n >= spec.m_attach + 2);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Dataset::Anybeat.name(), "Anybeat");
        assert_eq!(Dataset::ALL.len(), 7);
        assert_eq!(Dataset::SMALL_SIX.len(), 6);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = Dataset::Anybeat.spec().scaled(0.05);
        let a = spec.generate(&mut Xoshiro256pp::seed_from_u64(5));
        let b = spec.generate(&mut Xoshiro256pp::seed_from_u64(5));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
