//! # sgr-gen
//!
//! Synthetic social-graph generators.
//!
//! The paper evaluates on seven public social graphs (Anybeat, Brightkite,
//! Epinions, Slashdot, Gowalla, Livemocha, YouTube). Those downloads are
//! unavailable in this offline reproduction, so this crate provides both
//! the classic generative models and **dataset analogues** — scaled
//! Holme–Kim power-law-cluster graphs whose size, average degree, and
//! clustering level mimic each dataset (see `DESIGN.md` §3 for the
//! substitution rationale).
//!
//! Generators:
//! * [`erdos_renyi_gnm`] / [`erdos_renyi_gnp`] — uniform random graphs;
//! * [`barabasi_albert`] — preferential attachment (heavy-tailed degrees);
//! * [`holme_kim`] — preferential attachment + triad formation
//!   (heavy-tailed degrees *and* high clustering: the social-graph shape
//!   the paper's methods depend on);
//! * [`watts_strogatz`] — small-world ring rewiring;
//! * [`planted_partition`] — community structure;
//! * [`classic`] — deterministic families for tests (paths, stars,
//!   cliques, …);
//! * [`analogues`] — the seven dataset analogues.

pub mod analogues;
pub mod classic;

mod models;

pub use analogues::{dataset_analogue, AnalogueSpec, Dataset};
pub use models::{
    barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, holme_kim, planted_partition,
    watts_strogatz, GenError,
};
