//! Deterministic graph families used throughout the test suites.

use sgr_graph::{Graph, NodeId};

/// Path `v_0 - v_1 - … - v_{n-1}`.
pub fn path(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, (i + 1) as NodeId))
        .collect();
    Graph::from_edges(n, &edges)
}

/// Cycle on `n >= 3` nodes.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut edges: Vec<_> = (0..n - 1)
        .map(|i| (i as NodeId, (i + 1) as NodeId))
        .collect();
    edges.push(((n - 1) as NodeId, 0));
    Graph::from_edges(n, &edges)
}

/// Star: center 0 with `leaves` leaves.
pub fn star(leaves: usize) -> Graph {
    let edges: Vec<_> = (1..=leaves).map(|i| (0, i as NodeId)).collect();
    Graph::from_edges(leaves + 1, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Lollipop: clique `K_k` attached to a path of `tail` extra nodes.
/// A classic stress case for betweenness and shortest paths.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    let mut g = complete(k);
    let mut prev = (k - 1) as NodeId;
    for _ in 0..tail {
        let v = g.add_node();
        g.add_edge(prev, v);
        prev = v;
    }
    g
}

/// Two cliques of size `k` joined by a single bridge edge.
pub fn barbell(k: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push((u as NodeId, v as NodeId));
            edges.push(((u + k) as NodeId, (v + k) as NodeId));
        }
    }
    edges.push(((k - 1) as NodeId, k as NodeId));
    Graph::from_edges(2 * k, &edges)
}

/// Complete bipartite graph `K_{a,b}` (left part `0..a`).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u as NodeId, (a + v) as NodeId));
        }
    }
    Graph::from_edges(a + b, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::components::is_connected;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
        assert_eq!(path(0).num_nodes(), 0);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.degree(0), 7);
        assert!((1..8).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.nodes().all(|u| g.degree(u) == 5));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert_eq!(g.degree(6), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 6 + 6 + 1);
        assert!(is_connected(&g));
        assert_eq!(g.degree(3), 4); // bridge endpoint
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert!((0..3).all(|u| g.degree(u) == 4));
        assert!((3..7).all(|u| g.degree(u as u32) == 3));
    }
}
