//! Edge-list I/O.
//!
//! Format: one `u v` pair of node ids per line, whitespace-separated;
//! lines starting with `#` or `%` are comments (the convention used by both
//! SNAP and network-repository, the paper's data sources). Node ids need
//! not be dense; they are remapped to `0..n` on read.

use crate::{Graph, NodeId};
use sgr_util::FxHashMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors arising while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed; carries line number (1-based) and text.
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(line, text) => write!(f, "parse error at line {line}: {text:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an edge list from a reader, remapping arbitrary ids to dense
/// `0..n` ids. Returns the graph and `mapping[new_id] = original_id`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), IoError> {
    let mut remap: FxHashMap<u64, NodeId> = FxHashMap::default();
    let mut mapping: Vec<u64> = Vec::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let intern = |raw: u64, remap: &mut FxHashMap<u64, NodeId>, mapping: &mut Vec<u64>| {
        *remap.entry(raw).or_insert_with(|| {
            mapping.push(raw);
            (mapping.len() - 1) as NodeId
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse(lineno + 1, line.clone()));
        };
        let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse(lineno + 1, line.clone()));
        };
        let u = intern(a, &mut remap, &mut mapping);
        let v = intern(b, &mut remap, &mut mapping);
        edges.push((u, v));
    }
    Ok((Graph::from_edges(mapping.len(), &edges), mapping))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Writes the graph as an edge list (dense ids, one edge per line,
/// `u <= v`).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Writes the graph as an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (h, mapping) = read_edge_list(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_edges(), 5);
        assert_eq!(h.num_self_loops(), 1);
        assert_eq!(mapping.len(), 4);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n% another comment\n\n10 20\n20 30\n";
        let (g, mapping) = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(mapping, vec![10, 20, 30]);
    }

    #[test]
    fn sparse_ids_are_remapped_densely() {
        let text = "1000000 5\n5 70\n";
        let (g, mapping) = read_edge_list(std::io::Cursor::new(text)).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(mapping, vec![1_000_000, 5, 70]);
        // Node "5" got id 1 and has degree 2.
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let text = "1 2\nnot numbers\n";
        match read_edge_list(std::io::Cursor::new(text)) {
            Err(IoError::Parse(2, _)) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        let text = "1\n";
        assert!(matches!(
            read_edge_list(std::io::Cursor::new(text)),
            Err(IoError::Parse(1, _))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sgr_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        write_edge_list_file(&g, &path).unwrap();
        let (h, _) = read_edge_list_file(&path).unwrap();
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
