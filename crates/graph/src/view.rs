//! The read-only graph abstraction every analysis layer consumes.
//!
//! [`GraphView`] captures exactly what the read-only consumers of the
//! workspace need — node/edge counts and per-node neighbor **slices** —
//! and derives everything else (degree vectors, edge iteration,
//! multiplicity queries) from those three primitives. Both the mutable
//! adjacency-list [`Graph`] (the write-side type used by construction and
//! rewiring) and the immutable CSR snapshot [`crate::CsrGraph`] implement
//! it, so property kernels, crawlers, estimator harnesses, and layout code
//! are written once and run on either representation.
//!
//! The contract mirrors the paper's multigraph conventions (§III-A):
//! `neighbors(u)` lists each neighbor once per parallel edge, and a
//! self-loop at `u` contributes **two** copies of `u`, so
//! `degree(u) == neighbors(u).len()` and `Σ_u degree(u) == 2 m`.
//! Implementations must keep [`GraphView::num_edges`] consistent with that
//! handshake identity.

use crate::{DegreeVector, Graph, NodeId};

/// Read-only view of an undirected multigraph with self-loops.
///
/// Only [`num_nodes`](GraphView::num_nodes),
/// [`num_edges`](GraphView::num_edges), and
/// [`neighbors`](GraphView::neighbors) are required; the provided methods
/// derive the rest and match the semantics of the corresponding inherent
/// methods on [`Graph`]. Implementors with a faster representation (e.g. a
/// sorted CSR arena) should override the membership queries.
pub trait GraphView {
    /// Number of nodes (including isolated ones). Node ids are dense:
    /// `0 .. num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Number of edges, counting each multi-edge copy once and each
    /// self-loop once.
    fn num_edges(&self) -> usize;

    /// Neighbor list of `u` (multi-edges repeated; each self-loop
    /// contributes two copies of `u`).
    fn neighbors(&self, u: NodeId) -> &[NodeId];

    /// Degree of `u` (self-loops count twice, per the `A_ii` convention).
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Average degree `k̄ = 2m / n`. Zero for an empty graph.
    fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Maximum degree; 0 for an empty graph.
    fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Degree vector `{n(k)}_k` indexed `0 ..= k_max`.
    fn degree_vector(&self) -> DegreeVector {
        let mut dv = vec![0usize; self.max_degree() + 1];
        for u in self.nodes() {
            dv[self.degree(u)] += 1;
        }
        dv
    }

    /// Adjacency-matrix entry `A_uv`: edge multiplicity for `u != v`,
    /// twice the loop count for `u == v`. O(deg(u)) by default.
    fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.neighbors(u).iter().filter(|&&x| x == v).count()
    }

    /// Whether at least one edge `{u, v}` exists. Scans the smaller
    /// endpoint's list by default.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&b)
    }

    /// Number of self-loop edges in the whole graph.
    fn num_self_loops(&self) -> usize {
        self.nodes()
            .map(|u| self.neighbors(u).iter().filter(|&&v| v == u).count() / 2)
            .sum()
    }

    /// Iterates every node id in ascending order.
    #[inline]
    fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Iterates every edge exactly once as `(u, v)` with `u <= v`, in
    /// ascending `u` order and, within a node, neighbor-list order.
    /// Multi-edges are yielded once per copy; each self-loop once. The
    /// sequence matches [`Graph::edges`] when the neighbor lists match.
    fn edges(&self) -> EdgeIter<'_, Self>
    where
        Self: Sized,
    {
        EdgeIter {
            g: self,
            u: 0,
            i: 0,
            pending_loop: false,
        }
    }
}

/// Edge iterator of [`GraphView::edges`].
pub struct EdgeIter<'a, G: GraphView> {
    g: &'a G,
    u: usize,
    i: usize,
    /// Whether an odd number of loop entries has been seen at the current
    /// node (loops are stored twice; every second copy yields the edge).
    pending_loop: bool,
}

impl<G: GraphView> Iterator for EdgeIter<'_, G> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.g.num_nodes();
        while self.u < n {
            let u = self.u as NodeId;
            let nbrs = self.g.neighbors(u);
            while self.i < nbrs.len() {
                let v = nbrs[self.i];
                self.i += 1;
                if v > u {
                    return Some((u, v));
                }
                if v == u {
                    self.pending_loop = !self.pending_loop;
                    if !self.pending_loop {
                        return Some((u, u));
                    }
                }
            }
            self.u += 1;
            self.i = 0;
            self.pending_loop = false;
        }
        None
    }
}

impl GraphView for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Graph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        Graph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }

    fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        Graph::multiplicity(self, u, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }

    fn degree_vector(&self) -> DegreeVector {
        Graph::degree_vector(self)
    }

    fn num_self_loops(&self) -> usize {
        Graph::num_self_loops(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messy() -> Graph {
        let mut g = Graph::from_edges(4, &[(0, 1), (0, 1), (1, 2), (2, 0)]);
        g.add_edge(3, 3);
        g.add_edge(1, 1);
        g
    }

    /// Exercises the provided (default) implementations against the
    /// inherent ones through a thin wrapper that cannot inherit them.
    struct Wrap(Graph);

    impl GraphView for Wrap {
        fn num_nodes(&self) -> usize {
            self.0.num_nodes()
        }
        fn num_edges(&self) -> usize {
            self.0.num_edges()
        }
        fn neighbors(&self, u: NodeId) -> &[NodeId] {
            self.0.neighbors(u)
        }
    }

    #[test]
    fn defaults_match_graph_inherents() {
        let g = messy();
        let w = Wrap(g.clone());
        assert_eq!(w.degree_vector(), g.degree_vector());
        assert_eq!(w.max_degree(), g.max_degree());
        assert_eq!(w.average_degree(), g.average_degree());
        assert_eq!(w.num_self_loops(), g.num_self_loops());
        for u in g.nodes() {
            assert_eq!(GraphView::degree(&w, u), g.degree(u));
            for v in g.nodes() {
                assert_eq!(w.multiplicity(u, v), g.multiplicity(u, v));
                assert_eq!(GraphView::has_edge(&w, u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn trait_edges_match_inherent_edges() {
        let g = messy();
        let w = Wrap(g.clone());
        let inherent: Vec<_> = g.edges().collect();
        let through_view: Vec<_> = w.edges().collect();
        assert_eq!(inherent, through_view);
        assert_eq!(through_view.len(), g.num_edges());
    }

    #[test]
    fn empty_view() {
        let w = Wrap(Graph::with_nodes(0));
        assert_eq!(w.edges().count(), 0);
        assert_eq!(w.max_degree(), 0);
        assert_eq!(w.average_degree(), 0.0);
        assert_eq!(w.degree_vector(), vec![0]);
    }
}
