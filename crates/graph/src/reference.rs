//! The retired per-node-`Vec` adjacency representation, kept as an
//! **oracle**.
//!
//! [`ReferenceGraph`] is the `Vec<Vec<NodeId>>` storage [`Graph`](crate::Graph) used
//! before the flat-arena refactor, preserved verbatim for two jobs:
//!
//! * **Order equivalence.** The arena [`Graph`](crate::Graph)'s mutations promise the
//!   exact element movement of this representation — appends at the live
//!   length, `swap_remove` within the live slice — because neighbor
//!   *order* feeds frozen CSR order, which feeds every order-sensitive
//!   float kernel downstream. The property suite
//!   (`crates/graph/tests/arena_equivalence.rs`) replays random operation
//!   sequences against both types and requires neighbor-for-neighbor
//!   identity.
//! * **Footprint baseline.** `bench_construct` builds a
//!   [`ReferenceGraph::replica_of`] the constructed graph — one exact-fit
//!   heap buffer per node, the allocation pattern the old
//!   `reserve_neighbors` produced — and reports its measured bytes next
//!   to the arena's, so the memory claim in `BENCH_construct.json` is a
//!   measured ratio, not an assertion.
//!
//! It is deliberately *not* a production type: nothing outside tests and
//! benches should construct one.

use crate::view::GraphView;
use crate::{DegreeVector, NodeId};

/// Per-node-`Vec` adjacency multigraph — the pre-arena
/// [`Graph`](crate::Graph) storage, same conventions: an edge `{u, v}`
/// stores
/// `v` in `adj[u]` and `u` in `adj[v]`, a self-loop at `u` stores `u`
/// twice in `adj[u]`.
#[derive(Clone, Debug, Default)]
pub struct ReferenceGraph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl ReferenceGraph {
    /// Creates a graph with `n` isolated nodes (ids `0 .. n`).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` nodes from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Self::with_nodes(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Copies any view into this representation with **one exact-fit
    /// allocation per node** — the pattern the old `reserve_exact`-based
    /// `reserve_neighbors` left behind — preserving neighbor order. This
    /// is the footprint baseline `bench_construct` measures against.
    pub fn replica_of<G: GraphView + ?Sized>(g: &G) -> Self {
        let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(g.num_nodes());
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            let mut list = Vec::with_capacity(nbrs.len());
            list.extend_from_slice(nbrs);
            adj.push(list);
        }
        Self {
            adj,
            num_edges: g.num_edges(),
        }
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges, counting each multi-edge copy once and each
    /// self-loop once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Reserves neighbor-list capacity so node `u` can reach degree
    /// `degrees[u]` without reallocating — the old arena builder, one
    /// `reserve_exact` per node.
    ///
    /// # Panics
    /// Panics if `degrees.len()` differs from the node count.
    pub fn reserve_neighbors(&mut self, degrees: &[u32]) {
        assert_eq!(degrees.len(), self.adj.len(), "degree length mismatch");
        for (nbrs, &d) in self.adj.iter_mut().zip(degrees) {
            let want = d as usize;
            if want > nbrs.len() {
                nbrs.reserve_exact(want - nbrs.len());
            }
        }
    }

    /// Appends a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as NodeId
    }

    /// Adds an undirected edge `{u, v}`; `u == v` adds a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adj.len()
        );
        if u == v {
            self.adj[u as usize].push(u);
            self.adj[u as usize].push(u);
        } else {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
        self.num_edges += 1;
    }

    /// Removes one copy of edge `{u, v}` if present; returns whether an
    /// edge was removed. O(deg(u) + deg(v)).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let pos_u = self.adj[u as usize].iter().position(|&x| x == v);
        let Some(pu) = pos_u else { return false };
        if u == v {
            self.adj[u as usize].swap_remove(pu);
            let second = self.adj[u as usize]
                .iter()
                .position(|&x| x == u)
                .expect("self-loop invariant: loops are stored twice");
            self.adj[u as usize].swap_remove(second);
        } else {
            self.adj[u as usize].swap_remove(pu);
            let pv = self.adj[v as usize]
                .iter()
                .position(|&x| x == u)
                .expect("undirected invariant: reverse entry exists");
            self.adj[v as usize].swap_remove(pv);
        }
        self.num_edges -= 1;
        true
    }

    /// Degree of `u` (self-loops count twice).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Neighbor list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Iterates every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(|i| i as NodeId)
    }

    /// Degree vector `{n(k)}_k` indexed `0 ..= k_max`.
    pub fn degree_vector(&self) -> DegreeVector {
        let max = self.adj.iter().map(Vec::len).max().unwrap_or(0);
        let mut dv = vec![0usize; max + 1];
        for nbrs in &self.adj {
            dv[nbrs.len()] += 1;
        }
        dv
    }
}

impl GraphView for ReferenceGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        ReferenceGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        ReferenceGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        ReferenceGraph::neighbors(self, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn replica_preserves_order_and_counts() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 1)]);
        g.add_edge(1, 1);
        let r = ReferenceGraph::replica_of(&g);
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(r.neighbors(u), g.neighbors(u));
        }
        assert_eq!(r.degree_vector(), g.degree_vector());
    }
}
