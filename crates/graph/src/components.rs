//! Connected components and largest-component extraction.
//!
//! The paper preprocesses every dataset by "extracting the largest connected
//! component" (§V-A), and evaluates the shortest-path properties of
//! generated graphs on *their* largest connected component (§V-B). Both
//! operations live here.

use crate::view::GraphView;
use crate::{Graph, NodeId};

/// Partition of nodes into connected components.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[u]` is the component index of node `u` (0-based, dense).
    pub label: Vec<u32>,
    /// `sizes[c]` is the number of nodes in component `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index of a largest component (ties broken by lowest index).
    pub fn largest(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Labels connected components with an iterative BFS (no recursion, safe on
/// million-node graphs). Accepts any read-only [`GraphView`] backend.
pub fn connected_components<G: GraphView + ?Sized>(g: &G) -> Components {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut label = vec![UNVISITED; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if label[start] != UNVISITED {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[start] = c;
        queue.clear();
        queue.push(start as NodeId);
        while let Some(u) = queue.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == UNVISITED {
                    label[v as usize] = c;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Whether the graph is connected (an empty graph counts as connected).
pub fn is_connected<G: GraphView + ?Sized>(g: &G) -> bool {
    g.num_nodes() == 0 || connected_components(g).count() == 1
}

/// Extracts the largest connected component as a new graph with dense node
/// ids. Returns the new graph and `mapping[new_id] = old_id`. The result
/// is a mutable [`Graph`] (callers freeze it when the read-only kernels
/// take over); edge order within each node is inherited from the view's
/// edge iteration, so identical views yield identical components.
pub fn largest_component<G: GraphView>(g: &G) -> (Graph, Vec<NodeId>) {
    if g.num_nodes() == 0 {
        return (Graph::with_nodes(0), Vec::new());
    }
    let comps = connected_components(g);
    let keep = comps.largest() as u32;
    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    let mut mapping = Vec::with_capacity(comps.sizes[keep as usize]);
    for u in g.nodes() {
        if comps.label[u as usize] == keep {
            old_to_new[u as usize] = mapping.len() as u32;
            mapping.push(u);
        }
    }
    let mut out = Graph::with_nodes(mapping.len());
    for (u, v) in g.edges() {
        if comps.label[u as usize] == keep {
            out.add_edge(old_to_new[u as usize], old_to_new[v as usize]);
        }
    }
    (out, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes, vec![4]);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components_and_isolated_nodes() {
        // {0,1,2} path, {3,4} edge, {5} isolated.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!(!is_connected(&g));
        assert_eq!(c.sizes[c.largest()], 3);
    }

    #[test]
    fn largest_component_extraction_preserves_structure() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 4);
        assert_eq!(lcc.num_edges(), 4);
        assert!(is_connected(&lcc));
        // Mapping refers back to original ids 0..=3.
        let mut orig: Vec<_> = mapping.clone();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2, 3]);
        lcc.validate().unwrap();
    }

    #[test]
    fn largest_component_keeps_multi_edges_and_loops() {
        let mut g = Graph::from_edges(4, &[(0, 1), (0, 1), (2, 3)]);
        g.add_edge(1, 1);
        let (lcc, _) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 2);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(lcc.num_self_loops(), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::with_nodes(0);
        assert!(is_connected(&g));
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn all_isolated() {
        let g = Graph::with_nodes(5);
        let c = connected_components(&g);
        assert_eq!(c.count(), 5);
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 1);
        assert_eq!(mapping.len(), 1);
    }

    #[test]
    fn long_path_no_stack_overflow() {
        // 200k-node path: recursion-free traversal must handle it.
        let n = 200_000;
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (i as NodeId, (i + 1) as NodeId))
            .collect();
        let g = Graph::from_edges(n, &edges);
        assert!(is_connected(&g));
    }
}
