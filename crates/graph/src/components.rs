//! Connected components and largest-component extraction.
//!
//! The paper preprocesses every dataset by "extracting the largest connected
//! component" (§V-A), and evaluates the shortest-path properties of
//! generated graphs on *their* largest connected component (§V-B). Both
//! operations live here.

use crate::view::GraphView;
use crate::{CsrGraph, Graph, NodeId};

/// Partition of nodes into connected components.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[u]` is the component index of node `u` (0-based, dense).
    pub label: Vec<u32>,
    /// `sizes[c]` is the number of nodes in component `c`.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index of a largest component (ties broken by lowest index).
    pub fn largest(&self) -> usize {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Labels connected components with an iterative BFS (no recursion, safe on
/// million-node graphs). Accepts any read-only [`GraphView`] backend.
pub fn connected_components<G: GraphView + ?Sized>(g: &G) -> Components {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut label = vec![UNVISITED; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if label[start] != UNVISITED {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[start] = c;
        queue.clear();
        queue.push(start as NodeId);
        while let Some(u) = queue.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == UNVISITED {
                    label[v as usize] = c;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Whether the graph is connected (an empty graph counts as connected).
pub fn is_connected<G: GraphView + ?Sized>(g: &G) -> bool {
    g.num_nodes() == 0 || connected_components(g).count() == 1
}

/// Extracts the largest connected component as a new graph with dense node
/// ids. Returns the new graph and `mapping[new_id] = old_id`. The result
/// is a mutable [`Graph`] (callers freeze it when the read-only kernels
/// take over); edge order within each node is inherited from the view's
/// edge iteration, so identical views yield identical components.
pub fn largest_component<G: GraphView>(g: &G) -> (Graph, Vec<NodeId>) {
    if g.num_nodes() == 0 {
        return (Graph::with_nodes(0), Vec::new());
    }
    let comps = connected_components(g);
    let keep = comps.largest() as u32;
    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    let mut mapping = Vec::with_capacity(comps.sizes[keep as usize]);
    for u in g.nodes() {
        if comps.label[u as usize] == keep {
            old_to_new[u as usize] = mapping.len() as u32;
            mapping.push(u);
        }
    }
    let mut out = Graph::with_nodes(mapping.len());
    for (u, v) in g.edges() {
        if comps.label[u as usize] == keep {
            out.add_edge(old_to_new[u as usize], old_to_new[v as usize]);
        }
    }
    (out, mapping)
}

/// Extracts the largest connected component **directly into a
/// [`CsrGraph`] snapshot** with dense node ids, skipping the intermediate
/// per-node-`Vec` [`Graph`] that [`largest_component`] builds (and that
/// BFS-heavy callers immediately re-freeze). Degrees are already known
/// from the component scan, so the offset array is exact and the neighbor
/// arena is filled in one pass over the kept nodes' slices.
///
/// Returns the snapshot and `mapping[new_id] = old_id`. Unlike
/// [`largest_component`] — which rebuilds adjacency by re-adding edges
/// and thereby reorders each node's neighbor list — this preserves the
/// source view's **per-node neighbor order** under the (monotone) id
/// remapping: `neighbors(new)` is exactly `g.neighbors(old)` with each
/// entry relabeled. Identical views therefore yield identical snapshots.
pub fn largest_component_csr<G: GraphView>(g: &G) -> (CsrGraph, Vec<NodeId>) {
    if g.num_nodes() == 0 {
        return (CsrGraph::default(), Vec::new());
    }
    largest_component_csr_with(g, &connected_components(g))
}

/// As [`largest_component_csr`], but reusing an already-computed
/// component labeling of `g` (callers that label for other reasons —
/// size accounting, engine cross-checks — avoid the second scan).
///
/// # Panics
/// Panics if `comps` has no components (empty labeling of a non-empty
/// graph) or was computed from a different graph.
pub fn largest_component_csr_with<G: GraphView>(
    g: &G,
    comps: &Components,
) -> (CsrGraph, Vec<NodeId>) {
    assert_eq!(comps.label.len(), g.num_nodes(), "labeling/graph mismatch");
    if g.num_nodes() == 0 {
        return (CsrGraph::default(), Vec::new());
    }
    let keep = comps.largest() as u32;
    let mut old_to_new = vec![u32::MAX; g.num_nodes()];
    let mut mapping: Vec<NodeId> = Vec::with_capacity(comps.sizes[keep as usize]);
    for u in g.nodes() {
        if comps.label[u as usize] == keep {
            old_to_new[u as usize] = mapping.len() as u32;
            mapping.push(u);
        }
    }
    // Degrees are known, so offsets are exact up front; a component is
    // neighbor-closed, so every slice entry remaps without a membership
    // check.
    let total: usize = mapping.iter().map(|&old| g.degree(old)).sum();
    assert!(
        u32::try_from(total).is_ok(),
        "component too large for u32 CSR offsets ({total} neighbor entries)"
    );
    let mut offsets = Vec::with_capacity(mapping.len() + 1);
    offsets.push(0u32);
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(total);
    let mut sorted = true;
    for &old in &mapping {
        let start = neighbors.len();
        neighbors.extend(g.neighbors(old).iter().map(|&v| {
            debug_assert_ne!(old_to_new[v as usize], u32::MAX, "cross-component edge");
            old_to_new[v as usize]
        }));
        sorted &= neighbors[start..].windows(2).all(|w| w[0] <= w[1]);
        offsets.push(neighbors.len() as u32);
    }
    // Both endpoints of every kept edge are inside the component, so the
    // arena holds exactly two slots per edge (a self-loop is its node's
    // two slots), and `total` is even.
    let csr = CsrGraph::from_raw_parts(offsets, neighbors, total / 2, sorted);
    (csr, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes, vec![4]);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components_and_isolated_nodes() {
        // {0,1,2} path, {3,4} edge, {5} isolated.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!(!is_connected(&g));
        assert_eq!(c.sizes[c.largest()], 3);
    }

    #[test]
    fn largest_component_extraction_preserves_structure() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (2, 3), (4, 5)]);
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 4);
        assert_eq!(lcc.num_edges(), 4);
        assert!(is_connected(&lcc));
        // Mapping refers back to original ids 0..=3.
        let mut orig: Vec<_> = mapping.clone();
        orig.sort_unstable();
        assert_eq!(orig, vec![0, 1, 2, 3]);
        lcc.validate().unwrap();
    }

    #[test]
    fn largest_component_keeps_multi_edges_and_loops() {
        let mut g = Graph::from_edges(4, &[(0, 1), (0, 1), (2, 3)]);
        g.add_edge(1, 1);
        let (lcc, _) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 2);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(lcc.num_self_loops(), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Graph::with_nodes(0);
        assert!(is_connected(&g));
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 0);
        assert!(mapping.is_empty());
    }

    #[test]
    fn all_isolated() {
        let g = Graph::with_nodes(5);
        let c = connected_components(&g);
        assert_eq!(c.count(), 5);
        let (lcc, mapping) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 1);
        assert_eq!(mapping.len(), 1);
    }

    #[test]
    fn csr_extraction_matches_graph_extraction() {
        let mut g = Graph::from_edges(9, &[(0, 1), (1, 2), (2, 0), (2, 3), (0, 1), (5, 6), (7, 8)]);
        g.add_edge(3, 3);
        let (lcc_graph, map_graph) = largest_component(&g);
        let (lcc_csr, map_csr) = largest_component_csr(&g);
        assert_eq!(map_csr, map_graph);
        assert_eq!(lcc_csr.num_nodes(), lcc_graph.num_nodes());
        assert_eq!(lcc_csr.num_edges(), lcc_graph.num_edges());
        assert_eq!(lcc_csr.degree_vector(), lcc_graph.degree_vector());
        // Same edge multiset (neighbor order may differ: the Graph path
        // rebuilds adjacency via add_edge, the CSR path remaps slices).
        for u in lcc_graph.nodes() {
            let mut a = lcc_csr.neighbors(u).to_vec();
            let mut b = lcc_graph.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbor multiset differs at {u}");
        }
    }

    #[test]
    fn csr_extraction_preserves_source_neighbor_order() {
        // Node 2's list in g is [1, 3, 0] by insertion; the kept ids are
        // the component itself so the remap is the identity here.
        let g = Graph::from_edges(6, &[(1, 2), (2, 3), (0, 2), (4, 5)]);
        let (lcc, mapping) = largest_component_csr(&g);
        assert_eq!(mapping, vec![0, 1, 2, 3]);
        assert_eq!(lcc.neighbors(2), &[1, 3, 0]);
        // A sorted source view stays sorted through the monotone remap.
        let sorted_src = CsrGraph::freeze_sorted(&g);
        let (lcc_sorted, _) = largest_component_csr(&sorted_src);
        assert!(lcc_sorted.is_sorted());
        assert_eq!(lcc_sorted.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn csr_extraction_with_shared_labeling_and_edge_cases() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = connected_components(&g);
        let (a, ma) = largest_component_csr(&g);
        let (b, mb) = largest_component_csr_with(&g, &comps);
        assert_eq!(ma, mb);
        assert_eq!(a.neighbors(1), b.neighbors(1));

        let (empty, map) = largest_component_csr(&Graph::with_nodes(0));
        assert_eq!(empty.num_nodes(), 0);
        assert!(map.is_empty());

        let (iso, map) = largest_component_csr(&Graph::with_nodes(4));
        assert_eq!(iso.num_nodes(), 1);
        assert_eq!(iso.num_edges(), 0);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn long_path_no_stack_overflow() {
        // 200k-node path: recursion-free traversal must handle it.
        let n = 200_000;
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (i as NodeId, (i + 1) as NodeId))
            .collect();
        let g = Graph::from_edges(n, &edges);
        assert!(is_connected(&g));
    }
}
