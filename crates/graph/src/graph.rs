//! The arena-backed adjacency multigraph type.

use sgr_util::FxHashMap;

/// Node identifier. `u32` keeps adjacency lists compact (half the memory
/// traffic of `usize` on 64-bit targets) while supporting graphs of up to
/// ~4.29 billion nodes — far beyond the paper's largest dataset (YouTube,
/// 1.13 M nodes).
pub type NodeId = u32;

/// Degree vector `{n(k)}_k`: `dv[k]` is the number of nodes with degree
/// `k`, for `k = 0 ..= k_max` (the paper indexes from 1; index 0 holds
/// isolated nodes, which occur only transiently during construction).
pub type DegreeVector = Vec<usize>;

/// Structural invariant violations reported by [`Graph::validate`] and
/// the raw-adjacency constructors ([`Graph::from_adjacency`],
/// [`Graph::from_flat`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The total neighbor-entry count is odd, so it cannot be `2 m`.
    OddNeighborEntries { total: usize },
    /// A flat adjacency's degree sum disagrees with its arena length.
    DegreeArenaMismatch { degree_sum: u64, arena_len: usize },
    /// A node lists a neighbor id outside `0 .. n`.
    OutOfRangeNeighbor { node: NodeId, neighbor: NodeId },
    /// A node's loop-entry count is odd (each self-loop stores its
    /// endpoint twice).
    OddLoopEntries { node: NodeId },
    /// The degree sum is not twice the edge count.
    HandshakeViolation {
        degree_sum: usize,
        twice_edges: usize,
    },
    /// `v ∈ adj[u]` a different number of times than `u ∈ adj[v]`.
    Asymmetry {
        u: NodeId,
        v: NodeId,
        forward: usize,
        backward: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::OddNeighborEntries { total } => {
                write!(f, "odd total neighbor-entry count {total}")
            }
            GraphError::DegreeArenaMismatch {
                degree_sum,
                arena_len,
            } => write!(
                f,
                "adjacency degree sum {degree_sum} != neighbor arena length {arena_len}"
            ),
            GraphError::OutOfRangeNeighbor { node, neighbor } => {
                write!(f, "node {node} lists out-of-range neighbor {neighbor}")
            }
            GraphError::OddLoopEntries { node } => {
                write!(f, "node {node} has an odd number of loop entries")
            }
            GraphError::HandshakeViolation {
                degree_sum,
                twice_edges,
            } => write!(
                f,
                "handshake violation: sum of degrees {degree_sum} != 2m = {twice_edges}"
            ),
            GraphError::Asymmetry {
                u,
                v,
                forward,
                backward,
            } => write!(
                f,
                "asymmetry between {u} and {v}: {forward} forward vs {backward} backward"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Undirected multigraph with self-loops, per the paper's model (§III-A).
///
/// An edge `{u, v}` with `u != v` stores `v` in `u`'s neighbor list and
/// `u` in `v`'s; a self-loop at `u` stores `u` **twice** in `u`'s list.
/// Hence for every node, `degree(u) == neighbors(u).len()` and
/// `Σ_u degree(u) == 2 m`.
///
/// # Storage model
///
/// All neighbor lists live in **one flat arena** (`Vec<NodeId>`) with a
/// per-node *extent* — a `(start, capacity)` range of the arena of which
/// the first `degree(u)` slots are live. There is no per-node heap `Vec`,
/// so the whole graph spans a constant number of allocations regardless
/// of node count (steady state: 8 bytes/node of bookkeeping plus the
/// arena itself, vs 24 bytes of `Vec` header plus a separately allocated,
/// capacity-overcommitted buffer per node before).
///
/// Extents come in two layouts:
///
/// * **Tight** — extents are packed in ascending node order and the
///   capacity of `u` is implied by the next extent's start (the CSR
///   layout, plus a live length per node). [`Graph::reserve_neighbors`]
///   builds this layout with capacities taken from the caller's target
///   degrees; the raw-adjacency constructors and [`Graph::from_view`]
///   build it with exact-fit capacities.
/// * **Dynamic** — capacities are materialized per node, and an extent
///   that overflows is relocated to the end of the arena with doubled
///   capacity (the abandoned slots are reclaimed by an occasional
///   compaction). This is the layout incremental builders (generators,
///   crawl subgraphs) run in; the first overflowing append converts a
///   tight graph to it transparently.
///
/// The restoration pipeline never leaves the tight layout after
/// construction: targeting fixes every node's degree before wiring, so
/// [`Graph::reserve_neighbors`] sizes each extent to its final degree,
/// stub matching fills extents exactly, and double-edge-swap rewiring is
/// degree-preserving — every commit removes an entry from a node before
/// adding one back, so occupancy never exceeds the reserved capacity even
/// mid-swap. No extent ever grows, no slot is ever relocated, and
/// [`Graph::freeze`] is a near-copy-free compaction (for a fully packed
/// tight graph, a plain copy of the two arrays).
///
/// Mutations reproduce the element movement of the previous per-node
/// `Vec` representation exactly — appends at the live length, removals by
/// swap-with-last within the live slice — so neighbor *order*, and with
/// it every order-sensitive float kernel downstream of
/// [`Graph::freeze`], is bitwise-identical to
/// [`crate::reference::ReferenceGraph`] (the retained oracle) under any
/// operation sequence.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Extent starts. Tight layout (`caps == None`): `n + 1` prefix
    /// sums, the extent of `u` spanning `starts[u] .. starts[u + 1]`.
    /// Dynamic layout: the first `n` entries are per-node starts (extents
    /// may live anywhere in the arena); the final entry is meaningless.
    starts: Vec<u32>,
    /// Live neighbor count per node (`degree(u)`).
    lens: Vec<u32>,
    /// Dynamic-layout extent capacities; `None` means tight layout.
    caps: Option<Vec<u32>>,
    /// The neighbor slab every extent lives in.
    arena: Vec<NodeId>,
    /// Arena slots abandoned by dynamic-layout relocations; when they
    /// outnumber the live capacity, [`Self::compact`] reclaims them.
    dead: usize,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes (ids `0 .. n`).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            starts: vec![0; n + 1],
            lens: vec![0; n],
            caps: None,
            arena: Vec::new(),
            dead: 0,
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` nodes from an edge list. Multi-edges and
    /// self-loops in the input are kept.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Self::with_nodes(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Rebuilds a graph from raw adjacency lists, **preserving per-node
    /// neighbor order** — unlike [`crate::CsrGraph::thaw`], which re-adds
    /// edges and therefore reorders neighbor lists. Checkpoint restoration
    /// uses this so order-sensitive float kernels (and the rewiring
    /// engine's slot bookkeeping) resume bitwise-identically.
    ///
    /// The input must satisfy the storage conventions of this type: the
    /// lists are symmetric (`v ∈ adj[u]` as many times as `u ∈ adj[v]`)
    /// and each self-loop at `u` stores `u` twice in `adj[u]`.
    ///
    /// # Errors
    /// Returns the first invariant violation found (out-of-range neighbor,
    /// odd loop-entry count, asymmetry) as a typed [`GraphError`].
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, GraphError> {
        let total: usize = adj.iter().map(Vec::len).sum();
        if !total.is_multiple_of(2) {
            return Err(GraphError::OddNeighborEntries { total });
        }
        Self::check_arena_fits(total);
        let n = adj.len();
        let mut starts = Vec::with_capacity(n + 1);
        let mut lens = Vec::with_capacity(n);
        let mut arena = Vec::with_capacity(total);
        starts.push(0u32);
        for nbrs in &adj {
            arena.extend_from_slice(nbrs);
            lens.push(nbrs.len() as u32);
            starts.push(arena.len() as u32);
        }
        let g = Self {
            starts,
            lens,
            caps: None,
            arena,
            dead: 0,
            num_edges: total / 2,
        };
        g.validate()?;
        Ok(g)
    }

    /// Rebuilds a graph from a flat adjacency — per-node degrees plus one
    /// neighbor slab in ascending node order — **preserving neighbor
    /// order**, without the intermediate per-node `Vec`s of
    /// [`Self::from_adjacency`]. This is the checkpoint loader's path:
    /// the on-disk layout *is* the tight arena layout, so the slab is
    /// adopted as the arena directly.
    ///
    /// # Errors
    /// [`GraphError::DegreeArenaMismatch`] when the degree sum disagrees
    /// with the slab length, otherwise the first invariant violation
    /// found by [`Self::validate`].
    pub fn from_flat(degrees: &[u32], flat: Vec<NodeId>) -> Result<Self, GraphError> {
        let degree_sum: u64 = degrees.iter().map(|&d| d as u64).sum();
        if degree_sum != flat.len() as u64 {
            return Err(GraphError::DegreeArenaMismatch {
                degree_sum,
                arena_len: flat.len(),
            });
        }
        let total = flat.len();
        if !total.is_multiple_of(2) {
            return Err(GraphError::OddNeighborEntries { total });
        }
        Self::check_arena_fits(total);
        let mut starts = Vec::with_capacity(degrees.len() + 1);
        starts.push(0u32);
        let mut off = 0u64;
        for &d in degrees {
            off += d as u64;
            starts.push(off as u32);
        }
        let g = Self {
            starts,
            lens: degrees.to_vec(),
            caps: None,
            arena: flat,
            dead: 0,
            num_edges: total / 2,
        };
        g.validate()?;
        Ok(g)
    }

    /// Copies any read-only view into a mutable graph, **preserving
    /// per-node neighbor order** (so a freeze → `from_view` round trip is
    /// the identity on neighbor sequences, unlike
    /// [`crate::CsrGraph::thaw`]). The source view is trusted to satisfy
    /// the storage invariants — it came from a [`Graph`] or a validated
    /// snapshot — so no re-validation pass is paid.
    pub fn from_view<G: crate::GraphView + ?Sized>(g: &G) -> Self {
        let n = g.num_nodes();
        let total = 2 * g.num_edges();
        Self::check_arena_fits(total);
        let mut starts = Vec::with_capacity(n + 1);
        let mut lens = Vec::with_capacity(n);
        let mut arena = Vec::with_capacity(total);
        starts.push(0u32);
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            arena.extend_from_slice(nbrs);
            lens.push(nbrs.len() as u32);
            starts.push(arena.len() as u32);
        }
        Self {
            starts,
            lens,
            caps: None,
            arena,
            dead: 0,
            num_edges: g.num_edges(),
        }
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.lens.len()
    }

    /// Number of edges, counting each multi-edge copy once and each
    /// self-loop once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average degree `k̄ = 2m / n` (Eq. 1). Zero for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.lens.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.lens.len() as f64
        }
    }

    /// Extent capacity of node `u`.
    #[inline]
    fn cap(&self, u: usize) -> usize {
        match &self.caps {
            None => (self.starts[u + 1] - self.starts[u]) as usize,
            Some(caps) => caps[u] as usize,
        }
    }

    /// The arena index ceiling: offsets are `u32` (deliberately, to halve
    /// their cache footprint), so the slab cannot exceed `u32::MAX`
    /// entries — ≈ 2.1 billion edges, the same ceiling
    /// [`crate::CsrGraph`] has.
    #[inline]
    fn check_arena_fits(total: usize) {
        assert!(
            u32::try_from(total).is_ok(),
            "graph too large for u32 arena offsets ({total} neighbor entries)"
        );
    }

    /// Rebuilds the arena **tight**: extents packed in ascending node
    /// order, node `u` sized to `max(degree(u), degrees[u])`, live
    /// entries copied over in order. After this, node `u` can reach
    /// degree `degrees[u]` without any slot moving (self-loops store two
    /// entries but also count twice toward the degree, so the target
    /// degree *is* the required entry count) — the arena builder that
    /// makes bulk edge insertion toward a known target degree vector
    /// allocation-free.
    ///
    /// No-op when the graph is already tight with sufficient capacity
    /// everywhere, so the stub matcher's internal call is free for
    /// callers that pre-reserved.
    ///
    /// # Panics
    /// Panics if `degrees.len()` differs from the node count.
    pub fn reserve_neighbors(&mut self, degrees: &[u32]) {
        let n = self.lens.len();
        assert_eq!(degrees.len(), n, "degree length mismatch");
        if self.caps.is_none()
            && self
                .lens
                .iter()
                .zip(degrees)
                .enumerate()
                .all(|(u, (&len, &d))| self.cap(u) >= len.max(d) as usize)
        {
            return;
        }
        let mut new_starts = Vec::with_capacity(n + 1);
        new_starts.push(0u32);
        let mut total = 0usize;
        for (u, &d) in degrees.iter().enumerate() {
            total += (self.lens[u].max(d)) as usize;
            Self::check_arena_fits(total);
            new_starts.push(total as u32);
        }
        let mut new_arena = vec![0 as NodeId; total];
        for (u, &dst) in new_starts.iter().take(n).enumerate() {
            let len = self.lens[u] as usize;
            let src = self.starts[u] as usize;
            let dst = dst as usize;
            new_arena[dst..dst + len].copy_from_slice(&self.arena[src..src + len]);
        }
        self.starts = new_starts;
        self.arena = new_arena;
        self.caps = None;
        self.dead = 0;
    }

    /// Appends a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.lens.len() as NodeId;
        self.lens.push(0);
        match &mut self.caps {
            // Tight: a zero-capacity extent at the current end.
            None => {
                let end = *self.starts.last().expect("starts is never empty");
                self.starts.push(end);
            }
            Some(caps) => {
                let last = self.starts.len() - 1;
                self.starts.insert(last, self.arena.len() as u32);
                caps.push(0);
            }
        }
        id
    }

    /// Appends `x` to `u`'s live slice, growing the extent if full.
    #[inline]
    fn push_entry(&mut self, u: NodeId, x: NodeId) {
        let ui = u as usize;
        let len = self.lens[ui] as usize;
        if len < self.cap(ui) {
            let slot = self.starts[ui] as usize + len;
            self.arena[slot] = x;
            self.lens[ui] = (len + 1) as u32;
        } else {
            self.grow_and_push(ui, x);
        }
    }

    /// Cold path of [`Self::push_entry`]: converts to the dynamic layout
    /// if needed and relocates `u`'s extent to the arena end with at
    /// least doubled capacity.
    #[cold]
    fn grow_and_push(&mut self, u: usize, x: NodeId) {
        if self.caps.is_none() {
            self.caps = Some(self.starts.windows(2).map(|w| w[1] - w[0]).collect());
        }
        let len = self.lens[u] as usize;
        let old_cap = self.cap(u);
        let old_start = self.starts[u] as usize;
        let new_cap = (old_cap * 2).max(4).max(len + 1);
        let new_start = self.arena.len();
        Self::check_arena_fits(new_start + new_cap);
        self.arena.resize(new_start + new_cap, 0);
        let (old, new) = self.arena.split_at_mut(new_start);
        new[..len].copy_from_slice(&old[old_start..old_start + len]);
        new[len] = x;
        self.starts[u] = new_start as u32;
        self.caps.as_mut().expect("converted above")[u] = new_cap as u32;
        self.lens[u] = (len + 1) as u32;
        self.dead += old_cap;
        // Reclaim abandoned extents once they outnumber the live
        // capacity; amortized against the relocations that created them.
        if self.dead > self.arena.len() - self.dead {
            self.compact();
        }
    }

    /// Repacks every dynamic extent in ascending node order at its
    /// current capacity, dropping dead slots. Neighbor order within each
    /// extent is preserved (plain copies), so compaction is invisible to
    /// every observer.
    fn compact(&mut self) {
        let caps = self.caps.as_ref().expect("compact only runs dynamic");
        let total: usize = caps.iter().map(|&c| c as usize).sum();
        let mut new_arena = vec![0 as NodeId; total];
        let mut off = 0usize;
        for (u, &cap) in caps.iter().enumerate() {
            let len = self.lens[u] as usize;
            let src = self.starts[u] as usize;
            new_arena[off..off + len].copy_from_slice(&self.arena[src..src + len]);
            self.starts[u] = off as u32;
            off += cap as usize;
        }
        self.arena = new_arena;
        self.dead = 0;
    }

    /// Adds an undirected edge `{u, v}`; `u == v` adds a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.lens.len() && (v as usize) < self.lens.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.lens.len()
        );
        if u == v {
            self.push_entry(u, u);
            self.push_entry(u, u);
        } else {
            self.push_entry(u, v);
            self.push_entry(v, u);
        }
        self.num_edges += 1;
    }

    /// Removes the live entry at `pos` of `u`'s slice by swapping the
    /// last live entry into it — the same element movement as
    /// `Vec::swap_remove`, which the order-equivalence contract with the
    /// reference representation depends on.
    #[inline]
    fn swap_remove_entry(&mut self, u: NodeId, pos: usize) {
        let ui = u as usize;
        let start = self.starts[ui] as usize;
        let last = self.lens[ui] as usize - 1;
        self.arena[start + pos] = self.arena[start + last];
        self.lens[ui] = last as u32;
    }

    /// Removes one copy of edge `{u, v}` if present; returns whether an
    /// edge was removed. O(deg(u) + deg(v)).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let pos_u = self.neighbors(u).iter().position(|&x| x == v);
        let Some(pu) = pos_u else { return false };
        if u == v {
            // Remove two stored copies of the loop endpoint.
            self.swap_remove_entry(u, pu);
            let second = self
                .neighbors(u)
                .iter()
                .position(|&x| x == u)
                .expect("self-loop invariant: loops are stored twice");
            self.swap_remove_entry(u, second);
        } else {
            self.swap_remove_entry(u, pu);
            let pv = self
                .neighbors(v)
                .iter()
                .position(|&x| x == u)
                .expect("undirected invariant: reverse entry exists");
            self.swap_remove_entry(v, pv);
        }
        self.num_edges -= 1;
        true
    }

    /// Degree of `u` (self-loops count twice, per the `A_ii` convention).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.lens[u as usize] as usize
    }

    /// Neighbor list of `u` (multi-edges repeated; each self-loop
    /// contributes two copies of `u`).
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let start = self.starts[u as usize] as usize;
        &self.arena[start..start + self.lens[u as usize] as usize]
    }

    /// Adjacency-matrix entry `A_uv`: edge multiplicity for `u != v`,
    /// twice the loop count for `u == v`. O(deg(u)); use
    /// [`crate::index::MultiplicityIndex`] for repeated lookups.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.neighbors(u).iter().filter(|&&x| x == v).count()
    }

    /// Whether at least one edge `{u, v}` exists. Scans the smaller
    /// endpoint's list.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&b)
    }

    /// Iterates every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.lens.len()).map(|i| i as NodeId)
    }

    /// Iterates every edge exactly once as `(u, v)` with `u <= v`.
    /// Multi-edges are yielded once per copy; each self-loop once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.lens.len()).flat_map(move |u| {
            let u = u as NodeId;
            let mut loops_seen = 0usize;
            self.neighbors(u).iter().filter_map(move |&v| {
                if v > u {
                    Some((u, v))
                } else if v == u {
                    // Each loop is stored twice; yield every other copy.
                    loops_seen += 1;
                    if loops_seen.is_multiple_of(2) {
                        Some((u, u))
                    } else {
                        None
                    }
                } else {
                    None
                }
            })
        })
    }

    /// Maximum degree; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).max().unwrap_or(0)
    }

    /// Degree vector `{n(k)}_k` indexed `0 ..= k_max`.
    pub fn degree_vector(&self) -> DegreeVector {
        let mut dv = vec![0usize; self.max_degree() + 1];
        for &l in &self.lens {
            dv[l as usize] += 1;
        }
        dv
    }

    /// Number of self-loop edges in the whole graph.
    pub fn num_self_loops(&self) -> usize {
        self.nodes()
            .map(|u| self.neighbors(u).iter().filter(|&&v| v == u).count() / 2)
            .sum()
    }

    /// Number of edge copies beyond the first between each node pair.
    pub fn num_multi_edges(&self) -> usize {
        let mut extra = 0usize;
        let mut seen: FxHashMap<NodeId, usize> = FxHashMap::default();
        for u in self.nodes() {
            seen.clear();
            for &v in self.neighbors(u) {
                if v >= u {
                    *seen.entry(v).or_insert(0) += 1;
                }
            }
            for (&v, &cnt) in seen.iter() {
                let copies = if v == u { cnt / 2 } else { cnt };
                extra += copies.saturating_sub(1);
            }
        }
        extra
    }

    /// Whether the graph is simple (no self-loops, no multi-edges).
    pub fn is_simple(&self) -> bool {
        self.num_self_loops() == 0 && self.num_multi_edges() == 0
    }

    /// Returns a simple copy: multi-edges collapsed to one copy, self-loops
    /// dropped. Mirrors the paper's dataset preprocessing ("removing
    /// multiple edges and the directions of edges").
    pub fn simplified(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.num_edges);
        let mut seen: sgr_util::FxHashSet<(NodeId, NodeId)> = sgr_util::FxHashSet::default();
        for (u, v) in self.edges() {
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Graph::from_edges(self.num_nodes(), &edges)
    }

    /// Freezes the current state into an immutable CSR snapshot
    /// (order-preserving; see [`crate::CsrGraph::freeze`]). Read-only
    /// consumers should be handed the snapshot, not the mutable graph.
    ///
    /// A fully packed tight graph — the steady state after
    /// [`Self::reserve_neighbors`]-sized construction and
    /// degree-preserving rewiring — already *is* the CSR layout, so this
    /// reduces to copying the two arrays instead of walking every
    /// neighbor slice.
    pub fn freeze(&self) -> crate::CsrGraph {
        if self.caps.is_none() && self.arena.len() == 2 * self.num_edges {
            return crate::CsrGraph::from_raw_parts(
                self.starts.clone(),
                self.arena.clone(),
                self.num_edges,
                false,
            );
        }
        crate::CsrGraph::freeze(self)
    }

    /// Checks internal invariants; used by tests and debug assertions.
    /// Returns a typed [`GraphError`] describing the first violation
    /// found.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.num_nodes();
        let mut total_deg = 0usize;
        for u in self.nodes() {
            let nbrs = self.neighbors(u);
            total_deg += nbrs.len();
            let mut self_copies = 0usize;
            for &v in nbrs {
                if (v as usize) >= n {
                    return Err(GraphError::OutOfRangeNeighbor {
                        node: u,
                        neighbor: v,
                    });
                }
                if v == u {
                    self_copies += 1;
                }
            }
            if !self_copies.is_multiple_of(2) {
                return Err(GraphError::OddLoopEntries { node: u });
            }
        }
        if total_deg != 2 * self.num_edges {
            return Err(GraphError::HandshakeViolation {
                degree_sum: total_deg,
                twice_edges: 2 * self.num_edges,
            });
        }
        // Symmetry: count of v in adj[u] equals count of u in adj[v].
        for u in self.nodes() {
            let mut counts: FxHashMap<NodeId, usize> = FxHashMap::default();
            for &v in self.neighbors(u) {
                if v > u {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            for (&v, &c) in counts.iter() {
                let back = self.neighbors(v).iter().filter(|&&x| x == u).count();
                if back != c {
                    return Err(GraphError::Asymmetry {
                        u,
                        v,
                        forward: c,
                        backward: back,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Graph::with_nodes(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_vector(), vec![0]);
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_convention() {
        // A single self-loop: degree 2, A_ii = 2 (Newman's convention,
        // which the paper adopts).
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.multiplicity(0, 0), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_self_loops(), 1);
        assert!(!g.is_simple());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 0)]);
        g.validate().unwrap();
    }

    #[test]
    fn multi_edges_counted() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.multiplicity(0, 1), 3);
        assert_eq!(g.multiplicity(1, 0), 3);
        assert_eq!(g.num_multi_edges(), 2);
        assert!(!g.is_simple());
        assert_eq!(g.edges().count(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = triangle();
        g.add_edge(1, 1); // loop
        g.add_edge(0, 2); // multi-edge copy
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 2), (1, 1), (1, 2)]);
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        g.validate().unwrap();

        // Loop removal restores both copies.
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert!(g.remove_edge(0, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_one_copy_of_multi_edge() {
        let mut g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert!(g.remove_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    fn degree_vector_matches_definition() {
        // Star with 3 leaves: one node of degree 3, three of degree 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_vector(), vec![0, 3, 0, 1]);
    }

    #[test]
    fn simplified_removes_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        let s = g.simplified();
        assert!(s.is_simple());
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(1, 2));
        assert_eq!(s.num_nodes(), 3);
    }

    #[test]
    fn add_node_extends() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v, 3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(3), 0);
        g.add_edge(3, 0);
        assert!(g.has_edge(0, 3));
        g.validate().unwrap();
    }

    #[test]
    fn add_node_in_both_layouts() {
        // Tight (fresh) graph, then dynamic (post-overflow) graph: in
        // both layouts added nodes start isolated and wire up normally.
        let mut g = Graph::with_nodes(2);
        let a = g.add_node(); // tight: zero-capacity extent appended
        g.add_edge(0, 1); // converts to dynamic
        let b = g.add_node(); // dynamic: capacity-0 extent appended
        g.add_edge(a, b);
        g.add_edge(b, 0);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 2);
        g.validate().unwrap();
    }

    #[test]
    fn from_adjacency_preserves_order() {
        let mut g = triangle();
        g.add_edge(1, 1);
        g.add_edge(0, 2);
        let adj: Vec<Vec<NodeId>> = g.nodes().map(|u| g.neighbors(u).to_vec()).collect();
        let back = Graph::from_adjacency(adj).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(back.neighbors(u), g.neighbors(u));
        }
        back.validate().unwrap();
    }

    #[test]
    fn from_adjacency_rejects_invalid_with_typed_errors() {
        // Asymmetric: 0 lists 1 but 1 does not list 0 (total is even —
        // two one-sided entries — so the symmetry check must catch it).
        assert_eq!(
            Graph::from_adjacency(vec![vec![1], vec![2], vec![]]).unwrap_err(),
            GraphError::Asymmetry {
                u: 0,
                v: 1,
                forward: 1,
                backward: 0
            }
        );
        // Out-of-range neighbor.
        assert_eq!(
            Graph::from_adjacency(vec![vec![5], vec![0]]).unwrap_err(),
            GraphError::OutOfRangeNeighbor {
                node: 0,
                neighbor: 5
            }
        );
        // Single loop entry (loops must be stored twice).
        assert_eq!(
            Graph::from_adjacency(vec![vec![0], vec![1]]).unwrap_err(),
            GraphError::OddLoopEntries { node: 0 }
        );
        // Odd total entry count.
        assert_eq!(
            Graph::from_adjacency(vec![vec![1]]).unwrap_err(),
            GraphError::OddNeighborEntries { total: 1 }
        );
    }

    #[test]
    fn from_flat_roundtrip_and_mismatch() {
        let mut g = triangle();
        g.add_edge(1, 1);
        let degrees: Vec<u32> = g.nodes().map(|u| g.degree(u) as u32).collect();
        let flat: Vec<NodeId> = g.nodes().flat_map(|u| g.neighbors(u).to_vec()).collect();
        let back = Graph::from_flat(&degrees, flat.clone()).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(back.neighbors(u), g.neighbors(u));
        }
        // Degree sum disagreeing with the slab is a typed error.
        let mut bad = degrees.clone();
        bad[0] += 1;
        assert_eq!(
            Graph::from_flat(&bad, flat).unwrap_err(),
            GraphError::DegreeArenaMismatch {
                degree_sum: (2 * g.num_edges() + 1) as u64,
                arena_len: 2 * g.num_edges(),
            }
        );
    }

    #[test]
    fn from_view_preserves_order() {
        let mut g = triangle();
        g.add_edge(1, 1);
        g.add_edge(0, 2);
        let csr = g.freeze();
        let back = Graph::from_view(&csr);
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(back.neighbors(u), g.neighbors(u));
        }
        back.validate().unwrap();
    }

    #[test]
    fn reserve_then_fill_never_relocates() {
        // Reserving target degrees up front keeps the graph in the tight
        // layout through wiring and through degree-preserving swap
        // cycles — the construction/rewiring warm path.
        let mut g = Graph::with_nodes(4);
        g.reserve_neighbors(&[2, 2, 2, 2]);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.add_edge(u, v);
        }
        assert!(g.caps.is_none(), "wiring within reserve must stay tight");
        assert_eq!(g.arena.len(), 2 * g.num_edges());
        // A double-edge swap: remove two edges, add two back. Occupancy
        // per node dips then returns to the reserved capacity.
        assert!(g.remove_edge(0, 1));
        assert!(g.remove_edge(2, 3));
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        assert!(g.caps.is_none(), "swaps must never leave the tight layout");
        g.validate().unwrap();
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn overflow_converts_and_compacts_transparently() {
        // Growing far past every reserved extent exercises relocation and
        // compaction; structure must be preserved throughout.
        let mut g = Graph::with_nodes(6);
        for round in 0..8 {
            for u in 0..6u32 {
                g.add_edge(u, (u + 1 + round) % 6);
            }
            g.validate().unwrap();
        }
        assert_eq!(g.num_edges(), 48);
        assert!(g.caps.is_some(), "unreserved growth runs dynamic");
        // Freeze still works off the dynamic layout (generic path).
        let csr = g.freeze();
        for u in g.nodes() {
            assert_eq!(csr.neighbors(u), g.neighbors(u));
        }
    }

    #[test]
    fn reserve_is_noop_when_capacity_suffices() {
        let mut g = Graph::with_nodes(3);
        g.reserve_neighbors(&[2, 2, 2]);
        let arena_before = g.arena.len();
        g.add_edge(0, 1);
        g.reserve_neighbors(&[2, 2, 2]); // already satisfied
        assert_eq!(g.arena.len(), arena_before);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn has_edge_scans_smaller_side() {
        let mut g = Graph::with_nodes(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(4, 0));
        assert!(!g.has_edge(1, 2));
    }
}
