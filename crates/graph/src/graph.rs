//! The adjacency-list multigraph type.

use sgr_util::FxHashMap;

/// Node identifier. `u32` keeps adjacency lists compact (half the memory
/// traffic of `usize` on 64-bit targets) while supporting graphs of up to
/// ~4.29 billion nodes — far beyond the paper's largest dataset (YouTube,
/// 1.13 M nodes).
pub type NodeId = u32;

/// Degree vector `{n(k)}_k`: `dv[k]` is the number of nodes with degree
/// `k`, for `k = 0 ..= k_max` (the paper indexes from 1; index 0 holds
/// isolated nodes, which occur only transiently during construction).
pub type DegreeVector = Vec<usize>;

/// Undirected multigraph with self-loops, per the paper's model (§III-A).
///
/// Representation: one neighbor list per node. An edge `{u, v}` with
/// `u != v` stores `v` in `adj[u]` and `u` in `adj[v]`; a self-loop at `u`
/// stores `u` **twice** in `adj[u]`. Hence for every node,
/// `degree(u) == adj[u].len()` and `Σ_u degree(u) == 2 m`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes (ids `0 .. n`).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` nodes from an edge list. Multi-edges and
    /// self-loops in the input are kept.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Self::with_nodes(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Rebuilds a graph from raw adjacency lists, **preserving per-node
    /// neighbor order** — unlike [`crate::CsrGraph::thaw`], which re-adds
    /// edges and therefore reorders neighbor lists. Checkpoint restoration
    /// uses this so order-sensitive float kernels (and the rewiring
    /// engine's slot bookkeeping) resume bitwise-identically.
    ///
    /// The input must satisfy the storage conventions of this type: the
    /// lists are symmetric (`v ∈ adj[u]` as many times as `u ∈ adj[v]`)
    /// and each self-loop at `u` stores `u` twice in `adj[u]`.
    ///
    /// # Errors
    /// Returns the first invariant violation found (out-of-range neighbor,
    /// odd loop-entry count, asymmetry) as a message.
    pub fn from_adjacency(adj: Vec<Vec<NodeId>>) -> Result<Self, String> {
        let total: usize = adj.iter().map(Vec::len).sum();
        if !total.is_multiple_of(2) {
            return Err(format!("odd total neighbor-entry count {total}"));
        }
        let g = Self {
            adj,
            num_edges: total / 2,
        };
        g.validate()?;
        Ok(g)
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges, counting each multi-edge copy once and each
    /// self-loop once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Average degree `k̄ = 2m / n` (Eq. 1). Zero for an empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Reserves neighbor-list capacity so node `u` can reach degree
    /// `degrees[u]` without reallocating (self-loops store two entries
    /// but also count twice toward the degree, so the target degree *is*
    /// the required entry count). Used before bulk edge insertion — e.g.
    /// stub matching toward a known target degree vector — to keep the
    /// insertion loop allocation-free.
    ///
    /// # Panics
    /// Panics if `degrees.len()` differs from the node count.
    pub fn reserve_neighbors(&mut self, degrees: &[u32]) {
        assert_eq!(degrees.len(), self.adj.len(), "degree length mismatch");
        for (nbrs, &d) in self.adj.iter_mut().zip(degrees) {
            let want = d as usize;
            if want > nbrs.len() {
                nbrs.reserve_exact(want - nbrs.len());
            }
        }
    }

    /// Appends a new isolated node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        (self.adj.len() - 1) as NodeId
    }

    /// Adds an undirected edge `{u, v}`; `u == v` adds a self-loop.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adj.len()
        );
        if u == v {
            self.adj[u as usize].push(u);
            self.adj[u as usize].push(u);
        } else {
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
        }
        self.num_edges += 1;
    }

    /// Removes one copy of edge `{u, v}` if present; returns whether an
    /// edge was removed. O(deg(u) + deg(v)).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let pos_u = self.adj[u as usize].iter().position(|&x| x == v);
        let Some(pu) = pos_u else { return false };
        if u == v {
            // Remove two stored copies of the loop endpoint.
            self.adj[u as usize].swap_remove(pu);
            let second = self.adj[u as usize]
                .iter()
                .position(|&x| x == u)
                .expect("self-loop invariant: loops are stored twice");
            self.adj[u as usize].swap_remove(second);
        } else {
            self.adj[u as usize].swap_remove(pu);
            let pv = self.adj[v as usize]
                .iter()
                .position(|&x| x == u)
                .expect("undirected invariant: reverse entry exists");
            self.adj[v as usize].swap_remove(pv);
        }
        self.num_edges -= 1;
        true
    }

    /// Degree of `u` (self-loops count twice, per the `A_ii` convention).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Neighbor list of `u` (multi-edges repeated; each self-loop
    /// contributes two copies of `u`).
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Adjacency-matrix entry `A_uv`: edge multiplicity for `u != v`,
    /// twice the loop count for `u == v`. O(deg(u)); use
    /// [`crate::index::MultiplicityIndex`] for repeated lookups.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        self.adj[u as usize].iter().filter(|&&x| x == v).count()
    }

    /// Whether at least one edge `{u, v}` exists. Scans the smaller
    /// endpoint's list.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(&b)
    }

    /// Iterates every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(|i| i as NodeId)
    }

    /// Iterates every edge exactly once as `(u, v)` with `u <= v`.
    /// Multi-edges are yielded once per copy; each self-loop once.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            let mut loops_seen = 0usize;
            nbrs.iter().filter_map(move |&v| {
                if v > u {
                    Some((u, v))
                } else if v == u {
                    // Each loop is stored twice; yield every other copy.
                    loops_seen += 1;
                    if loops_seen.is_multiple_of(2) {
                        Some((u, u))
                    } else {
                        None
                    }
                } else {
                    None
                }
            })
        })
    }

    /// Maximum degree; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Degree vector `{n(k)}_k` indexed `0 ..= k_max`.
    pub fn degree_vector(&self) -> DegreeVector {
        let mut dv = vec![0usize; self.max_degree() + 1];
        for nbrs in &self.adj {
            dv[nbrs.len()] += 1;
        }
        dv
    }

    /// Number of self-loop edges in the whole graph.
    pub fn num_self_loops(&self) -> usize {
        self.adj
            .iter()
            .enumerate()
            .map(|(u, nbrs)| nbrs.iter().filter(|&&v| v as usize == u).count() / 2)
            .sum()
    }

    /// Number of edge copies beyond the first between each node pair.
    pub fn num_multi_edges(&self) -> usize {
        let mut extra = 0usize;
        let mut seen: FxHashMap<NodeId, usize> = FxHashMap::default();
        for (u, nbrs) in self.adj.iter().enumerate() {
            seen.clear();
            for &v in nbrs {
                if (v as usize) >= u {
                    *seen.entry(v).or_insert(0) += 1;
                }
            }
            for (&v, &cnt) in seen.iter() {
                let copies = if v as usize == u { cnt / 2 } else { cnt };
                extra += copies.saturating_sub(1);
            }
        }
        extra
    }

    /// Whether the graph is simple (no self-loops, no multi-edges).
    pub fn is_simple(&self) -> bool {
        self.num_self_loops() == 0 && self.num_multi_edges() == 0
    }

    /// Returns a simple copy: multi-edges collapsed to one copy, self-loops
    /// dropped. Mirrors the paper's dataset preprocessing ("removing
    /// multiple edges and the directions of edges").
    pub fn simplified(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.num_edges);
        let mut seen: sgr_util::FxHashSet<(NodeId, NodeId)> = sgr_util::FxHashSet::default();
        for (u, v) in self.edges() {
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        Graph::from_edges(self.num_nodes(), &edges)
    }

    /// Freezes the current state into an immutable CSR snapshot
    /// (order-preserving; see [`crate::CsrGraph::freeze`]). Read-only
    /// consumers should be handed the snapshot, not the mutable graph.
    pub fn freeze(&self) -> crate::CsrGraph {
        crate::CsrGraph::freeze(self)
    }

    /// Checks internal invariants; used by tests and debug assertions.
    /// Returns an error message describing the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.adj.len();
        let mut total_deg = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            total_deg += nbrs.len();
            let mut self_copies = 0usize;
            for &v in nbrs {
                if (v as usize) >= n {
                    return Err(format!("node {u} lists out-of-range neighbor {v}"));
                }
                if v as usize == u {
                    self_copies += 1;
                }
            }
            if !self_copies.is_multiple_of(2) {
                return Err(format!("node {u} has an odd number of loop entries"));
            }
        }
        if total_deg != 2 * self.num_edges {
            return Err(format!(
                "handshake violation: sum of degrees {total_deg} != 2m = {}",
                2 * self.num_edges
            ));
        }
        // Symmetry: count of v in adj[u] equals count of u in adj[v].
        for u in 0..n {
            let mut counts: FxHashMap<NodeId, isize> = FxHashMap::default();
            for &v in &self.adj[u] {
                if (v as usize) > u {
                    *counts.entry(v).or_insert(0) += 1;
                }
            }
            for (&v, &c) in counts.iter() {
                let back = self.adj[v as usize]
                    .iter()
                    .filter(|&&x| x as usize == u)
                    .count() as isize;
                if back != c {
                    return Err(format!(
                        "asymmetry between {u} and {v}: {c} forward vs {back} backward"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.average_degree(), 2.0);
        assert_eq!(g.max_degree(), 2);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Graph::with_nodes(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.degree_vector(), vec![0]);
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_convention() {
        // A single self-loop: degree 2, A_ii = 2 (Newman's convention,
        // which the paper adopts).
        let mut g = Graph::with_nodes(1);
        g.add_edge(0, 0);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.multiplicity(0, 0), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_self_loops(), 1);
        assert!(!g.is_simple());
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 0)]);
        g.validate().unwrap();
    }

    #[test]
    fn multi_edges_counted() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.multiplicity(0, 1), 3);
        assert_eq!(g.multiplicity(1, 0), 3);
        assert_eq!(g.num_multi_edges(), 2);
        assert!(!g.is_simple());
        assert_eq!(g.edges().count(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut g = triangle();
        g.add_edge(1, 1); // loop
        g.add_edge(0, 2); // multi-edge copy
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 2), (1, 1), (1, 2)]);
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        g.validate().unwrap();

        // Loop removal restores both copies.
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        assert!(g.remove_edge(0, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.num_edges(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_one_copy_of_multi_edge() {
        let mut g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert!(g.remove_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    fn degree_vector_matches_definition() {
        // Star with 3 leaves: one node of degree 3, three of degree 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree_vector(), vec![0, 3, 0, 1]);
    }

    #[test]
    fn simplified_removes_loops_and_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        let s = g.simplified();
        assert!(s.is_simple());
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1));
        assert!(s.has_edge(1, 2));
        assert_eq!(s.num_nodes(), 3);
    }

    #[test]
    fn add_node_extends() {
        let mut g = triangle();
        let v = g.add_node();
        assert_eq!(v, 3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.degree(3), 0);
        g.add_edge(3, 0);
        assert!(g.has_edge(0, 3));
        g.validate().unwrap();
    }

    #[test]
    fn from_adjacency_preserves_order() {
        let mut g = triangle();
        g.add_edge(1, 1);
        g.add_edge(0, 2);
        let adj: Vec<Vec<NodeId>> = g.nodes().map(|u| g.neighbors(u).to_vec()).collect();
        let back = Graph::from_adjacency(adj).unwrap();
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.nodes() {
            assert_eq!(back.neighbors(u), g.neighbors(u));
        }
        back.validate().unwrap();
    }

    #[test]
    fn from_adjacency_rejects_invalid() {
        // Asymmetric: 0 lists 1 but 1 does not list 0.
        assert!(Graph::from_adjacency(vec![vec![1], vec![]]).is_err());
        // Out-of-range neighbor.
        assert!(Graph::from_adjacency(vec![vec![5], vec![0]]).is_err());
        // Single loop entry (loops must be stored twice).
        assert!(Graph::from_adjacency(vec![vec![0], vec![1]]).is_err());
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn has_edge_scans_smaller_side() {
        let mut g = Graph::with_nodes(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(4, 0));
        assert!(!g.has_edge(1, 2));
    }
}
