//! # sgr-graph
//!
//! Graph substrate for the social-graph-restoration workspace.
//!
//! The paper's model (§III-A) is a connected, undirected graph in which
//! **multiple edges and self-loops are allowed** (the restoration method's
//! stub-matching phase can create both), with the adjacency convention
//! `A_ij` = number of edges between `v_i` and `v_j` for `i ≠ j` and
//! `A_ii` = twice the number of self-loops of `v_i`.
//!
//! [`Graph`] implements exactly that model as an adjacency-list multigraph:
//! a self-loop at `u` stores `u` twice in `u`'s neighbor list, so
//! `degree(u) == adj[u].len()` is consistent with the handshake lemma and
//! with the `A_ii` convention.
//!
//! ## The read/write split
//!
//! [`Graph`] is the **write-side** type: construction, stub matching, and
//! rewiring mutate it in place. Every **read-only** consumer — property
//! kernels, component labeling, crawlers, estimator harnesses, layout —
//! is written against the [`GraphView`] trait instead, which exposes just
//! node/edge counts and neighbor slices. Two implementations exist:
//!
//! * [`Graph`] itself, so exploratory code can analyze a graph without an
//!   extra copy;
//! * [`CsrGraph`], an immutable compressed-sparse-row snapshot produced by
//!   [`CsrGraph::freeze`] (order-preserving, results bitwise-identical to
//!   the adjacency-list backend) or [`CsrGraph::freeze_sorted`]
//!   (binary-search membership). Pipelines freeze once after the last
//!   mutation and hand the snapshot to every downstream reader; the flat
//!   arena removes per-node pointer chasing from BFS-style kernels.
//!
//! Additional substrate:
//! * [`components`] — connected components, largest-component extraction
//!   (the paper's dataset preprocessing step);
//! * [`index`] — an O(1) multiplicity index (`A_ij` lookups) for triangle
//!   and clustering algorithms;
//! * [`io`] — whitespace-separated edge-list reading/writing;
//! * [`snapshot`] — versioned, checksummed binary snapshots of CSR arenas
//!   and the container format the restoration pipeline's crash-safe
//!   checkpoints build on.

mod graph;

pub mod components;
pub mod csr;
pub mod index;
pub mod io;
pub mod snapshot;
pub mod view;

pub use csr::{CsrGraph, RelabeledCsr};
pub use graph::{DegreeVector, Graph, NodeId};
pub use snapshot::SnapshotError;
pub use view::GraphView;
