//! # sgr-graph
//!
//! Graph substrate for the social-graph-restoration workspace.
//!
//! The paper's model (§III-A) is a connected, undirected graph in which
//! **multiple edges and self-loops are allowed** (the restoration method's
//! stub-matching phase can create both), with the adjacency convention
//! `A_ij` = number of edges between `v_i` and `v_j` for `i ≠ j` and
//! `A_ii` = twice the number of self-loops of `v_i`.
//!
//! [`Graph`] implements exactly that model as an adjacency multigraph:
//! a self-loop at `u` stores `u` twice in `u`'s neighbor list, so
//! `degree(u) == neighbors(u).len()` is consistent with the handshake
//! lemma and with the `A_ii` convention.
//!
//! ## Storage model
//!
//! [`Graph`] keeps **every neighbor list in one flat arena** — per-node
//! extents over a single `Vec<NodeId>` slab, not one heap `Vec` per node.
//! The restoration pipeline makes that layout natural: targeting fixes
//! every node's degree *before* wiring, so
//! [`Graph::reserve_neighbors`] lays the extents out tightly at exactly
//! their target capacities, stub matching appends into pre-sized slots
//! with zero reallocations, and the double-edge-swap rewiring phase is
//! degree-preserving — each committed swap removes a neighbor entry from
//! a node before adding one back, so per-node occupancy never exceeds the
//! reserved extent even mid-commit, and **no extent ever grows or moves
//! after reservation**. Incremental builders without a known degree
//! sequence (generators, crawl subgraphs) run the same type in a dynamic
//! layout where overflowing extents relocate within the slab. Mutations
//! reproduce the old per-node-`Vec` element movement exactly; the retired
//! representation survives as [`reference::ReferenceGraph`], the oracle
//! the arena is property-tested against. The full invariant catalogue is
//! on [`Graph`]'s type-level docs.
//!
//! ## The read/write split
//!
//! [`Graph`] is the **write-side** type: construction, stub matching, and
//! rewiring mutate it in place. Every **read-only** consumer — property
//! kernels, component labeling, crawlers, estimator harnesses, layout —
//! is written against the [`GraphView`] trait instead, which exposes just
//! node/edge counts and neighbor slices. Two implementations exist:
//!
//! * [`Graph`] itself, so exploratory code can analyze a graph without an
//!   extra copy;
//! * [`CsrGraph`], an immutable compressed-sparse-row snapshot produced by
//!   [`CsrGraph::freeze`] (order-preserving, results bitwise-identical to
//!   the adjacency-list backend) or [`CsrGraph::freeze_sorted`]
//!   (binary-search membership). Pipelines freeze once after the last
//!   mutation and hand the snapshot to every downstream reader; the flat
//!   arena removes per-node pointer chasing from BFS-style kernels.
//!
//! Additional substrate:
//! * [`components`] — connected components, largest-component extraction
//!   (the paper's dataset preprocessing step);
//! * [`index`] — an O(1) multiplicity index (`A_ij` lookups) for triangle
//!   and clustering algorithms;
//! * [`io`] — whitespace-separated edge-list reading/writing;
//! * [`snapshot`] — versioned, checksummed binary snapshots of CSR arenas
//!   and the container format the restoration pipeline's crash-safe
//!   checkpoints build on.

mod graph;

pub mod components;
pub mod csr;
pub mod index;
pub mod io;
pub mod reference;
pub mod snapshot;
pub mod view;

pub use csr::{CsrGraph, RelabeledCsr};
pub use graph::{DegreeVector, Graph, GraphError, NodeId};
pub use snapshot::SnapshotError;
pub use view::GraphView;
