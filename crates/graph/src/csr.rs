//! Immutable CSR (compressed sparse row) snapshot of a graph.
//!
//! The adjacency-list [`Graph`](crate::Graph) is optimized for mutation —
//! construction
//! appends, rewiring swaps — at the cost of one heap allocation per node:
//! every read-only traversal pays a `Vec` header dereference and a jump to
//! a separately allocated (and capacity-overcommitted) buffer. The
//! evaluation pipeline, however, spends most of its time in *read-only*
//! kernels: BFS sweeps, Brandes betweenness, triangle counting, power
//! iteration.
//!
//! [`CsrGraph`] packs all neighbor lists into a single arena:
//!
//! ```text
//! offsets:   [0, d(0), d(0)+d(1), …, 2m]          (n + 1 entries)
//! neighbors: [ N(0) … | N(1) … | … | N(n-1) … ]   (2m entries)
//! ```
//!
//! `neighbors(u)` is two loads into contiguous memory; the whole structure
//! spans two allocations regardless of graph size, so BFS-style kernels
//! stop paying per-node pointer chasing and fragmented-heap cache misses.
//!
//! [`CsrGraph::freeze`] preserves each node's neighbor **order**, so every
//! iteration-order-sensitive computation (floating-point accumulation,
//! BFS discovery order, RNG-free tie-breaking) produces bitwise-identical
//! results on either representation — the property-based tests in
//! `sgr-props` rely on this. [`CsrGraph::freeze_sorted`] additionally
//! sorts each neighbor slice ascending, enabling binary-search membership
//! queries and more sequential access patterns, at the cost of that
//! order-identity guarantee.

use crate::view::GraphView;
use crate::{DegreeVector, NodeId};

/// Immutable CSR snapshot of an undirected multigraph with self-loops.
///
/// Follows the same storage conventions as [`Graph`]: a parallel edge
/// stores its endpoint once per copy, a self-loop at `u` stores `u` twice,
/// so `degree(u) == neighbors(u).len()` and the neighbor arena has exactly
/// `2 m` entries.
///
/// [`Graph`]: crate::Graph
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// `offsets[u] .. offsets[u + 1]` indexes `u`'s slice of `neighbors`.
    offsets: Vec<u32>,
    /// The neighbor arena (`2 m` entries).
    neighbors: Vec<NodeId>,
    /// Edge count (each multi-edge copy once, each self-loop once).
    num_edges: usize,
    /// Whether every per-node neighbor slice is sorted ascending.
    sorted: bool,
}

impl CsrGraph {
    /// Freezes any read-only view into a CSR snapshot, preserving each
    /// node's neighbor order (so results of order-sensitive algorithms are
    /// bitwise-identical to the source representation's).
    ///
    /// # Panics
    /// Panics if the view has more than `u32::MAX` neighbor entries
    /// (≈ 2.1 billion edges) — the offset array is deliberately `u32` to
    /// halve its cache footprint.
    pub fn freeze<G: GraphView + ?Sized>(g: &G) -> Self {
        let n = g.num_nodes();
        let total: usize = 2 * g.num_edges();
        assert!(
            u32::try_from(total).is_ok(),
            "graph too large for u32 CSR offsets ({total} neighbor entries)"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for u in g.nodes() {
            neighbors.extend_from_slice(g.neighbors(u));
            offsets.push(neighbors.len() as u32);
        }
        debug_assert_eq!(neighbors.len(), total, "handshake violation in source view");
        Self {
            offsets,
            neighbors,
            num_edges: g.num_edges(),
            sorted: false,
        }
    }

    /// As [`freeze`](Self::freeze), but sorts each neighbor slice
    /// ascending. Membership queries ([`multiplicity`](Self::multiplicity),
    /// [`has_edge`](Self::has_edge)) then run in O(log deg) via binary
    /// search, and traversals touch per-node state in ascending order.
    pub fn freeze_sorted<G: GraphView + ?Sized>(g: &G) -> Self {
        let mut csr = Self::freeze(g);
        for u in 0..csr.num_nodes() {
            let (lo, hi) = (csr.offsets[u] as usize, csr.offsets[u + 1] as usize);
            csr.neighbors[lo..hi].sort_unstable();
        }
        csr.sorted = true;
        csr
    }

    /// Freezes `g` into a snapshot whose node ids are **relabeled in
    /// degree-descending order** (ties broken by ascending old id, so the
    /// relabeling is deterministic), returning the snapshot together with
    /// both id maps.
    ///
    /// Traversal kernels that keep per-node state (Brandes' σ/δ/dist
    /// arrays, BFS visited bitsets) touch high-degree nodes far more often
    /// than leaves; packing the hubs into the lowest ids concentrates
    /// those random accesses into the first few cache lines/pages of each
    /// state array. Neighbor slices are sorted ascending in the **new**
    /// id space (the snapshot reports [`is_sorted`](Self::is_sorted)), so
    /// per-slice access walks hub state in order too.
    ///
    /// The result is the same graph up to isomorphism — degree vector and
    /// relabeled edge multiset are preserved exactly — but *not* the same
    /// labeled graph, so order-sensitive float kernels produce different
    /// (equally valid) results than on [`freeze`](Self::freeze); use the
    /// id maps to translate per-node outputs back.
    pub fn freeze_relabeled<G: GraphView + ?Sized>(g: &G) -> RelabeledCsr {
        let n = g.num_nodes();
        let total: usize = 2 * g.num_edges();
        assert!(
            u32::try_from(total).is_ok(),
            "graph too large for u32 CSR offsets ({total} neighbor entries)"
        );
        let mut new_to_old: Vec<NodeId> = (0..n as NodeId).collect();
        new_to_old.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
        let mut old_to_new = vec![0 as NodeId; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = new as NodeId;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for &old in &new_to_old {
            let start = neighbors.len();
            neighbors.extend(g.neighbors(old).iter().map(|&v| old_to_new[v as usize]));
            neighbors[start..].sort_unstable();
            offsets.push(neighbors.len() as u32);
        }
        debug_assert_eq!(neighbors.len(), total, "handshake violation in source view");
        RelabeledCsr {
            csr: Self {
                offsets,
                neighbors,
                num_edges: g.num_edges(),
                sorted: true,
            },
            old_to_new,
            new_to_old,
        }
    }

    /// Number of nodes (including isolated ones).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of edges, counting each multi-edge copy once and each
    /// self-loop once.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u` (self-loops count twice).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Neighbor slice of `u` in the arena.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Whether neighbor slices are sorted (snapshot built by
    /// [`freeze_sorted`](Self::freeze_sorted)).
    #[inline]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Adjacency-matrix entry `A_uv`. O(log deg(u)) on sorted snapshots,
    /// O(deg(u)) otherwise.
    pub fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        let nbrs = self.neighbors(u);
        if self.sorted {
            let lo = nbrs.partition_point(|&w| w < v);
            let hi = nbrs.partition_point(|&w| w <= v);
            hi - lo
        } else {
            nbrs.iter().filter(|&&x| x == v).count()
        }
    }

    /// Whether at least one edge `{u, v}` exists. O(log deg) on sorted
    /// snapshots; scans the smaller endpoint's slice otherwise.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(a);
        if self.sorted {
            nbrs.binary_search(&b).is_ok()
        } else {
            nbrs.contains(&b)
        }
    }

    /// Maximum degree; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Degree vector `{n(k)}_k` indexed `0 ..= k_max`.
    pub fn degree_vector(&self) -> DegreeVector {
        let mut dv = vec![0usize; self.max_degree() + 1];
        for w in self.offsets.windows(2) {
            dv[(w[1] - w[0]) as usize] += 1;
        }
        dv
    }

    /// Raw arena access for the on-disk snapshot writer
    /// ([`crate::snapshot`]): `(offsets, neighbors, num_edges, sorted)`.
    pub(crate) fn raw_parts(&self) -> (&[u32], &[NodeId], usize, bool) {
        (&self.offsets, &self.neighbors, self.num_edges, self.sorted)
    }

    /// Rebuilds a snapshot from raw arenas read back from disk, after the
    /// snapshot reader has validated them (monotone offsets, in-range
    /// neighbor ids, consistent edge count).
    pub(crate) fn from_raw_parts(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        num_edges: usize,
        sorted: bool,
    ) -> Self {
        Self {
            offsets,
            neighbors,
            num_edges,
            sorted,
        }
    }

    /// Thaws the snapshot back into a mutable [`Graph`] with the same
    /// node count and edge multiset. Per-node neighbor *order* is **not**
    /// preserved (the graph is rebuilt by re-adding edges in
    /// [`GraphView::edges`] order), so order-sensitive kernels may
    /// produce different — equally valid — floating-point results on the
    /// thawed graph than on the snapshot; re-freeze the result if the
    /// bitwise-identity guarantee is needed again.
    ///
    /// [`Graph`]: crate::Graph
    pub fn thaw(&self) -> crate::Graph {
        let mut g = crate::Graph::with_nodes(self.num_nodes());
        for (u, v) in GraphView::edges(self) {
            g.add_edge(u, v);
        }
        g
    }
}

/// A degree-descending relabeled snapshot plus its id maps; produced by
/// [`CsrGraph::freeze_relabeled`].
#[derive(Clone, Debug)]
pub struct RelabeledCsr {
    /// The snapshot in the new (degree-descending) id space.
    pub csr: CsrGraph,
    /// `old_to_new[old]` — the new id of original node `old`.
    pub old_to_new: Vec<NodeId>,
    /// `new_to_old[new]` — the original id of snapshot node `new`.
    pub new_to_old: Vec<NodeId>,
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        CsrGraph::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, u)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        CsrGraph::degree(self, u)
    }

    fn multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        CsrGraph::multiplicity(self, u, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    fn max_degree(&self) -> usize {
        CsrGraph::max_degree(self)
    }

    fn degree_vector(&self) -> DegreeVector {
        CsrGraph::degree_vector(self)
    }
}

impl From<&crate::Graph> for CsrGraph {
    fn from(g: &crate::Graph) -> Self {
        CsrGraph::freeze(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn messy() -> Graph {
        let mut g = Graph::from_edges(5, &[(0, 1), (0, 1), (1, 2), (2, 0), (3, 1)]);
        g.add_edge(4, 4);
        g.add_edge(1, 1);
        g
    }

    #[test]
    fn freeze_preserves_structure_and_order() {
        let g = messy();
        let csr = CsrGraph::freeze(&g);
        assert_eq!(csr.num_nodes(), g.num_nodes());
        assert_eq!(csr.num_edges(), g.num_edges());
        assert_eq!(csr.average_degree(), g.average_degree());
        assert_eq!(csr.max_degree(), g.max_degree());
        assert_eq!(csr.degree_vector(), g.degree_vector());
        assert_eq!(csr.num_self_loops(), g.num_self_loops());
        for u in g.nodes() {
            assert_eq!(csr.neighbors(u), g.neighbors(u), "order changed at {u}");
            assert_eq!(csr.degree(u), g.degree(u));
        }
        // Identical edge sequences (not just multisets).
        assert_eq!(
            GraphView::edges(&csr).collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sorted_freeze_sorts_but_keeps_multiset() {
        let g = messy();
        let csr = CsrGraph::freeze_sorted(&g);
        assert!(csr.is_sorted());
        for u in g.nodes() {
            let slice = csr.neighbors(u);
            assert!(slice.windows(2).all(|w| w[0] <= w[1]), "unsorted at {u}");
            let mut expect = g.neighbors(u).to_vec();
            expect.sort_unstable();
            assert_eq!(slice, expect.as_slice());
        }
    }

    #[test]
    fn membership_queries_match_graph() {
        let g = messy();
        for csr in [CsrGraph::freeze(&g), CsrGraph::freeze_sorted(&g)] {
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(csr.multiplicity(u, v), g.multiplicity(u, v), "({u},{v})");
                    assert_eq!(csr.has_edge(u, v), g.has_edge(u, v), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn thaw_roundtrip() {
        let g = messy();
        let back = CsrGraph::freeze(&g).thaw();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        back.validate().unwrap();
    }

    #[test]
    fn empty_and_isolated() {
        let csr = CsrGraph::freeze(&Graph::with_nodes(0));
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(GraphView::edges(&csr).count(), 0);

        let csr = CsrGraph::freeze(&Graph::with_nodes(3));
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.degree(1), 0);
        assert!(csr.neighbors(1).is_empty());
    }

    #[test]
    fn relabeled_freeze_is_degree_descending_isomorphism() {
        let mut g = messy();
        g.add_edge(1, 4); // break some degree ties
        let r = CsrGraph::freeze_relabeled(&g);
        assert!(r.csr.is_sorted());
        assert_eq!(r.csr.num_nodes(), g.num_nodes());
        assert_eq!(r.csr.num_edges(), g.num_edges());
        assert_eq!(r.csr.degree_vector(), g.degree_vector());
        // Maps are inverse bijections.
        for old in g.nodes() {
            assert_eq!(r.new_to_old[r.old_to_new[old as usize] as usize], old);
            // Degrees carried over through the relabeling.
            assert_eq!(r.csr.degree(r.old_to_new[old as usize]), g.degree(old));
        }
        // New ids are ordered by non-increasing degree.
        for new in 1..r.csr.num_nodes() {
            assert!(r.csr.degree(new as NodeId - 1) >= r.csr.degree(new as NodeId));
        }
        // Ties broken by ascending old id.
        for new in 1..r.csr.num_nodes() {
            if r.csr.degree(new as NodeId - 1) == r.csr.degree(new as NodeId) {
                assert!(r.new_to_old[new - 1] < r.new_to_old[new]);
            }
        }
        // Edge multiset preserved under the mapping (multi-edges, loops).
        let mut want: Vec<(NodeId, NodeId)> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (r.old_to_new[u as usize], r.old_to_new[v as usize]);
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        want.sort_unstable();
        let mut have: Vec<(NodeId, NodeId)> = GraphView::edges(&r.csr)
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        have.sort_unstable();
        assert_eq!(have, want);
    }

    #[test]
    fn relabeled_freeze_empty_and_isolated() {
        let r = CsrGraph::freeze_relabeled(&Graph::with_nodes(0));
        assert_eq!(r.csr.num_nodes(), 0);
        assert!(r.old_to_new.is_empty());

        let r = CsrGraph::freeze_relabeled(&Graph::from_edges(4, &[(2, 3)]));
        // Isolated nodes 0 and 1 sink to the highest new ids.
        assert_eq!(r.csr.degree(0), 1);
        assert_eq!(r.csr.degree(3), 0);
        assert_eq!(&r.new_to_old[..2], &[2, 3]);
    }

    #[test]
    fn refreeze_from_csr() {
        // freeze is generic over any view, including another snapshot.
        let g = messy();
        let once = CsrGraph::freeze(&g);
        let twice = CsrGraph::freeze(&once);
        for u in g.nodes() {
            assert_eq!(once.neighbors(u), twice.neighbors(u));
        }
    }
}
