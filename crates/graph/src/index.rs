//! O(1)-amortized adjacency-multiplicity index with a hybrid per-node
//! representation.
//!
//! Triangle counting, the clustering-coefficient estimator
//! (`A_{x_{i-1}, x_{i+1}}` lookups), and the rewiring engine all need many
//! `A_uv` queries. Scanning neighbor lists makes each query O(deg); this
//! index trades one pass of preprocessing and O(m) memory for constant-time
//! queries, and supports incremental updates so the rewiring engine can
//! keep it consistent while mutating the graph.
//!
//! **Representation.** Social-graph degree distributions are heavy-tailed:
//! almost every node has a small neighborhood, while a few hubs are huge.
//! A hash map per node — the obvious choice — makes the *common* case pay
//! hashing, probing, and cache-unfriendly layout on every query. Instead,
//! each node stores its `(neighbor, multiplicity)` pairs in one of two
//! forms:
//!
//! * [`NodeRep::Sorted`] — a sorted `Vec<(NodeId, u32)>`, queried by
//!   branch-light binary search. Used while the node has at most
//!   [`SMALL_THRESHOLD`] distinct neighbors; at those sizes the whole list
//!   spans a few cache lines and beats hashing in both latency and memory.
//! * [`NodeRep::Hashed`] — an `FxHashMap`, used above the threshold so hub
//!   updates stay O(1) instead of O(deg) vector shifts.
//!
//! Nodes promote to `Hashed` when they outgrow the threshold and never
//! demote (degree is invariant under rewiring, the heaviest user). The
//! iteration order of [`MultiplicityIndex::entries`] is unspecified — it
//! differs between the two representations — so consumers must not rely on
//! it; every algorithm in this workspace folds entries commutatively.

use crate::view::GraphView;
use crate::NodeId;
use sgr_util::FxHashMap;

/// Maximum number of distinct neighbors stored in sorted-vec form.
///
/// Confirmed by measurement (the `small_threshold_sweep` bench in
/// `crates/bench/benches/threshold.rs`; single-core container, release
/// build, 2026-07; median ns/op over cutoffs {16, 32, 64, 128, 256}).
/// Three degree profiles × three workloads showed the cutoff is a real
/// trade-off, not a free parameter:
///
/// * Erdős–Rényi k̄ ≈ 8 (every node below every cutoff): flat — lookup
///   ≈ 24 ns, churn ≈ 104 ns, iterate ≈ 29 ns at all cutoffs.
/// * Holme–Kim m = 8 heavy tail: point lookups favor hashing *early*
///   (18 → 31 → 40 ns at 16 / 64 / 256) and edge churn mildly agrees
///   (92 → 106 → 131 ns), but full `entries()` iteration — the triangle
///   and shared-partner mix — favors sorted vecs *late* (126 → 78 →
///   43 ns at 16 / 64 / 256).
/// * Watts–Strogatz k = 100 (≈ 200 distinct neighbors per node, all on
///   one side of each cutoff): hashed nodes iterate 3.4× slower
///   (627 vs 186 ns) while sorted-vec nodes churn 2.3× slower
///   (403 vs 176 ns) — each extreme has a ≥ 2.3× pathology.
///
/// No cutoff dominates; 64 is the bounded-regret middle: on the
/// heavy-tailed profile (the case this workspace actually runs) every
/// workload stays within ≈ 1.8× of its per-workload best, whereas 16
/// costs 2.9× on iteration and 256 costs 2.2× on lookups plus the
/// mid-degree churn pathology. 128 measures within noise of 64 except a
/// further lookup regression (31 → 35 ns), so the lower value stands.
pub const SMALL_THRESHOLD: usize = 64;

/// Per-node storage for `(neighbor, A_uv)` pairs. See the module docs for
/// the size policy.
#[derive(Clone, Debug)]
pub enum NodeRep {
    /// Sorted by neighbor id; binary-searched.
    Sorted(Vec<(NodeId, u32)>),
    /// Hash-mapped; used above [`SMALL_THRESHOLD`] distinct neighbors.
    Hashed(FxHashMap<NodeId, u32>),
}

impl Default for NodeRep {
    fn default() -> Self {
        NodeRep::Sorted(Vec::new())
    }
}

impl NodeRep {
    #[inline]
    fn get(&self, v: NodeId) -> u32 {
        match self {
            NodeRep::Sorted(list) => match list.binary_search_by_key(&v, |&(w, _)| w) {
                Ok(i) => list[i].1,
                Err(_) => 0,
            },
            NodeRep::Hashed(map) => map.get(&v).copied().unwrap_or(0),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            NodeRep::Sorted(list) => list.len(),
            NodeRep::Hashed(map) => map.len(),
        }
    }

    /// Adds `by` to the entry for `v`, creating it if absent. Returns the
    /// new distinct-neighbor count so the caller can decide on promotion.
    fn increment(&mut self, v: NodeId, by: u32) -> usize {
        match self {
            NodeRep::Sorted(list) => {
                match list.binary_search_by_key(&v, |&(w, _)| w) {
                    Ok(i) => list[i].1 += by,
                    Err(i) => list.insert(i, (v, by)),
                }
                list.len()
            }
            NodeRep::Hashed(map) => {
                *map.entry(v).or_insert(0) += by;
                map.len()
            }
        }
    }

    /// Subtracts `by` from the entry for `v`, removing it at zero.
    ///
    /// # Panics
    /// Panics if the entry is absent; debug-asserts it holds at least `by`.
    fn decrement(&mut self, v: NodeId, by: u32) {
        match self {
            NodeRep::Sorted(list) => {
                let i = list
                    .binary_search_by_key(&v, |&(w, _)| w)
                    .unwrap_or_else(|_| panic!("removing a non-existent edge from the index"));
                debug_assert!(list[i].1 >= by);
                list[i].1 -= by;
                if list[i].1 == 0 {
                    list.remove(i);
                }
            }
            NodeRep::Hashed(map) => {
                let entry = map
                    .get_mut(&v)
                    .expect("removing a non-existent edge from the index");
                debug_assert!(*entry >= by);
                *entry -= by;
                if *entry == 0 {
                    map.remove(&v);
                }
            }
        }
    }

    /// Converts a sorted list into hashed form (promotion).
    fn promote(&mut self) {
        if let NodeRep::Sorted(list) = self {
            let mut map = sgr_util::hash::fx_map_with_capacity(list.len() * 2);
            for &(v, c) in list.iter() {
                map.insert(v, c);
            }
            *self = NodeRep::Hashed(map);
        }
    }
}

/// Hybrid per-node index from neighbor id to adjacency-matrix entry `A_uv`
/// (multiplicity; `A_uu` = 2 × loop count).
#[derive(Clone, Debug)]
pub struct MultiplicityIndex {
    nodes: Vec<NodeRep>,
    /// Sorted-vec/hash cutoff; [`SMALL_THRESHOLD`] unless overridden by
    /// [`MultiplicityIndex::build_with_threshold`] (used by the bench that
    /// sweeps the cutoff).
    threshold: usize,
    /// Total structural mutations (`add_edge` + `remove_edge` calls),
    /// maintained only in debug builds. The rewiring engine asserts this
    /// is unchanged across rejected swap attempts.
    #[cfg(debug_assertions)]
    mutations: u64,
}

impl Default for MultiplicityIndex {
    fn default() -> Self {
        Self::with_nodes(0)
    }
}

impl MultiplicityIndex {
    /// Builds the index from any read-only view in O(n + m log k̄); nodes
    /// above [`SMALL_THRESHOLD`] distinct neighbors go straight to hashed
    /// form.
    pub fn build<G: GraphView + ?Sized>(g: &G) -> Self {
        Self::build_with_threshold(g, SMALL_THRESHOLD)
    }

    /// As [`build`](Self::build), with an explicit sorted-vec/hash cutoff.
    /// Exists so the `small_threshold_sweep` bench can measure candidate
    /// cutoffs; production code should use [`build`](Self::build).
    pub fn build_with_threshold<G: GraphView + ?Sized>(g: &G, threshold: usize) -> Self {
        let mut nodes: Vec<NodeRep> = Vec::with_capacity(g.num_nodes());
        let mut scratch: Vec<NodeId> = Vec::new();
        for u in g.nodes() {
            scratch.clear();
            scratch.extend_from_slice(g.neighbors(u));
            scratch.sort_unstable();
            // Run-length encode the sorted neighbor list.
            let mut list: Vec<(NodeId, u32)> = Vec::new();
            for &v in scratch.iter() {
                match list.last_mut() {
                    Some(last) if last.0 == v => last.1 += 1,
                    _ => list.push((v, 1)),
                }
            }
            let mut rep = NodeRep::Sorted(list);
            if rep.len() > threshold {
                rep.promote();
            }
            nodes.push(rep);
        }
        Self {
            nodes,
            threshold,
            #[cfg(debug_assertions)]
            mutations: 0,
        }
    }

    /// Creates an empty index over `n` nodes (all entries zero).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            nodes: (0..n).map(|_| NodeRep::default()).collect(),
            threshold: SMALL_THRESHOLD,
            #[cfg(debug_assertions)]
            mutations: 0,
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct neighbors of `u` (counting `u` itself if it has
    /// a loop).
    #[inline]
    pub fn num_distinct(&self, u: NodeId) -> usize {
        self.nodes[u as usize].len()
    }

    /// `A_uv` (0 when absent).
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> u32 {
        self.nodes[u as usize].get(v)
    }

    /// Whether any edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.get(u, v) > 0
    }

    /// Iterates `(neighbor, A_uv)` pairs of `u` (each neighbor once).
    /// Iteration order is unspecified and differs between representations.
    pub fn entries(&self, u: NodeId) -> Entries<'_> {
        match &self.nodes[u as usize] {
            NodeRep::Sorted(list) => Entries::Sorted(list.iter()),
            NodeRep::Hashed(map) => Entries::Hashed(map.iter()),
        }
    }

    /// The sorted `(neighbor, A_uv)` slice of `u`, if `u` is stored in
    /// small-vec form (`None` for hub nodes promoted to hashed form).
    ///
    /// The slice is strictly ascending in neighbor id — the invariant
    /// [`for_each_common`](Self::for_each_common)'s merge-intersection
    /// fast path relies on.
    #[inline]
    pub fn sorted_entries(&self, u: NodeId) -> Option<&[(NodeId, u32)]> {
        match &self.nodes[u as usize] {
            NodeRep::Sorted(list) => Some(list),
            NodeRep::Hashed(_) => None,
        }
    }

    /// Calls `f(w, A_xw, A_yw)` once for every **distinct common
    /// neighbor** `w` of `x` and `y` (i.e. `A_xw > 0` and `A_yw > 0`).
    /// Visit order is unspecified, like [`entries`](Self::entries).
    ///
    /// This is the hot kernel of the rewiring engines' swap evaluation
    /// (four common-neighbor scans per attempt). Representation-aware:
    ///
    /// * both nodes sorted (the overwhelmingly common case under
    ///   [`SMALL_THRESHOLD`]) — a branchless [`merge_common`] over the two
    ///   ascending slices, O(d̃_x + d̃_y) with no hashing or binary search;
    /// * either node hashed — iterate the side with fewer distinct
    ///   neighbors (using its sorted slice when available, so probes walk
    ///   memory in order) and probe the other in O(1).
    pub fn for_each_common<F: FnMut(NodeId, u32, u32)>(&self, x: NodeId, y: NodeId, mut f: F) {
        match (self.sorted_entries(x), self.sorted_entries(y)) {
            (Some(a), Some(b)) => merge_common(a, b, f),
            _ => {
                if self.num_distinct(x) <= self.num_distinct(y) {
                    for (w, a_xw) in self.entries(x) {
                        let a_yw = self.get(y, w);
                        if a_yw > 0 {
                            f(w, a_xw, a_yw);
                        }
                    }
                } else {
                    for (w, a_yw) in self.entries(y) {
                        let a_xw = self.get(x, w);
                        if a_xw > 0 {
                            f(w, a_xw, a_yw);
                        }
                    }
                }
            }
        }
    }

    /// Structural mutation count (debug builds only; always 0 in release).
    /// Used by the rewiring engine to assert rejected attempts touch
    /// nothing.
    #[inline]
    pub fn mutation_count(&self) -> u64 {
        #[cfg(debug_assertions)]
        {
            self.mutations
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }

    #[inline]
    fn note_mutation(&mut self) {
        #[cfg(debug_assertions)]
        {
            self.mutations += 1;
        }
    }

    /// Registers the addition of edge `{u, v}` (loop adds 2 to `A_uu`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.note_mutation();
        if u == v {
            self.bump(u, u, 2);
        } else {
            self.bump(u, v, 1);
            self.bump(v, u, 1);
        }
    }

    #[inline]
    fn bump(&mut self, u: NodeId, v: NodeId, by: u32) {
        let rep = &mut self.nodes[u as usize];
        let len = rep.increment(v, by);
        if len > self.threshold {
            rep.promote();
        }
    }

    /// Registers the removal of one copy of edge `{u, v}`.
    ///
    /// # Panics
    /// Panics if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        self.note_mutation();
        if u == v {
            self.nodes[u as usize].decrement(u, 2);
        } else {
            self.nodes[u as usize].decrement(v, 1);
            self.nodes[v as usize].decrement(u, 1);
        }
    }

    /// Consistency check against a graph; returns the first mismatch.
    pub fn validate_against<G: GraphView + ?Sized>(&self, g: &G) -> Result<(), String> {
        if self.nodes.len() != g.num_nodes() {
            return Err(format!(
                "index covers {} nodes, graph has {}",
                self.nodes.len(),
                g.num_nodes()
            ));
        }
        for u in g.nodes() {
            let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
            for &v in g.neighbors(u) {
                *counts.entry(v).or_insert(0) += 1;
            }
            if counts.len() != self.num_distinct(u) {
                return Err(format!("node {u}: neighbor-set size mismatch"));
            }
            for (&v, &c) in counts.iter() {
                if self.get(u, v) != c {
                    return Err(format!(
                        "A_{{{u},{v}}} mismatch: index {} vs graph {c}",
                        self.get(u, v)
                    ));
                }
            }
            if let NodeRep::Sorted(list) = &self.nodes[u as usize] {
                if !list.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(format!("node {u}: sorted list out of order"));
                }
            }
        }
        Ok(())
    }
}

/// Branchless sorted-slice intersection: calls `f(w, a_w, b_w)` for every
/// key present in both ascending `(key, value)` slices.
///
/// Cursor advancement is a data-dependent add (`cmp as usize`), not a
/// branch, so mispredict stalls disappear from the balanced-merge case.
/// When one cursor falls behind, a 4-wide unrolled catch-up loop counts
/// how many of the next four keys are still below the bound with four
/// independent compares — a form the autovectorizer can lift to SIMD —
/// and jumps the cursor by that count, giving galloping-style skips over
/// hub-vs-leaf skew without a branchy binary search.
pub fn merge_common<F: FnMut(NodeId, u32, u32)>(
    a: &[(NodeId, u32)],
    b: &[(NodeId, u32)],
    mut f: F,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (wa, va) = a[i];
        let (wb, vb) = b[j];
        if wa == wb {
            f(wa, va, vb);
            i += 1;
            j += 1;
            continue;
        }
        if wa < wb {
            i = advance4(a, i + 1, wb);
        } else {
            j = advance4(b, j + 1, wa);
        }
    }
}

/// Advances `i` past every key of `list` strictly below `bound`,
/// consuming quads with four branchless compares per step.
#[inline]
fn advance4(list: &[(NodeId, u32)], mut i: usize, bound: NodeId) -> usize {
    while i + 4 <= list.len() {
        let adv = (list[i].0 < bound) as usize
            + (list[i + 1].0 < bound) as usize
            + (list[i + 2].0 < bound) as usize
            + (list[i + 3].0 < bound) as usize;
        i += adv;
        if adv < 4 {
            return i;
        }
    }
    while i < list.len() && list[i].0 < bound {
        i += 1;
    }
    i
}

/// Iterator over one node's `(neighbor, A_uv)` pairs; see
/// [`MultiplicityIndex::entries`].
pub enum Entries<'a> {
    /// Over a sorted small-vec node.
    Sorted(std::slice::Iter<'a, (NodeId, u32)>),
    /// Over a hashed hub node.
    Hashed(std::collections::hash_map::Iter<'a, NodeId, u32>),
}

impl Iterator for Entries<'_> {
    type Item = (NodeId, u32);

    #[inline]
    fn next(&mut self) -> Option<(NodeId, u32)> {
        match self {
            Entries::Sorted(it) => it.next().copied(),
            Entries::Hashed(it) => it.next().map(|(&v, &c)| (v, c)),
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Entries::Sorted(it) => it.size_hint(),
            Entries::Hashed(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for Entries<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn build_matches_graph() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 1)]);
        g.add_edge(3, 3);
        let idx = MultiplicityIndex::build(&g);
        assert_eq!(idx.get(0, 1), 2);
        assert_eq!(idx.get(1, 0), 2);
        assert_eq!(idx.get(1, 2), 1);
        assert_eq!(idx.get(3, 3), 2);
        assert_eq!(idx.get(0, 3), 0);
        assert!(idx.has_edge(2, 0));
        assert!(!idx.has_edge(1, 3));
        idx.validate_against(&g).unwrap();
    }

    #[test]
    fn incremental_updates_stay_consistent() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let mut idx = MultiplicityIndex::build(&g);
        g.add_edge(2, 3);
        idx.add_edge(2, 3);
        g.add_edge(3, 3);
        idx.add_edge(3, 3);
        idx.validate_against(&g).unwrap();
        g.remove_edge(0, 1);
        idx.remove_edge(0, 1);
        g.remove_edge(3, 3);
        idx.remove_edge(3, 3);
        idx.validate_against(&g).unwrap();
        assert_eq!(idx.get(0, 1), 0);
        assert_eq!(idx.get(3, 3), 0);
    }

    #[test]
    fn entries_iterate_each_neighbor_once() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (0, 2)]);
        let idx = MultiplicityIndex::build(&g);
        let mut entries: Vec<_> = idx.entries(0).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 2), (2, 1)]);
    }

    #[test]
    #[should_panic]
    fn removing_absent_edge_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut idx = MultiplicityIndex::build(&g);
        idx.remove_edge(0, 1);
        idx.remove_edge(0, 1); // second removal must panic
    }

    #[test]
    fn validate_detects_mismatch() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let idx = MultiplicityIndex::with_nodes(2);
        assert!(idx.validate_against(&g).is_err());
    }

    #[test]
    fn hub_nodes_promote_to_hashed_and_stay_consistent() {
        // A star whose hub exceeds SMALL_THRESHOLD distinct neighbors.
        let n = SMALL_THRESHOLD + 20;
        let edges: Vec<(NodeId, NodeId)> = (1..=n as NodeId).map(|v| (0, v)).collect();
        let g = Graph::from_edges(n + 1, &edges);
        let idx = MultiplicityIndex::build(&g);
        assert!(matches!(idx.nodes[0], NodeRep::Hashed(_)));
        assert!(matches!(idx.nodes[1], NodeRep::Sorted(_)));
        idx.validate_against(&g).unwrap();
        assert_eq!(idx.num_distinct(0), n);
        assert_eq!(idx.entries(0).count(), n);
        for v in 1..=n as NodeId {
            assert_eq!(idx.get(0, v), 1);
            assert_eq!(idx.get(v, 0), 1);
        }
    }

    #[test]
    fn incremental_growth_promotes_at_threshold() {
        let n = SMALL_THRESHOLD + 5;
        let mut g = Graph::with_nodes(n + 1);
        let mut idx = MultiplicityIndex::with_nodes(n + 1);
        for v in 1..=n as NodeId {
            g.add_edge(0, v);
            idx.add_edge(0, v);
            idx.validate_against(&g).unwrap();
        }
        assert!(matches!(idx.nodes[0], NodeRep::Hashed(_)));
        // Removals keep hashed form consistent (no demotion).
        for v in 1..=n as NodeId {
            g.remove_edge(0, v);
            idx.remove_edge(0, v);
        }
        idx.validate_against(&g).unwrap();
        assert_eq!(idx.num_distinct(0), 0);
    }

    /// Common-neighbor reference: probe every node of the graph.
    fn naive_common(idx: &MultiplicityIndex, x: NodeId, y: NodeId) -> Vec<(NodeId, u32, u32)> {
        let mut out: Vec<(NodeId, u32, u32)> = (0..idx.num_nodes() as NodeId)
            .filter_map(|w| {
                let (a, b) = (idx.get(x, w), idx.get(y, w));
                (a > 0 && b > 0).then_some((w, a, b))
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn collected_common(idx: &MultiplicityIndex, x: NodeId, y: NodeId) -> Vec<(NodeId, u32, u32)> {
        let mut out = Vec::new();
        idx.for_each_common(x, y, |w, a, b| out.push((w, a, b)));
        out.sort_unstable();
        out
    }

    #[test]
    fn sorted_entries_only_for_small_nodes() {
        let n = SMALL_THRESHOLD + 10;
        let edges: Vec<(NodeId, NodeId)> = (1..=n as NodeId).map(|v| (0, v)).collect();
        let g = Graph::from_edges(n + 1, &edges);
        let idx = MultiplicityIndex::build(&g);
        assert!(idx.sorted_entries(0).is_none(), "hub should be hashed");
        let leaf = idx.sorted_entries(1).expect("leaf should be sorted");
        assert_eq!(leaf, &[(0, 1)]);
    }

    #[test]
    fn for_each_common_matches_naive_on_all_pairs() {
        // Mixed representations: node 0 is a hashed hub, everyone else
        // sorted; multi-edges and self-loops included.
        let n = SMALL_THRESHOLD + 8;
        let mut edges: Vec<(NodeId, NodeId)> = (1..=n as NodeId).map(|v| (0, v)).collect();
        edges.extend([(1, 2), (1, 2), (2, 3), (3, 4), (1, 4), (2, 2)]);
        let g = Graph::from_edges(n + 1, &edges);
        let idx = MultiplicityIndex::build(&g);
        for x in [0, 1, 2, 3, 4, 5] {
            for y in [0, 1, 2, 3, 4, 5] {
                assert_eq!(
                    collected_common(&idx, x, y),
                    naive_common(&idx, x, y),
                    "pair ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn merge_common_handles_skew_and_runs() {
        // Hand-built slices exercising the 4-wide catch-up: long run of
        // low keys on one side, sparse high keys on the other.
        let a: Vec<(NodeId, u32)> = (0..40).map(|k| (k, k + 1)).collect();
        let b: Vec<(NodeId, u32)> = vec![(3, 9), (17, 2), (38, 5), (39, 1), (90, 7)];
        let mut got = Vec::new();
        merge_common(&a, &b, |w, x, y| got.push((w, x, y)));
        assert_eq!(got, vec![(3, 4, 9), (17, 18, 2), (38, 39, 5), (39, 40, 1)]);
        // Symmetric call sees the same keys with values swapped.
        let mut rev = Vec::new();
        merge_common(&b, &a, |w, x, y| rev.push((w, y, x)));
        assert_eq!(got, rev);
        // Disjoint and empty inputs.
        let mut none = Vec::new();
        merge_common(&a[..2], &b[4..], |w, _, _| none.push(w));
        merge_common(&[], &b, |w, _, _| none.push(w));
        assert!(none.is_empty());
    }

    #[test]
    fn mutation_counter_tracks_updates_in_debug() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut idx = MultiplicityIndex::build(&g);
        let before = idx.mutation_count();
        idx.add_edge(0, 2);
        idx.remove_edge(0, 2);
        if cfg!(debug_assertions) {
            assert_eq!(idx.mutation_count(), before + 2);
        }
    }
}
