//! O(1) adjacency-multiplicity index.
//!
//! Triangle counting, the clustering-coefficient estimator
//! (`A_{x_{i-1}, x_{i+1}}` lookups), and the rewiring engine all need many
//! `A_uv` queries. Scanning neighbor lists makes each query O(deg); this
//! index trades one pass of preprocessing and O(m) memory for O(1) queries,
//! and supports incremental updates so the rewiring engine can keep it
//! consistent while mutating the graph.

use crate::{Graph, NodeId};
use sgr_util::FxHashMap;

/// Per-node hash map from neighbor id to adjacency-matrix entry `A_uv`
/// (multiplicity; `A_uu` = 2 × loop count).
#[derive(Clone, Debug, Default)]
pub struct MultiplicityIndex {
    maps: Vec<FxHashMap<NodeId, u32>>,
}

impl MultiplicityIndex {
    /// Builds the index from a graph in O(n + m).
    pub fn build(g: &Graph) -> Self {
        let mut maps: Vec<FxHashMap<NodeId, u32>> = (0..g.num_nodes())
            .map(|u| sgr_util::hash::fx_map_with_capacity(g.degree(u as NodeId)))
            .collect();
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                *maps[u as usize].entry(v).or_insert(0) += 1;
            }
        }
        Self { maps }
    }

    /// Creates an empty index over `n` nodes (all entries zero).
    pub fn with_nodes(n: usize) -> Self {
        Self {
            maps: vec![FxHashMap::default(); n],
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.maps.len()
    }

    /// `A_uv` (0 when absent).
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> u32 {
        self.maps[u as usize].get(&v).copied().unwrap_or(0)
    }

    /// Whether any edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.get(u, v) > 0
    }

    /// Iterates `(neighbor, A_uv)` pairs of `u` (each neighbor once).
    pub fn entries(&self, u: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.maps[u as usize].iter().map(|(&v, &c)| (v, c))
    }

    /// Registers the addition of edge `{u, v}` (loop adds 2 to `A_uu`).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            *self.maps[u as usize].entry(u).or_insert(0) += 2;
        } else {
            *self.maps[u as usize].entry(v).or_insert(0) += 1;
            *self.maps[v as usize].entry(u).or_insert(0) += 1;
        }
    }

    /// Registers the removal of one copy of edge `{u, v}`.
    ///
    /// # Panics
    /// Panics (in debug) if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        let dec = |maps: &mut Vec<FxHashMap<NodeId, u32>>, a: NodeId, b: NodeId, by: u32| {
            let entry = maps[a as usize]
                .get_mut(&b)
                .expect("removing a non-existent edge from the index");
            debug_assert!(*entry >= by);
            *entry -= by;
            if *entry == 0 {
                maps[a as usize].remove(&b);
            }
        };
        if u == v {
            dec(&mut self.maps, u, u, 2);
        } else {
            dec(&mut self.maps, u, v, 1);
            dec(&mut self.maps, v, u, 1);
        }
    }

    /// Consistency check against a graph; returns the first mismatch.
    pub fn validate_against(&self, g: &Graph) -> Result<(), String> {
        if self.maps.len() != g.num_nodes() {
            return Err(format!(
                "index covers {} nodes, graph has {}",
                self.maps.len(),
                g.num_nodes()
            ));
        }
        for u in g.nodes() {
            let mut counts: FxHashMap<NodeId, u32> = FxHashMap::default();
            for &v in g.neighbors(u) {
                *counts.entry(v).or_insert(0) += 1;
            }
            if counts.len() != self.maps[u as usize].len() {
                return Err(format!("node {u}: neighbor-set size mismatch"));
            }
            for (&v, &c) in counts.iter() {
                if self.get(u, v) != c {
                    return Err(format!(
                        "A_{{{u},{v}}} mismatch: index {} vs graph {c}",
                        self.get(u, v)
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_graph() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 1)]);
        g.add_edge(3, 3);
        let idx = MultiplicityIndex::build(&g);
        assert_eq!(idx.get(0, 1), 2);
        assert_eq!(idx.get(1, 0), 2);
        assert_eq!(idx.get(1, 2), 1);
        assert_eq!(idx.get(3, 3), 2);
        assert_eq!(idx.get(0, 3), 0);
        assert!(idx.has_edge(2, 0));
        assert!(!idx.has_edge(1, 3));
        idx.validate_against(&g).unwrap();
    }

    #[test]
    fn incremental_updates_stay_consistent() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let mut idx = MultiplicityIndex::build(&g);
        g.add_edge(2, 3);
        idx.add_edge(2, 3);
        g.add_edge(3, 3);
        idx.add_edge(3, 3);
        idx.validate_against(&g).unwrap();
        g.remove_edge(0, 1);
        idx.remove_edge(0, 1);
        g.remove_edge(3, 3);
        idx.remove_edge(3, 3);
        idx.validate_against(&g).unwrap();
        assert_eq!(idx.get(0, 1), 0);
        assert_eq!(idx.get(3, 3), 0);
    }

    #[test]
    fn entries_iterate_each_neighbor_once() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (0, 2)]);
        let idx = MultiplicityIndex::build(&g);
        let mut entries: Vec<_> = idx.entries(0).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(1, 2), (2, 1)]);
    }

    #[test]
    #[should_panic]
    fn removing_absent_edge_panics() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let mut idx = MultiplicityIndex::build(&g);
        idx.remove_edge(0, 1);
        idx.remove_edge(0, 1); // second removal must panic
    }

    #[test]
    fn validate_detects_mismatch() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let idx = MultiplicityIndex::with_nodes(2);
        assert!(idx.validate_against(&g).is_err());
    }
}
