//! Versioned, checksummed on-disk snapshots.
//!
//! This module is the workspace's binary persistence substrate: it stores
//! [`CsrGraph`] arenas on disk and provides the container format the
//! restoration pipeline's crash-safe checkpoints (`sgr-core`) are built
//! on. Everything is little-endian, flat, and checksummed, so a snapshot
//! written on one machine loads bit-for-bit on another and a corrupted or
//! truncated file is *always* reported as a typed [`SnapshotError`] —
//! never a panic, never silent garbage.
//!
//! # Checkpoint format
//!
//! A snapshot file is a fixed 32-byte header followed by an opaque
//! payload:
//!
//! ```text
//! offset  size  field        encoding
//! ------  ----  -----------  ----------------------------------------
//!      0     8  magic        the ASCII bytes "SGRSNAP\0"
//!      8     4  version      u32 LE — format version, currently 1
//!     12     4  kind         u32 LE — payload discriminator
//!     16     8  payload_len  u64 LE — exact byte length of the payload
//!     24     8  checksum     u64 LE — checksum of the payload
//!     32     …  payload      kind-specific section data
//! ```
//!
//! **Versioning policy.** `version` covers the *container* (header layout
//! and checksum definition) and every kind-specific payload layout
//! together: any incompatible change to either bumps the single version
//! number, and readers reject any version other than the one they were
//! built for with [`SnapshotError::UnsupportedVersion`] rather than
//! guessing. Forward compatibility is explicitly out of scope for
//! checkpoint files — they are short-lived restart artifacts, not an
//! archival format.
//!
//! **Checksum.** A chained SplitMix64 digest: the payload is split into
//! little-endian 8-byte words (the final partial word zero-padded), and
//!
//! ```text
//! h ← SplitMix64(SEED ⊕ payload_len).next()
//! for each word w:  h ← SplitMix64(h ⊕ w).next()
//! ```
//!
//! Mixing the length first distinguishes payloads that differ only in
//! trailing zero bytes. This is an *integrity* check against torn writes
//! and bit rot, not an authentication code.
//!
//! **Atomicity and durability.** [`write_section`] writes to a
//! `<path>.tmp` sibling, fsyncs the file, renames over the destination,
//! and then fsyncs the **parent directory**, so a crash mid-write can
//! leave a stale temp file but never a half-written snapshot under the
//! final name — and once `write_section` returns, the rename itself is
//! durable. (Without the directory fsync the rename lives only in the
//! in-memory dentry cache: a power loss after "successful" persistence
//! could make the snapshot vanish entirely, the failure mode the
//! checkpoint fault-injection suite's durability contract rules out; see
//! `sgr_core::checkpoint`.)
//!
//! **Bounded reads.** [`read_section`] reads and validates the 32-byte
//! header *before* touching the payload: a garbage or adversarial file —
//! for example a multi-GiB blob arriving over a socket and spooled to
//! disk — fails on [`SnapshotError::BadMagic`] after at most 32 bytes,
//! and the payload read is bounded by the declared `payload_len`
//! cross-checked against the file's actual size. A `payload_len` that
//! does not even fit in `usize` is structurally impossible content and
//! is reported as [`SnapshotError::Corrupt`], not `Truncated`.
//!
//! **Payload encoding.** Payloads are built from LE primitives via
//! [`PayloadWriter`] / [`PayloadReader`]: `u32`/`u64` scalars, `f64`
//! values as raw IEEE-754 bit patterns (so float state round-trips
//! bitwise, ULP-exactly), and `u64`-length-prefixed slices of each. The
//! graph payload (`kind` [`KIND_CSR_GRAPH`]) is:
//!
//! ```text
//! num_edges: u64, sorted: u64 (0|1), offsets: [u32], neighbors: [u32]
//! ```
//!
//! `sgr-core` layers its restore-checkpoint payload (kind
//! [`KIND_RESTORE_CHECKPOINT`]) on the same primitives; see
//! `sgr_core::checkpoint`.

use crate::{CsrGraph, NodeId};
use std::io::Write;
use std::path::Path;

/// Magic bytes identifying a snapshot file.
pub const MAGIC: [u8; 8] = *b"SGRSNAP\0";

/// Current (and only) supported format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header length in bytes (magic + version + kind + payload_len + checksum).
pub const HEADER_LEN: usize = 32;

/// Payload kind: a [`CsrGraph`] snapshot.
pub const KIND_CSR_GRAPH: u32 = 1;

/// Payload kind: a restoration-pipeline checkpoint (`sgr_core::checkpoint`).
pub const KIND_RESTORE_CHECKPOINT: u32 = 2;

/// Payload kind: a restoration-job specification persisted (and shipped
/// over the wire) by the `sgr serve` job server (`sgr_serve::job`).
pub const KIND_JOB_SPEC: u32 = 3;

/// Payload kind: a terminal job-state record (completed/failed status and
/// final counters) persisted by the `sgr serve` job server.
pub const KIND_JOB_STATE: u32 = 4;

const CHECKSUM_SEED: u64 = 0x5347_5253_4e41_5021;

/// Errors arising while writing or reading a snapshot file.
///
/// Each distinct corruption mode has its own variant so callers (and the
/// CLI) can report precisely what is wrong with a file.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The header declares a format version this reader does not support.
    UnsupportedVersion(u32),
    /// The header's payload kind differs from what the caller expected.
    KindMismatch {
        /// Kind the caller asked for.
        expected: u32,
        /// Kind found in the header.
        found: u32,
    },
    /// The file ends before the header (or declared payload) is complete.
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// Structurally invalid content (trailing bytes, inconsistent arenas,
    /// a section underrun after the checksum passed, …).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {FORMAT_VERSION})"
                )
            }
            SnapshotError::KindMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Chained-SplitMix64 digest of a payload (see the module docs).
pub fn checksum(payload: &[u8]) -> u64 {
    let mix = |h: u64, w: u64| sgr_util::rng::SplitMix64::new(h ^ w).next_u64();
    let mut h = mix(CHECKSUM_SEED, payload.len() as u64);
    let mut chunks = payload.chunks_exact(8);
    for chunk in &mut chunks {
        h = mix(h, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rest.len()].copy_from_slice(rest);
        h = mix(h, u64::from_le_bytes(buf));
    }
    h
}

/// The decoded fields of a section header.
#[derive(Clone, Copy, Debug)]
pub struct SectionHeader {
    /// Payload kind discriminator.
    pub kind: u32,
    /// Declared payload byte length.
    pub payload_len: u64,
    /// Declared payload checksum.
    pub checksum: u64,
}

/// Builds the full section byte stream (header + payload) for `payload`
/// under `kind` — the exact bytes [`write_section`] persists, exposed so
/// the same container can travel over a socket as a wire payload.
pub fn encode_section(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&kind.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&checksum(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Writes `payload` under the snapshot container format, atomically and
/// durably: the bytes go to a `<path>.tmp` sibling which is fsynced and
/// renamed over `path`, and the parent directory is fsynced afterwards so
/// the rename survives a crash (see the module docs).
pub fn write_section<P: AsRef<Path>>(
    path: P,
    kind: u32,
    payload: &[u8],
) -> Result<(), SnapshotError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        file.write_all(&encode_section(kind, payload))?;
        file.flush()?;
        file.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsyncs the directory containing `path`, making a just-completed rename
/// durable. On platforms where directories cannot be opened as files
/// (non-Unix), this is a no-op — the atomicity guarantee still holds,
/// only the power-loss durability window widens to the OS flush cadence.
fn sync_parent_dir(path: &Path) -> Result<(), SnapshotError> {
    #[cfg(unix)]
    {
        // An empty parent means a bare relative filename: the containing
        // directory is the CWD.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Parses and validates the fixed 32-byte header against the expected
/// `kind`. `got` is how many header bytes could actually be read; short
/// reads are classified by what fails first (magic, then length), so a
/// text file and a truncated snapshot report distinct errors.
fn parse_header(
    buf: &[u8; HEADER_LEN],
    got: usize,
    kind: u32,
) -> Result<SectionHeader, SnapshotError> {
    if got < HEADER_LEN {
        if got >= 8 && buf[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if got < 8 && !MAGIC.starts_with(&buf[..got]) {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated);
    }
    if buf[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let found_kind = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    if found_kind != kind {
        return Err(SnapshotError::KindMismatch {
            expected: kind,
            found: found_kind,
        });
    }
    Ok(SectionHeader {
        kind: found_kind,
        payload_len: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        checksum: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
    })
}

/// Reads and verifies a snapshot file, returning its payload. The header
/// must carry the expected `kind`; every corruption mode maps to its
/// [`SnapshotError`] variant.
///
/// The read is **header-first and bounded**: the 32-byte header is read
/// and fully validated before any payload byte, and the payload read is
/// sized by the declared length cross-checked against the file's actual
/// size — a garbage multi-GiB file fails on `BadMagic` after 32 bytes
/// instead of being slurped whole, and a header declaring more payload
/// than the file holds fails on `Truncated` without allocating the
/// declared amount.
pub fn read_section<P: AsRef<Path>>(path: P, kind: u32) -> Result<Vec<u8>, SnapshotError> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match file.read(&mut header[got..])? {
            0 => break,
            n => got += n,
        }
    }
    let decoded = parse_header(&header, got, kind)?;
    // `payload_len` wider than the address space cannot describe real
    // content on this host: structurally invalid, not merely truncated.
    let Ok(payload_len) = usize::try_from(decoded.payload_len) else {
        return Err(SnapshotError::Corrupt(format!(
            "declared payload length {} overflows usize",
            decoded.payload_len
        )));
    };
    let body_len = file.metadata()?.len().saturating_sub(HEADER_LEN as u64);
    if body_len < decoded.payload_len {
        return Err(SnapshotError::Truncated);
    }
    if body_len > decoded.payload_len {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after declared payload",
            body_len - decoded.payload_len
        )));
    }
    let mut body = vec![0u8; payload_len];
    file.read_exact(&mut body).map_err(|e| match e.kind() {
        // The file shrank between the size probe and the read.
        std::io::ErrorKind::UnexpectedEof => SnapshotError::Truncated,
        _ => SnapshotError::Io(e),
    })?;
    if checksum(&body) != decoded.checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(body)
}

/// Verifies an in-memory section byte stream (header + payload), as
/// received over a socket, returning the payload slice. Same validation
/// and error classification as [`read_section`]; the caller has already
/// bounded the allocation by framing the transfer.
pub fn decode_section(bytes: &[u8], kind: u32) -> Result<&[u8], SnapshotError> {
    let mut header = [0u8; HEADER_LEN];
    let got = bytes.len().min(HEADER_LEN);
    header[..got].copy_from_slice(&bytes[..got]);
    let decoded = parse_header(&header, got, kind)?;
    let body = &bytes[HEADER_LEN..];
    let Ok(payload_len) = usize::try_from(decoded.payload_len) else {
        return Err(SnapshotError::Corrupt(format!(
            "declared payload length {} overflows usize",
            decoded.payload_len
        )));
    };
    if body.len() < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if body.len() > payload_len {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after declared payload",
            body.len() - payload_len
        )));
    }
    if checksum(body) != decoded.checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(body)
}

/// Little-endian payload builder; the write-side half of the encoding
/// described in the module docs. All slices are `u64`-length-prefixed.
#[derive(Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Creates an empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes the payload, yielding the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u32` scalar.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` scalar.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern (round-trips
    /// bitwise, including NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as a `u64` (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Appends a length-prefixed raw byte blob.
    pub fn put_byte_slice(&mut self, vs: &[u8]) {
        self.put_u64(vs.len() as u64);
        self.buf.extend_from_slice(vs);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_byte_slice(s.as_bytes());
    }
}

/// Little-endian payload reader; the read-side half of [`PayloadWriter`].
///
/// An underrun after the container checksum has already passed indicates a
/// malformed payload (or a reader/writer mismatch) and surfaces as
/// [`SnapshotError::Corrupt`].
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Wraps a payload buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors unless the payload was fully consumed.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt(format!(
                "{} unread payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::Corrupt("payload section underrun".into()))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u32` scalar.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` scalar.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (rejecting values other than 0 and 1).
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u64()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool word {other}"))),
        }
    }

    fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let len = self.get_u64()?;
        usize::try_from(len)
            .map_err(|_| SnapshotError::Corrupt(format!("slice length {len} overflows usize")))
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let len = self.get_len()?;
        let bytes =
            self.take(len.checked_mul(4).ok_or_else(|| {
                SnapshotError::Corrupt("slice byte length overflows usize".into())
            })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.get_len()?;
        let bytes =
            self.take(len.checked_mul(8).ok_or_else(|| {
                SnapshotError::Corrupt("slice byte length overflows usize".into())
            })?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed `f64` slice (bit patterns).
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, SnapshotError> {
        Ok(self
            .get_u64_slice()?
            .into_iter()
            .map(f64::from_bits)
            .collect())
    }

    /// Reads a length-prefixed raw byte blob.
    pub fn get_byte_slice(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.get_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string (rejecting invalid UTF-8).
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.get_byte_slice()?)
            .map_err(|_| SnapshotError::Corrupt("string field is not valid UTF-8".into()))
    }
}

/// Writes a [`CsrGraph`] snapshot to `path` (kind [`KIND_CSR_GRAPH`]).
pub fn write_csr<P: AsRef<Path>>(csr: &CsrGraph, path: P) -> Result<(), SnapshotError> {
    write_section(path, KIND_CSR_GRAPH, &encode_csr(csr))
}

/// Encodes a [`CsrGraph`] into its payload bytes (without the container
/// header); exposed so benches can measure pure encode cost.
pub fn encode_csr(csr: &CsrGraph) -> Vec<u8> {
    let (offsets, neighbors, num_edges, sorted) = csr.raw_parts();
    let mut w = PayloadWriter::new();
    w.put_u64(num_edges as u64);
    w.put_bool(sorted);
    w.put_u32_slice(offsets);
    w.put_u32_slice(neighbors);
    w.into_bytes()
}

/// Reads a [`CsrGraph`] snapshot from `path`, validating the arenas
/// (monotone offsets, in-range neighbor ids, consistent edge count)
/// before constructing the graph.
pub fn read_csr<P: AsRef<Path>>(path: P) -> Result<CsrGraph, SnapshotError> {
    let payload = read_section(path, KIND_CSR_GRAPH)?;
    let mut r = PayloadReader::new(&payload);
    let num_edges = r.get_u64()?;
    let sorted = r.get_bool()?;
    let offsets = r.get_u32_slice()?;
    let neighbors = r.get_u32_slice()?;
    r.finish()?;
    decode_csr_parts(num_edges, sorted, offsets, neighbors)
}

fn decode_csr_parts(
    num_edges: u64,
    sorted: bool,
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
) -> Result<CsrGraph, SnapshotError> {
    if offsets.is_empty() {
        return Err(SnapshotError::Corrupt("empty offsets arena".into()));
    }
    if offsets[0] != 0 {
        return Err(SnapshotError::Corrupt("offsets do not start at 0".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("offsets not monotone".into()));
    }
    if *offsets.last().unwrap() as usize != neighbors.len() {
        return Err(SnapshotError::Corrupt(
            "final offset disagrees with neighbor arena length".into(),
        ));
    }
    let n = offsets.len() - 1;
    if neighbors.iter().any(|&v| (v as usize) >= n) {
        return Err(SnapshotError::Corrupt("out-of-range neighbor id".into()));
    }
    let num_edges = usize::try_from(num_edges)
        .map_err(|_| SnapshotError::Corrupt("edge count overflows usize".into()))?;
    if num_edges * 2 != neighbors.len() {
        return Err(SnapshotError::Corrupt(format!(
            "edge count {num_edges} disagrees with {} neighbor entries",
            neighbors.len()
        )));
    }
    Ok(CsrGraph::from_raw_parts(
        offsets, neighbors, num_edges, sorted,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sgr_snapshot_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn messy() -> Graph {
        let mut g = Graph::from_edges(5, &[(0, 1), (0, 1), (1, 2), (2, 0), (3, 1)]);
        g.add_edge(4, 4);
        g.add_edge(1, 1);
        g
    }

    #[test]
    fn csr_roundtrip_preserves_order() {
        let g = messy();
        let csr = g.freeze();
        let path = tmp("roundtrip.snap");
        write_csr(&csr, &path).unwrap();
        let back = read_csr(&path).unwrap();
        assert_eq!(back.num_nodes(), csr.num_nodes());
        assert_eq!(back.num_edges(), csr.num_edges());
        assert_eq!(back.is_sorted(), csr.is_sorted());
        for u in g.nodes() {
            assert_eq!(back.neighbors(u), csr.neighbors(u), "order changed at {u}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sorted_flag_roundtrips() {
        let csr = CsrGraph::freeze_sorted(&messy());
        let path = tmp("sorted.snap");
        write_csr(&csr, &path).unwrap();
        assert!(read_csr(&path).unwrap().is_sorted());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let csr = Graph::with_nodes(0).freeze();
        let path = tmp("empty.snap");
        write_csr(&csr, &path).unwrap();
        let back = read_csr(&path).unwrap();
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_edges(), 0);
        std::fs::remove_file(&path).ok();
    }

    /// Flipping a byte inside every header field produces the *distinct*
    /// typed error for that field — the satellite's core requirement.
    #[test]
    fn byte_flips_at_every_header_offset_are_typed() {
        let csr = messy().freeze();
        let path = tmp("flip.snap");
        write_csr(&csr, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        for offset in 0..HEADER_LEN {
            let mut bytes = pristine.clone();
            bytes[offset] ^= 0x01;
            let flipped = tmp("flipped.snap");
            std::fs::write(&flipped, &bytes).unwrap();
            let err = read_csr(&flipped).unwrap_err();
            match offset {
                0..=7 => assert!(
                    matches!(err, SnapshotError::BadMagic),
                    "offset {offset}: {err}"
                ),
                8..=11 => assert!(
                    matches!(err, SnapshotError::UnsupportedVersion(_)),
                    "offset {offset}: {err}"
                ),
                12..=15 => assert!(
                    matches!(err, SnapshotError::KindMismatch { .. }),
                    "offset {offset}: {err}"
                ),
                16..=23 => assert!(
                    matches!(err, SnapshotError::Truncated | SnapshotError::Corrupt(_)),
                    "offset {offset}: {err}"
                ),
                _ => assert!(
                    matches!(err, SnapshotError::ChecksumMismatch),
                    "offset {offset}: {err}"
                ),
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp("flipped.snap")).ok();
    }

    #[test]
    fn payload_byte_flip_is_checksum_mismatch() {
        let csr = messy().freeze();
        let path = tmp("payload_flip.snap");
        write_csr(&csr, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::ChecksumMismatch
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_at_every_prefix_is_typed() {
        let csr = messy().freeze();
        let path = tmp("trunc.snap");
        write_csr(&csr, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            let short = tmp("trunc_cut.snap");
            std::fs::write(&short, &bytes[..cut]).unwrap();
            let err = read_csr(&short).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut {cut}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp("trunc_cut.snap")).ok();
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let csr = messy().freeze();
        let path = tmp("trailing.snap");
        write_csr(&csr, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_is_kind_mismatch() {
        let path = tmp("kind.snap");
        write_section(&path, KIND_RESTORE_CHECKPOINT, b"whatever").unwrap();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::KindMismatch {
                expected: KIND_CSR_GRAPH,
                found: KIND_RESTORE_CHECKPOINT,
            }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            read_csr(tmp("does_not_exist.snap")).unwrap_err(),
            SnapshotError::Io(_)
        ));
    }

    #[test]
    fn non_snapshot_file_is_bad_magic() {
        let path = tmp("text.snap");
        std::fs::write(&path, b"# definitely an edge list\n1 2\n").unwrap();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::BadMagic
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_arenas_are_corrupt() {
        // Well-formed container, nonsense payload: offsets say 2 entries
        // but the neighbor arena is empty.
        let path = tmp("arena.snap");
        let mut w = PayloadWriter::new();
        w.put_u64(1); // num_edges
        w.put_bool(false);
        w.put_u32_slice(&[0, 2]); // offsets claim two neighbor entries
        w.put_u32_slice(&[]); // … but the arena has none
        write_section(&path, KIND_CSR_GRAPH, &w.into_bytes()).unwrap();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_primitives_roundtrip() {
        let mut w = PayloadWriter::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u64_slice(&[]);
        w.put_f64_slice(&[1.5, f64::INFINITY]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32_slice().unwrap(), vec![1, 2, 3]);
        assert!(r.get_u64_slice().unwrap().is_empty());
        assert_eq!(r.get_f64_slice().unwrap(), vec![1.5, f64::INFINITY]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_underrun_is_corrupt() {
        let mut w = PayloadWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            r.get_u64().unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
        // Unread bytes are also an error.
        let mut r = PayloadReader::new(&bytes);
        let _ = r.get_u32().unwrap();
        r.finish().unwrap();
        let r = PayloadReader::new(&bytes);
        assert!(matches!(r.finish().unwrap_err(), SnapshotError::Corrupt(_)));
    }

    /// A header declaring far more payload than the file holds must fail
    /// on `Truncated` *without* attempting to read (or allocate) the
    /// declared amount — the read is bounded by the real file size.
    #[test]
    fn huge_declared_payload_is_truncated_without_allocation() {
        let path = tmp("huge_decl.snap");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&KIND_CSR_GRAPH.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 42).to_le_bytes()); // 4 TiB declared
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"tiny actual body");
        std::fs::write(&path, &bytes).unwrap();
        let t = std::time::Instant::now();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::Truncated
        ));
        // Would take far longer than this if 4 TiB were being zeroed.
        assert!(t.elapsed().as_secs() < 5);
        std::fs::remove_file(&path).ok();
    }

    /// A large non-snapshot file fails on the magic after reading only
    /// the header — the whole point of the header-first read. The file is
    /// sparse, so the test is cheap while the old slurp-first behavior
    /// would have materialized gigabytes.
    #[test]
    #[cfg(unix)]
    fn large_garbage_file_fails_fast_on_magic() {
        let path = tmp("garbage_big.snap");
        let f = std::fs::File::create(&path).unwrap();
        f.set_len(8 << 30).unwrap(); // 8 GiB hole, zero bytes ≠ magic
        drop(f);
        let t = std::time::Instant::now();
        assert!(matches!(
            read_csr(&path).unwrap_err(),
            SnapshotError::BadMagic
        ));
        assert!(t.elapsed().as_secs() < 5, "header-first read regressed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_section_roundtrip_and_errors() {
        let payload = b"wire payload".to_vec();
        let bytes = encode_section(KIND_JOB_SPEC, &payload);
        assert_eq!(decode_section(&bytes, KIND_JOB_SPEC).unwrap(), &payload[..]);
        // Wrong kind.
        assert!(matches!(
            decode_section(&bytes, KIND_CSR_GRAPH).unwrap_err(),
            SnapshotError::KindMismatch { .. }
        ));
        // Truncated stream.
        assert!(matches!(
            decode_section(&bytes[..bytes.len() - 1], KIND_JOB_SPEC).unwrap_err(),
            SnapshotError::Truncated
        ));
        // Flipped payload byte.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            decode_section(&flipped, KIND_JOB_SPEC).unwrap_err(),
            SnapshotError::ChecksumMismatch
        ));
        // Not a container at all.
        assert!(matches!(
            decode_section(b"hello", KIND_JOB_SPEC).unwrap_err(),
            SnapshotError::BadMagic
        ));
        // encode_section bytes are exactly what write_section persists.
        let path = tmp("encode_matches_disk.snap");
        write_section(&path, KIND_JOB_SPEC, &payload).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_and_string_payload_fields_roundtrip() {
        let mut w = PayloadWriter::new();
        w.put_byte_slice(b"\x00\xFFraw");
        w.put_str("tenant-α");
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_byte_slice().unwrap(), b"\x00\xFFraw");
        assert_eq!(r.get_str().unwrap(), "tenant-α");
        assert_eq!(r.get_str().unwrap(), "");
        r.finish().unwrap();
        // Invalid UTF-8 in a string field is Corrupt.
        let mut w = PayloadWriter::new();
        w.put_byte_slice(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        assert!(matches!(
            r.get_str().unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn checksum_distinguishes_length_and_padding() {
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_ne!(checksum(b"\0\0\0\0\0\0\0\0"), checksum(b"\0"));
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
    }

    #[test]
    fn atomic_write_replaces_existing() {
        let path = tmp("atomic.snap");
        let a = Graph::from_edges(2, &[(0, 1)]).freeze();
        let b = messy().freeze();
        write_csr(&a, &path).unwrap();
        write_csr(&b, &path).unwrap();
        assert_eq!(read_csr(&path).unwrap().num_edges(), b.num_edges());
        // No temp file left behind.
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(!std::path::PathBuf::from(tmp_name).exists());
        std::fs::remove_file(&path).ok();
    }
}
