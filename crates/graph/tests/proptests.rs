//! Property-based tests of the graph substrate invariants.

use proptest::prelude::*;
use sgr_graph::components::{connected_components, is_connected, largest_component};
use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{CsrGraph, Graph, GraphView, NodeId};

/// Strategy: a small random multigraph as (n, edge list).
fn arb_multigraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #[test]
    fn handshake_lemma((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let total: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
        prop_assert_eq!(g.num_edges(), edges.len());
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterator_is_exhaustive((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let mut expect: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        expect.sort_unstable();
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn degree_vector_sums((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let dv = g.degree_vector();
        prop_assert_eq!(dv.iter().sum::<usize>(), n);
        let weighted: usize = dv.iter().enumerate().map(|(k, &c)| k * c).sum();
        prop_assert_eq!(weighted, 2 * g.num_edges());
    }

    #[test]
    fn multiplicity_index_agrees((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let idx = MultiplicityIndex::build(&g);
        prop_assert!(idx.validate_against(&g).is_ok());
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(idx.get(u, v) as usize, g.multiplicity(u, v));
            }
        }
    }

    #[test]
    fn component_partition((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let c = connected_components(&g);
        // Labels cover all nodes, sizes sum to n.
        prop_assert_eq!(c.label.len(), n);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), n);
        // Every edge stays within one component.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        // The extracted largest component is connected and matches size.
        let (lcc, mapping) = largest_component(&g);
        prop_assert!(is_connected(&lcc));
        prop_assert_eq!(lcc.num_nodes(), c.sizes[c.largest()]);
        prop_assert_eq!(mapping.len(), lcc.num_nodes());
    }

    #[test]
    fn remove_then_validate((n, edges) in arb_multigraph()) {
        let mut g = Graph::from_edges(n, &edges);
        // Remove up to 10 edges that exist, validating after each.
        let list: Vec<_> = g.edges().take(10).collect();
        for (u, v) in list {
            prop_assert!(g.remove_edge(u, v));
            prop_assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn simplified_is_simple_subset((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let s = g.simplified();
        prop_assert!(s.is_simple());
        prop_assert_eq!(s.num_nodes(), g.num_nodes());
        for (u, v) in s.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert_ne!(u, v);
        }
        prop_assert!(s.num_edges() <= g.num_edges());
    }

    #[test]
    fn freeze_preserves_counts_edges_dv_and_jdm((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze(&g);
        // Node count, edge count, degree vector.
        prop_assert_eq!(csr.num_nodes(), g.num_nodes());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        prop_assert_eq!(csr.degree_vector(), g.degree_vector());
        prop_assert_eq!(csr.num_self_loops(), g.num_self_loops());
        // Edge multiset (multi-edges and self-loops included).
        let mut ge: Vec<_> = g.edges().collect();
        let mut ce: Vec<_> = GraphView::edges(&csr).collect();
        ge.sort_unstable();
        ce.sort_unstable();
        prop_assert_eq!(ge, ce);
        // JDM: multiset of endpoint-degree pairs over all edges (loops
        // land on the diagonal) — the invariant the dK-2 machinery
        // preserves.
        fn jdm_of<G: GraphView>(v: &G) -> Vec<(usize, usize)> {
            let mut pairs: Vec<(usize, usize)> = v
                .edges()
                .map(|(u, w)| {
                    let (a, b) = (v.degree(u), v.degree(w));
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect();
            pairs.sort_unstable();
            pairs
        }
        prop_assert_eq!(jdm_of(&g), jdm_of(&csr));
        // Per-node neighbor order is preserved exactly.
        for u in g.nodes() {
            prop_assert_eq!(GraphView::neighbors(&csr, u), g.neighbors(u));
        }
        // Thawing reproduces a valid graph with the same edge multiset.
        let back = csr.thaw();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.num_edges(), g.num_edges());
    }

    #[test]
    fn sorted_freeze_membership_agrees((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let sorted = CsrGraph::freeze_sorted(&g);
        prop_assert_eq!(sorted.num_nodes(), g.num_nodes());
        prop_assert_eq!(sorted.num_edges(), g.num_edges());
        prop_assert_eq!(sorted.degree_vector(), g.degree_vector());
        for u in g.nodes() {
            prop_assert!(sorted.neighbors(u).windows(2).all(|w| w[0] <= w[1]));
            for v in g.nodes() {
                prop_assert_eq!(sorted.multiplicity(u, v), g.multiplicity(u, v));
                prop_assert_eq!(sorted.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn components_agree_across_backends((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze(&g);
        let a = connected_components(&g);
        let b = connected_components(&csr);
        prop_assert_eq!(a.label, b.label);
        prop_assert_eq!(a.sizes, b.sizes);
        let (lcc_a, map_a) = largest_component(&g);
        let (lcc_b, map_b) = largest_component(&csr);
        prop_assert_eq!(map_a, map_b);
        prop_assert_eq!(
            lcc_a.edges().collect::<Vec<_>>(),
            lcc_b.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn index_builds_identically_from_csr((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let csr = CsrGraph::freeze(&g);
        let idx = MultiplicityIndex::build(&csr);
        prop_assert!(idx.validate_against(&g).is_ok());
    }

    #[test]
    fn io_roundtrip_preserves_graph((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let mut buf = Vec::new();
        sgr_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (h, _) = sgr_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(h.num_edges(), g.num_edges());
        // Isolated nodes are not representable in an edge list; node count
        // matches when there are none.
        if g.nodes().all(|u| g.degree(u) > 0) {
            prop_assert_eq!(h.num_nodes(), g.num_nodes());
        }
    }
}
