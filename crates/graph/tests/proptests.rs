//! Property-based tests of the graph substrate invariants.

use proptest::prelude::*;
use sgr_graph::components::{connected_components, is_connected, largest_component};
use sgr_graph::index::MultiplicityIndex;
use sgr_graph::{Graph, NodeId};

/// Strategy: a small random multigraph as (n, edge list).
fn arb_multigraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #[test]
    fn handshake_lemma((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let total: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
        prop_assert_eq!(g.num_edges(), edges.len());
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterator_is_exhaustive((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let mut expect: Vec<(NodeId, NodeId)> = edges
            .iter()
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        expect.sort_unstable();
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        prop_assert_eq!(expect, got);
    }

    #[test]
    fn degree_vector_sums((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let dv = g.degree_vector();
        prop_assert_eq!(dv.iter().sum::<usize>(), n);
        let weighted: usize = dv.iter().enumerate().map(|(k, &c)| k * c).sum();
        prop_assert_eq!(weighted, 2 * g.num_edges());
    }

    #[test]
    fn multiplicity_index_agrees((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let idx = MultiplicityIndex::build(&g);
        prop_assert!(idx.validate_against(&g).is_ok());
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(idx.get(u, v) as usize, g.multiplicity(u, v));
            }
        }
    }

    #[test]
    fn component_partition((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let c = connected_components(&g);
        // Labels cover all nodes, sizes sum to n.
        prop_assert_eq!(c.label.len(), n);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), n);
        // Every edge stays within one component.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        // The extracted largest component is connected and matches size.
        let (lcc, mapping) = largest_component(&g);
        prop_assert!(is_connected(&lcc));
        prop_assert_eq!(lcc.num_nodes(), c.sizes[c.largest()]);
        prop_assert_eq!(mapping.len(), lcc.num_nodes());
    }

    #[test]
    fn remove_then_validate((n, edges) in arb_multigraph()) {
        let mut g = Graph::from_edges(n, &edges);
        // Remove up to 10 edges that exist, validating after each.
        let list: Vec<_> = g.edges().take(10).collect();
        for (u, v) in list {
            prop_assert!(g.remove_edge(u, v));
            prop_assert!(g.validate().is_ok());
        }
    }

    #[test]
    fn simplified_is_simple_subset((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let s = g.simplified();
        prop_assert!(s.is_simple());
        prop_assert_eq!(s.num_nodes(), g.num_nodes());
        for (u, v) in s.edges() {
            prop_assert!(g.has_edge(u, v));
            prop_assert_ne!(u, v);
        }
        prop_assert!(s.num_edges() <= g.num_edges());
    }

    #[test]
    fn io_roundtrip_preserves_graph((n, edges) in arb_multigraph()) {
        let g = Graph::from_edges(n, &edges);
        let mut buf = Vec::new();
        sgr_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (h, _) = sgr_graph::io::read_edge_list(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(h.num_edges(), g.num_edges());
        // Isolated nodes are not representable in an edge list; node count
        // matches when there are none.
        if g.nodes().all(|u| g.degree(u) > 0) {
            prop_assert_eq!(h.num_nodes(), g.num_nodes());
        }
    }
}
