//! Arena-vs-reference equivalence suite.
//!
//! The arena-backed [`Graph`] must be observationally identical to
//! [`ReferenceGraph`] — the retired one-`Vec`-per-node representation it
//! replaced — under every mutation sequence the pipeline performs. That
//! is a *bitwise* claim, not just a set claim: neighbor-list ORDER feeds
//! the frozen CSR order, which feeds the float property kernels, so a
//! single transposed pair would silently change golden hashes. These
//! properties pin:
//!
//! * per-node neighbor sequences (order included) after random
//!   add_node / add_edge / remove_edge interleavings;
//! * the edge iterator sequence, degree vector, and joint degree matrix;
//! * freeze round-trips (`Graph::freeze` vs `CsrGraph::freeze` of the
//!   reference, and `Graph::from_view` of the result);
//! * the reserved construction mode (the pipeline's path: degrees known
//!   up front, `reserve_neighbors`, then wiring) against the
//!   unreserved one;
//! * allocation-freedom of the warm path: after `reserve_neighbors`,
//!   wiring to the reserved degrees and running degree-preserving swap
//!   cycles performs zero heap allocations.

mod jdm {
    use sgr_graph::GraphView;
    use std::collections::BTreeMap;

    /// Joint degree matrix as a sparse map: unordered degree pair of an
    /// edge's endpoints → number of edges with that pair.
    pub fn of<G: GraphView>(g: &G) -> BTreeMap<(usize, usize), usize> {
        let mut m = BTreeMap::new();
        for (u, v) in g.edges() {
            let (a, b) = (g.degree(u), g.degree(v));
            let key = if a <= b { (a, b) } else { (b, a) };
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }
}

use proptest::prelude::*;
use sgr_graph::reference::ReferenceGraph;
use sgr_graph::{CsrGraph, Graph, GraphView, NodeId};

#[global_allocator]
static ALLOC: sgr_util::alloc::TrackingAlloc = sgr_util::alloc::TrackingAlloc;

#[derive(Clone, Debug)]
enum Op {
    AddNode,
    /// Endpoints are reduced modulo the node count at application time,
    /// so sequences stay valid as `AddNode` grows the graph.
    AddEdge(usize, usize),
    RemoveEdge(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (2usize..24).prop_flat_map(|n| {
        // Weighted op mix: 1 grow, 6 add, 3 remove per 10 — additions
        // dominate so lists grow deep enough to exercise swap_remove's
        // element movement, with enough removals to churn every slot.
        let op = (0usize..10, 0usize..1 << 16, 0usize..1 << 16).prop_map(|(k, a, b)| match k {
            0 => Op::AddNode,
            1..=6 => Op::AddEdge(a, b),
            _ => Op::RemoveEdge(a, b),
        });
        (Just(n), collection::vec(op, 0..160))
    })
}

/// Multigraph edge lists over a fixed node count (self-loops and
/// multi-edges included), for the reserved-mode and freeze properties.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

/// Applies `ops` to an arena graph and a reference graph in lockstep,
/// asserting agreement on every observable return value along the way.
fn apply_ops(n: usize, ops: &[Op]) -> (Graph, ReferenceGraph) {
    let mut g = Graph::with_nodes(n);
    let mut r = ReferenceGraph::with_nodes(n);
    for op in ops {
        match *op {
            Op::AddNode => assert_eq!(g.add_node(), r.add_node()),
            Op::AddEdge(a, b) => {
                let nn = g.num_nodes();
                g.add_edge((a % nn) as NodeId, (b % nn) as NodeId);
                r.add_edge((a % nn) as NodeId, (b % nn) as NodeId);
            }
            Op::RemoveEdge(a, b) => {
                let nn = g.num_nodes();
                let (u, v) = ((a % nn) as NodeId, (b % nn) as NodeId);
                assert_eq!(g.remove_edge(u, v), r.remove_edge(u, v));
            }
        }
    }
    (g, r)
}

/// Full observable-state comparison: counts, per-node neighbor order,
/// degree vector, edge sequence, JDM, and the structural validator.
fn assert_same(g: &Graph, r: &ReferenceGraph) {
    assert_eq!(g.num_nodes(), r.num_nodes());
    assert_eq!(g.num_edges(), r.num_edges());
    for u in 0..g.num_nodes() as NodeId {
        assert_eq!(g.neighbors(u), r.neighbors(u), "neighbor list of node {u}");
    }
    assert_eq!(g.degree_vector(), r.degree_vector());
    let ge: Vec<_> = g.edges().collect();
    let re: Vec<_> = r.edges().collect();
    assert_eq!(ge, re);
    assert_eq!(jdm::of(g), jdm::of(r));
    g.validate().expect("arena graph failed validation");
}

proptest! {
    /// Random mutation interleavings leave both representations in
    /// identical observable states (order included).
    #[test]
    fn random_ops_match_reference((n, ops) in arb_ops()) {
        let (g, r) = apply_ops(n, &ops);
        assert_same(&g, &r);
    }

    /// Freezing either representation yields the same CSR, and thawing
    /// the CSR back through the order-preserving [`Graph::from_view`]
    /// reproduces the arena graph exactly.
    #[test]
    fn freeze_round_trip_matches_reference((n, ops) in arb_ops()) {
        let (g, r) = apply_ops(n, &ops);
        let csr = g.freeze();
        let csr_ref = CsrGraph::freeze(&r);
        prop_assert_eq!(csr.num_nodes(), csr_ref.num_nodes());
        prop_assert_eq!(csr.num_edges(), csr_ref.num_edges());
        for u in 0..csr.num_nodes() as NodeId {
            prop_assert_eq!(csr.neighbors(u), csr_ref.neighbors(u));
        }
        let thawed = Graph::from_view(&csr);
        assert_same(&thawed, &r);
    }

    /// The pipeline's reserved construction mode (degrees known up
    /// front) produces the same graph as naive unreserved insertion —
    /// pre-sizing extents must never change what gets stored where.
    #[test]
    fn reserved_mode_matches_unreserved((n, edges) in arb_edges()) {
        let mut degrees = vec![0u32; n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut g = Graph::with_nodes(n);
        g.reserve_neighbors(&degrees);
        let mut r = ReferenceGraph::with_nodes(n);
        for &(u, v) in &edges {
            g.add_edge(u, v);
            r.add_edge(u, v);
        }
        assert_same(&g, &r);
    }

    /// Degree-preserving swap cycles — the rewiring engine's commit
    /// sequence (remove, remove, add, add) — track the reference through
    /// arbitrary pairings of the edge list.
    #[test]
    fn swap_cycles_match_reference((n, edges) in arb_edges()) {
        let mut degrees = vec![0u32; n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut g = Graph::with_nodes(n);
        g.reserve_neighbors(&degrees);
        let mut r = ReferenceGraph::with_nodes(n);
        for &(u, v) in &edges {
            g.add_edge(u, v);
            r.add_edge(u, v);
        }
        for pair in edges.chunks_exact(2) {
            let ((a, b), (c, d)) = (pair[0], pair[1]);
            assert_eq!(g.remove_edge(a, b), r.remove_edge(a, b));
            assert_eq!(g.remove_edge(c, d), r.remove_edge(c, d));
            g.add_edge(a, d);
            r.add_edge(a, d);
            g.add_edge(c, b);
            r.add_edge(c, b);
        }
        assert_same(&g, &r);
    }
}

/// After `reserve_neighbors` with the true target degrees, wiring every
/// edge and then running degree-preserving swap cycles must perform ZERO
/// heap allocations: occupancy never exceeds the reserved extents (the
/// rewiring engine removes before it adds), so the tight layout never
/// relocates. This is the arena's warm-path contract; the reference
/// representation cannot make it (every node's first insertion
/// allocates).
#[test]
fn warm_path_allocates_nothing_after_reserve() {
    const N: usize = 64;
    // Deterministic clustered-ish multigraph: rings at three strides,
    // plus a few self-loops and repeated edges for the multigraph paths.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for u in 0..N as NodeId {
        for stride in [1, 5, 9] {
            edges.push((u, (u + stride) % N as NodeId));
        }
    }
    for u in [3 as NodeId, 17, 42] {
        edges.push((u, u)); // self-loop
        edges.push((u, (u + 1) % N as NodeId)); // duplicate of stride-1 edge
    }

    let mut degrees = vec![0u32; N];
    for &(u, v) in &edges {
        degrees[u as usize] += 1;
        degrees[v as usize] += 1;
    }

    let mut g = Graph::with_nodes(N);
    g.reserve_neighbors(&degrees);
    let (allocs, ()) = sgr_util::alloc::count_allocs(|| {
        for &(u, v) in &edges {
            g.add_edge(u, v);
        }
        // Rewiring-style commit cycles: remove, remove, add, add — the
        // order that keeps per-node occupancy within the reserved caps.
        for pair in edges.chunks_exact(2) {
            let ((a, b), (c, d)) = (pair[0], pair[1]);
            assert!(g.remove_edge(a, b));
            assert!(g.remove_edge(c, d));
            g.add_edge(a, d);
            g.add_edge(c, b);
        }
    });
    assert_eq!(
        allocs, 0,
        "reserved warm path allocated; the tight layout must not relocate"
    );
    g.validate().expect("graph invalid after swap cycles");
    assert_eq!(g.num_edges(), edges.len());
}
