//! Phase 1 — constructing the target degree vector `{n*(k)}` (§IV-B,
//! Algorithms 1 and 2).
//!
//! The modification step (Algorithm 2) draws each visible node's target
//! degree uniformly from the multiset in which degree `k` appears
//! `n*(k) − n'(k)` times, restricted to `k ≥ d'`. The draw is backed by a
//! [`Fenwick`] tree over the free-slot counts: suffix total and weighted
//! selection are both `O(log k*_max)` per node instead of an `O(k*_max)`
//! scan, and the tree consumes **exactly one RNG draw per node with free
//! slots — the same stream as the scan it replaced**, so `d*` assignments
//! are bit-identical to the per-unit implementation's.

use sgr_estimate::Estimates;
use sgr_sample::Subgraph;
use sgr_util::bucket::Fenwick;
use sgr_util::Xoshiro256pp;

/// The target degree vector plus the per-node target-degree assignment of
/// the subgraph nodes.
#[derive(Clone, Debug)]
pub struct TargetDv {
    /// `n*(k)` indexed by degree `0 ..= k_max` (index 0 always 0).
    pub n_star: Vec<u64>,
    /// `n'(k)` — number of subgraph nodes already assigned target degree
    /// `k`. Always `n'(k) ≤ n*(k)` (condition DV-3).
    pub n_prime: Vec<u64>,
    /// `d*_i` for each subgraph node (dense subgraph ids). Empty for the
    /// Gjoka baseline, which uses no subgraph.
    pub d_star: Vec<u32>,
    /// Target maximum degree `k*_max`.
    pub k_max: usize,
    /// `n̂(k) = n̂ P̂(k)` — the raw estimates the error terms `Δ±(k)`
    /// reference.
    pub n_hat_k: Vec<f64>,
}

impl TargetDv {
    /// `Σ_k k n*(k)` — the target degree sum.
    pub fn degree_sum(&self) -> u64 {
        self.n_star
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum()
    }

    /// Total target node count `Σ_k n*(k)`.
    pub fn num_nodes(&self) -> u64 {
        self.n_star.iter().sum()
    }

    /// `Δ+(k)` — the relative-error increase from incrementing `n*(k)`
    /// (∞ when `P̂(k) = 0`, i.e. no estimate to be faithful to).
    pub fn delta_plus(&self, k: usize) -> f64 {
        let hat = self.n_hat_k.get(k).copied().unwrap_or(0.0);
        if hat <= 0.0 {
            return f64::INFINITY;
        }
        let cur = self.n_star[k] as f64;
        ((hat - (cur + 1.0)).abs() - (hat - cur).abs()) / hat
    }

    /// Increments `n*(k)`, keeping `n_star` dense.
    pub fn bump(&mut self, k: usize, by: u64) {
        self.n_star[k] += by;
    }
}

/// Builds the target degree vector for the **proposed method**:
/// initialization, adjustment (Algorithm 1), modification constrained by
/// the subgraph (Algorithm 2), and a final re-adjustment if the
/// modification broke the even-sum condition.
pub fn build(subgraph: &Subgraph, est: &Estimates, rng: &mut Xoshiro256pp) -> TargetDv {
    let mut dv = initialize(est, subgraph_max_degree(subgraph));
    adjust_even_sum(&mut dv);
    modify_for_subgraph(&mut dv, subgraph, rng);
    adjust_even_sum(&mut dv);
    debug_assert!(dv
        .n_prime
        .iter()
        .zip(dv.n_star.iter())
        .all(|(&np, &ns)| np <= ns));
    dv
}

/// Builds the target degree vector for **Gjoka et al.'s baseline**
/// (Appendix B): initialization and adjustment only — the subgraph's
/// structure is not used.
pub fn build_gjoka(est: &Estimates) -> TargetDv {
    let mut dv = initialize(est, 0);
    adjust_even_sum(&mut dv);
    dv
}

fn subgraph_max_degree(sg: &Subgraph) -> usize {
    sg.graph.max_degree()
}

/// Initialization step (§IV-B-1): `n*(k) = max(NearInt(n̂ P̂(k)), 1)`
/// wherever `P̂(k) > 0`. A positive estimate implies at least one node of
/// that degree exists in the original graph.
fn initialize(est: &Estimates, min_k_max: usize) -> TargetDv {
    let est_k_max = est.max_degree();
    let k_max = est_k_max.max(min_k_max).max(1);
    let mut n_hat_k = vec![0.0f64; k_max + 1];
    let mut n_star = vec![0u64; k_max + 1];
    for k in 1..=k_max {
        let p = est.degree_prob(k);
        if p > 0.0 {
            let hat = est.n_hat * p;
            n_hat_k[k] = hat;
            n_star[k] = sgr_util::stats::near_int(hat).max(1) as u64;
        }
    }
    TargetDv {
        n_star,
        n_prime: vec![0; k_max + 1],
        d_star: Vec::new(),
        k_max,
        n_hat_k,
    }
}

/// Adjustment step (Algorithm 1): if the degree sum is odd, increment
/// `n*(k)` for the odd `k` with the smallest error increase `Δ+(k)`
/// (smallest `k` on ties).
///
/// When **every** odd degree has `Δ+(k) = ∞` (no odd degree carries a
/// positive estimate `P̂(k)`), the error terms give no guidance. Rather
/// than silently minting a degree-1 node the estimates never saw, prefer
/// the smallest odd degree whose class already exists in the target
/// (`n*(k) > 0` — typically forced there by the subgraph's own degrees).
/// An odd degree sum always carries an odd `k` with odd `n*(k)`, so that
/// search cannot come up empty; the final `unwrap_or(1)` (one extra
/// leaf, the cheapest perturbation) is a defensive default kept for the
/// impossible branch rather than a reachable policy.
pub(crate) fn adjust_even_sum(dv: &mut TargetDv) {
    if dv.degree_sum().is_multiple_of(2) {
        return;
    }
    let mut best_k = None;
    let mut best = f64::INFINITY;
    for k in (1..=dv.k_max).step_by(2) {
        let d = dv.delta_plus(k);
        if d < best {
            best = d;
            best_k = Some(k);
        }
    }
    let k = best_k.unwrap_or_else(|| {
        (1..=dv.k_max)
            .step_by(2)
            .find(|&k| dv.n_star[k] > 0)
            .unwrap_or(1)
    });
    dv.bump(k, 1);
}

/// Modification step (Algorithm 2): assign target degrees to the subgraph
/// nodes — queried nodes keep their exact degree (Lemma 1), visible nodes
/// draw a target degree ≥ their subgraph degree — raising `n*(k)` wherever
/// the assignment overflows it (condition DV-3).
fn modify_for_subgraph(dv: &mut TargetDv, sg: &Subgraph, rng: &mut Xoshiro256pp) {
    let n_sub = sg.num_nodes();
    dv.d_star = vec![0u32; n_sub];
    // Queried nodes: d* = d' (their full neighborhood was observed).
    for u in sg.queried_nodes() {
        dv.d_star[u as usize] = sg.graph.degree(u) as u32;
    }
    // Present per-degree assignment counts n'(k).
    for u in sg.queried_nodes() {
        let k = dv.d_star[u as usize] as usize;
        dv.n_prime[k] += 1;
    }
    for k in 1..=dv.k_max {
        if dv.n_star[k] < dv.n_prime[k] {
            dv.n_star[k] = dv.n_prime[k];
        }
    }
    // Free-slot counts n*(k) − n'(k), kept current in a Fenwick tree so
    // each node's suffix total and uniform draw cost O(log k*_max).
    let free: Vec<u64> = (0..=dv.k_max)
        .map(|k| {
            if k == 0 {
                0
            } else {
                dv.n_star[k] - dv.n_prime[k]
            }
        })
        .collect();
    let mut slots = Fenwick::from_counts(&free);
    // Visible nodes in decreasing subgraph-degree order: heavy-tailed
    // graphs leave high-degree nodes the fewest candidate targets.
    let mut visible: Vec<u32> = sg.visible_nodes().collect();
    visible.sort_by_key(|&u| std::cmp::Reverse((sg.graph.degree(u), u)));
    for &u in &visible {
        let d_sub = sg.graph.degree(u);
        // D_seq(i): degree k appears n*(k) - n'(k) times for k ≥ d'.
        let total = slots.suffix(d_sub);
        let chosen = if total > 0 {
            // Uniform draw from the multiset without materializing it —
            // one gen_range, exactly like the linear scan it replaced.
            let rank = rng.gen_range(total as usize) as u64;
            let pick = slots.select_in_suffix(d_sub, rank);
            slots.add(pick, -1);
            pick
        } else {
            // No free slot: take the degree in [d', k*max] with the
            // smallest error increase (smallest k on ties). n*(chosen)
            // grows alongside n'(chosen), so the slot count stays zero.
            let mut best_k = d_sub.max(1);
            let mut best = f64::INFINITY;
            for k in d_sub.max(1)..=dv.k_max {
                let d = dv.delta_plus(k);
                if d < best {
                    best = d;
                    best_k = k;
                }
            }
            best_k
        };
        dv.d_star[u as usize] = chosen as u32;
        dv.n_prime[chosen] += 1;
        if dv.n_star[chosen] < dv.n_prime[chosen] {
            dv.n_star[chosen] = dv.n_prime[chosen];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_sample::{random_walk, AccessModel};

    fn setup(n: usize, frac: f64, seed: u64) -> (sgr_graph::Graph, Subgraph, Estimates) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 3, 0.5, &mut rng).unwrap();
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let target = ((n as f64 * frac) as usize).max(3);
        let crawl = random_walk(&mut am, start, target, &mut rng);
        let sg = crawl.subgraph();
        let est = sgr_estimate::estimate_all(&crawl).unwrap();
        (g, sg, est)
    }

    #[test]
    fn conditions_dv1_dv2_dv3_hold() {
        for seed in 0..5 {
            let (_, sg, est) = setup(500, 0.1, seed);
            let mut rng = Xoshiro256pp::seed_from_u64(seed + 100);
            let dv = build(&sg, &est, &mut rng);
            // DV-2: even degree sum.
            assert_eq!(dv.degree_sum() % 2, 0, "odd degree sum (seed {seed})");
            // DV-3: n* dominates n'.
            for k in 0..=dv.k_max {
                assert!(dv.n_star[k] >= dv.n_prime[k], "DV-3 broken at k={k}");
            }
            // Queried nodes keep exact degrees.
            for u in sg.queried_nodes() {
                assert_eq!(dv.d_star[u as usize] as usize, sg.graph.degree(u));
            }
            // Visible nodes: target ≥ subgraph degree.
            for u in sg.visible_nodes() {
                assert!(dv.d_star[u as usize] as usize >= sg.graph.degree(u));
            }
            // n'(k) consistent with d_star.
            let mut counts = vec![0u64; dv.k_max + 1];
            for &d in &dv.d_star {
                counts[d as usize] += 1;
            }
            assert_eq!(counts, dv.n_prime);
        }
    }

    #[test]
    fn positive_estimates_guarantee_a_node() {
        let (_, sg, est) = setup(400, 0.1, 9);
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let dv = build(&sg, &est, &mut rng);
        for k in 1..=dv.k_max.min(est.degree_dist.len() - 1) {
            if est.degree_prob(k) > 0.0 {
                assert!(dv.n_star[k] >= 1, "P̂({k}) > 0 but n*({k}) = 0");
            }
        }
    }

    #[test]
    fn gjoka_variant_skips_modification() {
        let (_, _, est) = setup(400, 0.1, 11);
        let dv = build_gjoka(&est);
        assert!(dv.d_star.is_empty());
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn fenwick_draw_matches_linear_scan_stream() {
        // The Fenwick-backed Algorithm 2 must reproduce the linear scan's
        // draws bit-for-bit: same RNG consumption, same slot selected.
        // Replay the scan manually against a clone of the inputs.
        for seed in 0..4 {
            let (_, sg, est) = setup(400, 0.12, seed);
            let mut rng_fast = Xoshiro256pp::seed_from_u64(seed + 500);
            let mut rng_ref = rng_fast.clone();
            let dv_fast = build(&sg, &est, &mut rng_fast);

            // Reference replay: initialization + adjustment, then the
            // original per-node linear scan.
            let mut dv = initialize(&est, subgraph_max_degree(&sg));
            adjust_even_sum(&mut dv);
            let n_sub = sg.num_nodes();
            dv.d_star = vec![0u32; n_sub];
            for u in sg.queried_nodes() {
                dv.d_star[u as usize] = sg.graph.degree(u) as u32;
            }
            for u in sg.queried_nodes() {
                dv.n_prime[sg.graph.degree(u)] += 1;
            }
            for k in 1..=dv.k_max {
                dv.n_star[k] = dv.n_star[k].max(dv.n_prime[k]);
            }
            let mut visible: Vec<u32> = sg.visible_nodes().collect();
            visible.sort_by_key(|&u| std::cmp::Reverse((sg.graph.degree(u), u)));
            for &u in &visible {
                let d_sub = sg.graph.degree(u);
                let total: u64 = (d_sub..=dv.k_max)
                    .map(|k| dv.n_star[k] - dv.n_prime[k])
                    .sum();
                let chosen = if total > 0 {
                    let mut target = rng_ref.gen_range(total as usize) as u64;
                    let mut pick = d_sub;
                    for k in d_sub..=dv.k_max {
                        let slots = dv.n_star[k] - dv.n_prime[k];
                        if target < slots {
                            pick = k;
                            break;
                        }
                        target -= slots;
                    }
                    pick
                } else {
                    let mut best_k = d_sub.max(1);
                    let mut best = f64::INFINITY;
                    for k in d_sub.max(1)..=dv.k_max {
                        let d = dv.delta_plus(k);
                        if d < best {
                            best = d;
                            best_k = k;
                        }
                    }
                    best_k
                };
                dv.d_star[u as usize] = chosen as u32;
                dv.n_prime[chosen] += 1;
                dv.n_star[chosen] = dv.n_star[chosen].max(dv.n_prime[chosen]);
            }
            adjust_even_sum(&mut dv);

            assert_eq!(dv_fast.d_star, dv.d_star, "d* diverged (seed {seed})");
            assert_eq!(dv_fast.n_star, dv.n_star, "n* diverged (seed {seed})");
            assert_eq!(
                rng_fast.next_u64(),
                rng_ref.next_u64(),
                "RNG streams diverged (seed {seed})"
            );
        }
    }

    #[test]
    fn adjust_even_sum_prefers_small_error() {
        // n̂(1) = 10 with n*(1) = 10 (incrementing costs 1/10);
        // n̂(3) = 2.4 with n*(3) = 2 (incrementing toward 2.4 REDUCES
        // error: Δ+ < 0) → k = 3 chosen despite being larger.
        let mut dv = TargetDv {
            n_star: vec![0, 10, 0, 2],
            n_prime: vec![0; 4],
            d_star: Vec::new(),
            k_max: 3,
            n_hat_k: vec![0.0, 10.0, 0.0, 2.4],
        };
        assert_eq!(dv.degree_sum() % 2, 0); // 10 + 6 = 16 even → no-op
        adjust_even_sum(&mut dv);
        assert_eq!(dv.n_star, vec![0, 10, 0, 2]);
        // Make it odd: degree sum 10 + 9 = 19.
        dv.n_star[3] = 3;
        dv.n_hat_k[3] = 3.4;
        adjust_even_sum(&mut dv);
        // Δ+(1) = (|10-11|-0)/10 = 0.1; Δ+(3) = (|3.4-4|-|3.4-3|)/3.4 ≈ 0.059.
        assert_eq!(dv.n_star[3], 4);
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn adjust_even_sum_all_infinite_prefers_existing_odd_class() {
        // No odd degree has a positive estimate (every Δ+ is ∞), but the
        // subgraph forced n*(3) > 0: the fix must perturb that existing
        // class instead of minting a degree-1 node the estimates never
        // saw.
        let mut dv = TargetDv {
            n_star: vec![0, 0, 4, 5, 0],
            n_prime: vec![0; 5],
            d_star: Vec::new(),
            k_max: 4,
            n_hat_k: vec![0.0, 0.0, 4.0, 0.0, 0.0],
        };
        assert_eq!(dv.degree_sum() % 2, 1); // 8 + 15 = 23 odd
        adjust_even_sum(&mut dv);
        assert_eq!(dv.n_star, vec![0, 0, 4, 6, 0]);
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn adjust_even_sum_all_infinite_uses_smallest_existing_odd_class() {
        // Only one odd class exists (degree 3, no estimate behind it):
        // the fix perturbs it rather than degree 1.
        let mut dv = TargetDv {
            n_star: vec![0, 0, 0, 1, 0],
            n_prime: vec![0; 5],
            d_star: Vec::new(),
            k_max: 4,
            n_hat_k: vec![0.0; 5],
        };
        assert_eq!(dv.degree_sum() % 2, 1);
        adjust_even_sum(&mut dv);
        assert_eq!(dv.n_star[3], 2);
        assert_eq!(dv.degree_sum() % 2, 0);

        // The documented degree-1 default: an odd degree sum always
        // carries some odd `k` with odd (hence positive) `n*(k)`, so the
        // `unwrap_or(1)` arm is a defensive dead end by parity — the
        // smallest existing odd class is always found. Degree 1 itself
        // being that class exercises the smallest-possible outcome.
        let mut dv = TargetDv {
            n_star: vec![0, 1, 0, 0, 0],
            n_prime: vec![0; 5],
            d_star: Vec::new(),
            k_max: 4,
            n_hat_k: vec![0.0; 5],
        };
        assert_eq!(dv.degree_sum() % 2, 1);
        adjust_even_sum(&mut dv);
        assert_eq!(dv.n_star[1], 2);
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn high_degree_visible_hub_is_accommodated() {
        // Build a crawl where a visible node has higher subgraph degree
        // than any queried node's true degree: query many leaves of a
        // star without querying the hub.
        let g = sgr_gen::classic::star(30);
        let mut crawl = sgr_sample::Crawl::default();
        for leaf in 1..=20u32 {
            crawl.seq.push(leaf);
            crawl.neighbors.insert(leaf, g.neighbors(leaf).to_vec());
        }
        let sg = crawl.subgraph();
        assert_eq!(sg.graph.max_degree(), 20); // hub visible with 20 edges
        let est = sgr_estimate::estimate_all(&crawl).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let dv = build(&sg, &est, &mut rng);
        // k*max covers the hub's subgraph degree.
        assert!(dv.k_max >= 20);
        // The hub got a target ≥ 20 and n* accounts for it.
        let hub_dense = sg.visible_nodes().next().unwrap();
        assert!(dv.d_star[hub_dense as usize] >= 20);
    }
}
