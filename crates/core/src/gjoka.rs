//! The reproducible version of Gjoka et al.'s 2.5K generation method
//! (Appendix B of the paper).
//!
//! Same estimates, same machinery — but **no use of the sampled
//! subgraph**: the target degree vector and joint degree matrix skip their
//! modification steps, the graph is built from an empty graph, and every
//! edge is a rewiring candidate (`Ẽ_rew = Ẽ`). The contrast with
//! [`crate::restore`] is exactly the paper's proposed-vs-baseline
//! comparison (and the source of both the accuracy gap on `c̄(k)` and the
//! several-fold rewiring-time gap).

use crate::{RestoreConfig, RestoreError, RestoreStats};
use sgr_dk::construct::{wire_stubs_with, ConstructScratch};
use sgr_dk::extract::JointDegreeMatrix;
use sgr_dk::rewire::RewireStats;
use sgr_estimate::{estimate_all, Estimates};
use sgr_graph::{Graph, NodeId};
use sgr_sample::Crawl;
use sgr_util::{FxHashMap, Xoshiro256pp};

/// Output of the Gjoka et al. baseline.
#[derive(Debug)]
pub struct GjokaOutput {
    /// The generated graph.
    pub graph: Graph,
    /// An order-preserving CSR snapshot of `graph`, frozen after rewiring
    /// (see [`crate::Restored::snapshot`]).
    pub snapshot: sgr_graph::CsrGraph,
    /// The estimates used as targets.
    pub estimates: Estimates,
    /// Phase timings and counters (same shape as the proposed method's).
    pub stats: RestoreStats,
}

/// Runs Gjoka et al.'s method (Appendix B) from a random-walk crawl.
///
/// Shares [`RestoreConfig`] with the proposed method:
/// `rewiring_coefficient` is `R_C` (500 in the paper), `rewire: false`
/// stops after construction, and `threads` selects the rewiring engine
/// (results are identical at every thread count).
pub fn generate(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
) -> Result<GjokaOutput, RestoreError> {
    generate_with(crawl, cfg, rng, &mut ConstructScratch::new())
}

/// [`generate`] against caller-owned stub-matching scratch (identical
/// results; a warm scratch makes the construction phase's stub matching
/// allocation-free — see [`crate::restore_with`]).
pub fn generate_with(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut ConstructScratch,
) -> Result<GjokaOutput, RestoreError> {
    if crawl.num_queried() == 0 {
        return Err(RestoreError::EmptyCrawl);
    }
    let t0 = std::time::Instant::now();
    let estimates = estimate_all(crawl)?;
    // Targets without subgraph modification steps.
    let mut dv = crate::target_dv::build_gjoka(&estimates);
    let jdm = crate::target_jdm::build_gjoka(&estimates, &mut dv)?;
    let target_secs = t0.elapsed().as_secs_f64();

    // Construction from an empty graph: every node takes its degree from
    // the target degree sequence; every edge comes from stub matching.
    let t1 = std::time::Instant::now();
    let n_total = dv.num_nodes() as usize;
    let mut g = Graph::with_nodes(n_total);
    let mut dseq: Vec<u32> = Vec::with_capacity(n_total);
    for k in 1..=dv.k_max {
        for _ in 0..dv.n_star[k] {
            dseq.push(k as u32);
        }
    }
    sgr_util::sampling::shuffle(&mut dseq, rng);
    let mut add: JointDegreeMatrix = FxHashMap::default();
    for (k, k2, star, _) in jdm.upper_entries() {
        if star > 0 {
            add.insert((k as u32, k2 as u32), star);
        }
    }
    let tm = std::time::Instant::now();
    let (added_slice, _match_stats) = wire_stubs_with(&mut g, &dseq, &add, rng, scratch)?;
    let stub_matching_secs = tm.elapsed().as_secs_f64();
    let added = added_slice.to_vec();
    let construct_secs = t1.elapsed().as_secs_f64();

    // Rewiring with every edge as a candidate (Ẽ_rew = Ẽ).
    let t2 = std::time::Instant::now();
    let candidates: Vec<(NodeId, NodeId)> = added;
    let candidate_edges = candidates.len();
    let (graph, rewire_stats) = if cfg.rewire && candidate_edges > 0 {
        let mut target_c = estimates.clustering.clone();
        target_c.resize(dv.k_max + 1, 0.0);
        crate::run_rewiring(
            g,
            candidates,
            &target_c,
            cfg.rewiring_coefficient,
            cfg.threads,
            rng,
        )
    } else {
        (g, RewireStats::default())
    };
    let rewire_secs = t2.elapsed().as_secs_f64();

    let stats = RestoreStats {
        target_secs,
        construct_secs,
        stub_matching_secs,
        rewire_secs,
        rewire_stats,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        candidate_edges,
        // The baseline stays a monolith (no staging, no checkpoints);
        // its t0 span covers estimation + targeting under target_secs.
        ..RestoreStats::default()
    };
    let snapshot = graph.freeze();
    Ok(GjokaOutput {
        graph,
        snapshot,
        estimates,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_dk::extract::joint_degree_matrix;
    use sgr_sample::random_walk_until_fraction;

    fn cfg(rc: f64) -> RestoreConfig {
        RestoreConfig {
            rewiring_coefficient: rc,
            ..RestoreConfig::default()
        }
    }

    fn run(n: usize, frac: f64, seed: u64, rc: f64) -> (Graph, GjokaOutput) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 4, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, frac, &mut rng);
        let out = generate(&crawl, &cfg(rc), &mut rng).unwrap();
        (g, out)
    }

    #[test]
    fn generated_graph_realizes_its_targets() {
        let (_, out) = run(600, 0.1, 1, 10.0);
        out.graph.validate().unwrap();
        // Degree vector internally consistent with the measured JDM (the
        // generator's own invariant).
        let jdm = joint_degree_matrix(&out.graph);
        assert!(sgr_dk::extract::jdm_matches_degree_vector(
            &jdm,
            &out.graph.degree_vector()
        ));
    }

    #[test]
    fn size_tracks_the_estimate() {
        // The generator's own invariant is fidelity to n̂ (the estimate),
        // not to the hidden truth — the estimator's noise at small sample
        // sizes is the estimator's business, tested in sgr-estimate.
        let (_, out) = run(800, 0.1, 2, 5.0);
        let n_gen = out.graph.num_nodes() as f64;
        assert!(
            (n_gen - out.estimates.n_hat).abs() / out.estimates.n_hat < 0.1,
            "generated n = {n_gen} vs n̂ = {}",
            out.estimates.n_hat
        );
    }

    #[test]
    fn all_edges_are_candidates() {
        let (_, out) = run(500, 0.1, 3, 2.0);
        assert_eq!(out.stats.candidate_edges, out.stats.edges);
    }

    #[test]
    fn empty_crawl_errors() {
        let crawl = Crawl::default();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert!(generate(&crawl, &cfg(10.0), &mut rng).is_err());
    }

    #[test]
    fn threads_knob_never_changes_results() {
        let run_with = |threads: usize| {
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            let g = sgr_gen::holme_kim(500, 4, 0.5, &mut rng).unwrap();
            let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
            let cfg = RestoreConfig {
                rewiring_coefficient: 10.0,
                rewire: true,
                threads,
            };
            generate(&crawl, &cfg, &mut rng).unwrap()
        };
        let base = run_with(1);
        for threads in [2, 4] {
            let r = run_with(threads);
            assert_eq!(
                base.graph.edges().collect::<Vec<_>>(),
                r.graph.edges().collect::<Vec<_>>(),
                "threads = {threads} changed the generated graph"
            );
            assert_eq!(
                base.stats.rewire_stats.final_distance.to_bits(),
                r.stats.rewire_stats.final_distance.to_bits()
            );
        }
    }

    #[test]
    fn rewiring_moves_toward_clustering_target() {
        let (_, out) = run(600, 0.12, 5, 20.0);
        let s = out.stats.rewire_stats;
        assert!(s.final_distance <= s.initial_distance);
    }
}
