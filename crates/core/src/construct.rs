//! Phase 3 — adding nodes and edges to the subgraph (§IV-D, Algorithm 5).

use crate::target_dv::TargetDv;
use crate::target_jdm::TargetJdm;
use sgr_dk::construct::{wire_stubs_with, ConstructScratch, MatchStats};
use sgr_dk::extract::JointDegreeMatrix;
use sgr_dk::DkError;
use sgr_graph::{Graph, NodeId};
use sgr_sample::Subgraph;
use sgr_util::{FxHashMap, Xoshiro256pp};

/// Output of the construction phase.
#[derive(Debug)]
pub struct Built {
    /// `G̃` — contains `G'` (dense ids `0..|V'|`) plus the added nodes.
    pub graph: Graph,
    /// The edges added on top of `E'` — the rewiring candidate set
    /// `Ẽ_rew = Ẽ \ E'`.
    pub added_edges: Vec<(NodeId, NodeId)>,
    /// Per-node target degrees actually used (subgraph nodes first).
    pub target_deg: Vec<u32>,
    /// Wall time spent inside stub matching proper (step 5), excluding
    /// node addition and degree-sequence shuffling — the
    /// `stub_matching_seconds` split `bench_construct` reports.
    pub stub_matching_secs: f64,
    /// Matcher counters (self-loop accounting; see
    /// [`sgr_dk::MatchStats`]).
    pub match_stats: MatchStats,
}

/// Algorithm 5: extend the subgraph so the result preserves `{n*(k)}` and
/// `{m*(k,k')}` exactly.
///
/// 1. start from `G̃ = G'`;
/// 2. append `Σ_k n*(k) − |V'|` fresh nodes;
/// 3. build the degree sequence in which `k` appears `n*(k) − n'(k)`
///    times, shuffle it, and assign it to the added nodes;
/// 4. give every node `d*_i − d'_i` free half-edges;
/// 5. for each `k ≤ k'`, wire `m*(k,k') − m'(k,k')` uniformly random
///    stub pairs between the degree classes.
pub fn extend_subgraph(
    sg: &Subgraph,
    dv: &TargetDv,
    jdm: &TargetJdm,
    rng: &mut Xoshiro256pp,
) -> Result<Built, DkError> {
    extend_subgraph_with(sg, dv, jdm, rng, &mut ConstructScratch::new())
}

/// [`extend_subgraph`] against caller-owned stub-matching scratch.
///
/// Behaviorally identical (the scratch never changes results — see the
/// determinism model in [`sgr_dk::construct`]); a warm scratch makes the
/// stub-matching step allocation-free, which is what the restore loop
/// wants when it generates many graphs back to back
/// ([`crate::restore_with`] / [`crate::gjoka::generate_with`] thread one
/// through).
pub fn extend_subgraph_with(
    sg: &Subgraph,
    dv: &TargetDv,
    jdm: &TargetJdm,
    rng: &mut Xoshiro256pp,
    scratch: &mut ConstructScratch,
) -> Result<Built, DkError> {
    let n_sub = sg.num_nodes();
    let n_total = dv.num_nodes() as usize;
    debug_assert!(n_total >= n_sub, "DV-3 guarantees room for the subgraph");

    // Degree sequence for the added nodes: k appears n*(k) - n'(k) times.
    // The subtraction is exactly condition DV-3; a violated invariant
    // must surface as an error, not wrap around in release mode and ask
    // the stub matcher for ~1.8e19 nodes.
    let mut dseq: Vec<u32> = Vec::with_capacity(n_total - n_sub);
    for k in 1..=dv.k_max {
        let free = dv.n_star[k]
            .checked_sub(dv.n_prime[k])
            .ok_or(DkError::DvDominanceViolated {
                k: k as u32,
                n_star: dv.n_star[k],
                n_prime: dv.n_prime[k],
            })?;
        for _ in 0..free {
            dseq.push(k as u32);
        }
    }
    debug_assert_eq!(dseq.len(), n_total - n_sub);
    sgr_util::sampling::shuffle(&mut dseq, rng);

    let mut target_deg: Vec<u32> = Vec::with_capacity(n_total);
    target_deg.extend_from_slice(&dv.d_star);
    target_deg.extend_from_slice(&dseq);

    // G̃ starts as G' over ids 0..n_sub, plus the added nodes. The final
    // degrees are already fixed, so the adjacency arena is laid out at
    // its exact target extents *before* the subgraph edges go in: both
    // the insertion below and the stub-matching fill wire into
    // pre-reserved slots with zero per-node reallocations. (Edge
    // insertion consumes no RNG, so hoisting the degree-sequence work
    // above it leaves the draw stream untouched.)
    let mut g = Graph::with_nodes(n_total);
    g.reserve_neighbors(&target_deg);
    for (u, v) in sg.graph.edges() {
        g.add_edge(u, v);
    }

    // Edges to add per degree-class pair: m*(k,k') − m'(k,k') is
    // condition JDM-4, guarded the same way.
    let mut add: JointDegreeMatrix = FxHashMap::default();
    for (k, k2, star, prime) in jdm.upper_entries() {
        let extra = star
            .checked_sub(prime)
            .ok_or(DkError::JdmDominanceViolated {
                k: k as u32,
                k2: k2 as u32,
                m_star: star,
                m_prime: prime,
            })?;
        if extra > 0 {
            add.insert((k as u32, k2 as u32), extra);
        }
    }

    let t = std::time::Instant::now();
    let (_, match_stats) = wire_stubs_with(&mut g, &target_deg, &add, rng, scratch)?;
    let stub_matching_secs = t.elapsed().as_secs_f64();
    // Move the edge list out of the scratch instead of copying the
    // borrowed slice — these edges outlive the scratch's next use.
    let added_edges = scratch.take_added();
    Ok(Built {
        graph: g,
        added_edges,
        target_deg,
        stub_matching_secs,
        match_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{target_dv, target_jdm};
    use sgr_dk::extract::joint_degree_matrix;
    use sgr_estimate::Estimates;
    use sgr_graph::index::MultiplicityIndex;
    use sgr_sample::{random_walk, AccessModel};

    fn setup(n: usize, frac: f64, seed: u64) -> (Subgraph, Estimates) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 3, 0.5, &mut rng).unwrap();
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let target = ((n as f64 * frac) as usize).max(3);
        let crawl = random_walk(&mut am, start, target, &mut rng);
        (
            crawl.subgraph(),
            sgr_estimate::estimate_all(&crawl).unwrap(),
        )
    }

    #[test]
    fn output_preserves_targets_exactly() {
        for seed in 0..4 {
            let (sg, est) = setup(500, 0.1, seed);
            let mut rng = Xoshiro256pp::seed_from_u64(seed + 70);
            let mut dv = target_dv::build(&sg, &est, &mut rng);
            let jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
            let built = extend_subgraph(&sg, &dv, &jdm, &mut rng).unwrap();
            let g = &built.graph;
            g.validate().unwrap();

            // Degree vector preserved exactly.
            let measured = g.degree_vector();
            for k in 1..=dv.k_max {
                assert_eq!(
                    measured.get(k).copied().unwrap_or(0) as u64,
                    dv.n_star[k],
                    "n({k}) off (seed {seed})"
                );
            }
            // Joint degree matrix preserved exactly.
            let measured_jdm = joint_degree_matrix(g);
            for k in 1..=jdm.k_max {
                for k2 in k..=jdm.k_max {
                    assert_eq!(
                        measured_jdm
                            .get(&(k as u32, k2 as u32))
                            .copied()
                            .unwrap_or(0),
                        jdm.get(k, k2),
                        "m({k},{k2}) off (seed {seed})"
                    );
                }
            }
            // Subgraph contained edge-for-edge.
            let idx = MultiplicityIndex::build(g);
            for (u, v) in sg.graph.edges() {
                assert!(idx.get(u, v) >= 1);
            }
            // Added edges + subgraph edges = all edges.
            assert_eq!(built.added_edges.len() + sg.num_edges(), g.num_edges());
        }
    }

    #[test]
    fn target_degrees_are_met_per_node() {
        let (sg, est) = setup(400, 0.12, 9);
        let mut rng = Xoshiro256pp::seed_from_u64(80);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
        let built = extend_subgraph(&sg, &dv, &jdm, &mut rng).unwrap();
        for (u, &d) in built.target_deg.iter().enumerate() {
            assert_eq!(
                built.graph.degree(u as NodeId),
                d as usize,
                "node {u} missed its target degree"
            );
        }
    }

    #[test]
    fn broken_dv_dominance_is_an_error_not_an_underflow() {
        // Corrupt DV-3 (n'(k) > n*(k)): in release mode the old raw
        // subtraction wrapped to ~1.8e19 and stub matching was asked for
        // that many nodes; it must now surface as a typed error.
        let (sg, est) = setup(300, 0.1, 3);
        let mut rng = Xoshiro256pp::seed_from_u64(81);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
        let k = (1..=dv.k_max)
            .find(|&k| dv.n_prime[k] > 0)
            .expect("subgraph assigns at least one target degree");
        dv.n_star[k] = dv.n_prime[k] - 1;
        match extend_subgraph(&sg, &dv, &jdm, &mut rng) {
            Err(DkError::DvDominanceViolated { k: ek, .. }) => {
                assert_eq!(ek as usize, k)
            }
            other => panic!("expected DvDominanceViolated, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_add_map_is_a_typed_out_of_stubs_error() {
        // Inflate one JDM cell so the derived `add` map requests more
        // `(k, k')` edges than the class's stub pool can supply. The
        // matcher must fail with a typed OutOfStubs carrying placement
        // context — never silently skip the remainder of the pair.
        let (sg, est) = setup(300, 0.1, 6);
        let mut rng = Xoshiro256pp::seed_from_u64(83);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let mut jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
        let (k, k2, star, _) = jdm
            .upper_entries()
            .find(|&(k, _, star, _)| k > 0 && star > 0)
            .expect("some populated cell");
        // Request far more edges of this class pair than stubs exist.
        jdm.set(k, k2, star + 1_000_000);
        match extend_subgraph(&sg, &dv, &jdm, &mut rng) {
            Err(DkError::OutOfStubs {
                k: ek,
                k2: ek2,
                placed,
                requested,
            }) => {
                assert_eq!((ek as usize, ek2 as usize), (k, k2));
                assert!(
                    placed < requested,
                    "error context inconsistent: placed {placed} of {requested}"
                );
            }
            other => panic!("expected OutOfStubs, got {other:?}"),
        }
    }

    #[test]
    fn stub_matching_stats_account_for_added_edges() {
        let (sg, est) = setup(400, 0.1, 8);
        let mut rng = Xoshiro256pp::seed_from_u64(84);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
        let built = extend_subgraph(&sg, &dv, &jdm, &mut rng).unwrap();
        assert_eq!(built.match_stats.edges, built.added_edges.len());
        // The subgraph is simple, so every self-loop in the result came
        // from the matcher and must be accounted.
        assert_eq!(built.match_stats.self_loops, built.graph.num_self_loops());
        assert!(built.stub_matching_secs >= 0.0);
    }

    #[test]
    fn broken_jdm_dominance_is_an_error_not_an_underflow() {
        // Corrupt JDM-4 (m'(k,k') > m*(k,k')): same hazard on the edge
        // side.
        let (sg, est) = setup(300, 0.1, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(82);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let mut jdm = target_jdm::build(&sg, &est, &mut dv).unwrap();
        let (k, k2, star, _) = jdm
            .upper_entries()
            .find(|&(k, _, star, _)| k > 0 && star > 0)
            .expect("some populated cell");
        jdm.set_prime(k, k2, star + 3);
        match extend_subgraph(&sg, &dv, &jdm, &mut rng) {
            Err(DkError::JdmDominanceViolated {
                k: ek,
                k2: ek2,
                m_star,
                m_prime,
            }) => {
                assert_eq!((ek as usize, ek2 as usize), (k, k2));
                assert_eq!(m_star, star);
                assert_eq!(m_prime, star + 3);
            }
            other => panic!("expected JdmDominanceViolated, got {other:?}"),
        }
    }
}
