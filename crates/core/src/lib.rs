//! # sgr-core
//!
//! The paper's primary contribution: **social graph restoration from a
//! random-walk sample** (§IV), plus the reproducible version of Gjoka et
//! al.'s 2.5K baseline (Appendix B).
//!
//! Given a [`Crawl`] produced by a simple random walk, [`restore`] runs
//! the four phases of the proposed method:
//!
//! 1. **Target degree vector** `{n*(k)}` ([`target_dv`]) — initialize
//!    from `n̂ P̂(k)`, adjust to an even degree sum (Algorithm 1), and
//!    modify so every subgraph node can keep (queried) or grow to
//!    (visible) its target degree (Algorithm 2);
//! 2. **Target joint degree matrix** `{m*(k,k')}` ([`target_jdm`]) —
//!    initialize from `n̂ k̄̂ P̂(k,k')/µ`, adjust the per-degree marginals
//!    to `k·n*(k)` (Algorithm 3), modify to dominate the subgraph's JDM
//!    (Algorithm 4), and re-adjust with the subgraph as a lower bound;
//! 3. **Construction** ([`construct`]) — extend `G'` with new nodes and
//!    stub-matched edges so the result preserves `{n*(k)}` and
//!    `{m*(k,k')}` exactly (Algorithm 5);
//! 4. **Rewiring** ([`sgr_dk::rewire`]) — equal-degree edge swaps over
//!    the *added* edges only (`Ẽ_rew = Ẽ \ E'`), greedily minimizing the
//!    L1 distance to `{ĉ̄(k)}` (Algorithm 6).
//!
//! [`gjoka::generate`] implements the baseline with the same machinery
//! but no subgraph: target construction skips the modification steps, the
//! graph is built from an empty graph, and every edge is rewirable.

pub mod construct;
pub mod gjoka;
pub mod target_dv;
pub mod target_jdm;

mod checkpoint;

/// Re-exported so downstream callers of [`restore_with`] /
/// [`resume_from_checkpoint`] can own a scratch without depending on
/// `sgr_dk` directly.
pub use sgr_dk::ConstructScratch;

use std::path::{Path, PathBuf};
use std::time::Instant;

use checkpoint::{StageData, StageRef};
use sgr_dk::rewire::parallel::ParallelRewireEngine;
use sgr_dk::rewire::{RewireEngine, RewireStats};
use sgr_estimate::{estimate_all, EstimateError, Estimates};
use sgr_graph::{CsrGraph, Graph, NodeId, SnapshotError};
use sgr_sample::{Crawl, Subgraph};
use sgr_util::Xoshiro256pp;
use target_dv::TargetDv;
use target_jdm::TargetJdm;

/// Configuration of the restoration pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RestoreConfig {
    /// `R_C` — the rewiring-attempts coefficient (`R = R_C · |Ẽ_rew|`).
    /// The paper uses 500 (§V-E).
    pub rewiring_coefficient: f64,
    /// Set false to stop after Phase 3 (used by ablations).
    pub rewire: bool,
    /// Rewiring worker threads: `1` (default) runs the sequential
    /// [`RewireEngine`]; any other value runs the speculative-parallel
    /// [`ParallelRewireEngine`] with that many workers (`0` = all
    /// available cores). The engines are seed-for-seed bitwise
    /// equivalent, so this knob changes wall time only, never results.
    pub threads: usize,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        Self {
            rewiring_coefficient: 500.0,
            rewire: true,
            threads: 1,
        }
    }
}

/// Phase-4 rewiring shared by [`restore`] and [`gjoka::generate`]:
/// dispatches to the sequential or speculative-parallel engine per
/// `threads` (see [`RestoreConfig::threads`]; results are identical
/// either way).
pub(crate) fn run_rewiring(
    graph: Graph,
    candidates: Vec<(NodeId, NodeId)>,
    target_c: &[f64],
    rc: f64,
    threads: usize,
    rng: &mut Xoshiro256pp,
) -> (Graph, RewireStats) {
    if threads == 1 {
        let mut engine = RewireEngine::new(graph, candidates, target_c);
        let stats = engine.run(rc, rng);
        (engine.into_graph(), stats)
    } else {
        let mut engine = ParallelRewireEngine::new(graph, candidates, target_c, threads);
        let stats = engine.run(rc, rng);
        (engine.into_graph(), stats)
    }
}

/// Errors from the restoration pipeline.
#[derive(Debug)]
pub enum RestoreError {
    /// The walk was too short for the estimators.
    Estimate(EstimateError),
    /// Target construction failed (Algorithm 3 non-convergence —
    /// indicates corrupted inputs, surfaced instead of panicking).
    Target(target_jdm::TargetError),
    /// Internal construction failure (violated realizability conditions —
    /// indicates a bug, surfaced instead of panicking).
    Construct(sgr_dk::DkError),
    /// The crawl contains no queried nodes.
    EmptyCrawl,
    /// A checkpoint could not be written, or a checkpoint being resumed
    /// was missing, corrupted, truncated, or version-mismatched (see
    /// [`sgr_graph::snapshot`] for the per-failure variants).
    Snapshot(SnapshotError),
    /// The fault injector stopped the pipeline right after persisting
    /// the named checkpoint (test harness: a simulated crash — all
    /// in-memory state is dropped; only the file survives).
    Interrupted {
        /// The last checkpoint written before the simulated crash.
        checkpoint: PathBuf,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Estimate(e) => write!(f, "estimation failed: {e}"),
            RestoreError::Target(e) => write!(f, "target construction failed: {e}"),
            RestoreError::Construct(e) => write!(f, "construction failed: {e}"),
            RestoreError::EmptyCrawl => write!(f, "crawl contains no queried node"),
            RestoreError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            RestoreError::Interrupted { checkpoint } => write!(
                f,
                "pipeline interrupted by fault injection after writing {}",
                checkpoint.display()
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> Self {
        RestoreError::Snapshot(e)
    }
}

impl From<EstimateError> for RestoreError {
    fn from(e: EstimateError) -> Self {
        RestoreError::Estimate(e)
    }
}

impl From<target_jdm::TargetError> for RestoreError {
    fn from(e: target_jdm::TargetError) -> Self {
        RestoreError::Target(e)
    }
}

impl From<sgr_dk::DkError> for RestoreError {
    fn from(e: sgr_dk::DkError) -> Self {
        RestoreError::Construct(e)
    }
}

/// Timings and counters from one restoration run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreStats {
    /// Wall time of the estimation stage (estimators + subgraph
    /// induction). Zero for runs resumed past that stage in a prior
    /// process — resumed runs restore the timings recorded in the
    /// checkpoint, so the sum still covers the whole pipeline.
    pub estimate_secs: f64,
    /// Wall time of the target-construction stage (Algorithms 1–4).
    pub target_secs: f64,
    /// Wall time of Phase 3 (adding nodes and edges).
    pub construct_secs: f64,
    /// Wall time of stub matching proper within Phase 3 (wiring free
    /// half-edges class by class), excluding node addition and
    /// degree-sequence shuffling.
    pub stub_matching_secs: f64,
    /// Wall time of Phase 4 (rewiring).
    pub rewire_secs: f64,
    /// Rewiring detail.
    pub rewire_stats: RewireStats,
    /// Number of nodes in the generated graph.
    pub nodes: usize,
    /// Number of edges in the generated graph.
    pub edges: usize,
    /// Number of rewirable (added) edges `|Ẽ_rew|`.
    pub candidate_edges: usize,
    /// Wall time spent serializing checkpoints (crash-safety overhead;
    /// excluded from [`RestoreStats::total_secs`] so checkpointed and
    /// plain runs report comparable generation times).
    pub checkpoint_secs: f64,
    /// Number of checkpoints persisted, including any restored run's
    /// earlier ones.
    pub checkpoints_written: u64,
}

impl RestoreStats {
    /// Total generation time (the paper's Table IV "Total"); checkpoint
    /// I/O is tracked separately in `checkpoint_secs`.
    pub fn total_secs(&self) -> f64 {
        self.estimate_secs + self.target_secs + self.construct_secs + self.rewire_secs
    }
}

/// The outcome of a restoration.
#[derive(Debug)]
pub struct Restored {
    /// The generated graph `G̃` (contains `G'` as node ids `0..|V'|`).
    pub graph: Graph,
    /// An order-preserving CSR snapshot of `graph`, frozen once after the
    /// last mutation (rewiring). Hand this — not `graph` — to the
    /// read-only consumers (property computation, dissimilarity, layout);
    /// it reads the same but traverses a flat arena.
    pub snapshot: CsrGraph,
    /// The subgraph `G'` the generation started from.
    pub subgraph: Subgraph,
    /// The re-weighted estimates used as targets.
    pub estimates: Estimates,
    /// Phase timings and counters.
    pub stats: RestoreStats,
}

/// When and where the staged pipeline persists checkpoints.
///
/// With a policy in place the pipeline writes one checkpoint after each
/// completed stage (estimate, target, construct) and — when `every > 0` —
/// one every `every` committed rewiring attempts. Files are named
/// `ckpt-<seq>-<stage>.sgrsnap` inside `dir` and written atomically
/// (temp + rename), so a crash mid-write never destroys the previous
/// checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory receiving the checkpoint files (must exist).
    pub dir: PathBuf,
    /// Mid-rewire checkpoint cadence in committed swap attempts;
    /// `0` checkpoints at stage boundaries only.
    pub every: u64,
    /// Fault-injection hook: simulate a crash by aborting with
    /// [`RestoreError::Interrupted`] immediately after the `n`-th
    /// checkpoint (1-based) has been persisted. All in-memory pipeline
    /// state is dropped; resumption must work from the file alone.
    pub abort_after: Option<u64>,
}

impl CheckpointPolicy {
    /// Checkpoints at stage boundaries only, no fault injection.
    pub fn at_boundaries(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 0,
            abort_after: None,
        }
    }
}

/// Observer of staged-pipeline progress, for long-running hosts (the
/// `sgr serve` job server) that report "stage, committed rewiring
/// attempts, stats so far" to remote clients while a restoration runs.
///
/// All methods have empty defaults; implementations must be cheap — they
/// run on the pipeline thread, between rewiring chunks. The observer
/// never influences results: it receives immutable views only, and the
/// pipeline consumes the identical RNG stream whether or not one is
/// attached (pinned by the server determinism suite).
pub trait PipelineObserver {
    /// A pipeline stage (`estimate`, `target`, `construct`, `rewire`) is
    /// about to run. On resume, fires for the stage being re-entered.
    fn stage_started(&mut self, _stage: &'static str) {}

    /// A rewiring chunk committed: `done` of `total` attempts are in,
    /// with the cumulative stats so far (including restored-from-
    /// checkpoint history).
    fn rewire_progress(&mut self, _done: u64, _total: u64, _stats: &RestoreStats) {}

    /// A checkpoint was persisted durably at `path`.
    fn checkpoint_written(&mut self, _path: &Path, _stats: &RestoreStats) {}
}

/// The do-nothing observer behind the plain (non-`_observed`) entry
/// points.
pub struct NoopObserver;

impl PipelineObserver for NoopObserver {}

/// The pipeline driver: configuration, checkpoint policy, progress
/// observer, and the stats accumulated across stages (and, on resume,
/// across processes).
struct Driver<'a> {
    cfg: RestoreConfig,
    policy: Option<&'a CheckpointPolicy>,
    stats: RestoreStats,
    observer: &'a mut dyn PipelineObserver,
}

impl Driver<'_> {
    /// Persists a checkpoint if a policy is active; returns the
    /// fault-injected `Interrupted` error when this write is the
    /// configured crash point.
    fn checkpoint(
        &mut self,
        rng: &Xoshiro256pp,
        subgraph: &Subgraph,
        estimates: &Estimates,
        stage: StageRef<'_>,
    ) -> Result<(), RestoreError> {
        let Some(policy) = self.policy else {
            return Ok(());
        };
        let t = Instant::now();
        // The count includes the checkpoint being written, so a resumed
        // run continues the file numbering instead of overwriting.
        self.stats.checkpoints_written += 1;
        let path = policy.dir.join(format!(
            "ckpt-{:04}-{}.sgrsnap",
            self.stats.checkpoints_written,
            stage.name()
        ));
        checkpoint::write_checkpoint(
            &path,
            &self.cfg,
            rng.state(),
            &self.stats,
            subgraph,
            estimates,
            &stage,
        )?;
        self.stats.checkpoint_secs += t.elapsed().as_secs_f64();
        self.observer.checkpoint_written(&path, &self.stats);
        if policy.abort_after == Some(self.stats.checkpoints_written) {
            return Err(RestoreError::Interrupted { checkpoint: path });
        }
        Ok(())
    }
}

/// `{ĉ̄(k)}` resized to the target degree range — the rewiring phase's
/// objective vector. Derived (not checkpointed): it is a pure function
/// of the estimates and `k*_max`.
fn clustering_target(estimates: &Estimates, k_max: usize) -> Vec<f64> {
    let mut target_c = estimates.clustering.clone();
    target_c.resize(k_max + 1, 0.0);
    target_c
}

/// Stage 1 → 2: target degree vector + joint degree matrix
/// (Algorithms 1–4).
fn stage_target(
    driver: &mut Driver<'_>,
    subgraph: &Subgraph,
    estimates: &Estimates,
    rng: &mut Xoshiro256pp,
) -> Result<(TargetDv, TargetJdm), RestoreError> {
    driver.observer.stage_started("target");
    let t = Instant::now();
    let mut dv = target_dv::build(subgraph, estimates, rng);
    let jdm = target_jdm::build(subgraph, estimates, &mut dv)?;
    driver.stats.target_secs += t.elapsed().as_secs_f64();
    driver.checkpoint(
        rng,
        subgraph,
        estimates,
        StageRef::Targeted { dv: &dv, jdm: &jdm },
    )?;
    Ok((dv, jdm))
}

/// What [`stage_construct`] hands to the rewiring stage: the target
/// `k_max`, the constructed graph, and the added-edge candidate set.
type ConstructedStage = (usize, Graph, Vec<(NodeId, NodeId)>);

/// Stage 2 → 3: node addition + stub matching (Algorithm 5).
fn stage_construct(
    driver: &mut Driver<'_>,
    subgraph: &Subgraph,
    estimates: &Estimates,
    dv: &TargetDv,
    jdm: &TargetJdm,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<ConstructedStage, RestoreError> {
    driver.observer.stage_started("construct");
    let t = Instant::now();
    let built = construct::extend_subgraph_with(subgraph, dv, jdm, rng, scratch)?;
    driver.stats.construct_secs += t.elapsed().as_secs_f64();
    driver.stats.stub_matching_secs += built.stub_matching_secs;
    driver.checkpoint(
        rng,
        subgraph,
        estimates,
        StageRef::Constructed {
            k_max: dv.k_max,
            graph: &built.graph,
            added_edges: &built.added_edges,
        },
    )?;
    Ok((dv.k_max, built.graph, built.added_edges))
}

/// Either rewiring engine behind one face: the engines are seed-for-seed
/// bitwise equivalent and expose identical checkpoint state, so the
/// driver (and the checkpoint format) never cares which one is running.
enum Engine {
    Sequential(Box<RewireEngine>),
    Parallel(Box<ParallelRewireEngine>),
}

impl Engine {
    fn new(
        graph: Graph,
        candidates: Vec<(NodeId, NodeId)>,
        target_c: &[f64],
        threads: usize,
    ) -> Self {
        if threads == 1 {
            Engine::Sequential(Box::new(RewireEngine::new(graph, candidates, target_c)))
        } else {
            Engine::Parallel(Box::new(ParallelRewireEngine::new(
                graph, candidates, target_c, threads,
            )))
        }
    }

    fn run_attempts(&mut self, attempts: u64, rng: &mut Xoshiro256pp) -> RewireStats {
        match self {
            Engine::Sequential(e) => e.run_attempts(attempts, rng),
            Engine::Parallel(e) => e.run_attempts(attempts, rng),
        }
    }

    fn into_graph(self) -> Graph {
        match self {
            Engine::Sequential(e) => e.into_graph(),
            Engine::Parallel(e) => e.into_graph(),
        }
    }

    fn graph(&self) -> &Graph {
        match self {
            Engine::Sequential(e) => e.graph(),
            Engine::Parallel(e) => e.graph(),
        }
    }

    fn slots(&self) -> &[(NodeId, NodeId)] {
        match self {
            Engine::Sequential(e) => e.slots(),
            Engine::Parallel(e) => e.slots(),
        }
    }

    fn clustering_sums(&self) -> &[f64] {
        match self {
            Engine::Sequential(e) => e.clustering_sums(),
            Engine::Parallel(e) => e.clustering_sums(),
        }
    }

    fn dist_raw(&self) -> f64 {
        match self {
            Engine::Sequential(e) => e.dist_raw(),
            Engine::Parallel(e) => e.dist_raw(),
        }
    }

    fn bucket_state(&self) -> Vec<Vec<(u32, u8)>> {
        match self {
            Engine::Sequential(e) => e.bucket_state(),
            Engine::Parallel(e) => e.bucket_state(),
        }
    }

    fn restore_float_state(&mut self, s: &[f64], dist_raw: f64) -> Result<(), String> {
        match self {
            Engine::Sequential(e) => e.restore_float_state(s, dist_raw),
            Engine::Parallel(e) => e.restore_float_state(s, dist_raw),
        }
    }

    fn restore_bucket_state(&mut self, buckets: Vec<Vec<(u32, u8)>>) -> Result<(), String> {
        match self {
            Engine::Sequential(e) => e.restore_bucket_state(buckets),
            Engine::Parallel(e) => e.restore_bucket_state(buckets),
        }
    }
}

/// The rewiring loop: runs `total` attempts in checkpoint-sized chunks.
/// Chunking is bitwise-neutral (`run_attempts` in pieces reproduces one
/// big run exactly — the engines' own equivalence tests pin this), so
/// checkpointed, resumed, and straight-through runs all land on the same
/// graph. `driver.stats.rewire_stats.attempts` is the committed-attempt
/// cursor, carried across processes by the checkpoint.
fn run_rewire_loop(
    driver: &mut Driver<'_>,
    subgraph: &Subgraph,
    estimates: &Estimates,
    k_max: usize,
    mut engine: Engine,
    total: u64,
    rng: &mut Xoshiro256pp,
) -> Result<Graph, RestoreError> {
    driver.observer.stage_started("rewire");
    loop {
        let done = driver.stats.rewire_stats.attempts;
        let remaining = total - done;
        let chunk = match driver.policy {
            Some(p) if p.every > 0 => remaining.min(p.every),
            _ => remaining,
        };
        let t = Instant::now();
        let s = engine.run_attempts(chunk, rng);
        driver.stats.rewire_secs += t.elapsed().as_secs_f64();
        if done == 0 {
            driver.stats.rewire_stats.initial_distance = s.initial_distance;
        }
        driver.stats.rewire_stats.attempts = done + chunk;
        driver.stats.rewire_stats.accepted += s.accepted;
        driver.stats.rewire_stats.skipped += s.skipped;
        driver.stats.rewire_stats.final_distance = s.final_distance;
        driver
            .observer
            .rewire_progress(driver.stats.rewire_stats.attempts, total, &driver.stats);
        if driver.stats.rewire_stats.attempts >= total {
            return Ok(engine.into_graph());
        }
        driver.checkpoint(
            rng,
            subgraph,
            estimates,
            StageRef::Rewiring {
                k_max,
                graph: engine.graph(),
                slots: engine.slots(),
                clustering_sums: engine.clustering_sums(),
                dist_raw: engine.dist_raw(),
                buckets: engine.bucket_state(),
                total_attempts: total,
            },
        )?;
    }
}

/// Seals the run: final counters, the one-and-only CSR freeze, and the
/// `Restored` bundle.
fn finish(
    mut stats: RestoreStats,
    subgraph: Subgraph,
    estimates: Estimates,
    graph: Graph,
) -> Restored {
    stats.nodes = graph.num_nodes();
    stats.edges = graph.num_edges();
    // Freeze once: construction and rewiring are done, so every consumer
    // from here on is read-only and gets the CSR arena.
    let snapshot = graph.freeze();
    Restored {
        graph,
        snapshot,
        subgraph,
        estimates,
        stats,
    }
}

/// Stages 2..4 (after estimation).
fn run_after_estimate(
    driver: &mut Driver<'_>,
    subgraph: Subgraph,
    estimates: Estimates,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<Restored, RestoreError> {
    let (dv, jdm) = stage_target(driver, &subgraph, &estimates, rng)?;
    run_after_target(driver, subgraph, estimates, dv, jdm, rng, scratch)
}

/// Stages 3..4 (after targeting).
fn run_after_target(
    driver: &mut Driver<'_>,
    subgraph: Subgraph,
    estimates: Estimates,
    dv: TargetDv,
    jdm: TargetJdm,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<Restored, RestoreError> {
    let (k_max, graph, added) =
        stage_construct(driver, &subgraph, &estimates, &dv, &jdm, rng, scratch)?;
    run_after_construct(driver, subgraph, estimates, k_max, graph, added, rng)
}

/// Stage 4 (rewiring over the added edges only, Algorithm 6) and
/// completion.
fn run_after_construct(
    driver: &mut Driver<'_>,
    subgraph: Subgraph,
    estimates: Estimates,
    k_max: usize,
    graph: Graph,
    added_edges: Vec<(NodeId, NodeId)>,
    rng: &mut Xoshiro256pp,
) -> Result<Restored, RestoreError> {
    let candidate_edges = added_edges.len();
    driver.stats.candidate_edges = candidate_edges;
    if !driver.cfg.rewire || candidate_edges == 0 {
        return Ok(finish(driver.stats, subgraph, estimates, graph));
    }
    let total = (driver.cfg.rewiring_coefficient * candidate_edges as f64).ceil() as u64;
    let target_c = clustering_target(&estimates, k_max);
    let engine = Engine::new(graph, added_edges, &target_c, driver.cfg.threads);
    let graph = run_rewire_loop(driver, &subgraph, &estimates, k_max, engine, total, rng)?;
    Ok(finish(driver.stats, subgraph, estimates, graph))
}

fn restore_impl(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
    policy: Option<&CheckpointPolicy>,
    observer: &mut dyn PipelineObserver,
) -> Result<Restored, RestoreError> {
    if crawl.num_queried() == 0 {
        return Err(RestoreError::EmptyCrawl);
    }
    let mut driver = Driver {
        cfg: *cfg,
        policy,
        stats: RestoreStats::default(),
        observer,
    };
    // Stage 1: estimation + subgraph induction (consumes no RNG).
    driver.observer.stage_started("estimate");
    let t = Instant::now();
    let estimates = estimate_all(crawl)?;
    let subgraph = crawl.subgraph();
    driver.stats.estimate_secs += t.elapsed().as_secs_f64();
    driver.checkpoint(rng, &subgraph, &estimates, StageRef::Estimated)?;
    run_after_estimate(&mut driver, subgraph, estimates, rng, scratch)
}

/// Runs the full proposed method (§IV) on a random-walk crawl.
pub fn restore(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
) -> Result<Restored, RestoreError> {
    restore_with(crawl, cfg, rng, &mut sgr_dk::ConstructScratch::new())
}

/// [`restore`] against caller-owned stub-matching scratch.
///
/// Results are identical (the scratch never changes the RNG stream — see
/// the determinism model in [`sgr_dk::construct`]); holding one scratch
/// across repeated restorations makes each run's stub-matching phase
/// allocation-free after the first.
pub fn restore_with(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<Restored, RestoreError> {
    restore_impl(crawl, cfg, rng, scratch, None, &mut NoopObserver)
}

/// [`restore_with`] under a [`CheckpointPolicy`]: identical results (the
/// staged driver and checkpoint chunking are bitwise-neutral), plus
/// durable intermediate state for [`resume_from_checkpoint`].
pub fn restore_with_checkpoints(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
    policy: &CheckpointPolicy,
) -> Result<Restored, RestoreError> {
    restore_impl(crawl, cfg, rng, scratch, Some(policy), &mut NoopObserver)
}

/// [`restore_with_checkpoints`] with a [`PipelineObserver`] attached:
/// identical results (the observer only receives notifications), plus
/// live stage/progress callbacks for long-running hosts.
pub fn restore_with_checkpoints_observed(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
    policy: &CheckpointPolicy,
    observer: &mut dyn PipelineObserver,
) -> Result<Restored, RestoreError> {
    restore_impl(crawl, cfg, rng, scratch, Some(policy), observer)
}

/// Continues an interrupted restoration from a checkpoint file, producing
/// a result bitwise-identical to the run that was interrupted (same final
/// edge multiset, same RNG stream, same stats counters).
///
/// `threads` optionally overrides the checkpointed engine choice — safe
/// because the engines are seed-for-seed equivalent. A `policy` makes the
/// resumed run itself checkpointable (file numbering continues where the
/// interrupted run stopped).
pub fn resume_from_checkpoint(
    path: &Path,
    threads: Option<usize>,
    policy: Option<&CheckpointPolicy>,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<Restored, RestoreError> {
    resume_from_checkpoint_observed(path, threads, policy, scratch, &mut NoopObserver)
}

/// [`resume_from_checkpoint`] with a [`PipelineObserver`] attached —
/// same bitwise-identical resume guarantee, plus live progress
/// callbacks (the `sgr serve` job server resumes adopted jobs through
/// this).
pub fn resume_from_checkpoint_observed(
    path: &Path,
    threads: Option<usize>,
    policy: Option<&CheckpointPolicy>,
    scratch: &mut sgr_dk::ConstructScratch,
    observer: &mut dyn PipelineObserver,
) -> Result<Restored, RestoreError> {
    let ckpt = checkpoint::read_checkpoint(path)?;
    let mut cfg = ckpt.cfg;
    if let Some(t) = threads {
        cfg.threads = t;
    }
    let mut rng = Xoshiro256pp::from_state(ckpt.rng_state);
    let mut driver = Driver {
        cfg,
        policy,
        stats: ckpt.stats,
        observer,
    };
    let subgraph = ckpt.subgraph;
    let estimates = ckpt.estimates;
    match ckpt.stage {
        StageData::Estimated => {
            run_after_estimate(&mut driver, subgraph, estimates, &mut rng, scratch)
        }
        StageData::Targeted { dv, jdm } => {
            run_after_target(&mut driver, subgraph, estimates, dv, jdm, &mut rng, scratch)
        }
        StageData::Constructed {
            k_max,
            graph,
            added_edges,
        } => run_after_construct(
            &mut driver,
            subgraph,
            estimates,
            k_max,
            graph,
            added_edges,
            &mut rng,
        ),
        StageData::Rewiring {
            k_max,
            graph,
            slots,
            clustering_sums,
            dist_raw,
            buckets,
            total_attempts,
        } => {
            let target_c = clustering_target(&estimates, k_max);
            let mut engine = Engine::new(graph, slots, &target_c, driver.cfg.threads);
            engine
                .restore_float_state(&clustering_sums, dist_raw)
                .map_err(SnapshotError::Corrupt)?;
            engine
                .restore_bucket_state(buckets)
                .map_err(SnapshotError::Corrupt)?;
            let graph = run_rewire_loop(
                &mut driver,
                &subgraph,
                &estimates,
                k_max,
                engine,
                total_attempts,
                &mut rng,
            )?;
            Ok(finish(driver.stats, subgraph, estimates, graph))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::index::MultiplicityIndex;
    use sgr_sample::random_walk_until_fraction;

    fn pipeline(n: usize, frac: f64, seed: u64, rc: f64) -> (Graph, Restored) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 4, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, frac, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: rc,
            rewire: true,
            threads: 1,
        };
        let restored = restore(&crawl, &cfg, &mut rng).unwrap();
        (g, restored)
    }

    #[test]
    fn restored_graph_contains_subgraph() {
        let (_, r) = pipeline(600, 0.10, 1, 20.0);
        let idx = MultiplicityIndex::build(&r.graph);
        for (u, v) in r.subgraph.graph.edges() {
            assert!(
                idx.get(u, v) >= 1,
                "subgraph edge ({u},{v}) missing from restored graph"
            );
        }
        // Queried nodes keep their exact degree.
        for d in r.subgraph.queried_nodes() {
            assert_eq!(
                r.graph.degree(d),
                r.subgraph.graph.degree(d),
                "queried node {d} degree changed"
            );
        }
        // Visible nodes have at least their subgraph degree.
        for d in r.subgraph.visible_nodes() {
            assert!(r.graph.degree(d) >= r.subgraph.graph.degree(d));
        }
    }

    #[test]
    fn restored_size_tracks_estimates() {
        let (g, r) = pipeline(800, 0.10, 2, 10.0);
        let n_gen = r.graph.num_nodes() as f64;
        // Generated node count within 40% of truth (estimator noise).
        assert!(
            (n_gen - g.num_nodes() as f64).abs() / (g.num_nodes() as f64) < 0.4,
            "generated n = {n_gen} vs true {}",
            g.num_nodes()
        );
        let k_gen = r.graph.average_degree();
        assert!(
            (k_gen - g.average_degree()).abs() / g.average_degree() < 0.4,
            "generated k̄ = {k_gen} vs true {}",
            g.average_degree()
        );
    }

    #[test]
    fn rewiring_improves_clustering_distance() {
        let (_, r) = pipeline(600, 0.12, 3, 30.0);
        let s = r.stats.rewire_stats;
        assert!(s.accepted > 0);
        assert!(
            s.final_distance <= s.initial_distance,
            "rewiring worsened D: {} -> {}",
            s.initial_distance,
            s.final_distance
        );
    }

    #[test]
    fn empty_crawl_errors() {
        let crawl = Crawl::default();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert!(matches!(
            restore(&crawl, &RestoreConfig::default(), &mut rng),
            Err(RestoreError::EmptyCrawl)
        ));
    }

    #[test]
    fn no_rewire_config_skips_phase4() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let g = sgr_gen::holme_kim(400, 3, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: 500.0,
            rewire: false,
            threads: 1,
        };
        let r = restore(&crawl, &cfg, &mut rng).unwrap();
        assert_eq!(r.stats.rewire_stats.attempts, 0);
        assert_eq!(r.stats.rewire_stats.accepted, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = pipeline(400, 0.1, 6, 5.0);
        let (_, b) = pipeline(400, 0.1, 6, 5.0);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn threads_knob_never_changes_results() {
        // The whole point of the parallel engine's contract: the pipeline
        // output is a function of the seed alone, not of the thread
        // count.
        let run_with = |threads: usize| {
            let mut rng = Xoshiro256pp::seed_from_u64(8);
            let g = sgr_gen::holme_kim(500, 4, 0.5, &mut rng).unwrap();
            let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
            let cfg = RestoreConfig {
                rewiring_coefficient: 10.0,
                rewire: true,
                threads,
            };
            restore(&crawl, &cfg, &mut rng).unwrap()
        };
        let base = run_with(1);
        for threads in [0, 2, 4] {
            let r = run_with(threads);
            assert_eq!(
                base.graph.edges().collect::<Vec<_>>(),
                r.graph.edges().collect::<Vec<_>>(),
                "threads = {threads} changed the restored graph"
            );
            assert_eq!(
                base.stats.rewire_stats.accepted, r.stats.rewire_stats.accepted,
                "threads = {threads} changed the accepted count"
            );
            assert_eq!(
                base.stats.rewire_stats.final_distance.to_bits(),
                r.stats.rewire_stats.final_distance.to_bits(),
                "threads = {threads} changed the final distance"
            );
        }
    }

    #[test]
    fn stats_totals_are_consistent() {
        let (_, r) = pipeline(400, 0.1, 7, 5.0);
        assert!(r.stats.total_secs() >= r.stats.rewire_secs);
        assert_eq!(r.stats.nodes, r.graph.num_nodes());
        assert_eq!(r.stats.edges, r.graph.num_edges());
        assert!(r.stats.candidate_edges <= r.stats.edges);
    }
}
