//! # sgr-core
//!
//! The paper's primary contribution: **social graph restoration from a
//! random-walk sample** (§IV), plus the reproducible version of Gjoka et
//! al.'s 2.5K baseline (Appendix B).
//!
//! Given a [`Crawl`] produced by a simple random walk, [`restore`] runs
//! the four phases of the proposed method:
//!
//! 1. **Target degree vector** `{n*(k)}` ([`target_dv`]) — initialize
//!    from `n̂ P̂(k)`, adjust to an even degree sum (Algorithm 1), and
//!    modify so every subgraph node can keep (queried) or grow to
//!    (visible) its target degree (Algorithm 2);
//! 2. **Target joint degree matrix** `{m*(k,k')}` ([`target_jdm`]) —
//!    initialize from `n̂ k̄̂ P̂(k,k')/µ`, adjust the per-degree marginals
//!    to `k·n*(k)` (Algorithm 3), modify to dominate the subgraph's JDM
//!    (Algorithm 4), and re-adjust with the subgraph as a lower bound;
//! 3. **Construction** ([`construct`]) — extend `G'` with new nodes and
//!    stub-matched edges so the result preserves `{n*(k)}` and
//!    `{m*(k,k')}` exactly (Algorithm 5);
//! 4. **Rewiring** ([`sgr_dk::rewire`]) — equal-degree edge swaps over
//!    the *added* edges only (`Ẽ_rew = Ẽ \ E'`), greedily minimizing the
//!    L1 distance to `{ĉ̄(k)}` (Algorithm 6).
//!
//! [`gjoka::generate`] implements the baseline with the same machinery
//! but no subgraph: target construction skips the modification steps, the
//! graph is built from an empty graph, and every edge is rewirable.

pub mod construct;
pub mod gjoka;
pub mod target_dv;
pub mod target_jdm;

use sgr_dk::rewire::parallel::ParallelRewireEngine;
use sgr_dk::rewire::{RewireEngine, RewireStats};
use sgr_estimate::{estimate_all, EstimateError, Estimates};
use sgr_graph::{CsrGraph, Graph, NodeId};
use sgr_sample::{Crawl, Subgraph};
use sgr_util::Xoshiro256pp;

/// Configuration of the restoration pipeline.
#[derive(Clone, Copy, Debug)]
pub struct RestoreConfig {
    /// `R_C` — the rewiring-attempts coefficient (`R = R_C · |Ẽ_rew|`).
    /// The paper uses 500 (§V-E).
    pub rewiring_coefficient: f64,
    /// Set false to stop after Phase 3 (used by ablations).
    pub rewire: bool,
    /// Rewiring worker threads: `1` (default) runs the sequential
    /// [`RewireEngine`]; any other value runs the speculative-parallel
    /// [`ParallelRewireEngine`] with that many workers (`0` = all
    /// available cores). The engines are seed-for-seed bitwise
    /// equivalent, so this knob changes wall time only, never results.
    pub threads: usize,
}

impl Default for RestoreConfig {
    fn default() -> Self {
        Self {
            rewiring_coefficient: 500.0,
            rewire: true,
            threads: 1,
        }
    }
}

/// Phase-4 rewiring shared by [`restore`] and [`gjoka::generate`]:
/// dispatches to the sequential or speculative-parallel engine per
/// `threads` (see [`RestoreConfig::threads`]; results are identical
/// either way).
pub(crate) fn run_rewiring(
    graph: Graph,
    candidates: Vec<(NodeId, NodeId)>,
    target_c: &[f64],
    rc: f64,
    threads: usize,
    rng: &mut Xoshiro256pp,
) -> (Graph, RewireStats) {
    if threads == 1 {
        let mut engine = RewireEngine::new(graph, candidates, target_c);
        let stats = engine.run(rc, rng);
        (engine.into_graph(), stats)
    } else {
        let mut engine = ParallelRewireEngine::new(graph, candidates, target_c, threads);
        let stats = engine.run(rc, rng);
        (engine.into_graph(), stats)
    }
}

/// Errors from the restoration pipeline.
#[derive(Debug)]
pub enum RestoreError {
    /// The walk was too short for the estimators.
    Estimate(EstimateError),
    /// Target construction failed (Algorithm 3 non-convergence —
    /// indicates corrupted inputs, surfaced instead of panicking).
    Target(target_jdm::TargetError),
    /// Internal construction failure (violated realizability conditions —
    /// indicates a bug, surfaced instead of panicking).
    Construct(sgr_dk::DkError),
    /// The crawl contains no queried nodes.
    EmptyCrawl,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Estimate(e) => write!(f, "estimation failed: {e}"),
            RestoreError::Target(e) => write!(f, "target construction failed: {e}"),
            RestoreError::Construct(e) => write!(f, "construction failed: {e}"),
            RestoreError::EmptyCrawl => write!(f, "crawl contains no queried node"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<EstimateError> for RestoreError {
    fn from(e: EstimateError) -> Self {
        RestoreError::Estimate(e)
    }
}

impl From<target_jdm::TargetError> for RestoreError {
    fn from(e: target_jdm::TargetError) -> Self {
        RestoreError::Target(e)
    }
}

impl From<sgr_dk::DkError> for RestoreError {
    fn from(e: sgr_dk::DkError) -> Self {
        RestoreError::Construct(e)
    }
}

/// Timings and counters from one restoration run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreStats {
    /// Wall time of the estimation + target-construction phases.
    pub target_secs: f64,
    /// Wall time of Phase 3 (adding nodes and edges).
    pub construct_secs: f64,
    /// Wall time of stub matching proper within Phase 3 (wiring free
    /// half-edges class by class), excluding node addition and
    /// degree-sequence shuffling.
    pub stub_matching_secs: f64,
    /// Wall time of Phase 4 (rewiring).
    pub rewire_secs: f64,
    /// Rewiring detail.
    pub rewire_stats: RewireStats,
    /// Number of nodes in the generated graph.
    pub nodes: usize,
    /// Number of edges in the generated graph.
    pub edges: usize,
    /// Number of rewirable (added) edges `|Ẽ_rew|`.
    pub candidate_edges: usize,
}

impl RestoreStats {
    /// Total generation time (the paper's Table IV "Total").
    pub fn total_secs(&self) -> f64 {
        self.target_secs + self.construct_secs + self.rewire_secs
    }
}

/// The outcome of a restoration.
#[derive(Debug)]
pub struct Restored {
    /// The generated graph `G̃` (contains `G'` as node ids `0..|V'|`).
    pub graph: Graph,
    /// An order-preserving CSR snapshot of `graph`, frozen once after the
    /// last mutation (rewiring). Hand this — not `graph` — to the
    /// read-only consumers (property computation, dissimilarity, layout);
    /// it reads the same but traverses a flat arena.
    pub snapshot: CsrGraph,
    /// The subgraph `G'` the generation started from.
    pub subgraph: Subgraph,
    /// The re-weighted estimates used as targets.
    pub estimates: Estimates,
    /// Phase timings and counters.
    pub stats: RestoreStats,
}

/// Runs the full proposed method (§IV) on a random-walk crawl.
pub fn restore(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
) -> Result<Restored, RestoreError> {
    restore_with(crawl, cfg, rng, &mut sgr_dk::ConstructScratch::new())
}

/// [`restore`] against caller-owned stub-matching scratch.
///
/// Results are identical (the scratch never changes the RNG stream — see
/// the determinism model in [`sgr_dk::construct`]); holding one scratch
/// across repeated restorations makes each run's stub-matching phase
/// allocation-free after the first.
pub fn restore_with(
    crawl: &Crawl,
    cfg: &RestoreConfig,
    rng: &mut Xoshiro256pp,
    scratch: &mut sgr_dk::ConstructScratch,
) -> Result<Restored, RestoreError> {
    if crawl.num_queried() == 0 {
        return Err(RestoreError::EmptyCrawl);
    }
    let t0 = std::time::Instant::now();
    let estimates = estimate_all(crawl)?;
    let subgraph = crawl.subgraph();

    // Phase 1: target degree vector (Algorithms 1 + 2).
    let mut dv = target_dv::build(&subgraph, &estimates, rng);
    // Phase 2: target joint degree matrix (Algorithms 3 + 4 + re-adjust).
    let jdm = target_jdm::build(&subgraph, &estimates, &mut dv)?;
    let target_secs = t0.elapsed().as_secs_f64();

    // Phase 3: add nodes and edges (Algorithm 5).
    let t1 = std::time::Instant::now();
    let built = construct::extend_subgraph_with(&subgraph, &dv, &jdm, rng, scratch)?;
    let construct_secs = t1.elapsed().as_secs_f64();
    let stub_matching_secs = built.stub_matching_secs;

    // Phase 4: rewiring over added edges only (Algorithm 6).
    let t2 = std::time::Instant::now();
    let candidate_edges = built.added_edges.len();
    let (graph, rewire_stats) = if cfg.rewire && candidate_edges > 0 {
        let mut target_c = estimates.clustering.clone();
        target_c.resize(dv.k_max + 1, 0.0);
        run_rewiring(
            built.graph,
            built.added_edges,
            &target_c,
            cfg.rewiring_coefficient,
            cfg.threads,
            rng,
        )
    } else {
        (built.graph, RewireStats::default())
    };
    let rewire_secs = t2.elapsed().as_secs_f64();

    let stats = RestoreStats {
        target_secs,
        construct_secs,
        stub_matching_secs,
        rewire_secs,
        rewire_stats,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        candidate_edges,
    };
    // Freeze once: construction and rewiring are done, so every consumer
    // from here on is read-only and gets the CSR arena.
    let snapshot = graph.freeze();
    Ok(Restored {
        graph,
        snapshot,
        subgraph,
        estimates,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgr_graph::index::MultiplicityIndex;
    use sgr_sample::random_walk_until_fraction;

    fn pipeline(n: usize, frac: f64, seed: u64, rc: f64) -> (Graph, Restored) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 4, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, frac, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: rc,
            rewire: true,
            threads: 1,
        };
        let restored = restore(&crawl, &cfg, &mut rng).unwrap();
        (g, restored)
    }

    #[test]
    fn restored_graph_contains_subgraph() {
        let (_, r) = pipeline(600, 0.10, 1, 20.0);
        let idx = MultiplicityIndex::build(&r.graph);
        for (u, v) in r.subgraph.graph.edges() {
            assert!(
                idx.get(u, v) >= 1,
                "subgraph edge ({u},{v}) missing from restored graph"
            );
        }
        // Queried nodes keep their exact degree.
        for d in r.subgraph.queried_nodes() {
            assert_eq!(
                r.graph.degree(d),
                r.subgraph.graph.degree(d),
                "queried node {d} degree changed"
            );
        }
        // Visible nodes have at least their subgraph degree.
        for d in r.subgraph.visible_nodes() {
            assert!(r.graph.degree(d) >= r.subgraph.graph.degree(d));
        }
    }

    #[test]
    fn restored_size_tracks_estimates() {
        let (g, r) = pipeline(800, 0.10, 2, 10.0);
        let n_gen = r.graph.num_nodes() as f64;
        // Generated node count within 40% of truth (estimator noise).
        assert!(
            (n_gen - g.num_nodes() as f64).abs() / (g.num_nodes() as f64) < 0.4,
            "generated n = {n_gen} vs true {}",
            g.num_nodes()
        );
        let k_gen = r.graph.average_degree();
        assert!(
            (k_gen - g.average_degree()).abs() / g.average_degree() < 0.4,
            "generated k̄ = {k_gen} vs true {}",
            g.average_degree()
        );
    }

    #[test]
    fn rewiring_improves_clustering_distance() {
        let (_, r) = pipeline(600, 0.12, 3, 30.0);
        let s = r.stats.rewire_stats;
        assert!(s.accepted > 0);
        assert!(
            s.final_distance <= s.initial_distance,
            "rewiring worsened D: {} -> {}",
            s.initial_distance,
            s.final_distance
        );
    }

    #[test]
    fn empty_crawl_errors() {
        let crawl = Crawl::default();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        assert!(matches!(
            restore(&crawl, &RestoreConfig::default(), &mut rng),
            Err(RestoreError::EmptyCrawl)
        ));
    }

    #[test]
    fn no_rewire_config_skips_phase4() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let g = sgr_gen::holme_kim(400, 3, 0.5, &mut rng).unwrap();
        let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
        let cfg = RestoreConfig {
            rewiring_coefficient: 500.0,
            rewire: false,
            threads: 1,
        };
        let r = restore(&crawl, &cfg, &mut rng).unwrap();
        assert_eq!(r.stats.rewire_stats.attempts, 0);
        assert_eq!(r.stats.rewire_stats.accepted, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = pipeline(400, 0.1, 6, 5.0);
        let (_, b) = pipeline(400, 0.1, 6, 5.0);
        assert_eq!(
            a.graph.edges().collect::<Vec<_>>(),
            b.graph.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn threads_knob_never_changes_results() {
        // The whole point of the parallel engine's contract: the pipeline
        // output is a function of the seed alone, not of the thread
        // count.
        let run_with = |threads: usize| {
            let mut rng = Xoshiro256pp::seed_from_u64(8);
            let g = sgr_gen::holme_kim(500, 4, 0.5, &mut rng).unwrap();
            let crawl = random_walk_until_fraction(&g, 0.1, &mut rng);
            let cfg = RestoreConfig {
                rewiring_coefficient: 10.0,
                rewire: true,
                threads,
            };
            restore(&crawl, &cfg, &mut rng).unwrap()
        };
        let base = run_with(1);
        for threads in [0, 2, 4] {
            let r = run_with(threads);
            assert_eq!(
                base.graph.edges().collect::<Vec<_>>(),
                r.graph.edges().collect::<Vec<_>>(),
                "threads = {threads} changed the restored graph"
            );
            assert_eq!(
                base.stats.rewire_stats.accepted, r.stats.rewire_stats.accepted,
                "threads = {threads} changed the accepted count"
            );
            assert_eq!(
                base.stats.rewire_stats.final_distance.to_bits(),
                r.stats.rewire_stats.final_distance.to_bits(),
                "threads = {threads} changed the final distance"
            );
        }
    }

    #[test]
    fn stats_totals_are_consistent() {
        let (_, r) = pipeline(400, 0.1, 7, 5.0);
        assert!(r.stats.total_secs() >= r.stats.rewire_secs);
        assert_eq!(r.stats.nodes, r.graph.num_nodes());
        assert_eq!(r.stats.edges, r.graph.num_edges());
        assert!(r.stats.candidate_edges <= r.stats.edges);
    }
}
