//! Phase 2 — constructing the target joint degree matrix `{m*(k,k')}`
//! (§IV-C, Algorithms 3 and 4).

use crate::target_dv::TargetDv;
use sgr_estimate::Estimates;
use sgr_sample::Subgraph;
use sgr_util::Xoshiro256pp;

/// The target joint degree matrix. Dense symmetric storage over degrees
/// `0 ..= k_max` (row/column 0 unused).
#[derive(Clone, Debug)]
pub struct TargetJdm {
    /// `m*(k, k')`.
    pub m_star: Vec<Vec<u64>>,
    /// `m̂(k, k') = n̂ k̄̂ P̂(k,k') / µ(k,k')` — the raw estimates the
    /// error terms `Δ±(k,k')` reference (0 where `P̂ = 0`).
    pub m_hat: Vec<Vec<f64>>,
    /// `m'(k, k')` — the subgraph's edge counts between *target*-degree
    /// classes (all zero for the Gjoka baseline). Doubles as the lower
    /// limit `m_min` in the final adjustment.
    pub m_prime: Vec<Vec<u64>>,
    /// Degree range.
    pub k_max: usize,
}

impl TargetJdm {
    /// `µ(k, k')` (Eq. 3).
    #[inline]
    fn mu(k: usize, k2: usize) -> u64 {
        if k == k2 {
            2
        } else {
            1
        }
    }

    /// Marginal `s(k) = Σ_{k'} µ(k,k') m*(k,k')`.
    pub fn marginal(&self, k: usize) -> u64 {
        (1..=self.k_max)
            .map(|k2| Self::mu(k, k2) * self.m_star[k][k2])
            .sum()
    }

    /// Total target edge count `Σ_{k ≤ k'} m*(k,k')`.
    pub fn num_edges(&self) -> u64 {
        let mut total = 0;
        for k in 1..=self.k_max {
            for k2 in k..=self.k_max {
                total += self.m_star[k][k2];
            }
        }
        total
    }

    /// `Δ+(k,k')` — error increase from incrementing `m*(k,k')`.
    fn delta_plus(&self, k: usize, k2: usize) -> f64 {
        let hat = self.m_hat[k][k2];
        if hat <= 0.0 {
            return f64::INFINITY;
        }
        let cur = self.m_star[k][k2] as f64;
        ((hat - (cur + 1.0)).abs() - (hat - cur).abs()) / hat
    }

    /// `Δ-(k,k')` — error increase from decrementing `m*(k,k')`.
    fn delta_minus(&self, k: usize, k2: usize) -> f64 {
        let hat = self.m_hat[k][k2];
        if hat <= 0.0 {
            return f64::INFINITY;
        }
        let cur = self.m_star[k][k2] as f64;
        ((hat - (cur - 1.0)).abs() - (hat - cur).abs()) / hat
    }

    fn inc(&mut self, k: usize, k2: usize) {
        self.m_star[k][k2] += 1;
        if k != k2 {
            self.m_star[k2][k] += 1;
        }
    }

    fn dec(&mut self, k: usize, k2: usize) {
        debug_assert!(self.m_star[k][k2] > 0);
        self.m_star[k][k2] -= 1;
        if k != k2 {
            self.m_star[k2][k] -= 1;
        }
    }
}

/// Builds the target JDM for the **proposed method**: initialization,
/// adjustment toward the marginals `k·n*(k)` (Algorithm 3 with zero lower
/// limits), modification to dominate the subgraph's JDM (Algorithm 4),
/// and re-adjustment with the subgraph as the lower limit.
///
/// `dv` is mutated: Algorithm 3 may raise `n*(k)` when a marginal cannot
/// be met by decreasing matrix entries.
pub fn build(
    subgraph: &Subgraph,
    est: &Estimates,
    dv: &mut TargetDv,
    rng: &mut Xoshiro256pp,
) -> TargetJdm {
    let mut jdm = initialize(est, dv.k_max);
    jdm.m_prime = measure_subgraph_jdm(subgraph, dv);
    let zeros = vec![vec![0u64; dv.k_max + 1]; dv.k_max + 1];
    adjust(&mut jdm, dv, &zeros, rng);
    modify_for_subgraph(&mut jdm, rng);
    let m_min = jdm.m_prime.clone();
    adjust(&mut jdm, dv, &m_min, rng);
    jdm
}

/// Builds the target JDM for **Gjoka et al.'s baseline**: initialization
/// and adjustment only (no subgraph information).
pub fn build_gjoka(est: &Estimates, dv: &mut TargetDv, rng: &mut Xoshiro256pp) -> TargetJdm {
    let mut jdm = initialize(est, dv.k_max);
    let zeros = vec![vec![0u64; dv.k_max + 1]; dv.k_max + 1];
    adjust(&mut jdm, dv, &zeros, rng);
    jdm
}

/// Initialization step (§IV-C-1): `m*(k,k') = max(NearInt(m̂), 1)`
/// wherever `P̂(k,k') > 0`.
fn initialize(est: &Estimates, k_max: usize) -> TargetJdm {
    let mut m_star = vec![vec![0u64; k_max + 1]; k_max + 1];
    let mut m_hat = vec![vec![0.0f64; k_max + 1]; k_max + 1];
    for (&(k, k2), &p) in est.jdd.iter() {
        let (k, k2) = (k as usize, k2 as usize);
        if k > k_max || k2 > k_max || p <= 0.0 {
            continue;
        }
        let hat = est.n_hat * est.avg_degree_hat * p / TargetJdm::mu(k, k2) as f64;
        m_hat[k][k2] = hat;
        m_star[k][k2] = sgr_util::stats::near_int(hat).max(1) as u64;
    }
    // `est.jdd` is stored symmetrically (both key orders, equal values),
    // so `m_star` / `m_hat` are symmetric by construction here.
    TargetJdm {
        m_star,
        m_hat,
        m_prime: vec![vec![0u64; k_max + 1]; k_max + 1],
        k_max,
    }
}

/// `m'(k,k')` — subgraph edge counts between **target**-degree classes.
fn measure_subgraph_jdm(sg: &Subgraph, dv: &TargetDv) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; dv.k_max + 1]; dv.k_max + 1];
    for (u, v) in sg.graph.edges() {
        let k = dv.d_star[u as usize] as usize;
        let k2 = dv.d_star[v as usize] as usize;
        m[k][k2] += 1;
        if k != k2 {
            m[k2][k] += 1;
        }
    }
    m
}

/// Adjustment step (Algorithm 3): make every marginal `s(k)` equal its
/// target `s*(k) = k·n*(k)`, processing degrees in decreasing order,
/// never decreasing an entry below `m_min`, and raising `n*(k)` when
/// decreasing is impossible.
fn adjust(jdm: &mut TargetJdm, dv: &mut TargetDv, m_min: &[Vec<u64>], rng: &mut Xoshiro256pp) {
    let k_max = jdm.k_max;
    // Current marginals.
    let mut s: Vec<i64> = (0..=k_max).map(|k| jdm.marginal(k) as i64).collect();
    let s_target = |dv: &TargetDv, k: usize| (k as u64 * dv.n_star[k]) as i64;
    // D: degrees whose marginal is off, plus degree 1.
    let mut in_d = vec![false; k_max + 1];
    for k in 1..=k_max {
        in_d[k] = s[k] != s_target(dv, k);
    }
    in_d[1] = true;
    let mut processed = vec![false; k_max + 1];

    for k in (1..=k_max).rev() {
        if !in_d[k] {
            continue;
        }
        if k == 1 && (s[1] - s_target(dv, 1)).rem_euclid(2) == 1 {
            // Only m*(1,1) is adjustable at degree 1 (±2 per step): make
            // the gap even by raising n*(1).
            dv.bump(1, 1);
        }
        let mut guard = 0u64;
        while s[k] != s_target(dv, k) {
            guard += 1;
            assert!(
                guard < 100_000_000,
                "Algorithm 3 failed to converge at degree {k} (s = {}, s* = {})",
                s[k],
                s_target(dv, k)
            );
            if s[k] < s_target(dv, k) {
                // Increase some m*(k, k').
                let exclude_diag = s[k] == s_target(dv, k) - 1;
                let pick = pick_min(1..=k, rng, |k2| {
                    if !in_d[k2] || processed[k2] || (exclude_diag && k2 == k) {
                        None
                    } else {
                        Some(jdm.delta_plus(k, k2))
                    }
                });
                let k2 = pick.expect("D'+(k) is never empty (contains degree 1)");
                jdm.inc(k, k2);
                s[k] += TargetJdm::mu(k, k2) as i64;
                if k2 != k {
                    s[k2] += 1;
                }
            } else {
                // Decrease some m*(k, k') above its lower limit.
                let exclude_diag = s[k] == s_target(dv, k) + 1;
                let pick = pick_min(1..=k, rng, |k2| {
                    if !in_d[k2]
                        || processed[k2]
                        || (exclude_diag && k2 == k)
                        || jdm.m_star[k][k2] <= m_min[k][k2]
                    {
                        None
                    } else {
                        Some(jdm.delta_minus(k, k2))
                    }
                });
                match pick {
                    Some(k2) => {
                        jdm.dec(k, k2);
                        s[k] -= TargetJdm::mu(k, k2) as i64;
                        if k2 != k {
                            s[k2] -= 1;
                        }
                    }
                    None => {
                        // Shift toward adjustment-by-increase by raising
                        // the target sum.
                        if k == 1 {
                            dv.bump(1, 2);
                        } else {
                            dv.bump(k, 1);
                        }
                    }
                }
            }
        }
        processed[k] = true;
    }
}

/// Modification step (Algorithm 4): raise `m*(k1,k2)` up to the
/// subgraph's `m'(k1,k2)`, compensating each unit increase by decreasing
/// a donor entry in row `k1` and one in row `k2` (both strictly above
/// their own subgraph counts) and crediting the donors' crossing entry,
/// so the marginals and the total edge count are retained whenever donors
/// exist.
fn modify_for_subgraph(jdm: &mut TargetJdm, rng: &mut Xoshiro256pp) {
    let k_max = jdm.k_max;
    for k1 in 1..=k_max {
        for k2 in k1..=k_max {
            while jdm.m_star[k1][k2] < jdm.m_prime[k1][k2] {
                jdm.inc(k1, k2);
                let k3 = pick_min(1..=k_max, rng, |k| {
                    if k != k1 && jdm.m_star[k1][k] > jdm.m_prime[k1][k] {
                        Some(jdm.delta_minus(k1, k))
                    } else {
                        None
                    }
                });
                if let Some(k3) = k3 {
                    jdm.dec(k1, k3);
                }
                let k4 = pick_min(1..=k_max, rng, |k| {
                    if k != k2 && jdm.m_star[k2][k] > jdm.m_prime[k2][k] {
                        Some(jdm.delta_minus(k2, k))
                    } else {
                        None
                    }
                });
                if let Some(k4) = k4 {
                    jdm.dec(k2, k4);
                }
                if let (Some(k3), Some(k4)) = (k3, k4) {
                    let (a, b) = if k3 <= k4 { (k3, k4) } else { (k4, k3) };
                    jdm.inc(a, b);
                }
            }
        }
    }
}

/// Selects the key with minimum value among candidates, breaking ties
/// uniformly at random (the paper's tie rule for the JDM algorithms).
fn pick_min<I, F>(range: I, rng: &mut Xoshiro256pp, mut value: F) -> Option<usize>
where
    I: IntoIterator<Item = usize>,
    F: FnMut(usize) -> Option<f64>,
{
    let mut best: Option<(usize, f64)> = None;
    let mut ties = 0usize;
    for k in range {
        let Some(v) = value(k) else { continue };
        match best {
            None => {
                best = Some((k, v));
                ties = 1;
            }
            Some((_, bv)) => {
                if v < bv {
                    best = Some((k, v));
                    ties = 1;
                } else if v == bv {
                    ties += 1;
                    if rng.gen_range(ties) == 0 {
                        best = Some((k, v));
                    }
                }
            }
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target_dv;
    use sgr_sample::{random_walk, AccessModel};

    fn setup(n: usize, frac: f64, seed: u64) -> (Subgraph, Estimates) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 3, 0.5, &mut rng).unwrap();
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let target = ((n as f64 * frac) as usize).max(3);
        let crawl = random_walk(&mut am, start, target, &mut rng);
        (
            crawl.subgraph(),
            sgr_estimate::estimate_all(&crawl).unwrap(),
        )
    }

    /// Verifies the four JDM realizability conditions after the build.
    fn assert_conditions(jdm: &TargetJdm, dv: &TargetDv) {
        // JDM-2: symmetry.
        for k in 1..=jdm.k_max {
            for k2 in 1..=jdm.k_max {
                assert_eq!(jdm.m_star[k][k2], jdm.m_star[k2][k], "asym at ({k},{k2})");
            }
        }
        // JDM-3: marginals equal k·n*(k).
        for k in 1..=jdm.k_max {
            assert_eq!(
                jdm.marginal(k),
                k as u64 * dv.n_star[k],
                "marginal broken at k = {k}"
            );
        }
        // JDM-4: m* dominates the subgraph's m'.
        for k in 1..=jdm.k_max {
            for k2 in 1..=jdm.k_max {
                assert!(
                    jdm.m_star[k][k2] >= jdm.m_prime[k][k2],
                    "JDM-4 broken at ({k},{k2})"
                );
            }
        }
        // DV-2 still holds (even degree sum).
        assert_eq!(dv.degree_sum() % 2, 0);
        // DV-3 still holds.
        for k in 0..=dv.k_max {
            assert!(dv.n_star[k] >= dv.n_prime[k]);
        }
    }

    #[test]
    fn all_conditions_hold_across_seeds() {
        for seed in 0..6 {
            let (sg, est) = setup(500, 0.1, seed);
            let mut rng = Xoshiro256pp::seed_from_u64(seed + 50);
            let mut dv = target_dv::build(&sg, &est, &mut rng);
            let jdm = build(&sg, &est, &mut dv, &mut rng);
            assert_conditions(&jdm, &dv);
        }
    }

    #[test]
    fn gjoka_conditions_hold() {
        let (_, est) = setup(500, 0.1, 20);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut dv = target_dv::build_gjoka(&est);
        let jdm = build_gjoka(&est, &mut dv, &mut rng);
        // JDM-2 and JDM-3 hold; m_prime is all zeros.
        for k in 1..=jdm.k_max {
            assert_eq!(jdm.marginal(k), k as u64 * dv.n_star[k]);
            for k2 in 1..=jdm.k_max {
                assert_eq!(jdm.m_star[k][k2], jdm.m_star[k2][k]);
                assert_eq!(jdm.m_prime[k][k2], 0);
            }
        }
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn subgraph_jdm_uses_target_degrees() {
        let (sg, est) = setup(400, 0.1, 30);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let dv = target_dv::build(&sg, &est, &mut rng);
        let m = measure_subgraph_jdm(&sg, &dv);
        let total: u64 = (1..=dv.k_max)
            .flat_map(|k| {
                let row = &m[k];
                (k..=dv.k_max).map(move |k2| row[k2])
            })
            .sum();
        assert_eq!(total, sg.num_edges() as u64);
        // Marginal identity against the assigned degrees:
        // Σ_{k'} µ m'(k,k') = Σ_{i: d*_i = k} d'_i.
        // (Indexed loop: k is a degree, not just an index into m.)
        #[allow(clippy::needless_range_loop)]
        for k in 1..=dv.k_max {
            let lhs: u64 = (1..=dv.k_max)
                .map(|k2| TargetJdm::mu(k, k2) * m[k][k2])
                .sum();
            let rhs: u64 = sg
                .graph
                .nodes()
                .filter(|&u| dv.d_star[u as usize] as usize == k)
                .map(|u| sg.graph.degree(u) as u64)
                .sum();
            assert_eq!(lhs, rhs, "m' marginal mismatch at k = {k}");
        }
    }

    #[test]
    fn pick_min_prefers_smallest_and_randomizes_ties() {
        let mut rng = Xoshiro256pp::seed_from_u64(40);
        let vals = [3.0, 1.0, 2.0, 1.0];
        let mut hits = [0usize; 4];
        for _ in 0..2000 {
            let k = pick_min(0..4, &mut rng, |i| Some(vals[i])).unwrap();
            hits[k] += 1;
        }
        assert_eq!(hits[0], 0);
        assert_eq!(hits[2], 0);
        assert!(
            hits[1] > 800 && hits[3] > 800,
            "ties not randomized: {hits:?}"
        );
        assert!(pick_min(0..4, &mut rng, |_| None::<f64>).is_none());
    }

    #[test]
    fn num_edges_matches_half_degree_sum() {
        let (sg, est) = setup(400, 0.12, 50);
        let mut rng = Xoshiro256pp::seed_from_u64(51);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let jdm = build(&sg, &est, &mut dv, &mut rng);
        assert_eq!(2 * jdm.num_edges(), dv.degree_sum());
    }
}
