//! Phase 2 — constructing the target joint degree matrix `{m*(k,k')}`
//! (§IV-C, Algorithms 3 and 4).
//!
//! # The sparse incremental targeting engine
//!
//! This module is the batched rewrite of the original per-unit
//! implementation (kept verbatim — modulo the shared storage — as
//! [`mod@reference`]). Three structural changes make targeting scale to
//! million-node restorations:
//!
//! * **Flat triangular arenas.** `m*`, `m̂`, and `m'` live in one
//!   upper-triangular slab each (`cell (k ≤ k', k')` at index
//!   `k'(k'+1)/2 + k`) instead of `Vec<Vec<_>>`. Symmetry (JDM-2) holds
//!   by construction, memory halves, and — decisive at `k*_max` in the
//!   thousands — initialization stops faulting hundreds of megabytes of
//!   per-row allocations (the dense layout spent more time zeroing
//!   matrices than running Algorithms 3 and 4 combined).
//!
//! * **Closed-form batched moves (Algorithm 3).** The error term
//!   `Δ+(k,k')` is piecewise linear in `m*` around `m̂`: each unit pushed
//!   into a cell costs `−1/m̂` while the cell is below the estimate, at
//!   most one transitional amount crossing it, then `+1/m̂` forever — a
//!   *non-decreasing* per-cell cost sequence (`Δ−` mirrors this for
//!   removals). A greedy that repeatedly rescans `1..=k` for the minimum
//!   therefore equals draining per-cell *cost bands* in ascending order,
//!   which [`sgr_util::bucket::allocate_min_cost`] does after one sort:
//!   a marginal gap of `G` units closes in `O(k log k)` instead of
//!   `O(G·k)`. Marginals are maintained incrementally alongside.
//!
//! * **Sparse donor search (Algorithm 4).** Raising `m*(k₁,k₂)` to the
//!   subgraph's `m'(k₁,k₂)` compensates through donor cells with
//!   `m* > m'` in rows `k₁` and `k₂`. Donors are found through per-row
//!   occupancy lists of exactly those cells (stale entries pruned on
//!   scan, refreshed when a crossing credit pushes a cell back above
//!   `m'`) and drained with the same cost-band allocator, instead of two
//!   `O(k*_max)` row scans per unit.
//!
//! # Determinism, tie-breaking, and why the pipeline's RNG stream moved
//!
//! The historical per-unit implementation broke cost ties **uniformly at
//! random**. That made `{n*(k)}` itself a random variable: mass pushed
//! into a tied column raises that column's marginal `s(k')`, and when a
//! short-of-capacity row (degree 1 above all — its only adjustable cell
//! is the diagonal) later closes its gap, the shortfall converts into
//! `n*(k')` bumps. Two runs differing only in tie draws disagree on
//! `n*(1)` by hundreds of nodes at test scale — so no batched engine
//! could reproduce the randomized targets without replaying the per-unit
//! draw sequence verbatim, which would forfeit the batching.
//!
//! Both engines therefore break ties **deterministically: largest `k'`
//! first**. Ties overwhelmingly involve cells with no estimate behind
//! them (`m̂ = 0`, cost `∞`); parking that unguided mass at the largest
//! eligible degree leaves it in rows with genuine removal capacity,
//! where the later per-row rebalancing absorbs it against estimated
//! cells. Sending it to the *smallest* degree would convert it one-for-
//! one into phantom degree-1 nodes (the only adjustable cell at degree 1
//! is the diagonal, so excess marginal there can only become `n*(1)`
//! bumps) — measurably worse fidelity to `n̂` than even the randomized
//! rule. Total error is unchanged by tie placement (tied units cost the
//! same wherever they land), targeting consumes no RNG at all, and the
//! two engines agree *bitwise* on every decision, hence on `{n*(k)}`,
//! every marginal `s(k)`, every cell of `m*`, and the edge total. The
//! invariant-equivalence suite in
//! `crates/core/tests/targeting_proptests.rs` checks that contract. Cost
//! comparisons go through [`delta_plus_closed`] / [`delta_minus_closed`]
//! in both engines so tie *detection* is bitwise-identical too.
//!
//! Because Phase 2 no longer draws from the generator, the stream
//! positions of later phases (construction, rewiring) shift relative to
//! pre-engine versions: same-seed pipelines remain internally
//! deterministic but produce different (statistically equivalent) graphs
//! than older builds.

use crate::target_dv::TargetDv;
use sgr_estimate::Estimates;
use sgr_sample::Subgraph;
use sgr_util::bucket::{allocate_min_cost, CostSeg};

pub mod reference;

/// Errors from target-JDM construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TargetError {
    /// Algorithm 3 could not make the marginal `s(k)` meet its target
    /// `k·n*(k)` — the batched engine exhausted its bounded number of
    /// increase/decrease rounds, or the per-unit [`mod@reference`] engine ran
    /// past its step budget. Indicates corrupted inputs (e.g. a gap far
    /// beyond the reference's per-degree budget) rather than a
    /// data-dependent hazard; surfaced as `Err` instead of the former
    /// `assert!` panic.
    NonConvergence {
        /// Degree whose marginal failed to converge.
        degree: usize,
        /// Marginal `s(k)` when the engine gave up.
        marginal: i64,
        /// Target `k·n*(k)` at that point.
        target: i64,
    },
}

impl std::fmt::Display for TargetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetError::NonConvergence {
                degree,
                marginal,
                target,
            } => write!(
                f,
                "Algorithm 3 failed to converge at degree {degree} \
                 (s = {marginal}, s* = {target})"
            ),
        }
    }
}

impl std::error::Error for TargetError {}

/// Per-phase wall times of one [`build`] call (the bench harness's
/// DV-adjust / JDM-modify split).
#[derive(Clone, Copy, Debug, Default)]
pub struct JdmBuildStats {
    /// Initialization + subgraph-JDM measurement.
    pub init_secs: f64,
    /// First adjustment pass (Algorithm 3, zero lower limits).
    pub adjust_secs: f64,
    /// Modification pass (Algorithm 4).
    pub modify_secs: f64,
    /// Re-adjustment pass (Algorithm 3, subgraph lower limits).
    pub readjust_secs: f64,
}

/// The target joint degree matrix. Each of `m*`, `m̂`, `m'` is one flat
/// upper-triangular arena over degrees `0 ..= k_max` (row/column 0
/// unused); the symmetric condition JDM-2 holds by construction because
/// `(k,k')` and `(k',k)` are the same cell.
#[derive(Clone, Debug)]
pub struct TargetJdm {
    /// `m*(k, k')`, upper-triangular.
    m_star: Vec<u64>,
    /// `m̂(k, k') = n̂ k̄̂ P̂(k,k') / µ(k,k')` — the raw estimates the
    /// error terms `Δ±(k,k')` reference (0 where `P̂ = 0`).
    m_hat: Vec<f64>,
    /// `m'(k, k')` — the subgraph's edge counts between *target*-degree
    /// classes (all zero for the Gjoka baseline). Doubles as the lower
    /// limit `m_min` in the final adjustment.
    m_prime: Vec<u64>,
    /// Degree range.
    pub k_max: usize,
}

/// Upper-triangular slab length for degrees `0..=k_max`.
#[inline]
fn tri_len(k_max: usize) -> usize {
    (k_max + 1) * (k_max + 2) / 2
}

/// Flat index of the unordered cell `{k, k2}`.
#[inline]
fn tri_idx(k: usize, k2: usize) -> usize {
    let (lo, hi) = if k <= k2 { (k, k2) } else { (k2, k) };
    hi * (hi + 1) / 2 + lo
}

impl TargetJdm {
    /// An all-zero matrix over degrees `0..=k_max` (tests and tools; the
    /// pipeline goes through [`build`] / [`build_gjoka`]).
    pub fn new(k_max: usize) -> Self {
        Self {
            m_star: vec![0; tri_len(k_max)],
            m_hat: vec![0.0; tri_len(k_max)],
            m_prime: vec![0; tri_len(k_max)],
            k_max,
        }
    }

    /// `µ(k, k')` (Eq. 3).
    #[inline]
    pub(crate) fn mu(k: usize, k2: usize) -> u64 {
        if k == k2 {
            2
        } else {
            1
        }
    }

    /// `m*(k, k')` (order-insensitive).
    #[inline]
    pub fn get(&self, k: usize, k2: usize) -> u64 {
        self.m_star[tri_idx(k, k2)]
    }

    /// `m̂(k, k')` (order-insensitive).
    #[inline]
    pub fn hat(&self, k: usize, k2: usize) -> f64 {
        self.m_hat[tri_idx(k, k2)]
    }

    /// `m'(k, k')` (order-insensitive).
    #[inline]
    pub fn prime(&self, k: usize, k2: usize) -> u64 {
        self.m_prime[tri_idx(k, k2)]
    }

    /// Overwrites `m*(k, k')` — test/tooling hook (e.g. corrupting the
    /// dominance invariant for regression tests); the engines never need
    /// it.
    pub fn set(&mut self, k: usize, k2: usize, v: u64) {
        self.m_star[tri_idx(k, k2)] = v;
    }

    /// Overwrites `m'(k, k')` — test/tooling hook.
    pub fn set_prime(&mut self, k: usize, k2: usize, v: u64) {
        self.m_prime[tri_idx(k, k2)] = v;
    }

    /// Overwrites `m̂(k, k')` — test/tooling hook.
    pub fn set_hat(&mut self, k: usize, k2: usize, v: f64) {
        self.m_hat[tri_idx(k, k2)] = v;
    }

    /// Marginal `s(k) = Σ_{k'} µ(k,k') m*(k,k')`.
    pub fn marginal(&self, k: usize) -> u64 {
        (1..=self.k_max)
            .map(|k2| Self::mu(k, k2) * self.get(k, k2))
            .sum()
    }

    /// Every marginal at once in one pass over the arena — `O(cells)`
    /// rather than `k_max` row walks.
    pub fn marginals(&self) -> Vec<u64> {
        let mut s = vec![0u64; self.k_max + 1];
        let mut idx = 0;
        for hi in 0..=self.k_max {
            for lo in 0..=hi {
                let v = self.m_star[idx];
                if v != 0 {
                    if lo == hi {
                        s[hi] += 2 * v;
                    } else {
                        s[lo] += v;
                        s[hi] += v;
                    }
                }
                idx += 1;
            }
        }
        s
    }

    /// Total target edge count `Σ_{k ≤ k'} m*(k,k')`.
    pub fn num_edges(&self) -> u64 {
        self.m_star.iter().sum()
    }

    /// Iterates every upper-triangular cell where `m*` or `m'` is
    /// nonzero, yielding `(k, k', m*, m')` with `k ≤ k'`. The
    /// construction phase derives both the added-edge counts
    /// (`m* − m'`) and the dominance check (JDM-4) from this.
    pub fn upper_entries(&self) -> impl Iterator<Item = (usize, usize, u64, u64)> + '_ {
        let k_max = self.k_max;
        (0..=k_max).flat_map(move |hi| {
            let base = hi * (hi + 1) / 2;
            (0..=hi).filter_map(move |lo| {
                let star = self.m_star[base + lo];
                let prime = self.m_prime[base + lo];
                if star != 0 || prime != 0 {
                    Some((lo, hi, star, prime))
                } else {
                    None
                }
            })
        })
    }

    /// `Δ+(k,k')` — error increase from incrementing `m*(k,k')`.
    pub(crate) fn delta_plus(&self, k: usize, k2: usize) -> f64 {
        delta_plus_closed(self.get(k, k2), self.hat(k, k2))
    }

    /// `Δ-(k,k')` — error increase from decrementing `m*(k,k')`.
    pub(crate) fn delta_minus(&self, k: usize, k2: usize) -> f64 {
        delta_minus_closed(self.get(k, k2), self.hat(k, k2))
    }

    #[inline]
    pub(crate) fn inc_by(&mut self, k: usize, k2: usize, units: u64) {
        self.m_star[tri_idx(k, k2)] += units;
    }

    #[inline]
    pub(crate) fn dec_by(&mut self, k: usize, k2: usize, units: u64) {
        let cell = &mut self.m_star[tri_idx(k, k2)];
        debug_assert!(*cell >= units);
        *cell -= units;
    }

    pub(crate) fn inc(&mut self, k: usize, k2: usize) {
        self.inc_by(k, k2, 1);
    }

    pub(crate) fn dec(&mut self, k: usize, k2: usize) {
        self.dec_by(k, k2, 1);
    }

    /// Borrows the flat arenas — `(k_max, m*, m̂, m')` — for checkpoint
    /// serialization (`crate::checkpoint`).
    pub(crate) fn raw_parts(&self) -> (usize, &[u64], &[f64], &[u64]) {
        (self.k_max, &self.m_star, &self.m_hat, &self.m_prime)
    }

    /// Rebuilds a matrix from checkpointed arenas, validating the slab
    /// lengths against `k_max`.
    pub(crate) fn from_raw_parts(
        k_max: usize,
        m_star: Vec<u64>,
        m_hat: Vec<f64>,
        m_prime: Vec<u64>,
    ) -> Result<Self, String> {
        let want = tri_len(k_max);
        if m_star.len() != want || m_hat.len() != want || m_prime.len() != want {
            return Err(format!(
                "JDM arena length mismatch: k_max {k_max} wants {want}, got \
                 ({}, {}, {})",
                m_star.len(),
                m_hat.len(),
                m_prime.len()
            ));
        }
        Ok(Self {
            m_star,
            m_hat,
            m_prime,
            k_max,
        })
    }
}

/// Builds the target JDM for the **proposed method**: initialization,
/// adjustment toward the marginals `k·n*(k)` (Algorithm 3 with zero lower
/// limits), modification to dominate the subgraph's JDM (Algorithm 4),
/// and re-adjustment with the subgraph as the lower limit.
///
/// `dv` is mutated: Algorithm 3 may raise `n*(k)` when a marginal cannot
/// be met by decreasing matrix entries.
pub fn build(
    subgraph: &Subgraph,
    est: &Estimates,
    dv: &mut TargetDv,
) -> Result<TargetJdm, TargetError> {
    build_with_stats(subgraph, est, dv).map(|(jdm, _)| jdm)
}

/// [`build`] plus per-phase wall times (the bench harness's view).
pub fn build_with_stats(
    subgraph: &Subgraph,
    est: &Estimates,
    dv: &mut TargetDv,
) -> Result<(TargetJdm, JdmBuildStats), TargetError> {
    let mut stats = JdmBuildStats::default();
    let t = std::time::Instant::now();
    let mut jdm = initialize(est, dv.k_max);
    measure_subgraph_jdm(subgraph, dv, &mut jdm);
    stats.init_secs = t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    adjust(&mut jdm, dv, false)?;
    stats.adjust_secs = t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    modify_for_subgraph(&mut jdm);
    stats.modify_secs = t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    adjust(&mut jdm, dv, true)?;
    stats.readjust_secs = t.elapsed().as_secs_f64();
    Ok((jdm, stats))
}

/// Builds the target JDM for **Gjoka et al.'s baseline**: initialization
/// and adjustment only (no subgraph information).
pub fn build_gjoka(est: &Estimates, dv: &mut TargetDv) -> Result<TargetJdm, TargetError> {
    let mut jdm = initialize(est, dv.k_max);
    adjust(&mut jdm, dv, false)?;
    Ok(jdm)
}

/// Initialization step (§IV-C-1): `m*(k,k') = max(NearInt(m̂), 1)`
/// wherever `P̂(k,k') > 0`.
fn initialize(est: &Estimates, k_max: usize) -> TargetJdm {
    let mut jdm = TargetJdm::new(k_max);
    // `est.jdd` stores both key orders with equal values; the triangular
    // arena needs each unordered cell exactly once.
    for (&(k, k2), &p) in est.jdd.iter() {
        let (k, k2) = (k as usize, k2 as usize);
        if k > k2 || k2 > k_max || p <= 0.0 {
            continue;
        }
        let hat = est.n_hat * est.avg_degree_hat * p / TargetJdm::mu(k, k2) as f64;
        let idx = tri_idx(k, k2);
        jdm.m_hat[idx] = hat;
        jdm.m_star[idx] = sgr_util::stats::near_int(hat).max(1) as u64;
    }
    jdm
}

/// `m'(k,k')` — subgraph edge counts between **target**-degree classes,
/// written into `jdm.m_prime`.
fn measure_subgraph_jdm(sg: &Subgraph, dv: &TargetDv, jdm: &mut TargetJdm) {
    for (u, v) in sg.graph.edges() {
        let k = dv.d_star[u as usize] as usize;
        let k2 = dv.d_star[v as usize] as usize;
        jdm.m_prime[tri_idx(k, k2)] += 1;
    }
}

/// `(|m̂−(c+1)| − |m̂−c|)/m̂` in closed piecewise form: `−1/m̂` while the
/// increment stays at or below the estimate, `+1/m̂` at or above it, the
/// straddling value in between, `∞` for `m̂ ≤ 0`. **Both engines compute
/// costs through this one function** (the reference through the per-cell
/// `delta_plus` accessor, the batched engine through its increase cost
/// bands), so a tie in one engine is bitwise a tie in the other — the
/// naive `abs`-difference form differs by ULPs depending on `c` and
/// would make tie sets engine-dependent.
pub fn delta_plus_closed(cur: u64, hat: f64) -> f64 {
    if hat <= 0.0 {
        f64::INFINITY
    } else if ((cur + 1) as f64) <= hat {
        -1.0 / hat
    } else if (cur as f64) >= hat {
        1.0 / hat
    } else {
        (1.0 - 2.0 * (hat - cur as f64)) / hat
    }
}

/// `(|m̂−(c−1)| − |m̂−c|)/m̂` in closed piecewise form — the removal
/// mirror of [`delta_plus_closed`].
pub fn delta_minus_closed(cur: u64, hat: f64) -> f64 {
    if hat <= 0.0 {
        f64::INFINITY
    } else if cur >= 1 && ((cur - 1) as f64) >= hat {
        -1.0 / hat
    } else if (cur as f64) <= hat {
        1.0 / hat
    } else {
        (1.0 - 2.0 * (cur as f64 - hat)) / hat
    }
}

/// Appends the non-decreasing cost bands of pushing units into a cell
/// currently holding `cur` against estimate `hat`: `−1/m̂` while below
/// the estimate, at most one transitional unit crossing it, then
/// `+1/m̂` with unbounded capacity (so an increase batch can always be
/// filled). `m̂ ≤ 0` cells cost `∞` — pickable only when nothing cheaper
/// remains, exactly like the per-unit `Δ+`. Band costs are the exact
/// [`delta_plus_closed`] values of the units they cover.
fn inc_cost_bands(cur: u64, hat: f64, weight: u64, key: u32, segs: &mut Vec<CostSeg>) {
    if hat <= 0.0 {
        segs.push(CostSeg {
            key,
            weight,
            cap: u64::MAX,
            cost: f64::INFINITY,
        });
        return;
    }
    let fl = hat.floor();
    let fl_u = fl.min(u64::MAX as f64) as u64;
    if fl_u > cur {
        segs.push(CostSeg {
            key,
            weight,
            cap: fl_u - cur,
            cost: -1.0 / hat,
        });
    }
    if hat - fl > 0.0 && cur <= fl_u {
        // The single unit landing on c = ⌊m̂⌋ straddles the estimate.
        segs.push(CostSeg {
            key,
            weight,
            cap: 1,
            cost: (1.0 - 2.0 * (hat - fl_u as f64)) / hat,
        });
    }
    segs.push(CostSeg {
        key,
        weight,
        cap: u64::MAX,
        cost: 1.0 / hat,
    });
}

/// Appends the non-decreasing cost bands of removing units from a cell
/// holding `cur` with lower limit `floor_lim` (`m_min`): `−1/m̂` while
/// above the estimate, at most one transitional unit, then `+1/m̂` down
/// to the limit. Capacity is finite — removal batches can fall short,
/// which is what triggers the `n*(k)` bumps in [`adjust`]. Band costs
/// are the exact [`delta_minus_closed`] values of the units they cover.
fn dec_cost_bands(
    cur: u64,
    hat: f64,
    floor_lim: u64,
    weight: u64,
    key: u32,
    segs: &mut Vec<CostSeg>,
) {
    debug_assert!(cur > floor_lim);
    let cap_total = cur - floor_lim;
    if hat <= 0.0 {
        segs.push(CostSeg {
            key,
            weight,
            cap: cap_total,
            cost: f64::INFINITY,
        });
        return;
    }
    let ceil_u = hat.ceil().min(u64::MAX as f64) as u64;
    let high = cap_total.min(cur.saturating_sub(ceil_u));
    let mut used = 0;
    if high > 0 {
        segs.push(CostSeg {
            key,
            weight,
            cap: high,
            cost: -1.0 / hat,
        });
        used += high;
    }
    if hat - hat.floor() > 0.0 && cur >= ceil_u && used < cap_total {
        segs.push(CostSeg {
            key,
            weight,
            cap: 1,
            cost: (1.0 - 2.0 * (ceil_u as f64 - hat)) / hat,
        });
        used += 1;
    }
    if used < cap_total {
        segs.push(CostSeg {
            key,
            weight,
            cap: cap_total - used,
            cost: 1.0 / hat,
        });
    }
}

/// Adjustment step (Algorithm 3), batched: make every marginal `s(k)`
/// equal its target `s*(k) = k·n*(k)`, processing degrees in decreasing
/// order, never decreasing an entry below its lower limit (`m'` when
/// `floor_is_prime`, zero otherwise), and raising `n*(k)` when decreasing
/// is impossible.
///
/// Where the per-unit reference rescans `1..=k` per unit of gap, this
/// drains per-cell cost bands through [`allocate_min_cost`] — a whole
/// marginal gap closes in one allocator call, and each degree needs at
/// most three rounds (decrease-shortfall → bump `n*(k)` → fill the
/// overshoot by increasing), mirroring the phase structure the per-unit
/// loop passes through one unit at a time.
fn adjust(jdm: &mut TargetJdm, dv: &mut TargetDv, floor_is_prime: bool) -> Result<(), TargetError> {
    let k_max = jdm.k_max;
    // Current marginals, maintained incrementally below.
    let mut s: Vec<i64> = jdm.marginals().iter().map(|&v| v as i64).collect();
    let s_target = |dv: &TargetDv, k: usize| (k as u64 * dv.n_star[k]) as i64;
    // D: degrees whose marginal is off, plus degree 1.
    let mut in_d = vec![false; k_max + 1];
    for k in 1..=k_max {
        in_d[k] = s[k] != s_target(dv, k);
    }
    in_d[1] = true;
    let mut processed = vec![false; k_max + 1];
    let mut segs: Vec<CostSeg> = Vec::new();
    let mut grants: Vec<(u32, u64)> = Vec::new();

    for k in (1..=k_max).rev() {
        if !in_d[k] {
            continue;
        }
        if k == 1 && (s[1] - s_target(dv, 1)).rem_euclid(2) == 1 {
            // Only m*(1,1) is adjustable at degree 1 (±2 per step): make
            // the gap even by raising n*(1).
            dv.bump(1, 1);
        }
        let mut rounds = 0;
        loop {
            let tgt = s_target(dv, k);
            if s[k] == tgt {
                break;
            }
            rounds += 1;
            if rounds > 3 {
                // Structurally unreachable (decrease → bump → increase is
                // the longest possible phase sequence); surfaced as a
                // typed error instead of looping or panicking.
                return Err(TargetError::NonConvergence {
                    degree: k,
                    marginal: s[k],
                    target: tgt,
                });
            }
            if s[k] < tgt {
                // Batched increase of row k.
                let gap = (tgt - s[k]) as u64;
                segs.clear();
                for k2 in 1..=k {
                    if !in_d[k2] || processed[k2] {
                        continue;
                    }
                    let w = if k2 == k { 2 } else { 1 };
                    inc_cost_bands(jdm.get(k, k2), jdm.hat(k, k2), w, k2 as u32, &mut segs);
                }
                grants.clear();
                let left = allocate_min_cost(&mut segs, gap, &mut grants);
                if left > 0 {
                    // No weight-1 candidate for an odd remainder: the
                    // candidate set is corrupt (degree 1 is always
                    // available for k > 1; parity is pre-fixed at k = 1).
                    return Err(TargetError::NonConvergence {
                        degree: k,
                        marginal: s[k],
                        target: tgt,
                    });
                }
                for &(k2u, units) in &grants {
                    let k2 = k2u as usize;
                    jdm.inc_by(k, k2, units);
                    if k2 == k {
                        s[k] += 2 * units as i64;
                    } else {
                        s[k] += units as i64;
                        s[k2] += units as i64;
                    }
                }
            } else {
                // Batched decrease of row k, bounded below by the floor.
                let need = (s[k] - tgt) as u64;
                segs.clear();
                for k2 in 1..=k {
                    if !in_d[k2] || processed[k2] {
                        continue;
                    }
                    let floor_lim = if floor_is_prime { jdm.prime(k, k2) } else { 0 };
                    let cur = jdm.get(k, k2);
                    if cur <= floor_lim {
                        continue;
                    }
                    let w = if k2 == k { 2 } else { 1 };
                    dec_cost_bands(cur, jdm.hat(k, k2), floor_lim, w, k2 as u32, &mut segs);
                }
                grants.clear();
                let left = allocate_min_cost(&mut segs, need, &mut grants);
                for &(k2u, units) in &grants {
                    let k2 = k2u as usize;
                    jdm.dec_by(k, k2, units);
                    if k2 == k {
                        s[k] -= 2 * units as i64;
                    } else {
                        s[k] -= units as i64;
                        s[k2] -= units as i64;
                    }
                }
                if left > 0 {
                    // Removable capacity exhausted: shift toward
                    // adjustment-by-increase by raising the target sum —
                    // one bump per failed per-unit pick.
                    if k == 1 {
                        dv.bump(1, 2 * left.div_ceil(2));
                    } else {
                        dv.bump(k, left.div_ceil(k as u64));
                    }
                    // Next round re-reads the (possibly overshot) gap.
                }
            }
        }
        processed[k] = true;
    }
    Ok(())
}

/// Increments the crossing cell `{a, b}` and keeps the occupancy lists
/// current: a cell credited back above its subgraph count becomes donor-
/// eligible again.
fn credit_crossing(jdm: &mut TargetJdm, occ: &mut [Vec<u32>], a: usize, b: usize, units: u64) {
    let was_donor = jdm.get(a, b) > jdm.prime(a, b);
    jdm.inc_by(a, b, units);
    if !was_donor && jdm.get(a, b) > jdm.prime(a, b) {
        occ[a].push(b as u32);
        if a != b {
            occ[b].push(a as u32);
        }
    }
}

/// A drain-order grant sequence: `(column, units)` runs.
type Grants = Vec<(u32, u64)>;

/// Drains up to `gap` donor units from row `row` (cells with
/// `m* > m'`, diagonal excluded), applying the decrements and filling
/// `out` with the grants **in drain (cost) order** — the order the
/// per-unit loop would have picked them in, which the crossing-credit
/// pairing below depends on. Scans only the row's occupancy list,
/// pruning entries that stopped being donors and duplicate entries (a
/// cell re-credited above `m'` while its stale entry still sat in the
/// list appears twice; counting its capacity twice would let the
/// allocator dig below the `m'` floor).
#[allow(clippy::too_many_arguments)]
fn harvest_donors(
    jdm: &mut TargetJdm,
    occ: &mut [Vec<u32>],
    row: usize,
    gap: u64,
    seen: &mut [u32],
    epoch: u32,
    segs: &mut Vec<CostSeg>,
    out: &mut Grants,
) {
    segs.clear();
    let cols = &mut occ[row];
    let mut i = 0;
    while i < cols.len() {
        let col = cols[i] as usize;
        let cur = jdm.get(row, col);
        let pr = jdm.prime(row, col);
        if cur <= pr || seen[col] == epoch {
            cols.swap_remove(i); // stale or duplicate entry
            continue;
        }
        seen[col] = epoch;
        if col != row {
            dec_cost_bands(cur, jdm.hat(row, col), pr, 1, col as u32, segs);
        }
        i += 1;
    }
    out.clear();
    allocate_min_cost(segs, gap, out);
    for &(col, units) in out.iter() {
        jdm.dec_by(row, col as usize, units);
    }
}

/// Splits a drain-order grant sequence into the units at even and odd
/// global drain positions, filling the caller's buffers. For a
/// *diagonal* deficient cell both donor picks of every per-unit
/// iteration come from the same row, so the per-unit drain interleaves
/// the two donor roles: position `2i` is the i-th `k3`, position `2i+1`
/// the i-th `k4`.
fn split_even_odd(drain: &[(u32, u64)], evens: &mut Grants, odds: &mut Grants) {
    evens.clear();
    odds.clear();
    let mut pos = 0u64;
    for &(col, units) in drain {
        let e = (units + 1 - pos % 2) / 2;
        let o = units - e;
        if e > 0 {
            evens.push((col, e));
        }
        if o > 0 {
            odds.push((col, o));
        }
        pos += units;
    }
}

/// Modification step (Algorithm 4), batched: raise `m*(k1,k2)` up to the
/// subgraph's `m'(k1,k2)`, compensating each unit increase by decreasing
/// a donor entry in row `k1` and one in row `k2` (both strictly above
/// their own subgraph counts) and crediting the donors' crossing entry,
/// so the marginals and the total edge count are retained whenever donors
/// exist.
///
/// Donor decrements within one deficient cell's batch can never touch
/// rows `k1` or `k2` through crossing credits (the credited cell `(k3,k4)`
/// has `k3 ≠ k1`, `k4 ≠ k2`, and the would-be overlaps are the deficient
/// cell itself, which sits at `m* ≤ m'` throughout), so draining all of
/// row `k1`'s donors, then all of row `k2`'s, then crediting pairwise is
/// exactly the per-unit interleaving.
fn modify_for_subgraph(jdm: &mut TargetJdm) {
    // Deficient cells in the reference's (k1, k2 ≥ k1) scan order, and
    // per-row occupancy lists of donor-eligible cells.
    let mut deficient: Vec<(u32, u32)> = Vec::new();
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); jdm.k_max + 1];
    for (lo, hi, star, prime) in jdm.upper_entries() {
        if star < prime {
            deficient.push((lo as u32, hi as u32));
        } else if star > prime {
            occ[lo].push(hi as u32);
            if lo != hi {
                occ[hi].push(lo as u32);
            }
        }
    }
    deficient.sort_unstable();

    let mut segs: Vec<CostSeg> = Vec::new();
    let mut drain: Grants = Vec::new();
    let mut from_k1: Grants = Vec::new();
    let mut from_k2: Grants = Vec::new();
    let mut seen = vec![0u32; jdm.k_max + 1];
    let mut epoch = 0u32;
    for &(k1, k2) in &deficient {
        let (k1, k2) = (k1 as usize, k2 as usize);
        let cur = jdm.get(k1, k2);
        let want = jdm.prime(k1, k2);
        if cur >= want {
            continue; // crossing credits already covered it
        }
        let gap = want - cur;
        jdm.inc_by(k1, k2, gap);
        if k1 == k2 {
            // Diagonal cell: both donor roles drain the same row. The
            // per-unit loop alternates them, which over the whole batch
            // is one cost-order drain of up to 2·gap units with even
            // positions playing k3 and odd positions k4.
            epoch += 1;
            harvest_donors(
                jdm,
                &mut occ,
                k1,
                gap.saturating_mul(2),
                &mut seen,
                epoch,
                &mut segs,
                &mut drain,
            );
            split_even_odd(&drain, &mut from_k1, &mut from_k2);
        } else {
            epoch += 1;
            harvest_donors(
                jdm,
                &mut occ,
                k1,
                gap,
                &mut seen,
                epoch,
                &mut segs,
                &mut from_k1,
            );
            epoch += 1;
            harvest_donors(
                jdm,
                &mut occ,
                k2,
                gap,
                &mut seen,
                epoch,
                &mut segs,
                &mut from_k2,
            );
        }
        // Credit the crossing cells pairwise in drain order: the i-th
        // donor unit of the k3 role meets the i-th of the k4 role; units
        // past the shorter side went uncompensated in the reference too
        // (marginals drift, restored by the re-adjustment pass).
        let (mut ai, mut bi) = (0usize, 0usize);
        let (mut arem, mut brem) = (
            from_k1.first().map_or(0, |&(_, u)| u),
            from_k2.first().map_or(0, |&(_, u)| u),
        );
        while ai < from_k1.len() && bi < from_k2.len() {
            let take = arem.min(brem);
            credit_crossing(
                jdm,
                &mut occ,
                from_k1[ai].0 as usize,
                from_k2[bi].0 as usize,
                take,
            );
            arem -= take;
            brem -= take;
            if arem == 0 {
                ai += 1;
                arem = from_k1.get(ai).map_or(0, |&(_, u)| u);
            }
            if brem == 0 {
                bi += 1;
                brem = from_k2.get(bi).map_or(0, |&(_, u)| u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target_dv;
    use sgr_sample::{random_walk, AccessModel};
    use sgr_util::Xoshiro256pp;

    fn setup(n: usize, frac: f64, seed: u64) -> (Subgraph, Estimates) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let g = sgr_gen::holme_kim(n, 3, 0.5, &mut rng).unwrap();
        let mut am = AccessModel::new(&g);
        let start = am.random_seed(&mut rng);
        let target = ((n as f64 * frac) as usize).max(3);
        let crawl = random_walk(&mut am, start, target, &mut rng);
        (
            crawl.subgraph(),
            sgr_estimate::estimate_all(&crawl).unwrap(),
        )
    }

    /// Verifies the four JDM realizability conditions after the build.
    fn assert_conditions(jdm: &TargetJdm, dv: &TargetDv) {
        // JDM-2: symmetry (by construction of the triangular arena).
        for k in 1..=jdm.k_max {
            for k2 in 1..=jdm.k_max {
                assert_eq!(jdm.get(k, k2), jdm.get(k2, k), "asym at ({k},{k2})");
            }
        }
        // JDM-3: marginals equal k·n*(k). (Indexed loop: k is a degree.)
        let s = jdm.marginals();
        #[allow(clippy::needless_range_loop)]
        for k in 1..=jdm.k_max {
            assert_eq!(s[k], k as u64 * dv.n_star[k], "marginal broken at k = {k}");
        }
        // JDM-4: m* dominates the subgraph's m'.
        for k in 1..=jdm.k_max {
            for k2 in 1..=jdm.k_max {
                assert!(
                    jdm.get(k, k2) >= jdm.prime(k, k2),
                    "JDM-4 broken at ({k},{k2})"
                );
            }
        }
        // DV-2 still holds (even degree sum).
        assert_eq!(dv.degree_sum() % 2, 0);
        // DV-3 still holds.
        for k in 0..=dv.k_max {
            assert!(dv.n_star[k] >= dv.n_prime[k]);
        }
    }

    #[test]
    fn all_conditions_hold_across_seeds() {
        for seed in 0..6 {
            let (sg, est) = setup(500, 0.1, seed);
            let mut rng = Xoshiro256pp::seed_from_u64(seed + 50);
            let mut dv = target_dv::build(&sg, &est, &mut rng);
            let jdm = build(&sg, &est, &mut dv).unwrap();
            assert_conditions(&jdm, &dv);
        }
    }

    #[test]
    fn gjoka_conditions_hold() {
        let (_, est) = setup(500, 0.1, 20);
        let mut dv = target_dv::build_gjoka(&est);
        let jdm = build_gjoka(&est, &mut dv).unwrap();
        // JDM-2 and JDM-3 hold; m_prime is all zeros.
        let s = jdm.marginals();
        #[allow(clippy::needless_range_loop)]
        for k in 1..=jdm.k_max {
            assert_eq!(s[k], k as u64 * dv.n_star[k]);
            for k2 in 1..=jdm.k_max {
                assert_eq!(jdm.get(k, k2), jdm.get(k2, k));
                assert_eq!(jdm.prime(k, k2), 0);
            }
        }
        assert_eq!(dv.degree_sum() % 2, 0);
    }

    #[test]
    fn subgraph_jdm_uses_target_degrees() {
        let (sg, est) = setup(400, 0.1, 30);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let dv = target_dv::build(&sg, &est, &mut rng);
        let mut jdm = TargetJdm::new(dv.k_max);
        measure_subgraph_jdm(&sg, &dv, &mut jdm);
        let total: u64 = jdm.m_prime.iter().sum();
        assert_eq!(total, sg.num_edges() as u64);
        // Marginal identity against the assigned degrees:
        // Σ_{k'} µ m'(k,k') = Σ_{i: d*_i = k} d'_i.
        for k in 1..=dv.k_max {
            let lhs: u64 = (1..=dv.k_max)
                .map(|k2| TargetJdm::mu(k, k2) * jdm.prime(k, k2))
                .sum();
            let rhs: u64 = sg
                .graph
                .nodes()
                .filter(|&u| dv.d_star[u as usize] as usize == k)
                .map(|u| sg.graph.degree(u) as u64)
                .sum();
            assert_eq!(lhs, rhs, "m' marginal mismatch at k = {k}");
        }
    }

    #[test]
    fn num_edges_matches_half_degree_sum() {
        let (sg, est) = setup(400, 0.12, 50);
        let mut rng = Xoshiro256pp::seed_from_u64(51);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        let jdm = build(&sg, &est, &mut dv).unwrap();
        assert_eq!(2 * jdm.num_edges(), dv.degree_sum());
    }

    #[test]
    fn triangular_indexing_is_symmetric_and_dense() {
        let mut jdm = TargetJdm::new(5);
        jdm.set(2, 4, 7);
        assert_eq!(jdm.get(4, 2), 7);
        jdm.set(3, 3, 9);
        assert_eq!(jdm.get(3, 3), 9);
        // All 21 cells of the 0..=5 triangle are distinct.
        let mut seen = std::collections::HashSet::new();
        for hi in 0..=5 {
            for lo in 0..=hi {
                assert!(seen.insert(tri_idx(lo, hi)));
                assert_eq!(tri_idx(lo, hi), tri_idx(hi, lo));
            }
        }
        assert_eq!(seen.len(), tri_len(5));
        assert_eq!(*seen.iter().max().unwrap(), tri_len(5) - 1);
    }

    #[test]
    fn degree_one_parity_gap_converges_without_budget() {
        // The degree-1 path: an odd marginal gap at k = 1 forces the
        // parity bump and a pure-diagonal fill. Before the typed error
        // existed this path could only fail by panicking; now both
        // engines return Result — and the batched engine handles a gap
        // far beyond the reference's per-unit step budget.
        let mut jdm = TargetJdm::new(1);
        jdm.set_hat(1, 1, 2.5);
        let mut dv = TargetDv {
            n_star: vec![0, 30_000_001],
            n_prime: vec![0, 0],
            d_star: Vec::new(),
            k_max: 1,
            n_hat_k: vec![0.0, 3.0],
        };
        adjust(&mut jdm, &mut dv, false).unwrap();
        // Parity bump: n*(1) became even; the diagonal carries the whole
        // marginal.
        assert_eq!(dv.n_star[1], 30_000_002);
        assert_eq!(jdm.marginal(1), dv.n_star[1]);
        assert_eq!(2 * jdm.get(1, 1), dv.n_star[1]);
    }

    #[test]
    fn reference_reports_nonconvergence_past_step_budget() {
        // Same input as above: the per-unit reference walks the gap one
        // diagonal increment at a time and trips its step budget — as a
        // typed error, not the former assert! panic.
        let mut jdm = TargetJdm::new(1);
        jdm.set_hat(1, 1, 2.5);
        let mut dv = TargetDv {
            n_star: vec![0, 30_000_001],
            n_prime: vec![0, 0],
            d_star: Vec::new(),
            k_max: 1,
            n_hat_k: vec![0.0, 3.0],
        };
        let err = reference::adjust(&mut jdm, &mut dv, false).unwrap_err();
        assert!(matches!(err, TargetError::NonConvergence { degree: 1, .. }));
        let msg = err.to_string();
        assert!(msg.contains("degree 1"), "unhelpful message: {msg}");
    }

    #[test]
    fn build_propagates_nonconvergence() {
        // End-to-end: a crawl whose degree-1 gap exceeds the reference
        // budget surfaces Err through reference::build, while the batched
        // build succeeds on the identical input.
        let (sg, est) = setup(300, 0.1, 77);
        let mut rng = Xoshiro256pp::seed_from_u64(78);
        let mut dv = target_dv::build(&sg, &est, &mut rng);
        dv.n_star[1] += 40_000_000; // poison: gap far past the budget
        let mut dv_ref = dv.clone();
        assert!(matches!(
            reference::build(&sg, &est, &mut dv_ref),
            Err(TargetError::NonConvergence { .. })
        ));
        assert!(build(&sg, &est, &mut dv).is_ok());
    }
}
